/**
 * @file
 * A homogeneous pool of GPU workers.
 */

#ifndef MODM_SIM_CLUSTER_HH
#define MODM_SIM_CLUSTER_HH

#include <string>
#include <vector>

#include "src/sim/worker.hh"

namespace modm::sim {

/**
 * Fixed-size collection of workers of one GPU kind, with lookup helpers
 * the dispatcher uses.
 */
class Cluster
{
  public:
    /** Create `count` workers of the given kind. */
    Cluster(std::size_t count, diffusion::GpuKind kind,
            double idle_power_w = 60.0);

    /** Number of workers. */
    std::size_t size() const { return workers_.size(); }

    /** GPU kind of the pool. */
    diffusion::GpuKind kind() const { return kind_; }

    /** Worker access. */
    Worker &worker(std::size_t i);

    /** Const worker access. */
    const Worker &worker(std::size_t i) const;

    /**
     * Index of an idle worker at `now` whose resident model equals
     * `model_name`, preferring one that avoids a load; -1 when none.
     */
    int findIdleWithModel(const std::string &model_name, double now) const;

    /** Index of any idle worker at `now`; -1 when none. */
    int findAnyIdle(double now) const;

    /** Total completed jobs across workers. */
    std::uint64_t totalJobs() const;

    /** Total compute + idle energy over an experiment duration. */
    double totalEnergyJ(double duration) const;

    /** Total model switches across workers. */
    std::uint64_t totalModelSwitches() const;

    /** Aggregate busy seconds across workers. */
    double totalBusySeconds() const;

  private:
    diffusion::GpuKind kind_;
    std::vector<Worker> workers_;
};

} // namespace modm::sim

#endif // MODM_SIM_CLUSTER_HH

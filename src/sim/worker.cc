#include "src/sim/worker.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace modm::sim {

Worker::Worker(int id, diffusion::GpuKind kind, double idle_power_w)
    : id_(id), kind_(kind), idlePowerW_(idle_power_w)
{
}

double
Worker::startJob(const diffusion::ModelSpec &model, int steps, double now)
{
    MODM_ASSERT(!busyAt(now), "worker %d already busy at %f", id_, now);
    MODM_ASSERT(steps >= 1, "job must run at least one step");

    double start = now;
    if (residentModel_ != model.name) {
        start += model.loadLatency;
        stats_.switchSeconds += model.loadLatency;
        if (!residentModel_.empty())
            ++stats_.modelSwitches;
        residentModel_ = model.name;
    }
    const double compute = steps * model.stepLatency(kind_);
    freeAt_ = start + compute;
    ++stats_.jobs;
    stats_.busySeconds += freeAt_ - now;
    jobStartedAt_ = now;
    jobEnergyJ_ = model.stepEnergyJ(kind_, steps);
    stats_.computeEnergyJ += jobEnergyJ_;
    return freeAt_;
}

void
Worker::abortJob(double now)
{
    if (!busyAt(now))
        return;
    // Roll accounting back to the executed fraction: the GPU burned
    // power only until the kill, and the unfinished output is lost.
    const double span = freeAt_ - jobStartedAt_;
    const double executed =
        span > 0.0 ? (now - jobStartedAt_) / span : 1.0;
    stats_.busySeconds -= freeAt_ - now;
    stats_.computeEnergyJ -= (1.0 - executed) * jobEnergyJ_;
    ++stats_.abortedJobs;
    freeAt_ = now;
    jobEnergyJ_ = 0.0;
    // The process died with the model in memory; a rejoin reloads.
    residentModel_.clear();
}

double
Worker::totalEnergyJ(double duration) const
{
    const double idleSeconds =
        std::max(duration - stats_.busySeconds, 0.0);
    return stats_.computeEnergyJ + idleSeconds * idlePowerW_;
}

} // namespace modm::sim

/**
 * @file
 * Discrete-event simulation core: a time-ordered queue of callbacks with
 * a virtual clock. All serving experiments run on virtual time, making
 * hour-long GPU-cluster traces reproducible and fast.
 */

#ifndef MODM_SIM_EVENT_QUEUE_HH
#define MODM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace modm::sim {

/**
 * Event queue with a monotonically advancing virtual clock.
 * Simultaneous events run in scheduling order (FIFO tie-break), which
 * keeps simulations deterministic.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule a callback at an absolute virtual time >= now(). */
    void schedule(double time, Handler handler);

    /** Schedule a callback `delay` seconds from now. */
    void scheduleAfter(double delay, Handler handler);

    /** Current virtual time (seconds). */
    double now() const { return now_; }

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events_.size(); }

    /** Time of the earliest pending event; panics when empty. */
    double peekTime() const;

    /**
     * Pop and run the earliest event, advancing the clock. Returns
     * false when the queue is empty.
     */
    bool runNext();

    /** Run events until the queue is empty. */
    void runAll();

    /**
     * Run events with time <= limit; the clock ends at
     * min(limit, last event time).
     */
    void runUntil(double limit);

  private:
    struct Event
    {
        double time;
        std::uint64_t seq;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    double now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace modm::sim

#endif // MODM_SIM_EVENT_QUEUE_HH

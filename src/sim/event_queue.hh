/**
 * @file
 * Discrete-event simulation core: a time-ordered queue of callbacks with
 * a virtual clock. All serving experiments run on virtual time, making
 * hour-long GPU-cluster traces reproducible and fast.
 *
 * Events are cancellable: schedule() returns an EventId that cancel()
 * invalidates. Cancellation is how the fault-injection subsystem models
 * node death — a killed node's in-flight completions and monitor ticks
 * simply never fire. Cancelled events are discarded lazily when they
 * reach the head of the queue, so cancellation is O(1) and a queue that
 * never cancels behaves exactly as before.
 *
 * Events carry optional EventMeta tags (event kind, node, request) and
 * the queue accepts one EventTap observer, invoked at every dispatch
 * just before the handler runs. This is the observability hook: the
 * obs::Tracer records the tagged event stream through it. With no tap
 * installed (the default) dispatch is exactly the pre-hook code path.
 */

#ifndef MODM_SIM_EVENT_QUEUE_HH
#define MODM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace modm::sim {

/** Tag value for "no node attached to this event". */
inline constexpr std::uint32_t kNoNode = 0xffffffffu;

/** Tag value for "no request attached to this event". */
inline constexpr std::uint64_t kNoRequest = ~0ULL;

/**
 * Optional metadata attached to a scheduled event, surfaced to the
 * EventTap at dispatch. The kind values are owned by the layer above
 * (obs::EventKind names the serving stack's); 0 means "untagged".
 */
struct EventMeta
{
    std::uint16_t kind = 0;
    std::uint32_t node = kNoNode;
    std::uint64_t request = kNoRequest;
};

/**
 * Dispatch observer: onDispatch fires for every event the queue runs,
 * after the clock advanced and before the handler executes. Observers
 * must not mutate the queue (recording only), so an installed tap
 * cannot change simulation behaviour.
 */
class EventTap
{
  public:
    virtual ~EventTap() = default;

    virtual void onDispatch(double time, std::uint64_t seq,
                            const EventMeta &meta)
        = 0;
};

/**
 * Event queue with a monotonically advancing virtual clock.
 * Simultaneous events run in scheduling order (FIFO tie-break), which
 * keeps simulations deterministic.
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Handle identifying one scheduled event (for cancel()). */
    using EventId = std::uint64_t;

    /**
     * Schedule a callback at an absolute virtual time >= now().
     * Returns a handle that cancel() accepts.
     */
    EventId schedule(double time, Handler handler);

    /** Schedule a tagged callback (meta surfaces at the tap). */
    EventId schedule(double time, const EventMeta &meta,
                     Handler handler);

    /** Schedule a callback `delay` seconds from now. */
    EventId scheduleAfter(double delay, Handler handler);

    /** Schedule a tagged callback `delay` seconds from now. */
    EventId scheduleAfter(double delay, const EventMeta &meta,
                          Handler handler);

    /** Install (or clear, with nullptr) the dispatch observer. */
    void setTap(EventTap *tap) { tap_ = tap; }

    /** The installed dispatch observer (null when none). */
    EventTap *tap() const { return tap_; }

    /**
     * Cancel a pending event: its handler will never run. The id must
     * refer to an event that has neither run nor been cancelled —
     * enforced against the pending-id set, so cancelling an event
     * that already fired is a deterministic panic instead of silent
     * ledger corruption. (Callers track completion anyway: the
     * serving nodes erase in-flight records when a completion fires.)
     */
    void cancel(EventId id);

    /** Current virtual time (seconds). */
    double now() const { return now_; }

    /** True when no live (non-cancelled) events are pending. */
    bool empty() const { return pending_.empty(); }

    /** Number of live (non-cancelled) pending events. */
    std::size_t size() const { return pending_.size(); }

    /** Time of the earliest live pending event; panics when empty. */
    double peekTime() const;

    /**
     * Pop and run the earliest event, advancing the clock. Returns
     * false when the queue is empty.
     */
    bool runNext();

    /** Run events until the queue is empty. */
    void runAll();

    /**
     * Run events with time <= limit; the clock ends at
     * min(limit, last event time).
     */
    void runUntil(double limit);

  private:
    struct Event
    {
        double time;
        std::uint64_t seq;
        EventMeta meta;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /** Pop cancelled events off the head until a live one surfaces. */
    void discardCancelled() const;

    // Lazy cancellation: the heap is immutable in place, so cancelled
    // ids wait in a side set until they surface at the head. The
    // pending set (ids scheduled, not yet run or cancelled) backs
    // size()/empty() and lets cancel() reject stale ids. mutable:
    // discarding tombstones from the head is observation, not state —
    // peekTime()/empty() stay const.
    mutable std::priority_queue<Event, std::vector<Event>, Later> events_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_set<EventId> pending_;
    double now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    EventTap *tap_ = nullptr;
};

} // namespace modm::sim

#endif // MODM_SIM_EVENT_QUEUE_HH

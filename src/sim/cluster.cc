#include "src/sim/cluster.hh"

#include "src/common/log.hh"

namespace modm::sim {

Cluster::Cluster(std::size_t count, diffusion::GpuKind kind,
                 double idle_power_w)
    : kind_(kind)
{
    MODM_ASSERT(count > 0, "cluster needs at least one worker");
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back(static_cast<int>(i), kind, idle_power_w);
}

Worker &
Cluster::worker(std::size_t i)
{
    MODM_ASSERT(i < workers_.size(), "worker index out of range");
    return workers_[i];
}

const Worker &
Cluster::worker(std::size_t i) const
{
    MODM_ASSERT(i < workers_.size(), "worker index out of range");
    return workers_[i];
}

int
Cluster::findIdleWithModel(const std::string &model_name, double now) const
{
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].busyAt(now) &&
            workers_[i].residentModel() == model_name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
Cluster::findAnyIdle(double now) const
{
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].busyAt(now))
            return static_cast<int>(i);
    }
    return -1;
}

std::uint64_t
Cluster::totalJobs() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers_)
        total += w.stats().jobs;
    return total;
}

double
Cluster::totalEnergyJ(double duration) const
{
    double total = 0.0;
    for (const auto &w : workers_)
        total += w.totalEnergyJ(duration);
    return total;
}

std::uint64_t
Cluster::totalModelSwitches() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers_)
        total += w.stats().modelSwitches;
    return total;
}

double
Cluster::totalBusySeconds() const
{
    double total = 0.0;
    for (const auto &w : workers_)
        total += w.stats().busySeconds;
    return total;
}

} // namespace modm::sim

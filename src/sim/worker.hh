/**
 * @file
 * GPU worker model.
 *
 * Each worker is one GPU hosting exactly one resident diffusion model at
 * a time (paper §5.3: "Each GPU (a worker) can only host one model at a
 * time"). Switching the resident model costs load latency; the global
 * monitor's PID damping exists precisely to avoid thrashing this switch.
 * Workers integrate busy/idle energy for the Fig. 18 energy results.
 */

#ifndef MODM_SIM_WORKER_HH
#define MODM_SIM_WORKER_HH

#include <cstdint>
#include <string>

#include "src/diffusion/model_spec.hh"

namespace modm::sim {

/** Per-worker counters. */
struct WorkerStats
{
    std::uint64_t jobs = 0;
    std::uint64_t modelSwitches = 0;
    /** Jobs aborted mid-flight by a node fault (work discarded). */
    std::uint64_t abortedJobs = 0;
    double busySeconds = 0.0;
    double switchSeconds = 0.0;
    double computeEnergyJ = 0.0;
};

/**
 * One GPU worker.
 */
class Worker
{
  public:
    /**
     * @param id Worker index.
     * @param kind GPU type.
     * @param idle_power_w Power draw while idle (watts).
     */
    Worker(int id, diffusion::GpuKind kind, double idle_power_w = 60.0);

    /** Worker index. */
    int id() const { return id_; }

    /** GPU type. */
    diffusion::GpuKind kind() const { return kind_; }

    /** True when a job is in flight at virtual time `now`. */
    bool busyAt(double now) const { return now < freeAt_; }

    /** Time the current job finishes (now or earlier when idle). */
    double freeAt() const { return freeAt_; }

    /** Name of the resident model; empty before the first job. */
    const std::string &residentModel() const { return residentModel_; }

    /**
     * Start a job of `steps` de-noising steps with `model` at time
     * `now`; loads the model first when not resident. Returns the
     * completion time.
     */
    double startJob(const diffusion::ModelSpec &model, int steps,
                    double now);

    /**
     * Abort the in-flight job at time `now` (node kill): the worker
     * becomes free immediately, busy time and compute energy are
     * rolled back to the fraction actually executed, and the resident
     * model is dropped (a restarted node reloads from scratch). No-op
     * when idle.
     */
    void abortJob(double now);

    /** Counters. */
    const WorkerStats &stats() const { return stats_; }

    /**
     * Total energy including idle draw over an experiment of the given
     * duration (joules).
     */
    double totalEnergyJ(double duration) const;

  private:
    int id_;
    diffusion::GpuKind kind_;
    double idlePowerW_;
    std::string residentModel_;
    double freeAt_ = 0.0;
    // In-flight job bookkeeping so abortJob can roll back accounting.
    double jobStartedAt_ = 0.0;
    double jobEnergyJ_ = 0.0;
    WorkerStats stats_;
};

} // namespace modm::sim

#endif // MODM_SIM_WORKER_HH

#include "src/sim/event_queue.hh"

#include "src/common/log.hh"

namespace modm::sim {

EventQueue::EventId
EventQueue::schedule(double time, Handler handler)
{
    return schedule(time, EventMeta{}, std::move(handler));
}

EventQueue::EventId
EventQueue::schedule(double time, const EventMeta &meta, Handler handler)
{
    MODM_ASSERT(time >= now_ - 1e-9,
                "cannot schedule in the past (%f < %f)", time, now_);
    const EventId id = nextSeq_++;
    events_.push(Event{time, id, meta, std::move(handler)});
    pending_.insert(id);
    return id;
}

EventQueue::EventId
EventQueue::scheduleAfter(double delay, Handler handler)
{
    return scheduleAfter(delay, EventMeta{}, std::move(handler));
}

EventQueue::EventId
EventQueue::scheduleAfter(double delay, const EventMeta &meta,
                          Handler handler)
{
    MODM_ASSERT(delay >= 0.0, "negative delay");
    return schedule(now_ + delay, meta, std::move(handler));
}

void
EventQueue::cancel(EventId id)
{
    // Rejecting non-pending ids here keeps the tombstone set an exact
    // complement of the heap: a stale cancel would otherwise leave a
    // tombstone that never retires and corrupt the size() ledger.
    MODM_ASSERT(pending_.erase(id) == 1,
                "cancel of event %llu which is not pending",
                static_cast<unsigned long long>(id));
    cancelled_.insert(id);
}

void
EventQueue::discardCancelled() const
{
    while (!events_.empty()) {
        const auto it = cancelled_.find(events_.top().seq);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        events_.pop();
    }
}

double
EventQueue::peekTime() const
{
    discardCancelled();
    MODM_ASSERT(!events_.empty(), "peekTime on empty queue");
    return events_.top().time;
}

bool
EventQueue::runNext()
{
    discardCancelled();
    if (events_.empty())
        return false;
    // Copy out before pop: the handler may schedule new events.
    Event event = events_.top();
    events_.pop();
    pending_.erase(event.seq);
    now_ = event.time;
    if (tap_ != nullptr)
        tap_->onDispatch(event.time, event.seq, event.meta);
    event.handler();
    return true;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(double limit)
{
    for (;;) {
        discardCancelled();
        if (events_.empty() || events_.top().time > limit)
            break;
        runNext();
    }
    if (now_ < limit)
        now_ = limit;
}

} // namespace modm::sim

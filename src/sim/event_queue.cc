#include "src/sim/event_queue.hh"

#include "src/common/log.hh"

namespace modm::sim {

void
EventQueue::schedule(double time, Handler handler)
{
    MODM_ASSERT(time >= now_ - 1e-9,
                "cannot schedule in the past (%f < %f)", time, now_);
    events_.push(Event{time, nextSeq_++, std::move(handler)});
}

void
EventQueue::scheduleAfter(double delay, Handler handler)
{
    MODM_ASSERT(delay >= 0.0, "negative delay");
    schedule(now_ + delay, std::move(handler));
}

double
EventQueue::peekTime() const
{
    MODM_ASSERT(!events_.empty(), "peekTime on empty queue");
    return events_.top().time;
}

bool
EventQueue::runNext()
{
    if (events_.empty())
        return false;
    // Copy out before pop: the handler may schedule new events.
    Event event = events_.top();
    events_.pop();
    now_ = event.time;
    event.handler();
    return true;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(double limit)
{
    while (!events_.empty() && events_.top().time <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

} // namespace modm::sim

#include "src/serving/fault.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace modm::serving {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Kill:
        return "kill";
      case FaultKind::Drain:
        return "drain";
      case FaultKind::Rejoin:
        return "rejoin";
    }
    panic("unknown FaultKind");
}

void
validatePlan(const FaultPlan &plan, std::size_t num_nodes)
{
    MODM_ASSERT(plan.recoveryWindow > 0,
                "recovery window must be positive");
    MODM_ASSERT(plan.recoveryTarget > 0.0 && plan.recoveryTarget <= 1.0,
                "recovery target must be in (0, 1]");
    // Track liveness through the script so authoring errors (killing
    // the last node, rejoining an alive one) fail fast at startup
    // instead of corrupting a long simulation. "Up" (alive, maybe
    // draining) and "admitting" (up and not draining) are tracked
    // separately: a kill may supersede an in-progress drain, but
    // never hit an already-dead node.
    std::vector<bool> up(num_nodes, true);
    std::vector<bool> admitting(num_nodes, true);
    std::size_t admittingCount = num_nodes;
    double prevTime = 0.0;
    for (const auto &event : plan.events) {
        MODM_ASSERT(event.node < num_nodes,
                    "fault plan targets node %zu of %zu", event.node,
                    num_nodes);
        MODM_ASSERT(event.time >= 0.0, "fault time must be >= 0");
        MODM_ASSERT(event.time >= prevTime,
                    "fault events must be time-ordered (%f after %f)",
                    event.time, prevTime);
        prevTime = event.time;
        switch (event.kind) {
          case FaultKind::Kill:
            MODM_ASSERT(up[event.node],
                        "kill of node %zu which is already down",
                        event.node);
            if (admitting[event.node]) {
                MODM_ASSERT(admittingCount > 1,
                            "plan would leave no admitting node");
                admitting[event.node] = false;
                --admittingCount;
            }
            up[event.node] = false;
            break;
          case FaultKind::Drain:
            MODM_ASSERT(up[event.node], "drain of node %zu which is down",
                        event.node);
            MODM_ASSERT(admitting[event.node],
                        "node %zu is already draining", event.node);
            MODM_ASSERT(admittingCount > 1,
                        "plan would leave no admitting node");
            admitting[event.node] = false;
            --admittingCount;
            break;
          case FaultKind::Rejoin:
            MODM_ASSERT(!admitting[event.node],
                        "rejoin of node %zu which is already up",
                        event.node);
            up[event.node] = true;
            admitting[event.node] = true;
            ++admittingCount;
            break;
        }
    }
}

FailoverReport
analyzeFailover(const MetricsCollector &metrics, const FaultPlan &plan)
{
    FailoverReport report;
    report.active = !plan.empty();
    for (const auto &event : plan.events) {
        if (event.kind == FaultKind::Kill) {
            report.firstKillTime = event.time;
            break;
        }
    }
    if (report.firstKillTime < 0.0)
        return report;

    const double kill = report.firstKillTime;
    const auto &records = metrics.records();

    // Pre-fault hit rate over classifications in [0, kill): the hit
    // decision reflects cache state at classification time, so a
    // request classified on the healthy cluster counts as pre-fault
    // even when its generation finishes after the kill. Pre-fault
    // capacity is completion-stamped: finished work is throughput.
    std::uint64_t preClassified = 0;
    std::uint64_t preHits = 0;
    std::uint64_t preFinished = 0;
    for (const auto &r : records) {
        if (r.classified < kill) {
            ++preClassified;
            if (r.cacheHit)
                ++preHits;
        }
        if (r.finish < kill)
            ++preFinished;
    }
    if (preClassified == 0 || preFinished == 0 || kill <= 0.0)
        return report; // nothing to recover toward
    report.preFaultHitRate = static_cast<double>(preHits) /
        static_cast<double>(preClassified);
    report.preFaultThroughputPerMin =
        static_cast<double>(preFinished) * 60.0 / kill;

    // Hit-rate recovery: scan post-kill classifications in time order
    // with a trailing window of recoveryWindow samples; recovered at
    // the first full window whose hit rate meets the target. Records
    // are completion-ordered, so sort a view by classification stamp
    // (stable: simultaneous classifications keep completion order).
    std::vector<const RequestRecord *> byClassified;
    byClassified.reserve(records.size());
    for (const auto &r : records) {
        if (r.classified >= kill)
            byClassified.push_back(&r);
    }
    std::stable_sort(byClassified.begin(), byClassified.end(),
                     [](const RequestRecord *a, const RequestRecord *b) {
                         return a->classified < b->classified;
                     });
    const double hitTarget = plan.recoveryTarget * report.preFaultHitRate;
    const std::size_t window =
        std::max<std::size_t>(plan.recoveryWindow, 1);
    std::size_t hitsInWindow = 0;
    for (std::size_t i = 0; i < byClassified.size(); ++i) {
        if (byClassified[i]->cacheHit)
            ++hitsInWindow;
        if (i >= window && byClassified[i - window]->cacheHit)
            --hitsInWindow;
        if (i + 1 < window)
            continue;
        const double rate = static_cast<double>(hitsInWindow) /
            static_cast<double>(window);
        if (rate >= hitTarget) {
            report.hitRateRecoveryS = byClassified[i]->classified - kill;
            break;
        }
    }

    // Lost-capacity window: the last instant cumulative post-kill
    // completions trailed recoveryTarget x the work that arrived
    // since the kill — when service finally caught back up with the
    // offered load (0 = it never fell behind). Measured against
    // arrivals rather than the pre-fault rate so the post-trace queue
    // drain closes the window instead of extending it forever.
    std::vector<double> arrivals;
    std::vector<double> finishes;
    arrivals.reserve(records.size());
    finishes.reserve(records.size());
    for (const auto &r : records) {
        if (r.arrival >= kill)
            arrivals.push_back(r.arrival);
        if (r.finish >= kill)
            finishes.push_back(r.finish);
    }
    std::sort(arrivals.begin(), arrivals.end());
    std::sort(finishes.begin(), finishes.end());
    std::size_t arrived = 0;
    for (std::size_t done = 0; done < finishes.size(); ++done) {
        while (arrived < arrivals.size() &&
               arrivals[arrived] <= finishes[done])
            ++arrived;
        const double required =
            plan.recoveryTarget * static_cast<double>(arrived);
        if (static_cast<double>(done + 1) < required)
            report.lostCapacityS = finishes[done] - kill;
    }
    return report;
}

} // namespace modm::serving

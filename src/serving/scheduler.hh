/**
 * @file
 * Request Scheduler (paper §4.2, §5.2): classifies incoming requests
 * into cache hits and misses, performs retrieval and k-selection, and
 * maintains cache content as generations complete.
 *
 * The scheduler owns the text tower (the paper hosts a CLIP model in the
 * scheduler process), MoDM's image cache, and — when running the Nirvana
 * baseline — the latent cache.
 */

#ifndef MODM_SERVING_SCHEDULER_HH
#define MODM_SERVING_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/cache/image_cache.hh"
#include "src/cache/latent_cache.hh"
#include "src/common/sampled_vector.hh"
#include "src/diffusion/image.hh"
#include "src/embedding/encoder.hh"
#include "src/serving/config.hh"
#include "src/serving/k_decision.hh"
#include "src/workload/prompt.hh"

namespace modm::serving {

/** A classified request ready for queueing/dispatch. */
struct ClassifiedJob
{
    workload::Request request;
    embedding::Embedding textEmbedding;
    /** True when served from cache (refinement or direct return). */
    bool hit = false;
    /** True when the cached image is returned without refinement. */
    bool direct = false;
    /** Steps to skip when refining. */
    int k = 0;
    /** Retrieval similarity (text-to-image for MoDM/Pinecone,
     *  text-to-text for Nirvana); -1 on miss. */
    double similarity = -1.0;
    /** Copy of the retrieved image (valid when hit). */
    diffusion::Image base;
    /** Classification timestamp. */
    double classifiedAt = 0.0;
};

/** Aggregate scheduler counters. */
struct SchedulerStats
{
    std::uint64_t classified = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t directReturns = 0;
    std::map<int, std::uint64_t> kCounts;
    /**
     * Retrievals compared against an exhaustive scan (approximate
     * backends with recall tracking on; 0 under the exact default).
     */
    std::uint64_t retrievalChecked = 0;
    /** Checked retrievals that returned the exact best entry. */
    std::uint64_t retrievalAgreed = 0;

    /** Observed recall@1; 1.0 when nothing was checked (exact). */
    double recallAt1() const
    {
        return retrievalChecked == 0
            ? 1.0
            : static_cast<double>(retrievalAgreed) /
                static_cast<double>(retrievalChecked);
    }
};

/**
 * The request scheduler. Behaviour varies with the configured
 * SystemKind, so one implementation serves MoDM and every baseline.
 */
class RequestScheduler
{
  public:
    /** Construct per the experiment configuration. */
    explicit RequestScheduler(const ServingConfig &config);

    /**
     * Classify a request at simulated time `now`: embed the prompt,
     * retrieve from the appropriate cache, apply thresholds, select k.
     */
    ClassifiedJob classify(const workload::Request &request, double now);

    /**
     * Pre-size the system's cache (image or latent) for an expected
     * number of entries — the warm-up phase calls this so bulk
     * admission avoids index reallocation and rehash churn.
     */
    void reserveCache(std::size_t expected);

    /**
     * Re-bound whichever cache this system runs (image and/or latent)
     * to a new shard capacity; shrinking evicts down under the shard's
     * own eviction policy. Scripted knob changes land here.
     */
    void setCacheCapacity(std::size_t capacity);

    /**
     * Admit a finished generation to the cache per the system's
     * admission policy.
     *
     * @param image The generated image.
     * @param text_embedding Text embedding of the producing prompt.
     * @param from_miss True when the image came from a cache miss
     *        (i.e., was produced by the large model from scratch).
     * @param now Simulated time.
     */
    void admitGenerated(const diffusion::Image &image,
                        const embedding::Embedding &text_embedding,
                        bool from_miss, double now);

    /** MoDM/Pinecone image cache (present for those kinds). */
    cache::ImageCache *imageCache() { return imageCache_.get(); }

    /** Const image-cache access. */
    const cache::ImageCache *imageCache() const { return imageCache_.get(); }

    /** Nirvana latent cache (null for other kinds). */
    cache::LatentCache *latentCache() { return latentCache_.get(); }

    /** Const latent-cache access. */
    const cache::LatentCache *latentCache() const
    {
        return latentCache_.get();
    }

    /** Text tower. */
    const embedding::TextEncoder &textEncoder() const { return text_; }

    /** The k-decision table. */
    const KDecision &kDecision() const { return kDecision_; }

    /** Counters. */
    const SchedulerStats &stats() const { return stats_; }

    /**
     * Ages (seconds between retrieval and the retrieved image's
     * creation) of every cache hit — the Fig. 15 temporal-locality
     * data. Bounded by ServingConfig::maxTelemetrySamples via
     * deterministic stride downsampling (unbounded by default).
     */
    const std::vector<double> &hitAges() const
    {
        return hitAges_.items();
    }

    /** Total hit-age samples observed (retained + downsampled away). */
    std::uint64_t hitAgesSeen() const { return hitAges_.seen(); }

    /**
     * Forward the monitor's normalized load signal to the retrieval
     * backends, so an adaptive index can shed probes (IVF) or beam
     * width (HNSW) under pressure. A no-op for exact backends and when
     * the matching adaptive knob is off.
     */
    void setRetrievalLoad(double load);

    /** Forward a runtime efSearch override (scenario knob); 0 ignored. */
    void setRetrievalEf(std::size_t ef);

    /** Forward a runtime nprobe override (scenario knob); 0 ignored. */
    void setRetrievalNprobe(std::size_t nprobe);

    /**
     * Bytes the active retrieval backend holds right now (the
     * memory-budget axis); 0 when this system runs no cache.
     */
    std::size_t retrievalMemoryBytes() const;

    /**
     * Drop all cached content (image and latent caches): a killed
     * node's shard dies with it, so a rejoin starts cold. Aggregate
     * counters survive — they are run telemetry, not cache state.
     */
    void clearCaches();

  private:
    SystemKind kind_;
    double pineconeThreshold_;
    embedding::TextEncoder text_;
    KDecision kDecision_;
    AdmissionPolicy admission_;
    std::unique_ptr<cache::ImageCache> imageCache_;
    std::unique_ptr<cache::LatentCache> latentCache_;
    SchedulerStats stats_;
    SampledVector<double> hitAges_;
};

} // namespace modm::serving

#endif // MODM_SERVING_SCHEDULER_HH

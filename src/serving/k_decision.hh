/**
 * @file
 * Cache-hit threshold and k-selection heuristic (paper §5.2, Fig. 5b).
 *
 * Given the text-to-image similarity of the best cached match, decide
 * whether the request is a cache hit and, if so, how many de-noising
 * steps k can be skipped while keeping the refined image's quality above
 * alpha x full-generation quality (Eq. 5). Higher similarity permits
 * larger k (more savings); below the lowest floor the request is a miss.
 *
 * The default table is the paper's Fig. 5b decision logic. The
 * calibrate() helper re-derives the table from quality sweeps the way
 * §5.2 does, and is exercised by the Fig. 5 benchmark.
 */

#ifndef MODM_SERVING_K_DECISION_HH
#define MODM_SERVING_K_DECISION_HH

#include <vector>

namespace modm::serving {

/** Similarity floors -> k table. */
struct KDecisionConfig
{
    /** Ascending similarity floors; floors[0] is the cache-hit gate. */
    std::vector<double> floors = {0.25, 0.27, 0.28, 0.29, 0.30};
    /** k granted at each floor (parallel to floors). */
    std::vector<int> ks = {5, 10, 15, 25, 30};
};

/** One calibration observation: quality factor at (k, similarity). */
struct CalibrationPoint
{
    int k = 0;
    double similarity = 0.0;
    double qualityFactor = 0.0;
};

/**
 * The k-decision heuristic.
 */
class KDecision
{
  public:
    /** Construct from a table; defaults to the paper's Fig. 5b values. */
    explicit KDecision(KDecisionConfig config = {});

    /** True when the similarity clears the cache-hit gate. */
    bool isHit(double similarity) const;

    /**
     * De-noising steps to skip for a hit; panics when called for a
     * similarity below the hit gate.
     */
    int decide(double similarity) const;

    /** The active table. */
    const KDecisionConfig &config() const { return config_; }

    /**
     * Re-derive a threshold table from calibration sweeps: for every
     * distinct k, the lowest similarity bucket whose mean quality factor
     * stays >= alpha becomes that k's floor (paper §5.2 methodology).
     * Buckets of width `bucket` are averaged before thresholding.
     */
    static KDecisionConfig calibrate(
        const std::vector<CalibrationPoint> &points, double alpha,
        double bucket = 0.005);

  private:
    KDecisionConfig config_;
};

} // namespace modm::serving

#endif // MODM_SERVING_K_DECISION_HH

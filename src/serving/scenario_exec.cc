#include "src/serving/scenario_exec.hh"

#include "src/baselines/presets.hh"
#include "src/cache/image_cache.hh"
#include "src/common/log.hh"
#include "src/obs/metrics.hh"
#include "src/serving/k_decision.hh"
#include "src/workload/generator.hh"

namespace modm::serving {

namespace {

diffusion::ModelSpec
modelSpec(workload::ScenarioModel model)
{
    switch (model) {
      case workload::ScenarioModel::Sd35Large:
        return diffusion::sd35Large();
      case workload::ScenarioModel::Flux1Dev:
        return diffusion::flux1Dev();
      case workload::ScenarioModel::Sdxl:
        return diffusion::sdxl();
      case workload::ScenarioModel::Sana:
        return diffusion::sana();
      case workload::ScenarioModel::Sd35Turbo:
        return diffusion::sd35LargeTurbo();
    }
    panic("unmapped ScenarioModel");
}

diffusion::GpuKind
gpuKind(workload::ScenarioGpu gpu)
{
    switch (gpu) {
      case workload::ScenarioGpu::A40:
        return diffusion::GpuKind::A40;
      case workload::ScenarioGpu::MI210:
        return diffusion::GpuKind::MI210;
    }
    panic("unmapped ScenarioGpu");
}

cache::EvictionPolicy
evictionPolicy(workload::ScenarioEviction eviction)
{
    switch (eviction) {
      case workload::ScenarioEviction::Fifo:
        return cache::EvictionPolicy::FIFO;
      case workload::ScenarioEviction::Lru:
        return cache::EvictionPolicy::LRU;
      case workload::ScenarioEviction::Utility:
        return cache::EvictionPolicy::Utility;
    }
    panic("unmapped ScenarioEviction");
}

RoutingPolicy
routingPolicy(workload::ScenarioRouting routing)
{
    switch (routing) {
      case workload::ScenarioRouting::RoundRobin:
        return RoutingPolicy::RoundRobin;
      case workload::ScenarioRouting::ConsistentHash:
        return RoutingPolicy::ConsistentHash;
      case workload::ScenarioRouting::LeastOutstanding:
        return RoutingPolicy::LeastOutstanding;
      case workload::ScenarioRouting::BoundedLoad:
        return RoutingPolicy::BoundedLoadConsistentHash;
    }
    panic("unmapped ScenarioRouting");
}

CachePartitioning
cachePartitioning(workload::ScenarioPartitioning partitioning)
{
    switch (partitioning) {
      case workload::ScenarioPartitioning::Sharded:
        return CachePartitioning::Sharded;
      case workload::ScenarioPartitioning::Replicated:
        return CachePartitioning::Replicated;
    }
    panic("unmapped ScenarioPartitioning");
}

embedding::RetrievalBackend
retrievalBackend(workload::ScenarioRetrieval retrieval)
{
    switch (retrieval) {
      case workload::ScenarioRetrieval::Flat:
        return embedding::RetrievalBackend::Flat;
      case workload::ScenarioRetrieval::Ivf:
        return embedding::RetrievalBackend::Ivf;
      case workload::ScenarioRetrieval::Hnsw:
        return embedding::RetrievalBackend::Hnsw;
      case workload::ScenarioRetrieval::IvfPq:
        return embedding::RetrievalBackend::IvfPq;
    }
    panic("unmapped ScenarioRetrieval");
}

FaultKind
faultKind(workload::ScenarioFault fault)
{
    switch (fault) {
      case workload::ScenarioFault::Kill:
        return FaultKind::Kill;
      case workload::ScenarioFault::Drain:
        return FaultKind::Drain;
      case workload::ScenarioFault::Rejoin:
        return FaultKind::Rejoin;
    }
    panic("unmapped ScenarioFault");
}

ServingConfig
presetConfig(const workload::Scenario &scenario,
             const workload::ScenarioParams &params)
{
    baselines::PresetParams preset;
    preset.numWorkers = params.workers;
    preset.gpu = gpuKind(params.gpu);
    preset.cacheCapacity = params.cache;
    preset.seed = scenario.seed;

    const auto large = modelSpec(params.large);
    switch (params.system) {
      case workload::ScenarioSystem::Vanilla:
        return baselines::vanilla(large, preset);
      case workload::ScenarioSystem::Nirvana:
        return baselines::nirvana(large, preset);
      case workload::ScenarioSystem::Pinecone:
        return baselines::pinecone(large, preset);
      case workload::ScenarioSystem::StandaloneSmall:
        // The parser rejects an empty small list for this system.
        MODM_ASSERT(!params.small.empty(),
                    "standalone-small cell without a small model");
        return baselines::standalone(modelSpec(params.small.front()),
                                     preset);
      case workload::ScenarioSystem::MoDM: {
        MODM_ASSERT(!params.small.empty(),
                    "modm cell without a small model");
        if (params.small.size() == 1)
            return baselines::modm(large, modelSpec(params.small[0]),
                                   preset);
        std::vector<diffusion::ModelSpec> smalls;
        smalls.reserve(params.small.size());
        for (const auto model : params.small)
            smalls.push_back(modelSpec(model));
        return baselines::modmMulti(large, smalls, preset);
      }
    }
    panic("unmapped ScenarioSystem");
}

MonitorMode
knobMonitorMode(double value)
{
    return value != 0.0 ? MonitorMode::QualityOptimized
                        : MonitorMode::ThroughputOptimized;
}

} // namespace

ServingConfig
scenarioCellConfig(const workload::Scenario &scenario,
                   const workload::ScenarioCell &cell)
{
    const auto &params = cell.params;
    auto config = presetConfig(scenario, params);

    // Cluster / cache / retrieval knobs on top of the preset. Each
    // assignment is an identity when the scenario keeps the header
    // default, which is what preserves preset byte-compatibility.
    config.cachePolicy = evictionPolicy(params.eviction);
    config.cluster.numNodes = params.nodes;
    config.cluster.routing = routingPolicy(params.routing);
    config.cluster.cachePartitioning =
        cachePartitioning(params.partitioning);
    config.cluster.replicationFactor = params.replicas;
    config.retrieval.kind = retrievalBackend(params.retrieval);
    if (params.retrievalEf > 0)
        config.retrieval.efSearch = params.retrievalEf;
    if (params.retrievalNprobe > 0)
        config.retrieval.nprobe = params.retrievalNprobe;

    for (const auto &op : scenario.ops) {
        switch (op.kind) {
          case workload::ScenarioOp::Kind::Fault:
            config.faults.add(op.time, op.node, faultKind(op.fault));
            break;
          case workload::ScenarioOp::Kind::Knob:
            switch (op.knob) {
              case workload::ScenarioKnob::MonitorMode:
                config.knobs.setMode(op.time,
                                     knobMonitorMode(op.knobValue));
                break;
              case workload::ScenarioKnob::Cache:
                config.knobs.setCacheCapacity(
                    op.time, static_cast<std::size_t>(op.knobValue));
                break;
              case workload::ScenarioKnob::Replicas:
                config.knobs.setReplicationFactor(
                    op.time, static_cast<std::size_t>(op.knobValue));
                break;
              case workload::ScenarioKnob::Ef:
                config.knobs.setRetrievalEf(
                    op.time, static_cast<std::size_t>(op.knobValue));
                break;
              case workload::ScenarioKnob::Nprobe:
                config.knobs.setRetrievalNprobe(
                    op.time, static_cast<std::size_t>(op.knobValue));
                break;
            }
            break;
          default:
            break;
        }
    }
    if (scenario.hasFaults())
        config.faults.recoveryWindow = scenario.recoveryWindow;

    return config;
}

ServingResult
runScenarioCell(const workload::Scenario &scenario,
                const workload::ScenarioCell &cell,
                const obs::TraceConfig &trace)
{
    const auto workload = workload::buildScenarioWorkload(scenario);
    auto config = scenarioCellConfig(scenario, cell);
    config.trace = trace;
    ServingSystem system(std::move(config));
    if (!workload.warm.empty())
        system.warmCache(workload.warm);
    return system.run(workload.trace);
}

std::vector<double>
runScenarioCacheStream(const workload::Scenario &scenario,
                       const workload::ScenarioCell &cell)
{
    // The Fig. 6 streamed-cache loop: full fidelity to the scheduler's
    // MoDM cache path (classify, k-decision, refine-or-generate,
    // admit) without the cluster around it, which is what lets a
    // scenario stream tens of thousands of requests cheaply.
    const auto &params = cell.params;
    auto gen = scenario.dataset == workload::ScenarioDataset::MJHQ
                   ? workload::makeMJHQ(scenario.seed)
                   : workload::makeDiffusionDB(scenario.seed);
    diffusion::Sampler sampler(scenario.samplerSeed);
    cache::ImageCache cache(params.cache,
                            evictionPolicy(params.eviction));
    embedding::TextEncoder text;
    KDecision kd;
    const auto large = modelSpec(params.large);
    MODM_ASSERT(!params.small.empty(),
                "cache-stream cell without a refinement model");
    const auto refine = modelSpec(params.small.front());

    // Windowed hit accounting on the streaming metrics registry
    // (request index as the clock), shared with Fig. 6; the curve over
    // complete windows is byte-identical to the counter it replaced.
    obs::MetricsRegistry registry(
        static_cast<double>(scenario.window));
    const auto requestsId = registry.counter("requests");
    const auto hitsId = registry.counter("hits");
    for (std::size_t i = 0; i < scenario.requests; ++i) {
        const double t = static_cast<double>(i);
        registry.add(requestsId, t);
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        diffusion::Image img;
        if (r.found && kd.isHit(r.similarity)) {
            registry.add(hitsId, t);
            cache.recordHit(r.entryId, static_cast<double>(i));
            img = sampler.refine(refine, p, cache.entry(r.entryId).image,
                                 kd.decide(r.similarity),
                                 static_cast<double>(i));
        } else {
            img = sampler.generate(large, p, static_cast<double>(i));
        }
        cache.insert(img, static_cast<double>(i));
    }

    // Complete windows only (the historical curve dropped the
    // trailing partial window; take() flushes it as a final row).
    const auto series = registry.take();
    std::vector<double> curve;
    const std::size_t complete = scenario.requests / scenario.window;
    for (std::size_t w = 0;
         w < complete && w < series.rows.size(); ++w) {
        curve.push_back(series.rows[w].values[hitsId].sum /
                        static_cast<double>(scenario.window));
    }
    return curve;
}

} // namespace modm::serving

#include "src/serving/k_decision.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/log.hh"

namespace modm::serving {

KDecision::KDecision(KDecisionConfig config)
    : config_(std::move(config))
{
    MODM_ASSERT(!config_.floors.empty(), "k-decision table is empty");
    MODM_ASSERT(config_.floors.size() == config_.ks.size(),
                "k-decision floors and ks must align");
    MODM_ASSERT(std::is_sorted(config_.floors.begin(),
                               config_.floors.end()),
                "k-decision floors must be ascending");
}

bool
KDecision::isHit(double similarity) const
{
    return similarity >= config_.floors.front();
}

int
KDecision::decide(double similarity) const
{
    MODM_ASSERT(isHit(similarity),
                "decide() below the hit gate (%f)", similarity);
    int k = config_.ks.front();
    for (std::size_t i = 0; i < config_.floors.size(); ++i) {
        if (similarity >= config_.floors[i])
            k = config_.ks[i];
    }
    return k;
}

KDecisionConfig
KDecision::calibrate(const std::vector<CalibrationPoint> &points,
                     double alpha, double bucket)
{
    MODM_ASSERT(!points.empty(), "calibrate with no points");
    MODM_ASSERT(bucket > 0.0, "bucket width must be positive");

    // Group by k, then bucket by similarity and average quality.
    std::map<int, std::map<long, std::pair<double, std::size_t>>> grouped;
    for (const auto &p : points) {
        const long b = std::lround(p.similarity / bucket);
        auto &cell = grouped[p.k][b];
        cell.first += p.qualityFactor;
        cell.second += 1;
    }

    KDecisionConfig out;
    out.floors.clear();
    out.ks.clear();
    for (const auto &[k, buckets] : grouped) {
        // Find the lowest bucket from which all higher buckets stay
        // above alpha (quality is monotone in similarity, but noise can
        // produce isolated dips; scanning from the top is robust).
        double floor = 0.0;
        bool found = false;
        for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
            const double mean = it->second.first /
                static_cast<double>(it->second.second);
            if (mean >= alpha) {
                floor = static_cast<double>(it->first) * bucket;
                found = true;
            } else {
                break;
            }
        }
        if (found) {
            out.floors.push_back(floor);
            out.ks.push_back(k);
        }
    }
    MODM_ASSERT(!out.floors.empty(),
                "calibration found no feasible (k, similarity) region");
    // Sort by k ascending; floors should then ascend too. Enforce
    // monotonicity against residual noise.
    for (std::size_t i = 1; i < out.floors.size(); ++i)
        out.floors[i] = std::max(out.floors[i], out.floors[i - 1]);
    return out;
}

} // namespace modm::serving

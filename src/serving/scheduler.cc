#include "src/serving/scheduler.hh"

#include "src/common/log.hh"

namespace modm::serving {

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::MoDM:
        return "MoDM";
      case SystemKind::Vanilla:
        return "Vanilla";
      case SystemKind::Nirvana:
        return "Nirvana";
      case SystemKind::Pinecone:
        return "Pinecone";
      case SystemKind::StandaloneSmall:
        return "StandaloneSmall";
    }
    panic("unknown SystemKind");
}

const char *
cachePartitioningName(CachePartitioning partitioning)
{
    switch (partitioning) {
      case CachePartitioning::Sharded:
        return "sharded";
      case CachePartitioning::Replicated:
        return "replicated";
    }
    panic("unknown CachePartitioning");
}

RequestScheduler::RequestScheduler(const ServingConfig &config)
    : kind_(config.kind), pineconeThreshold_(config.pineconeThreshold),
      text_(config.textEncoder), kDecision_(config.kDecision),
      admission_(config.admission), hitAges_(config.maxTelemetrySamples)
{
    switch (kind_) {
      case SystemKind::MoDM:
        imageCache_ = std::make_unique<cache::ImageCache>(
            config.cacheCapacity, config.cachePolicy,
            config.imageEncoder, config.seed ^ 0xcac4e5ULL,
            config.retrieval);
        break;
      case SystemKind::Pinecone: {
        // Pinecone serves the image cached under the most *textually*
        // similar prompt; the text-keyed cache structure is shared
        // with Nirvana (single threshold, no k table).
        cache::NirvanaThresholds thresholds;
        thresholds.hitThreshold = config.pineconeThreshold;
        thresholds.similarityFloors = {config.pineconeThreshold};
        thresholds.kValues = {0};
        latentCache_ = std::make_unique<cache::LatentCache>(
            config.cacheCapacity, config.largeModel.name, thresholds,
            config.seed ^ 0xcac4e5ULL, config.retrieval);
        break;
      }
      case SystemKind::Nirvana:
        latentCache_ = std::make_unique<cache::LatentCache>(
            config.latentCacheCapacity, config.largeModel.name,
            config.nirvana, config.seed ^ 0xcac4e5ULL,
            config.retrieval);
        break;
      case SystemKind::Vanilla:
      case SystemKind::StandaloneSmall:
        break;
    }
    if (imageCache_)
        imageCache_->setRetrievalParallelism(config.retrievalParallelism);
    if (latentCache_)
        latentCache_->setRetrievalParallelism(config.retrievalParallelism);
}

ClassifiedJob
RequestScheduler::classify(const workload::Request &request, double now)
{
    ClassifiedJob job;
    job.request = request;
    job.classifiedAt = now;
    job.textEmbedding = text_.encode(request.prompt.visualConcept,
                                     request.prompt.lexicalStyle,
                                     request.prompt.text);
    ++stats_.classified;

    const auto recordRecall = [this](bool checked, bool agreed) {
        if (!checked)
            return;
        ++stats_.retrievalChecked;
        if (agreed)
            ++stats_.retrievalAgreed;
    };

    switch (kind_) {
      case SystemKind::Vanilla:
      case SystemKind::StandaloneSmall:
        break; // always a miss; full generation

      case SystemKind::MoDM: {
        const auto result = imageCache_->retrieve(job.textEmbedding);
        recordRecall(result.exactChecked, result.exactAgreed);
        if (result.found && kDecision_.isHit(result.similarity)) {
            job.hit = true;
            job.similarity = result.similarity;
            job.k = kDecision_.decide(result.similarity);
            job.base = imageCache_->entry(result.entryId).image;
            imageCache_->recordHit(result.entryId, now);
            hitAges_.push(now - job.base.createdAt);
            ++stats_.kCounts[job.k];
        }
        break;
      }

      case SystemKind::Pinecone: {
        const auto hit = latentCache_->retrieve(job.textEmbedding);
        recordRecall(hit.exactChecked, hit.exactAgreed);
        if (hit.found) {
            job.hit = true;
            job.direct = true;
            job.similarity = hit.similarity;
            job.base = latentCache_->entry(hit.entryId).image;
            latentCache_->recordHit(hit.entryId);
            hitAges_.push(now - job.base.createdAt);
            ++stats_.directReturns;
        }
        break;
      }

      case SystemKind::Nirvana: {
        const auto hit = latentCache_->retrieve(job.textEmbedding);
        recordRecall(hit.exactChecked, hit.exactAgreed);
        if (hit.found) {
            job.hit = true;
            job.similarity = hit.similarity;
            job.k = hit.k;
            job.base = latentCache_->entry(hit.entryId).image;
            latentCache_->recordHit(hit.entryId);
            hitAges_.push(now - job.base.createdAt);
            ++stats_.kCounts[job.k];
        }
        break;
      }
    }

    if (job.hit)
        ++stats_.hits;
    else
        ++stats_.misses;
    return job;
}

void
RequestScheduler::setRetrievalLoad(double load)
{
    if (imageCache_)
        imageCache_->setRetrievalLoad(load);
    if (latentCache_)
        latentCache_->setRetrievalLoad(load);
}

void
RequestScheduler::setRetrievalEf(std::size_t ef)
{
    if (imageCache_)
        imageCache_->setRetrievalEf(ef);
    if (latentCache_)
        latentCache_->setRetrievalEf(ef);
}

void
RequestScheduler::setRetrievalNprobe(std::size_t nprobe)
{
    if (imageCache_)
        imageCache_->setRetrievalNprobe(nprobe);
    if (latentCache_)
        latentCache_->setRetrievalNprobe(nprobe);
}

std::size_t
RequestScheduler::retrievalMemoryBytes() const
{
    std::size_t bytes = 0;
    if (imageCache_)
        bytes += imageCache_->retrievalMemoryBytes();
    if (latentCache_)
        bytes += latentCache_->retrievalMemoryBytes();
    return bytes;
}

void
RequestScheduler::clearCaches()
{
    if (imageCache_)
        imageCache_->clear();
    if (latentCache_)
        latentCache_->clear();
}

void
RequestScheduler::reserveCache(std::size_t expected)
{
    if (imageCache_)
        imageCache_->reserve(expected);
    if (latentCache_)
        latentCache_->reserve(expected);
}

void
RequestScheduler::setCacheCapacity(std::size_t capacity)
{
    if (imageCache_)
        imageCache_->setCapacity(capacity);
    if (latentCache_)
        latentCache_->setCapacity(capacity);
}

void
RequestScheduler::admitGenerated(const diffusion::Image &image,
                                 const embedding::Embedding &text_embedding,
                                 bool from_miss, double now)
{
    switch (kind_) {
      case SystemKind::MoDM:
        if (admission_ == AdmissionPolicy::CacheAll || from_miss)
            imageCache_->insert(image, now);
        break;
      case SystemKind::Pinecone:
        // Retrieval-only serving caches the images it generates,
        // keyed by the producing prompt's text embedding.
        if (from_miss)
            latentCache_->insert(image, text_embedding, now);
        break;
      case SystemKind::Nirvana:
        // Latents exist only for full large-model generations.
        if (from_miss)
            latentCache_->insert(image, text_embedding, now);
        break;
      case SystemKind::Vanilla:
      case SystemKind::StandaloneSmall:
        break;
    }
}

} // namespace modm::serving

/**
 * @file
 * Scripted serving-knob changes on the virtual clock.
 *
 * A KnobPlan is the control-plane sibling of FaultPlan: a deterministic
 * script of mid-run reconfigurations — monitor mode flips, cluster
 * cache-capacity changes (re-sharded across nodes, evicting down), and
 * replication-factor changes — that the scenario subsystem drives from
 * `at <t> set ...` ops. Like FaultPlan, an empty plan is a strict
 * no-op: no knob code runs, no digest lines change, and published
 * results stay byte-identical.
 */

#ifndef MODM_SERVING_KNOBS_HH
#define MODM_SERVING_KNOBS_HH

#include <cstddef>
#include <vector>

#include "src/serving/monitor.hh"

namespace modm::serving {

struct ServingConfig;

/** Which serving knob an event adjusts. */
enum class KnobTarget
{
    /** Flip every node's monitor between throughput/quality mode. */
    MonitorMode,
    /**
     * Cluster-wide cache capacity (entries). Re-sharded per node with
     * the same shardCapacity split as construction; shrinking evicts
     * down under each shard's own eviction policy.
     */
    CacheCapacity,
    /** Replication factor k under Replicated partitioning. */
    ReplicationFactor,
    /** Retrieval efSearch override (HNSW backends; others ignore). */
    RetrievalEf,
    /** Retrieval nprobe override (IVF backends; others ignore). */
    RetrievalNprobe,
};

/** Printable knob name. */
const char *knobTargetName(KnobTarget target);

/** One scripted reconfiguration. */
struct KnobEvent
{
    /** Virtual time (seconds) the change applies. */
    double time = 0.0;
    KnobTarget target = KnobTarget::CacheCapacity;
    /** New mode (MonitorMode target only). */
    MonitorMode mode = MonitorMode::ThroughputOptimized;
    /** New capacity / replication factor (the integer targets). */
    std::size_t value = 0;
};

/** A deterministic reconfiguration script; empty = subsystem off. */
struct KnobPlan
{
    std::vector<KnobEvent> events;

    /** True when nothing is scripted (the subsystem is a no-op). */
    bool empty() const { return events.empty(); }

    /** Convenience: append a monitor-mode flip. */
    KnobPlan &setMode(double time, MonitorMode mode)
    {
        KnobEvent event;
        event.time = time;
        event.target = KnobTarget::MonitorMode;
        event.mode = mode;
        events.push_back(event);
        return *this;
    }

    /** Convenience: append a cache-capacity change. */
    KnobPlan &setCacheCapacity(double time, std::size_t capacity)
    {
        KnobEvent event;
        event.time = time;
        event.target = KnobTarget::CacheCapacity;
        event.value = capacity;
        events.push_back(event);
        return *this;
    }

    /** Convenience: append a replication-factor change. */
    KnobPlan &setReplicationFactor(double time, std::size_t replicas)
    {
        KnobEvent event;
        event.time = time;
        event.target = KnobTarget::ReplicationFactor;
        event.value = replicas;
        events.push_back(event);
        return *this;
    }

    /** Convenience: append a retrieval efSearch override. */
    KnobPlan &setRetrievalEf(double time, std::size_t ef)
    {
        KnobEvent event;
        event.time = time;
        event.target = KnobTarget::RetrievalEf;
        event.value = ef;
        events.push_back(event);
        return *this;
    }

    /** Convenience: append a retrieval nprobe override. */
    KnobPlan &setRetrievalNprobe(double time, std::size_t nprobe)
    {
        KnobEvent event;
        event.time = time;
        event.target = KnobTarget::RetrievalNprobe;
        event.value = nprobe;
        events.push_back(event);
        return *this;
    }
};

/**
 * Validate a plan against a configuration: event times non-negative
 * and non-decreasing, capacities positive, replication changes only
 * under Replicated partitioning and within the node count. Panics on
 * violations — plans reach the system from authored code or from
 * scenario files that were already validated with file:line
 * diagnostics at parse time, so a bad plan here is a bug.
 */
void validateKnobPlan(const KnobPlan &plan, const ServingConfig &config);

} // namespace modm::serving

#endif // MODM_SERVING_KNOBS_HH

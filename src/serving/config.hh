/**
 * @file
 * Configuration of a serving experiment: which system (MoDM or one of
 * the paper's baselines), which models, cluster shape, cache parameters,
 * and monitor mode.
 */

#ifndef MODM_SERVING_CONFIG_HH
#define MODM_SERVING_CONFIG_HH

#include <cstdint>
#include <vector>

#include "src/cache/image_cache.hh"
#include "src/cache/latent_cache.hh"
#include "src/diffusion/model_spec.hh"
#include "src/diffusion/sampler.hh"
#include "src/embedding/encoder.hh"
#include "src/embedding/vector_index.hh"
#include "src/obs/trace.hh"
#include "src/serving/fault.hh"
#include "src/serving/k_decision.hh"
#include "src/serving/knobs.hh"
#include "src/serving/monitor.hh"
#include "src/serving/pid.hh"
#include "src/serving/router.hh"

namespace modm::serving {

/** Which serving policy to run (MoDM or a baseline from §6). */
enum class SystemKind
{
    MoDM,             ///< this paper
    Vanilla,          ///< large model only, no cache
    Nirvana,          ///< latent cache + k-skip on the large model
    Pinecone,         ///< retrieve-or-generate, no refinement
    StandaloneSmall,  ///< small/distilled model only, no cache
};

/** Printable system name. */
const char *systemKindName(SystemKind kind);

/** What gets admitted to MoDM's image cache (Fig. 9 ablation). */
enum class AdmissionPolicy
{
    CacheAll,        ///< cache images from both models (default)
    CacheLargeOnly,  ///< cache only large-model (cache-miss) images
};

/** How a multi-node deployment divides the cache budget. */
enum class CachePartitioning
{
    /**
     * Split the configured capacity across nodes (shardCapacity), so
     * the cluster-wide entry budget stays constant as nodes scale —
     * the regime where routing policy decides hit rate.
     */
    Sharded,
    /**
     * k-replica write-through on the same cluster-wide budget: shards
     * split exactly like Sharded, but every generated entry is
     * admitted to the first `replicationFactor` alive nodes clockwise
     * of its topic on the consistent-hash ring (the ring the affinity
     * routers use, so replica #1 lands where affinity routing sends
     * the topic). Trades unique cache capacity for redundancy: after
     * a node kill, the ring heals onto exactly the nodes that hold
     * the dead shard's replicas, so affinity misses keep hitting.
     */
    Replicated,
};

/** Printable partitioning name. */
const char *cachePartitioningName(CachePartitioning partitioning);

/**
 * Cluster shape of a multi-node deployment: the serving front-end
 * spreads requests over `numNodes` ServingNodes (each its own
 * scheduler, cache shard, monitor, and worker-pool slice) per the
 * routing policy. The default single node reproduces the original
 * monolithic system byte-for-byte.
 */
struct ClusterTopology
{
    /** Serving nodes; workers are split evenly across them. */
    std::size_t numNodes = 1;
    /** How arriving requests pick a node. */
    RoutingPolicy routing = RoutingPolicy::RoundRobin;
    /** How the cache budget divides across nodes. */
    CachePartitioning cachePartitioning = CachePartitioning::Sharded;
    /**
     * Replica count k under Replicated partitioning: each generated
     * entry is admitted to the k alive ring successors of its topic
     * (clamped to the alive node count). Ignored under Sharded.
     */
    std::size_t replicationFactor = 2;
    /**
     * Spill threshold c of BoundedLoadConsistentHash routing: the
     * ring owner is bypassed when its outstanding count exceeds
     * c x the alive-node mean. Ignored by other policies.
     */
    double boundedLoadFactor = 1.25;
};

/** Full experiment configuration. */
struct ServingConfig
{
    SystemKind kind = SystemKind::MoDM;

    /** The high-quality model (SD3.5L or FLUX in the paper). */
    diffusion::ModelSpec largeModel = diffusion::sd35Large();
    /**
     * Small-model candidates in decreasing quality order. MoDM's
     * monitor picks the best one that meets load (Fig. 10's
     * SDXL -> SANA escalation). Baselines use the first entry.
     */
    std::vector<diffusion::ModelSpec> smallModels = {diffusion::sdxl()};

    /** Cluster shape. */
    std::size_t numWorkers = 4;
    diffusion::GpuKind gpu = diffusion::GpuKind::A40;
    double idlePowerW = 60.0;

    /**
     * Multi-node topology: node count, request routing, and cache
     * partitioning. numWorkers is the cluster-wide total, split across
     * nodes; the default single node preserves the original monolithic
     * behaviour exactly.
     */
    ClusterTopology cluster = {};

    /**
     * Scripted node faults (kill / drain / rejoin) on the virtual
     * clock. The default empty plan is a strict no-op: no fault code
     * runs and results are byte-identical to a build without the
     * subsystem.
     */
    FaultPlan faults = {};

    /**
     * Scripted mid-run reconfigurations (monitor mode, cache
     * capacity, replication factor) on the virtual clock. Like the
     * fault plan, the default empty plan is a strict no-op.
     */
    KnobPlan knobs = {};

    /** Image cache (MoDM / Pinecone). */
    std::size_t cacheCapacity = 10000;
    cache::EvictionPolicy cachePolicy = cache::EvictionPolicy::FIFO;
    AdmissionPolicy admission = AdmissionPolicy::CacheAll;

    /**
     * Retrieval backend for every cache this system builds (MoDM's
     * image cache, Nirvana/Pinecone's text-keyed cache). The default
     * exact flat scan keeps all published figures byte-identical; the
     * IVF backend trades a little recall for sub-linear scans and is
     * the exact-vs-approximate ablation axis.
     */
    embedding::RetrievalBackendConfig retrieval = {};

    /** Latent cache (Nirvana). */
    std::size_t latentCacheCapacity = 10000;
    cache::NirvanaThresholds nirvana = {};

    /** Monitor. */
    MonitorMode mode = MonitorMode::ThroughputOptimized;
    double monitorPeriod = 60.0;
    PidGains pid = {};

    /** Cache-hit thresholds and k table (Fig. 5b). */
    KDecisionConfig kDecision = {};

    /**
     * Scan parallelism for cache retrieval, forwarded to the embedding
     * index: 1 = serial (deterministic single-thread timing), 0 = match
     * the global thread pool. The default pins serial because the
     * simulator charges a fixed retrievalLatency — real deployments set
     * 0 to shard 100k-entry scans across cores.
     */
    std::size_t retrievalParallelism = 1;

    /**
     * Pinecone's direct-return threshold. Pinecone retrieves by
     * *text-to-text* similarity (paper §6: "the most similar prompt
     * using CLIP text embedding similarity") and returns the cached
     * image unrefined — the root of its weak image-text alignment in
     * Tables 2/3.
     */
    double pineconeThreshold = 0.94;
    /** Retrieval latency charged to direct returns (paper: ~0.05 s). */
    double retrievalLatency = 0.05;

    /**
     * Maximum classified-but-undispatched jobs; additional arrivals
     * wait unclassified so late requests see an up-to-date cache.
     * 0 = auto (4x numWorkers).
     */
    std::size_t intakeLookahead = 0;

    /** Synthetic CLIP towers. */
    embedding::TextEncoderConfig textEncoder = {};
    embedding::ImageEncoderConfig imageEncoder = {};

    /** Diffusion response model. */
    diffusion::SamplerConfig sampler = {};
    diffusion::ScheduleConfig schedule = {};

    /** Keep (prompt, image) outputs for quality evaluation. */
    bool keepOutputs = false;

    /**
     * Observability: event tracing and streaming metrics (see
     * obs/trace.hh). The default — everything off — is a strict
     * no-op: no tap is installed, no registry allocated, and every
     * digest and golden is byte-identical to a build without the
     * subsystem. When left disabled here, the MODM_TRACE environment
     * knob can switch tracing on as a debugging override.
     */
    obs::TraceConfig trace = {};

    /**
     * Bound on retained telemetry samples (ServingResult::hitAges and
     * per-node allocation snapshots, each bounded separately): once a
     * series exceeds the cap it is deterministically stride-downsampled
     * (see SampledVector), keeping million-request traces
     * memory-bounded. 0 (the default) retains every sample, preserving
     * published figures byte-for-byte.
     */
    std::size_t maxTelemetrySamples = 0;

    /** Experiment seed. */
    std::uint64_t seed = 42;
};

} // namespace modm::serving

#endif // MODM_SERVING_CONFIG_HH

#include "src/serving/pid.hh"

namespace modm::serving {

PidController::PidController(PidGains gains)
    : gains_(gains)
{
}

double
PidController::compute(double setpoint, double measured)
{
    const double error = setpoint - measured;
    integral_ += error;
    const double derivative = hasPrev_ ? error - prevError_ : 0.0;
    prevError_ = error;
    hasPrev_ = true;
    return gains_.kp * error + gains_.ki * integral_ +
        gains_.kd * derivative;
}

void
PidController::reset()
{
    integral_ = 0.0;
    prevError_ = 0.0;
    hasPrev_ = false;
}

} // namespace modm::serving

#include "src/serving/knobs.hh"

#include "src/common/log.hh"
#include "src/serving/config.hh"

namespace modm::serving {

const char *
knobTargetName(KnobTarget target)
{
    switch (target) {
      case KnobTarget::MonitorMode:
        return "monitor-mode";
      case KnobTarget::CacheCapacity:
        return "cache-capacity";
      case KnobTarget::ReplicationFactor:
        return "replication-factor";
      case KnobTarget::RetrievalEf:
        return "retrieval-ef";
      case KnobTarget::RetrievalNprobe:
        return "retrieval-nprobe";
    }
    panic("unknown KnobTarget");
}

void
validateKnobPlan(const KnobPlan &plan, const ServingConfig &config)
{
    double prevTime = 0.0;
    for (const auto &event : plan.events) {
        MODM_ASSERT(event.time >= 0.0, "knob time must be >= 0");
        MODM_ASSERT(event.time >= prevTime,
                    "knob events must be time-ordered (%f after %f)",
                    event.time, prevTime);
        prevTime = event.time;
        switch (event.target) {
          case KnobTarget::MonitorMode:
            break;
          case KnobTarget::CacheCapacity:
            MODM_ASSERT(event.value >= 1,
                        "cache-capacity knob must be positive");
            break;
          case KnobTarget::ReplicationFactor:
            MODM_ASSERT(config.cluster.cachePartitioning ==
                            CachePartitioning::Replicated,
                        "replication-factor knob requires Replicated "
                        "partitioning");
            MODM_ASSERT(event.value >= 1 &&
                            event.value <= config.cluster.numNodes,
                        "replication factor %zu out of [1, %zu]",
                        event.value, config.cluster.numNodes);
            break;
          case KnobTarget::RetrievalEf:
            MODM_ASSERT(config.retrieval.kind ==
                            embedding::RetrievalBackend::Hnsw,
                        "retrieval-ef knob requires the hnsw backend");
            MODM_ASSERT(event.value >= 1,
                        "retrieval-ef knob must be positive");
            break;
          case KnobTarget::RetrievalNprobe:
            MODM_ASSERT(config.retrieval.kind ==
                                embedding::RetrievalBackend::Ivf ||
                            config.retrieval.kind ==
                                embedding::RetrievalBackend::IvfPq,
                        "retrieval-nprobe knob requires an ivf "
                        "backend");
            MODM_ASSERT(event.value >= 1,
                        "retrieval-nprobe knob must be positive");
            break;
        }
    }
}

} // namespace modm::serving

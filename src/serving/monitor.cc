#include "src/serving/monitor.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace modm::serving {

const char *
monitorModeName(MonitorMode mode)
{
    switch (mode) {
      case MonitorMode::QualityOptimized:
        return "quality-optimized";
      case MonitorMode::ThroughputOptimized:
        return "throughput-optimized";
    }
    panic("unknown MonitorMode");
}

GlobalMonitor::GlobalMonitor(MonitorConfig config)
    : config_(std::move(config)), pid_(config_.pid),
      currentNumLarge_(static_cast<double>(config_.numWorkers))
{
    MODM_ASSERT(config_.numWorkers >= 1, "monitor needs >= 1 worker");
    MODM_ASSERT(config_.pLarge > 0.0, "P_large must be positive");
    MODM_ASSERT(!config_.pSmall.empty(),
                "monitor needs at least one small-model candidate");
    for (double p : config_.pSmall)
        MODM_ASSERT(p > 0.0, "P_small must be positive");
    current_.numLarge = config_.numWorkers;
    current_.smallModelIndex = 0;
}

void
GlobalMonitor::reset()
{
    pid_.reset();
}

double
GlobalMonitor::missWorkload(const MonitorInputs &inputs) const
{
    // Eq. 7: W_miss = (1 - H) * R.
    return (1.0 - inputs.hitRate) * inputs.requestRate;
}

double
GlobalMonitor::hitWorkload(const MonitorInputs &inputs) const
{
    // Eq. 8: W_hit = H * R * sum_k P(K = k) (1 - k/T).
    double refineFactor = 0.0;
    for (const auto &[k, rate] : inputs.kRates) {
        refineFactor += rate *
            (1.0 - static_cast<double>(k) /
                       static_cast<double>(config_.totalSteps));
    }
    return inputs.hitRate * inputs.requestRate * refineFactor;
}

double
GlobalMonitor::heuristicNumLarge(const MonitorInputs &inputs,
                                 std::size_t small_index) const
{
    MODM_ASSERT(small_index < config_.pSmall.size(),
                "small model index out of range");
    const double missWl = missWorkload(inputs);
    const double hitWl = hitWorkload(inputs);
    const double pSmall = config_.pSmall[small_index];
    const int n = config_.numWorkers;

    if (config_.mode == MonitorMode::QualityOptimized) {
        // Algorithm 1 lines 10-19: start from the minimum number of
        // large models that covers the miss workload, then raise it
        // while the leftover large capacity plus the small models still
        // cover the hit workload.
        int numLarge = static_cast<int>(
            std::ceil(missWl / config_.pLarge));
        numLarge = std::clamp(numLarge, 1, n);
        while (numLarge <= n) {
            const double available =
                numLarge * config_.pLarge - missWl +
                (n - numLarge) * pSmall;
            if (available >= hitWl) {
                ++numLarge;
            } else {
                --numLarge;
                break;
            }
        }
        return std::clamp(numLarge, 1, n);
    }

    // Throughput-optimized, Algorithm 1 lines 20-24: weight the hit
    // workload by the throughput ratio and split workers by workload
    // share (Eqs. 11-12).
    const double hitWeighted = hitWl * config_.pLarge / pSmall;
    const double total = hitWeighted + missWl;
    if (total <= 0.0)
        return 1.0;
    return missWl / total * n;
}

bool
GlobalMonitor::feasible(const MonitorInputs &inputs,
                        std::size_t small_index) const
{
    const double missWl = missWorkload(inputs);
    const double hitWl = hitWorkload(inputs);
    const double pSmall = config_.pSmall[small_index];
    const int n = config_.numWorkers;

    const int minLarge = std::clamp(
        static_cast<int>(std::ceil(missWl / config_.pLarge)), 1, n);
    if (minLarge * config_.pLarge < missWl)
        return false; // even all-large cannot absorb misses
    const double available = minLarge * config_.pLarge - missWl +
        (n - minLarge) * pSmall;
    return available >= hitWl;
}

double
GlobalMonitor::load(const MonitorInputs &inputs) const
{
    const double capacity =
        static_cast<double>(config_.numWorkers) * config_.pLarge;
    if (capacity <= 0.0)
        return 1.0;
    const double workload = missWorkload(inputs) + hitWorkload(inputs);
    return std::clamp(workload / capacity, 0.0, 1.0);
}

std::size_t
GlobalMonitor::chooseSmallModel(const MonitorInputs &inputs) const
{
    // Highest-quality candidate that still meets the load; when none
    // does, fall back to the fastest (last) candidate.
    for (std::size_t i = 0; i < config_.pSmall.size(); ++i) {
        if (feasible(inputs, i))
            return i;
    }
    return config_.pSmall.size() - 1;
}

Allocation
GlobalMonitor::update(const MonitorInputs &inputs)
{
    const std::size_t smallIndex = chooseSmallModel(inputs);
    const double target = heuristicNumLarge(inputs, smallIndex);

    // Algorithm 1 lines 25-29: PID-damped move toward the heuristic.
    const double delta = pid_.compute(target, currentNumLarge_);
    currentNumLarge_ += delta;
    currentNumLarge_ = std::clamp(
        currentNumLarge_, 1.0, static_cast<double>(config_.numWorkers));

    current_.numLarge = std::clamp(
        static_cast<int>(std::lround(currentNumLarge_)), 1,
        config_.numWorkers);
    current_.smallModelIndex = smallIndex;
    return current_;
}

} // namespace modm::serving

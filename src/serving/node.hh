/**
 * @file
 * One serving node: the scheduler + caches + monitor + worker pool that
 * used to be the whole monolithic ServingSystem, extracted so a
 * front-end can run N of them against one shared discrete-event clock.
 *
 * A node owns everything request processing needs — classification
 * queues, a cache shard, a GPU worker pool, and (for MoDM) a per-node
 * global monitor reallocating that node's workers — and shares nothing
 * with its siblings except the event queue, the run-completion ledger,
 * and the result sink it records completions into. Routing decides
 * which node sees a request; after that the node's behaviour is
 * byte-identical to the original single-system code path, which is how
 * a one-node cluster reproduces every published figure exactly.
 *
 * Fault lifecycle (driven by the front-end per ServingConfig::faults):
 * kill() aborts in-flight generations, surrenders the backlog for
 * re-routing, and loses the cache shard; drain() stops new admissions
 * while the backlog completes; rejoin() puts the node back in service
 * (cold caches and a reset monitor after a kill). With no fault plan,
 * none of these paths execute and behaviour is unchanged.
 */

#ifndef MODM_SERVING_NODE_HH
#define MODM_SERVING_NODE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sampled_vector.hh"
#include "src/diffusion/sampler.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/serving/config.hh"
#include "src/serving/metrics.hh"
#include "src/serving/monitor.hh"
#include "src/serving/scheduler.hh"
#include "src/sim/cluster.hh"
#include "src/sim/event_queue.hh"
#include "src/workload/trace.hh"

namespace modm::serving {

struct ServingResult;

/** Allocation decision at a point in time (for Fig. 10-style plots). */
struct AllocationSnapshot
{
    double time = 0.0;
    int numLarge = 0;
    std::size_t smallModelIndex = 0;
    /** Node whose monitor produced the snapshot (0 for one node). */
    std::size_t node = 0;
};

/** Node-local aggregates reported into ServingResult::nodes. */
struct NodeStats
{
    std::size_t node = 0;
    /** Workers this node's pool holds. */
    std::size_t numWorkers = 0;
    /** Requests the router delivered to this node. */
    std::uint64_t assigned = 0;
    /** Requests this node completed. */
    std::uint64_t completed = 0;
    /** Scheduler cache hits / misses. */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Node-local hit rate (0 when nothing classified). */
    double hitRate = 0.0;
    /** Node cache shard occupancy. */
    std::size_t cacheSize = 0;
    double cacheBytes = 0.0;
    /** Bytes the shard's retrieval backend holds (memory-budget axis). */
    std::size_t retrievalMemoryBytes = 0;
    /** Node pool energy over the run. */
    double energyJ = 0.0;
    std::uint64_t modelSwitches = 0;
};

/** Cross-node run ledger shared by every node of one experiment. */
struct ClusterRunState
{
    std::size_t total = 0;
    std::size_t completed = 0;
};

/**
 * Pre-registered streaming-metric handles the nodes sample through
 * (registered by ServingSystem when ServingConfig::trace enables the
 * metrics layer; nodes never see a registry otherwise).
 */
struct NodeMetrics
{
    obs::MetricsRegistry *registry = nullptr;
    obs::MetricId arrivals = 0;       ///< counter: routed arrivals
    obs::MetricId hits = 0;           ///< counter: cache hits
    obs::MetricId misses = 0;         ///< counter: cache misses
    obs::MetricId completions = 0;    ///< counter: served requests
    obs::MetricId latency = 0;        ///< histogram: arrival->finish s
    obs::MetricId similarity = 0;     ///< histogram: hit similarity
    obs::MetricId queueDepth = 0;     ///< gauge: queued jobs at tick
    obs::MetricId numLarge = 0;       ///< gauge: large workers at tick
};

/**
 * Where a node sends finished generations for cache admission. Under
 * Replicated partitioning the front-end installs itself as the sink
 * and fans each admission out to the k ring replicas; with no sink the
 * node admits into its own shard (the Sharded / single-node path).
 */
class ReplicaSink
{
  public:
    virtual ~ReplicaSink() = default;

    /** Admit a generation produced on `origin` to its replica set. */
    virtual void admitReplicated(std::size_t origin,
                                 const diffusion::Image &image,
                                 const embedding::Embedding
                                     &text_embedding,
                                 bool from_miss, std::uint32_t topic_id,
                                 double now)
        = 0;
};

/**
 * One serving node. Constructed by ServingSystem with a node-local
 * config (worker slice, cache shard capacity, per-node seed) derived
 * from the experiment config.
 */
class ServingNode
{
  public:
    /**
     * @param node_config Node-local configuration: numWorkers is this
     *        node's worker slice and cacheCapacity its shard budget.
     * @param node_id Node index within the cluster.
     * @param events The cluster-shared virtual clock.
     * @param run Cross-node completion ledger (monitor ticks stop when
     *        the whole cluster finishes).
     * @param result Shared sink for request records and outputs.
     */
    ServingNode(const ServingConfig &node_config, std::size_t node_id,
                sim::EventQueue &events, ClusterRunState &run,
                ServingResult &result);

    /** Pre-size this node's cache for `count` warm admissions. */
    void reserveWarm(std::size_t count);

    /** Admit one warm-up prompt (full large-model generation at t=0). */
    void warm(const workload::Prompt &prompt);

    /** Deliver a routed request at its arrival event. */
    void onArrival(const workload::Request &request);

    /** Schedule this node's first monitor tick (call once per run). */
    void scheduleMonitorTick();

    /**
     * Route generated content through the replica sink instead of the
     * local shard (Replicated partitioning). Must be set before any
     * warm-up or traffic.
     */
    void setReplicaSink(ReplicaSink *sink) { replicas_ = sink; }

    /**
     * Install the run's observers: the event tracer this node emits
     * sub-events on and the metric handles it samples (either may be
     * null = that layer off). Called by ServingSystem at construction;
     * with both null — the default — every observability branch is
     * dead and the node behaves byte-identically to a build without
     * the subsystem.
     */
    void setObservers(obs::Tracer *tracer, const NodeMetrics *metrics)
    {
        tracer_ = tracer;
        metrics_ = metrics;
    }

    /**
     * Admit a generation into this node's own shard, bypassing the
     * sink — the front-end calls this on each replica target. Counts
     * a replica admission when `origin` is another node.
     */
    void admitLocal(std::size_t origin, const diffusion::Image &image,
                    const embedding::Embedding &text_embedding,
                    bool from_miss, double now);

    /**
     * Kill the node at time `now`: cancel in-flight completions and
     * roll back their workers, drop the cache shard, and return every
     * request this node still owed (queued, unclassified, and
     * in-flight), in arrival order, for the front-end to re-route.
     */
    std::vector<workload::Request> kill(double now);

    /**
     * Drain: stop admitting (the front-end has already removed the
     * node from routing) but keep serving the assigned backlog.
     */
    void drain(double now);

    /** Return to service after a kill (cold) or drain (warm). */
    void rejoin(double now);

    /**
     * Scripted knob change: flip this node's monitor mode. The next
     * monitor tick re-targets under the new mode.
     */
    void setMonitorMode(MonitorMode mode);

    /**
     * Scripted knob change: re-bound this node's cache shard (image
     * and latent alike) to `capacity` entries, evicting down when
     * shrinking.
     */
    void setCacheShardCapacity(std::size_t capacity);

    /** Scripted knob change: retrieval efSearch override (0 ignored). */
    void setRetrievalEf(std::size_t ef);

    /** Scripted knob change: retrieval nprobe override (0 ignored). */
    void setRetrievalNprobe(std::size_t nprobe);

    /** False from kill() until rejoin(). */
    bool alive() const { return alive_; }

    /** True while draining (alive but not admitting). */
    bool draining() const { return draining_; }

    /** Arrived-but-uncompleted requests (the routing load signal). */
    std::size_t outstanding() const
    {
        return static_cast<std::size_t>(assigned_ - completed_ -
                                        reroutedOut_);
    }

    /** Requests routed to this node so far. */
    std::uint64_t assigned() const { return assigned_; }

    /** Requests this node completed so far. */
    std::uint64_t completedCount() const { return completed_; }

    /** Requests surrendered to re-routing by kills. */
    std::uint64_t reroutedOut() const { return reroutedOut_; }

    /** In-flight generations aborted by kills. */
    std::uint64_t abortedJobs() const { return abortedJobs_; }

    /** Replica admissions received for other nodes' generations. */
    std::uint64_t replicaAdmits() const { return replicaAdmits_; }

    /** Seconds dead over the run (open interval closed at `until`). */
    double downtimeS(double until) const;

    /** Seconds draining over the run (closed at `until`). */
    double drainedS(double until) const;

    /** Down intervals, the open one (if any) closed at `until`. */
    std::vector<std::pair<double, double>>
    downIntervals(double until) const;

    /** Node index. */
    std::size_t id() const { return id_; }

    /** Node-local configuration. */
    const ServingConfig &config() const { return config_; }

    /** The node's scheduler (exposed for tests and diagnostics). */
    const RequestScheduler &scheduler() const { return *scheduler_; }

    /** The node's worker pool. */
    const sim::Cluster &cluster() const { return cluster_; }

    /** Monitor allocation snapshots (bounded per config). */
    const SampledVector<AllocationSnapshot> &allocations() const
    {
        return allocations_;
    }

    /** Node-local aggregates over a finished run. */
    NodeStats stats(double duration) const;

  private:
    /** One dispatched generation awaiting its completion event. */
    struct InFlightJob
    {
        sim::EventQueue::EventId event = 0;
        std::size_t worker = 0;
        ClassifiedJob job;
        double dispatchTime = 0.0;
        bool useLarge = false;
        std::size_t smallIndex = 0;
    };

    /** Move arrivals into classified queues while within lookahead. */
    void processIntake();
    /** Dispatch queued jobs to idle workers per current allocation. */
    void tryDispatch();
    /** Worker role under the current allocation. */
    bool isLargeRole(std::size_t worker_index) const;
    /** Handle a finished generation. */
    void onJobComplete(std::uint64_t job_id);
    /** Complete a direct (no-GPU) cache return. */
    void completeDirect(const ClassifiedJob &job);
    /** Monitor tick. */
    void onMonitorTick();
    /** Record outputs and metrics for a served request. */
    void finishRequest(const ClassifiedJob &job, double start,
                       double finish, ServeKind kind,
                       const std::string &served_by,
                       const diffusion::Image *image);
    /** Record an app-level trace emit (no-op when tracing is off). */
    void trace(double clock, obs::EventKind kind,
               std::uint64_t request) const;
    /** Admit via the replica sink when set, locally otherwise. */
    void admitGenerated(const diffusion::Image &image,
                        const embedding::Embedding &text_embedding,
                        bool from_miss, std::uint32_t topic_id,
                        double now);

    ServingConfig config_;
    std::size_t id_;
    sim::EventQueue &events_;
    ClusterRunState &run_;
    ServingResult &result_;

    std::size_t lookahead_;
    diffusion::Sampler sampler_;
    std::unique_ptr<RequestScheduler> scheduler_;
    std::unique_ptr<GlobalMonitor> monitor_;
    sim::Cluster cluster_;

    std::deque<workload::Request> intake_;   // arrived, unclassified
    std::deque<ClassifiedJob> largeQueue_;   // needs the large model
    std::deque<ClassifiedJob> smallQueue_;   // refinements for small

    /** Dispatched jobs by node-local job id (insertion-ordered). */
    std::map<std::uint64_t, InFlightJob> inFlight_;
    std::uint64_t nextJobId_ = 0;

    Allocation allocation_;
    std::uint64_t assigned_ = 0;
    std::uint64_t completed_ = 0;

    // Fault state. downSince_ < 0 and drainSince_ < 0 mean "not".
    bool alive_ = true;
    bool draining_ = false;
    double downSince_ = -1.0;
    double drainSince_ = -1.0;
    double downtimeS_ = 0.0;
    double drainedS_ = 0.0;
    std::uint64_t reroutedOut_ = 0;
    std::uint64_t abortedJobs_ = 0;
    std::uint64_t replicaAdmits_ = 0;
    std::vector<std::pair<double, double>> downIntervals_;
    ReplicaSink *replicas_ = nullptr;

    // Observability (null = off; see setObservers).
    obs::Tracer *tracer_ = nullptr;
    const NodeMetrics *metrics_ = nullptr;

    // Monitor tick bookkeeping (cancelled while the node is down).
    sim::EventQueue::EventId monitorTick_ = 0;
    bool monitorTickPending_ = false;

    // Per-monitor-period counters.
    std::uint64_t periodArrivals_ = 0;
    std::uint64_t periodHits_ = 0;
    std::uint64_t periodMisses_ = 0;
    std::map<int, std::uint64_t> periodKCounts_;
    MonitorInputs lastInputs_;
    bool haveInputs_ = false;

    SampledVector<AllocationSnapshot> allocations_;
};

} // namespace modm::serving

#endif // MODM_SERVING_NODE_HH

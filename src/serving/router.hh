/**
 * @file
 * Request routing across serving nodes.
 *
 * A multi-node deployment front-ends N ServingNodes (each a scheduler +
 * cache shard + worker pool) with a Router that decides which node an
 * arriving request lands on. Routing policy is a first-class, sweepable
 * experiment axis because it decides cache hit rate: with sharded
 * caches, a policy that scatters a topic's requests across nodes also
 * scatters the cached content they could have hit.
 *
 * Policies:
 *  - RoundRobin: cycle through nodes; perfect load spread, no cache
 *    affinity (the hash-partitioned-cache strawman).
 *  - ConsistentHash: hash the prompt's topic onto a virtual-node ring,
 *    so one topic's requests — and therefore its cached images — pin
 *    to one node (cache affinity). Ring structure keeps reassignment
 *    minimal as the node count changes.
 *  - LeastOutstanding: send each request to the node with the fewest
 *    arrived-but-uncompleted requests (ties: lowest node index);
 *    best load balance under skewed service times, no affinity.
 *  - BoundedLoadConsistentHash: the affinity x balance hybrid — route
 *    to the ring owner unless its outstanding count exceeds c x the
 *    alive-node mean (c = ClusterTopology::boundedLoadFactor), then
 *    spill clockwise to the next ring node under the bound.
 *
 * Every router also tracks node liveness (setNodeAlive): the fault
 * subsystem marks killed/draining nodes dead and routing skips them.
 * The consistent-hash ring heals with minimal reassignment — only the
 * dead node's topics move, each to the next alive owner clockwise.
 *
 * Every router is a pure function of (construction args, call
 * sequence): identical traces route identically on any machine, which
 * is what keeps multi-node sweeps bit-reproducible.
 */

#ifndef MODM_SERVING_ROUTER_HH
#define MODM_SERVING_ROUTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/workload/prompt.hh"

namespace modm::serving {

/** Which routing policy the front-end uses. */
enum class RoutingPolicy
{
    RoundRobin,                ///< cycle through nodes
    ConsistentHash,            ///< topic-affinity via a hash ring
    LeastOutstanding,          ///< fewest arrived-but-uncompleted
    BoundedLoadConsistentHash, ///< ring affinity with a load bound
};

/** Printable policy name. */
const char *routingPolicyName(RoutingPolicy policy);

/**
 * A consistent-hash ring of virtual nodes shared by the affinity
 * routers and the replica-placement logic: each physical node owns
 * `virtualNodes` pseudo-random ring points, a key routes to the owner
 * of the next point clockwise, and successive *distinct* owners after
 * that point are the key's replica set. Skipping dead owners during
 * the clockwise walk is what gives consistent hashing its minimal-
 * reassignment healing: a dead node's keys land on their ring
 * successor and every other key keeps its owner.
 */
class HashRing
{
  public:
    static constexpr std::size_t kDefaultVirtualNodes = 64;

    /** Build `virtual_nodes` seeded ring points per physical node. */
    HashRing(std::size_t num_nodes, std::uint64_t seed,
             std::size_t virtual_nodes = kDefaultVirtualNodes);

    /** Ring key for a topic (the affinity axis of this workload). */
    std::uint64_t topicKey(std::uint32_t topic_id) const;

    /**
     * Owner of `key`: the first node with a ring point clockwise of
     * the key for which `alive` is true (empty `alive` = all alive).
     * Panics when every node is dead.
     */
    std::size_t owner(std::uint64_t key,
                      const std::vector<bool> &alive = {}) const;

    /**
     * The first `count` *distinct* alive owners clockwise of the key —
     * the key's replica set. Returns fewer when fewer alive nodes
     * exist. The first element equals owner(key, alive).
     */
    std::vector<std::size_t> owners(std::uint64_t key, std::size_t count,
                                    const std::vector<bool> &alive
                                    = {}) const;

    /**
     * First alive owner clockwise of the key whose outstanding count
     * is within `bound` — the bounded-load routing decision. Falls
     * back to owner(key, alive) when every alive node is over the
     * bound (unreachable when bound >= the alive-node mean).
     * Equivalent to scanning owners(key, aliveCount, alive) for the
     * first under-bound entry, but allocation-free: the walk simply
     * revisits an over-loaded node's later virtual points instead of
     * tracking the distinct-owner set, which cannot change which node
     * is accepted first. This is the per-arrival hot path of
     * million-request traces.
     */
    std::size_t ownerUnderBound(std::uint64_t key,
                                const std::vector<bool> &alive,
                                const std::vector<std::size_t>
                                    &outstanding,
                                double bound) const;

    /** Physical nodes on the ring. */
    std::size_t numNodes() const { return nodes_; }

  private:
    std::size_t nodes_;
    std::uint64_t seed_;
    /** Sorted (point, node) pairs. */
    std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

/**
 * Abstract request router over a fixed set of nodes with dynamic
 * liveness.
 */
class Router
{
  public:
    virtual ~Router() = default;

    /**
     * Node for an arriving request. `outstanding[i]` is node i's
     * arrived-but-uncompleted request count at the routing instant
     * (stateless policies ignore it). Only alive nodes are returned.
     */
    virtual std::size_t route(const workload::Prompt &prompt,
                              const std::vector<std::size_t> &outstanding)
        = 0;

    /**
     * Node for a warm-up prompt (pre-run cache population, no load to
     * observe). Affinity policies hash exactly as route() does so warm
     * content lands where later queries will; load-driven policies
     * spread warm content round-robin.
     */
    virtual std::size_t routeWarm(const workload::Prompt &prompt) = 0;

    /** Number of nodes routed over (alive or not). */
    virtual std::size_t numNodes() const = 0;

    /**
     * True when route() reads the outstanding counts. Stateless
     * policies return false so the front-end skips snapshotting node
     * state on every arrival (the hot path of million-request traces).
     */
    virtual bool needsOutstanding() const { return false; }

    /**
     * Mark a node dead (killed or draining: stops admitting) or alive
     * again (rejoin). route() never returns a dead node; at least one
     * node must stay alive.
     */
    void setNodeAlive(std::size_t node, bool alive);

    /** Liveness snapshot (all true until setNodeAlive is called). */
    const std::vector<bool> &aliveMask() const { return alive_; }

    /** Count of currently alive nodes. */
    std::size_t aliveCount() const { return aliveCount_; }

  protected:
    explicit Router(std::size_t num_nodes)
        : alive_(num_nodes, true), aliveCount_(num_nodes)
    {
    }

    bool isAlive(std::size_t node) const { return alive_[node]; }

  private:
    std::vector<bool> alive_;
    std::size_t aliveCount_;
};

/**
 * Salt mixed into the experiment seed for every hash ring a cluster
 * builds — the affinity routers' and the replica-placement ring in
 * the serving front-end. One shared constant because correctness
 * depends on the rings matching: replicas must land exactly where
 * affinity routing sends a topic's queries, and a silently diverged
 * seed would strand every replica on nodes routing never asks.
 */
constexpr std::uint64_t kRingSeedSalt = 0x40a73e5ULL;

/**
 * Build the configured policy over `num_nodes` nodes. The seed
 * perturbs the hash ring only (other policies are seed-free);
 * `bounded_load_factor` is the BoundedLoadConsistentHash spill
 * threshold c and is ignored by every other policy.
 */
std::unique_ptr<Router> makeRouter(RoutingPolicy policy,
                                   std::size_t num_nodes,
                                   std::uint64_t seed,
                                   double bounded_load_factor = 1.25);

} // namespace modm::serving

#endif // MODM_SERVING_ROUTER_HH

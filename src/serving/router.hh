/**
 * @file
 * Request routing across serving nodes.
 *
 * A multi-node deployment front-ends N ServingNodes (each a scheduler +
 * cache shard + worker pool) with a Router that decides which node an
 * arriving request lands on. Routing policy is a first-class, sweepable
 * experiment axis because it decides cache hit rate: with sharded
 * caches, a policy that scatters a topic's requests across nodes also
 * scatters the cached content they could have hit.
 *
 * Policies:
 *  - RoundRobin: cycle through nodes; perfect load spread, no cache
 *    affinity (the hash-partitioned-cache strawman).
 *  - ConsistentHash: hash the prompt's topic onto a virtual-node ring,
 *    so one topic's requests — and therefore its cached images — pin
 *    to one node (cache affinity). Ring structure keeps reassignment
 *    minimal as the node count changes.
 *  - LeastOutstanding: send each request to the node with the fewest
 *    arrived-but-uncompleted requests (ties: lowest node index);
 *    best load balance under skewed service times, no affinity.
 *
 * Every router is a pure function of (construction args, call
 * sequence): identical traces route identically on any machine, which
 * is what keeps multi-node sweeps bit-reproducible.
 */

#ifndef MODM_SERVING_ROUTER_HH
#define MODM_SERVING_ROUTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/workload/prompt.hh"

namespace modm::serving {

/** Which routing policy the front-end uses. */
enum class RoutingPolicy
{
    RoundRobin,        ///< cycle through nodes
    ConsistentHash,    ///< topic-affinity via a hash ring
    LeastOutstanding,  ///< fewest arrived-but-uncompleted requests
};

/** Printable policy name. */
const char *routingPolicyName(RoutingPolicy policy);

/**
 * Abstract request router over a fixed set of nodes.
 */
class Router
{
  public:
    virtual ~Router() = default;

    /**
     * Node for an arriving request. `outstanding[i]` is node i's
     * arrived-but-uncompleted request count at the routing instant
     * (stateless policies ignore it).
     */
    virtual std::size_t route(const workload::Prompt &prompt,
                              const std::vector<std::size_t> &outstanding)
        = 0;

    /**
     * Node for a warm-up prompt (pre-run cache population, no load to
     * observe). Affinity policies hash exactly as route() does so warm
     * content lands where later queries will; load-driven policies
     * spread warm content round-robin.
     */
    virtual std::size_t routeWarm(const workload::Prompt &prompt) = 0;

    /** Number of nodes routed over. */
    virtual std::size_t numNodes() const = 0;

    /**
     * True when route() reads the outstanding counts. Stateless
     * policies return false so the front-end skips snapshotting node
     * state on every arrival (the hot path of million-request traces).
     */
    virtual bool needsOutstanding() const { return false; }
};

/**
 * Build the configured policy over `num_nodes` nodes. The seed
 * perturbs the ConsistentHash ring only (other policies are
 * seed-free).
 */
std::unique_ptr<Router> makeRouter(RoutingPolicy policy,
                                   std::size_t num_nodes,
                                   std::uint64_t seed);

} // namespace modm::serving

#endif // MODM_SERVING_ROUTER_HH

/**
 * @file
 * Scenario execution: maps a parsed workload::Scenario cell onto the
 * serving stack and runs it.
 *
 * The workload layer owns the scenario grammar and trace construction
 * (src/workload/scenario.hh); this module owns everything that needs
 * the serving headers — building a ServingConfig through the baselines
 * presets (so a scenario cell that names a preset system is
 * byte-identical to the hard-coded bench config it replaces), compiling
 * fault ops into a FaultPlan and knob ops into a KnobPlan, and the
 * streamed-cache runner that reproduces the Fig. 6 hit-rate loop.
 *
 * bench/run_scenario and the test suite both execute cells through
 * these entry points, which is what lets tests pin a scenario's
 * resultDigest against the legacy inline code path.
 */

#ifndef MODM_SERVING_SCENARIO_EXEC_HH
#define MODM_SERVING_SCENARIO_EXEC_HH

#include <vector>

#include "src/serving/config.hh"
#include "src/serving/system.hh"
#include "src/workload/scenario.hh"

namespace modm::serving {

/**
 * Build the full ServingConfig for one resolved scenario cell: the
 * preset named by the cell's system (with the cell's large/small
 * models, workers, GPU, cache capacity, and the scenario seed), then
 * the cluster / eviction / retrieval knobs, the fault plan (with the
 * scenario's recovery window), and the knob plan layered on top. A
 * cell that keeps every header default reproduces the preset verbatim.
 */
ServingConfig scenarioCellConfig(const workload::Scenario &scenario,
                                 const workload::ScenarioCell &cell);

/**
 * Run one serving-mode cell: build the scenario workload, warm the
 * caches when the scenario asks for it, and replay the trace. Each
 * call is an independent experiment (cells share nothing), so cells
 * may run concurrently under the sweep engine. `trace` layers an
 * observability configuration (event recording, .mtrace output path,
 * metrics window) over the cell; the default leaves everything off
 * and the result digest-identical to an untraced run.
 */
ServingResult runScenarioCell(const workload::Scenario &scenario,
                              const workload::ScenarioCell &cell,
                              const obs::TraceConfig &trace = {});

/**
 * Run one cache-stream cell: the streamed cache simulation of Fig. 6
 * (classify each prompt against an ImageCache, admit the simulated
 * generation, report the hit rate per window of `scenario.window`
 * requests). Uses the cell's cache capacity / eviction policy and
 * models, the scenario's dataset and seed, and the scenario's sampler
 * seed for the refinement substrate.
 */
std::vector<double>
runScenarioCacheStream(const workload::Scenario &scenario,
                       const workload::ScenarioCell &cell);

} // namespace modm::serving

#endif // MODM_SERVING_SCENARIO_EXEC_HH

#include "src/serving/router.hh"

#include <algorithm>

#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::serving {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "round-robin";
      case RoutingPolicy::ConsistentHash:
        return "consistent-hash";
      case RoutingPolicy::LeastOutstanding:
        return "least-outstanding";
    }
    panic("unknown RoutingPolicy");
}

namespace {

class RoundRobinRouter final : public Router
{
  public:
    explicit RoundRobinRouter(std::size_t num_nodes) : nodes_(num_nodes)
    {
    }

    std::size_t
    route(const workload::Prompt &,
          const std::vector<std::size_t> &) override
    {
        return next_++ % nodes_;
    }

    std::size_t
    routeWarm(const workload::Prompt &prompt) override
    {
        return route(prompt, {});
    }

    std::size_t numNodes() const override { return nodes_; }

  private:
    std::size_t nodes_;
    std::uint64_t next_ = 0;
};

/**
 * Topic-affinity routing over a hash ring with virtual nodes. Each
 * physical node owns kVirtualNodes ring points; a prompt hashes by
 * topic and routes to the owner of the next ring point clockwise.
 * Virtual nodes keep topic load roughly balanced, and the ring keeps
 * topic->node assignment mostly stable as numNodes changes.
 */
class ConsistentHashRouter final : public Router
{
  public:
    static constexpr std::size_t kVirtualNodes = 64;

    ConsistentHashRouter(std::size_t num_nodes, std::uint64_t seed)
        : nodes_(num_nodes), seed_(seed)
    {
        ring_.reserve(num_nodes * kVirtualNodes);
        for (std::size_t n = 0; n < num_nodes; ++n) {
            for (std::size_t v = 0; v < kVirtualNodes; ++v) {
                const std::uint64_t point = mix64(
                    seed_ ^ mix64(n * kVirtualNodes + v + 1));
                ring_.push_back({point, n});
            }
        }
        std::sort(ring_.begin(), ring_.end());
    }

    std::size_t
    route(const workload::Prompt &prompt,
          const std::vector<std::size_t> &) override
    {
        return routeWarm(prompt);
    }

    std::size_t
    routeWarm(const workload::Prompt &prompt) override
    {
        const std::uint64_t key =
            mix64(seed_ ^ (0x9e3779b97f4a7c15ULL +
                           static_cast<std::uint64_t>(prompt.topicId)));
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(key, std::size_t{0}));
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        return it->second;
    }

    std::size_t numNodes() const override { return nodes_; }

  private:
    std::size_t nodes_;
    std::uint64_t seed_;
    std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

class LeastOutstandingRouter final : public Router
{
  public:
    explicit LeastOutstandingRouter(std::size_t num_nodes)
        : nodes_(num_nodes)
    {
    }

    std::size_t
    route(const workload::Prompt &,
          const std::vector<std::size_t> &outstanding) override
    {
        MODM_ASSERT(outstanding.size() == nodes_,
                    "least-outstanding routing needs one count per node");
        std::size_t best = 0;
        for (std::size_t n = 1; n < nodes_; ++n) {
            if (outstanding[n] < outstanding[best])
                best = n;
        }
        return best;
    }

    std::size_t
    routeWarm(const workload::Prompt &) override
    {
        // No load exists before the run; spread warm content evenly.
        return warmNext_++ % nodes_;
    }

    std::size_t numNodes() const override { return nodes_; }

    bool needsOutstanding() const override { return true; }

  private:
    std::size_t nodes_;
    std::uint64_t warmNext_ = 0;
};

} // namespace

std::unique_ptr<Router>
makeRouter(RoutingPolicy policy, std::size_t num_nodes,
           std::uint64_t seed)
{
    MODM_ASSERT(num_nodes > 0, "router needs at least one node");
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>(num_nodes);
      case RoutingPolicy::ConsistentHash:
        return std::make_unique<ConsistentHashRouter>(num_nodes, seed);
      case RoutingPolicy::LeastOutstanding:
        return std::make_unique<LeastOutstandingRouter>(num_nodes);
    }
    panic("unknown RoutingPolicy");
}

} // namespace modm::serving

#include "src/serving/router.hh"

#include <algorithm>

#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::serving {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "round-robin";
      case RoutingPolicy::ConsistentHash:
        return "consistent-hash";
      case RoutingPolicy::LeastOutstanding:
        return "least-outstanding";
      case RoutingPolicy::BoundedLoadConsistentHash:
        return "bounded-load";
    }
    panic("unknown RoutingPolicy");
}

HashRing::HashRing(std::size_t num_nodes, std::uint64_t seed,
                   std::size_t virtual_nodes)
    : nodes_(num_nodes), seed_(seed)
{
    MODM_ASSERT(num_nodes > 0, "ring needs at least one node");
    MODM_ASSERT(virtual_nodes > 0, "ring needs virtual nodes");
    ring_.reserve(num_nodes * virtual_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
        for (std::size_t v = 0; v < virtual_nodes; ++v) {
            const std::uint64_t point =
                mix64(seed_ ^ mix64(n * virtual_nodes + v + 1));
            ring_.push_back({point, n});
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

std::uint64_t
HashRing::topicKey(std::uint32_t topic_id) const
{
    return mix64(seed_ ^ (0x9e3779b97f4a7c15ULL +
                          static_cast<std::uint64_t>(topic_id)));
}

std::size_t
HashRing::owner(std::uint64_t key, const std::vector<bool> &alive) const
{
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(key, std::size_t{0}));
    for (std::size_t hops = 0; hops < ring_.size(); ++hops) {
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        if (alive.empty() || alive[it->second])
            return it->second;
        ++it;
    }
    panic("hash ring has no alive node");
}

std::vector<std::size_t>
HashRing::owners(std::uint64_t key, std::size_t count,
                 const std::vector<bool> &alive) const
{
    std::vector<std::size_t> out;
    if (count == 0)
        return out;
    out.reserve(count);
    std::vector<bool> taken(nodes_, false);
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(key, std::size_t{0}));
    for (std::size_t hops = 0; hops < ring_.size(); ++hops) {
        if (it == ring_.end())
            it = ring_.begin();
        const std::size_t node = it->second;
        ++it;
        if (taken[node] || !(alive.empty() || alive[node]))
            continue;
        taken[node] = true;
        out.push_back(node);
        if (out.size() == count)
            break;
    }
    return out;
}

std::size_t
HashRing::ownerUnderBound(std::uint64_t key,
                          const std::vector<bool> &alive,
                          const std::vector<std::size_t> &outstanding,
                          double bound) const
{
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(key, std::size_t{0}));
    std::size_t firstAlive = nodes_;
    for (std::size_t hops = 0; hops < ring_.size(); ++hops) {
        if (it == ring_.end())
            it = ring_.begin();
        const std::size_t node = it->second;
        ++it;
        if (!(alive.empty() || alive[node]))
            continue;
        if (static_cast<double>(outstanding[node]) <= bound)
            return node;
        if (firstAlive == nodes_)
            firstAlive = node;
    }
    MODM_ASSERT(firstAlive < nodes_, "hash ring has no alive node");
    return firstAlive;
}

void
Router::setNodeAlive(std::size_t node, bool alive)
{
    MODM_ASSERT(node < alive_.size(), "node %zu out of range", node);
    if (alive_[node] == alive)
        return;
    alive_[node] = alive;
    aliveCount_ += alive ? 1 : std::size_t(-1);
    MODM_ASSERT(aliveCount_ > 0, "router needs at least one alive node");
}

namespace {

class RoundRobinRouter final : public Router
{
  public:
    explicit RoundRobinRouter(std::size_t num_nodes)
        : Router(num_nodes), nodes_(num_nodes)
    {
    }

    std::size_t
    route(const workload::Prompt &,
          const std::vector<std::size_t> &) override
    {
        // Advance the cursor past dead nodes; with everything alive
        // this is the original single-increment cycle.
        for (;;) {
            const std::size_t n = next_++ % nodes_;
            if (isAlive(n))
                return n;
        }
    }

    std::size_t
    routeWarm(const workload::Prompt &prompt) override
    {
        return route(prompt, {});
    }

    std::size_t numNodes() const override { return nodes_; }

  private:
    std::size_t nodes_;
    std::uint64_t next_ = 0;
};

/**
 * Topic-affinity routing over the shared HashRing. A prompt hashes by
 * topic and routes to the owner of the next ring point clockwise;
 * virtual nodes keep topic load roughly balanced, and the ring keeps
 * topic->node assignment mostly stable as nodes die and rejoin.
 */
class ConsistentHashRouter final : public Router
{
  public:
    ConsistentHashRouter(std::size_t num_nodes, std::uint64_t seed)
        : Router(num_nodes), ring_(num_nodes, seed)
    {
    }

    std::size_t
    route(const workload::Prompt &prompt,
          const std::vector<std::size_t> &) override
    {
        return ring_.owner(ring_.topicKey(prompt.topicId), aliveMask());
    }

    std::size_t
    routeWarm(const workload::Prompt &prompt) override
    {
        return route(prompt, {});
    }

    std::size_t numNodes() const override { return ring_.numNodes(); }

  private:
    HashRing ring_;
};

class LeastOutstandingRouter final : public Router
{
  public:
    explicit LeastOutstandingRouter(std::size_t num_nodes)
        : Router(num_nodes), nodes_(num_nodes)
    {
    }

    std::size_t
    route(const workload::Prompt &,
          const std::vector<std::size_t> &outstanding) override
    {
        MODM_ASSERT(outstanding.size() == nodes_,
                    "least-outstanding routing needs one count per node");
        std::size_t best = nodes_;
        for (std::size_t n = 0; n < nodes_; ++n) {
            if (!isAlive(n))
                continue;
            if (best == nodes_ || outstanding[n] < outstanding[best])
                best = n;
        }
        MODM_ASSERT(best < nodes_, "no alive node to route to");
        return best;
    }

    std::size_t
    routeWarm(const workload::Prompt &) override
    {
        // No load exists before the run; spread warm content evenly.
        return warmNext_++ % nodes_;
    }

    std::size_t numNodes() const override { return nodes_; }

    bool needsOutstanding() const override { return true; }

  private:
    std::size_t nodes_;
    std::uint64_t warmNext_ = 0;
};

/**
 * Consistent hashing with bounded loads (the affinity x balance
 * hybrid): route to the ring owner unless its outstanding count
 * exceeds c x the mean over alive nodes, then spill clockwise to the
 * next alive ring node under the bound. Some alive node is always at
 * or below the mean, so the walk terminates. c = 1 degrades toward
 * least-loaded-on-the-ring; large c degrades to pure consistent
 * hashing.
 */
class BoundedLoadRouter final : public Router
{
  public:
    BoundedLoadRouter(std::size_t num_nodes, std::uint64_t seed,
                      double factor)
        : Router(num_nodes), ring_(num_nodes, seed), factor_(factor)
    {
        MODM_ASSERT(factor_ >= 1.0,
                    "bounded-load factor must be >= 1 (got %f)", factor_);
    }

    std::size_t
    route(const workload::Prompt &prompt,
          const std::vector<std::size_t> &outstanding) override
    {
        MODM_ASSERT(outstanding.size() == numNodes(),
                    "bounded-load routing needs one count per node");
        std::size_t aliveTotal = 0;
        for (std::size_t n = 0; n < outstanding.size(); ++n) {
            if (isAlive(n))
                aliveTotal += outstanding[n];
        }
        // Some alive node sits at or below the mean, so the bound is
        // always satisfiable; the ring's plain-owner fallback only
        // guards exotic float corner cases.
        const double bound = factor_ * static_cast<double>(aliveTotal) /
            static_cast<double>(aliveCount());
        return ring_.ownerUnderBound(ring_.topicKey(prompt.topicId),
                                     aliveMask(), outstanding, bound);
    }

    std::size_t
    routeWarm(const workload::Prompt &prompt) override
    {
        // No load exists before the run: pure ring affinity, so warm
        // content lands exactly where unloaded live routing will look.
        return ring_.owner(ring_.topicKey(prompt.topicId), aliveMask());
    }

    std::size_t numNodes() const override { return ring_.numNodes(); }

    bool needsOutstanding() const override { return true; }

  private:
    HashRing ring_;
    double factor_;
};

} // namespace

std::unique_ptr<Router>
makeRouter(RoutingPolicy policy, std::size_t num_nodes,
           std::uint64_t seed, double bounded_load_factor)
{
    MODM_ASSERT(num_nodes > 0, "router needs at least one node");
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>(num_nodes);
      case RoutingPolicy::ConsistentHash:
        return std::make_unique<ConsistentHashRouter>(num_nodes, seed);
      case RoutingPolicy::LeastOutstanding:
        return std::make_unique<LeastOutstandingRouter>(num_nodes);
      case RoutingPolicy::BoundedLoadConsistentHash:
        return std::make_unique<BoundedLoadRouter>(num_nodes, seed,
                                                   bounded_load_factor);
    }
    panic("unknown RoutingPolicy");
}

} // namespace modm::serving

/**
 * @file
 * Global Monitor: dynamic GPU allocation between large and small models
 * (paper §5.3, Algorithm 1).
 *
 * Every monitoring period the monitor receives the measured request rate
 * R, cache hit rate H, and refinement-step distribution P(K = k), and
 * produces the number of workers that should host the large model. Two
 * modes:
 *
 *  - Quality-Optimized: maximise the number of large models subject to
 *    the cache-miss throughput constraint (Eq. 7) and the combined
 *    cache-hit throughput constraint (Eq. 9).
 *  - Throughput-Optimized: all hits go to the small model; balance
 *    allocation by the weighted workload ratio (Eqs. 11-12).
 *
 * A PID controller (paper gains 0.6 / 0.05 / 0.05) damps the heuristic
 * output so allocation moves gradually. The monitor also picks which
 * small model to use from a quality-ordered candidate list: it selects
 * the highest-quality small model that can still meet the measured load,
 * escalating to faster models under pressure (the SDXL -> SANA switch in
 * Fig. 10).
 */

#ifndef MODM_SERVING_MONITOR_HH
#define MODM_SERVING_MONITOR_HH

#include <cstddef>
#include <map>
#include <vector>

#include "src/serving/pid.hh"

namespace modm::serving {

/** Monitor operating mode (paper §5.3). */
enum class MonitorMode
{
    QualityOptimized,
    ThroughputOptimized,
};

/** Printable mode name. */
const char *monitorModeName(MonitorMode mode);

/** Measured inputs for one monitoring period. */
struct MonitorInputs
{
    /** Request rate R over the last period (requests/minute). */
    double requestRate = 0.0;
    /** Cache hit rate H over the last period, in [0, 1]. */
    double hitRate = 0.0;
    /** Distribution of refinement steps: k -> fraction of hits. */
    std::map<int, double> kRates;
};

/** Monitor output. */
struct Allocation
{
    /** Workers that should host the large model. */
    int numLarge = 1;
    /** Index into the small-model candidate list. */
    std::size_t smallModelIndex = 0;
};

/** Static description of the cluster the monitor controls. */
struct MonitorConfig
{
    /** Total GPU workers N. */
    int numWorkers = 4;
    /** Profiled large-model throughput P_large (req/min/GPU). */
    double pLarge = 1.0;
    /**
     * Profiled full-generation throughput of each small-model
     * candidate, quality-ordered (best first).
     */
    std::vector<double> pSmall = {2.8};
    /** Total de-noising steps T. */
    int totalSteps = 50;
    /** Operating mode. */
    MonitorMode mode = MonitorMode::ThroughputOptimized;
    /** PID gains. */
    PidGains pid = {};
};

/**
 * The global monitor.
 */
class GlobalMonitor
{
  public:
    /** Construct; the initial allocation is all-large. */
    explicit GlobalMonitor(MonitorConfig config);

    /** One monitoring period: consume inputs, produce an allocation. */
    Allocation update(const MonitorInputs &inputs);

    /** Most recent allocation. */
    Allocation current() const { return current_; }

    /**
     * Switch the operating mode mid-run (scripted knob change). The
     * controller state is kept — the next update re-targets under the
     * new mode from the current allocation, like a live mode flip
     * would.
     */
    void setMode(MonitorMode mode) { config_.mode = mode; }

    /** Active operating mode. */
    MonitorMode mode() const { return config_.mode; }

    /**
     * Forget controller history after a node outage (fault rejoin):
     * the PID integral and derivative accumulated against a cluster
     * state that no longer exists, so the next update reacts to fresh
     * measurements only. The current allocation is kept — the node
     * resumes from its last decision, not from cold start.
     */
    void reset();

    /** Cache-miss workload for inputs (full generations / minute). */
    double missWorkload(const MonitorInputs &inputs) const;

    /**
     * Cache-hit workload (Eq. 8): hit rate x R x sum_k P(k) (1 - k/T),
     * in large-model full-generation equivalents per minute.
     */
    double hitWorkload(const MonitorInputs &inputs) const;

    /**
     * Heuristic number of large models for the active mode, before PID
     * damping (Algorithm 1 lines 9-24).
     */
    double heuristicNumLarge(const MonitorInputs &inputs,
                             std::size_t small_index) const;

    /**
     * Whether the cluster can satisfy the measured load using the given
     * small-model candidate (used for small-model escalation).
     */
    bool feasible(const MonitorInputs &inputs,
                  std::size_t small_index) const;

    /**
     * Normalized load signal in [0, 1]: total workload (miss + hit, in
     * large-model full-generation equivalents per minute) over the
     * cluster's all-large capacity. Fed to load-adaptive subsystems
     * (the IVF adaptive probe scheduler).
     */
    double load(const MonitorInputs &inputs) const;

    /** Active configuration. */
    const MonitorConfig &config() const { return config_; }

  private:
    std::size_t chooseSmallModel(const MonitorInputs &inputs) const;

    MonitorConfig config_;
    PidController pid_;
    Allocation current_;
    double currentNumLarge_;  // continuous PID state
};

} // namespace modm::serving

#endif // MODM_SERVING_MONITOR_HH

#include "src/serving/metrics.hh"

#include <algorithm>

#include "src/common/log.hh"
#include "src/obs/metrics.hh"

namespace modm::serving {

void
MetricsCollector::record(const RequestRecord &record)
{
    MODM_ASSERT(record.finish >= record.arrival,
                "request finished before it arrived");
    records_.push_back(record);
}

double
MetricsCollector::hitRate() const
{
    if (records_.empty())
        return 0.0;
    std::size_t hits = 0;
    for (const auto &r : records_)
        hits += r.cacheHit ? 1 : 0;
    return static_cast<double>(hits) /
        static_cast<double>(records_.size());
}

double
MetricsCollector::meanK() const
{
    std::size_t hits = 0;
    double sum = 0.0;
    for (const auto &r : records_) {
        if (r.cacheHit) {
            ++hits;
            sum += r.k;
        }
    }
    return hits ? sum / static_cast<double>(hits) : 0.0;
}

std::map<int, double>
MetricsCollector::kDistribution() const
{
    std::map<int, double> dist;
    std::size_t hits = 0;
    for (const auto &r : records_) {
        if (r.cacheHit) {
            ++hits;
            dist[r.k] += 1.0;
        }
    }
    if (hits) {
        for (auto &[k, v] : dist)
            v /= static_cast<double>(hits);
    }
    return dist;
}

double
MetricsCollector::latencyPercentile(double p) const
{
    PercentileTracker tracker;
    for (const auto &r : records_)
        tracker.add(r.latency());
    return tracker.percentile(p);
}

double
MetricsCollector::meanLatency() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += r.latency();
    return sum / static_cast<double>(records_.size());
}

double
MetricsCollector::sloViolationRate(double threshold_seconds) const
{
    if (records_.empty())
        return 0.0;
    std::size_t violations = 0;
    for (const auto &r : records_)
        violations += r.latency() > threshold_seconds ? 1 : 0;
    return static_cast<double>(violations) /
        static_cast<double>(records_.size());
}

double
MetricsCollector::throughputPerMinute() const
{
    if (records_.empty())
        return 0.0;
    const double span = lastCompletion();
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(records_.size()) * 60.0 / span;
}

double
MetricsCollector::lastCompletion() const
{
    double last = 0.0;
    for (const auto &r : records_)
        last = std::max(last, r.finish);
    return last;
}

std::vector<double>
MetricsCollector::completionsPerMinute(double duration) const
{
    // The standardized bucketing in obs reproduces the historical
    // accounting exactly (same bucket math, same past-end drop).
    std::vector<double> finishes;
    finishes.reserve(records_.size());
    for (const auto &r : records_)
        finishes.push_back(r.finish);
    return obs::bucketCounts(finishes, 60.0, duration);
}

} // namespace modm::serving

#include "src/serving/node.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"
#include "src/serving/system.hh"

namespace modm::serving {

namespace {

/** Profiled full-generation throughputs for the monitor. */
MonitorConfig
makeMonitorConfig(const ServingConfig &config)
{
    MonitorConfig mc;
    mc.numWorkers = static_cast<int>(config.numWorkers);
    mc.pLarge = config.largeModel.throughputPerMin(config.gpu);
    mc.pSmall.clear();
    for (const auto &m : config.smallModels)
        mc.pSmall.push_back(m.throughputPerMin(config.gpu));
    mc.totalSteps = config.largeModel.defaultSteps;
    mc.mode = config.mode;
    mc.pid = config.pid;
    return mc;
}

} // namespace

ServingNode::ServingNode(const ServingConfig &node_config,
                         std::size_t node_id, sim::EventQueue &events,
                         ClusterRunState &run, ServingResult &result)
    : config_(node_config), id_(node_id), events_(events), run_(run),
      result_(result),
      lookahead_(config_.intakeLookahead
                     ? config_.intakeLookahead
                     : 4 * config_.numWorkers),
      sampler_(config_.seed ^ 0x5a3b1e9cULL, config_.sampler,
               config_.schedule),
      scheduler_(std::make_unique<RequestScheduler>(config_)),
      cluster_(config_.numWorkers, config_.gpu, config_.idlePowerW),
      allocations_(config_.maxTelemetrySamples)
{
    MODM_ASSERT(!config_.smallModels.empty() ||
                config_.kind != SystemKind::MoDM,
                "MoDM needs at least one small model");
    MODM_ASSERT(config_.kind != SystemKind::StandaloneSmall ||
                !config_.smallModels.empty(),
                "StandaloneSmall needs its model in smallModels");
    // Disjoint per-node image-id ranges under replication: replicated
    // admission puts one node's generations into sibling caches, where
    // ids must stay unique. Sharded caches never mix id spaces, so
    // they keep the historical per-node ids (and digests) untouched;
    // node 0 keeps base 0 either way.
    if (id_ > 0 &&
        config_.cluster.cachePartitioning == CachePartitioning::Replicated)
        sampler_.offsetImageIds(id_ << 40);

    if (config_.kind == SystemKind::MoDM)
        monitor_ = std::make_unique<GlobalMonitor>(
            makeMonitorConfig(config_));

    // Static allocations for the baselines: Vanilla / Nirvana /
    // Pinecone run everything on the large model; StandaloneSmall runs
    // everything on the first small model.
    switch (config_.kind) {
      case SystemKind::MoDM:
        allocation_ = monitor_->current();
        break;
      case SystemKind::Vanilla:
      case SystemKind::Nirvana:
      case SystemKind::Pinecone:
        allocation_.numLarge = static_cast<int>(config_.numWorkers);
        break;
      case SystemKind::StandaloneSmall:
        allocation_.numLarge = 0;
        break;
    }
}

void
ServingNode::reserveWarm(std::size_t count)
{
    scheduler_->reserveCache(count);
}

void
ServingNode::warm(const workload::Prompt &prompt)
{
    const auto image = sampler_.generate(config_.largeModel, prompt, 0.0);
    const auto textEmb = scheduler_->textEncoder().encode(
        prompt.visualConcept, prompt.lexicalStyle, prompt.text);
    admitGenerated(image, textEmb, /*from_miss=*/true, prompt.topicId,
                   0.0);
}

void
ServingNode::admitGenerated(const diffusion::Image &image,
                            const embedding::Embedding &text_embedding,
                            bool from_miss, std::uint32_t topic_id,
                            double now)
{
    if (replicas_ != nullptr) {
        replicas_->admitReplicated(id_, image, text_embedding, from_miss,
                                   topic_id, now);
        return;
    }
    scheduler_->admitGenerated(image, text_embedding, from_miss, now);
}

void
ServingNode::admitLocal(std::size_t origin, const diffusion::Image &image,
                        const embedding::Embedding &text_embedding,
                        bool from_miss, double now)
{
    scheduler_->admitGenerated(image, text_embedding, from_miss, now);
    if (origin != id_)
        ++replicaAdmits_;
}

void
ServingNode::onArrival(const workload::Request &request)
{
    MODM_ASSERT(alive_ && !draining_,
                "request routed to node %zu which is not admitting",
                id_);
    ++periodArrivals_;
    ++assigned_;
    if (metrics_ != nullptr)
        metrics_->registry->add(metrics_->arrivals, events_.now());
    intake_.push_back(request);
    processIntake();
    tryDispatch();
}

void
ServingNode::scheduleMonitorTick()
{
    monitorTick_ = events_.schedule(
        config_.monitorPeriod,
        obs::eventMeta(obs::EventKind::MonitorTick, id_),
        [this]() { onMonitorTick(); });
    monitorTickPending_ = true;
}

void
ServingNode::trace(double clock, obs::EventKind kind,
                   std::uint64_t request) const
{
    if (tracer_ != nullptr)
        tracer_->emit(clock, kind, static_cast<std::uint32_t>(id_),
                      request);
}

bool
ServingNode::isLargeRole(std::size_t worker_index) const
{
    return static_cast<int>(worker_index) < allocation_.numLarge;
}

void
ServingNode::processIntake()
{
    while (!intake_.empty() &&
           largeQueue_.size() + smallQueue_.size() < lookahead_) {
        const workload::Request request = intake_.front();
        intake_.pop_front();
        ClassifiedJob job = scheduler_->classify(request, events_.now());
        trace(events_.now(),
              job.hit ? obs::EventKind::CacheHit
                      : obs::EventKind::CacheMiss,
              request.prompt.id);

        if (job.hit) {
            ++periodHits_;
            if (job.k > 0)
                ++periodKCounts_[job.k];
            if (metrics_ != nullptr) {
                metrics_->registry->add(metrics_->hits, events_.now());
                metrics_->registry->observe(metrics_->similarity,
                                            events_.now(),
                                            job.similarity);
            }
        } else {
            ++periodMisses_;
            if (metrics_ != nullptr)
                metrics_->registry->add(metrics_->misses,
                                        events_.now());
        }

        if (job.direct) {
            completeDirect(job);
            continue;
        }
        if (config_.kind == SystemKind::StandaloneSmall) {
            // Single-small-model serving: every job runs on the small
            // workers (there are no large ones).
            smallQueue_.push_back(std::move(job));
        } else if (!job.hit ||
                   config_.kind == SystemKind::Nirvana) {
            // Misses need the large model; Nirvana also refines its
            // latents with the large model itself.
            largeQueue_.push_back(std::move(job));
        } else {
            smallQueue_.push_back(std::move(job));
        }
    }
}

void
ServingNode::completeDirect(const ClassifiedJob &job)
{
    const double start = events_.now();
    const double finish = start + config_.retrievalLatency;
    trace(finish, obs::EventKind::DirectReturn, job.request.prompt.id);
    finishRequest(job, start, finish, ServeKind::DirectReturn, "-",
                  &job.base);
    ++completed_;
    ++run_.completed;
}

void
ServingNode::tryDispatch()
{
    const double now = events_.now();
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t w = 0; w < cluster_.size(); ++w) {
            sim::Worker &worker = cluster_.worker(w);
            if (worker.busyAt(now))
                continue;

            const bool large = isLargeRole(w);
            ClassifiedJob job;
            bool haveJob = false;
            bool useLarge = large;

            if (large) {
                if (!largeQueue_.empty()) {
                    job = std::move(largeQueue_.front());
                    largeQueue_.pop_front();
                    haveJob = true;
                } else if (!smallQueue_.empty() &&
                           (config_.mode ==
                                MonitorMode::QualityOptimized ||
                            allocation_.numLarge ==
                                static_cast<int>(cluster_.size()))) {
                    // Quality-optimized mode serves cache hits with the
                    // large model when capacity allows (paper Q.9); the
                    // all-large corner also drains hits to avoid
                    // stranding them.
                    job = std::move(smallQueue_.front());
                    smallQueue_.pop_front();
                    haveJob = true;
                }
            } else if (!smallQueue_.empty()) {
                job = std::move(smallQueue_.front());
                smallQueue_.pop_front();
                haveJob = true;
            }
            if (!haveJob)
                continue;

            // Bind the model at dispatch time: the monitor may change
            // the small-model choice while this job is in flight.
            const std::size_t smallIdx = allocation_.smallModelIndex;
            const diffusion::ModelSpec &model = useLarge
                ? config_.largeModel
                : config_.smallModels[smallIdx];
            // k counts skipped steps of the large model's T-step
            // schedule; a refining model with a different step count
            // (e.g. the 10-step Turbo distillate) runs the same
            // *fraction* of its own schedule.
            int steps = model.defaultSteps;
            if (job.hit) {
                const double remaining = 1.0 -
                    static_cast<double>(job.k) /
                        static_cast<double>(
                            config_.largeModel.defaultSteps);
                steps = std::max(
                    1, static_cast<int>(std::lround(
                           model.defaultSteps * remaining)));
            }
            const double finish = worker.startJob(model, steps, now);
            // Register in the in-flight ledger before scheduling so a
            // kill between now and `finish` can cancel the completion
            // and surrender the request.
            const std::uint64_t jobId = nextJobId_++;
            InFlightJob &entry = inFlight_[jobId];
            entry.worker = w;
            entry.job = std::move(job);
            entry.dispatchTime = now;
            entry.useLarge = useLarge;
            entry.smallIndex = smallIdx;
            trace(now, obs::EventKind::Dispatch,
                  entry.job.request.prompt.id);
            entry.event = events_.schedule(
                finish,
                obs::eventMeta(obs::EventKind::Completion, id_,
                               entry.job.request.prompt.id),
                [this, jobId]() { onJobComplete(jobId); });
            progress = true;
            processIntake(); // a freed lookahead slot admits a new job
        }
    }
}

void
ServingNode::onJobComplete(std::uint64_t job_id)
{
    const auto it = inFlight_.find(job_id);
    MODM_ASSERT(it != inFlight_.end(),
                "completion for unknown job %llu",
                static_cast<unsigned long long>(job_id));
    const InFlightJob entry = std::move(it->second);
    inFlight_.erase(it);
    const ClassifiedJob &job = entry.job;

    const double now = events_.now();
    const diffusion::ModelSpec &model = entry.useLarge
        ? config_.largeModel
        : config_.smallModels[entry.smallIndex];

    diffusion::Image image;
    ServeKind kind;
    if (job.hit) {
        image = sampler_.refine(model, job.request.prompt, job.base,
                                job.k, now);
        kind = ServeKind::Refinement;
    } else {
        image = sampler_.generate(model, job.request.prompt, now);
        kind = ServeKind::FullGeneration;
    }

    admitGenerated(image, job.textEmbedding, !job.hit,
                   job.request.prompt.topicId, now);
    trace(now, obs::EventKind::Serve, job.request.prompt.id);
    finishRequest(job, entry.dispatchTime, now, kind, model.name,
                  &image);
    ++completed_;
    ++run_.completed;
    processIntake();
    tryDispatch();
}

std::vector<workload::Request>
ServingNode::kill(double now)
{
    MODM_ASSERT(alive_, "kill of node %zu which is already down", id_);
    alive_ = false;
    if (draining_) {
        // A kill supersedes an in-progress drain.
        draining_ = false;
        drainedS_ += now - drainSince_;
        drainSince_ = -1.0;
    }
    downSince_ = now;

    if (monitorTickPending_) {
        events_.cancel(monitorTick_);
        monitorTickPending_ = false;
    }

    // Surrender everything this node still owed: unclassified intake,
    // classified queues, and in-flight generations (whose completions
    // are cancelled and whose workers roll back to the kill time).
    std::vector<workload::Request> owed;
    owed.reserve(intake_.size() + largeQueue_.size() +
                 smallQueue_.size() + inFlight_.size());
    for (const auto &request : intake_)
        owed.push_back(request);
    for (const auto &job : largeQueue_)
        owed.push_back(job.request);
    for (const auto &job : smallQueue_)
        owed.push_back(job.request);
    for (const auto &[jobId, entry] : inFlight_) {
        events_.cancel(entry.event);
        cluster_.worker(entry.worker).abortJob(now);
        owed.push_back(entry.job.request);
        ++abortedJobs_;
    }
    intake_.clear();
    largeQueue_.clear();
    smallQueue_.clear();
    inFlight_.clear();

    // Deliver the backlog to its new owners in arrival order, not in
    // queue-discovery order (stable: equal arrivals keep the order
    // collected above, which is deterministic).
    std::stable_sort(owed.begin(), owed.end(),
                     [](const workload::Request &a,
                        const workload::Request &b) {
                         return a.arrival < b.arrival;
                     });
    reroutedOut_ += owed.size();

    // The shard dies with the node: a rejoin starts cold.
    scheduler_->clearCaches();

    // Stale period counters must not feed the monitor after a rejoin.
    periodArrivals_ = 0;
    periodHits_ = 0;
    periodMisses_ = 0;
    periodKCounts_.clear();
    haveInputs_ = false;

    return owed;
}

void
ServingNode::drain(double now)
{
    MODM_ASSERT(alive_, "drain of node %zu which is down", id_);
    MODM_ASSERT(!draining_, "node %zu is already draining", id_);
    draining_ = true;
    drainSince_ = now;
}

void
ServingNode::rejoin(double now)
{
    if (draining_) {
        draining_ = false;
        drainedS_ += now - drainSince_;
        drainSince_ = -1.0;
        return;
    }
    MODM_ASSERT(!alive_, "rejoin of node %zu which is already up", id_);
    alive_ = true;
    downtimeS_ += now - downSince_;
    downIntervals_.push_back({downSince_, now});
    downSince_ = -1.0;
    // Restart the control loop against fresh measurements only.
    if (monitor_)
        monitor_->reset();
    if (run_.completed < run_.total) {
        monitorTick_ = events_.scheduleAfter(
            config_.monitorPeriod,
            obs::eventMeta(obs::EventKind::MonitorTick, id_),
            [this]() { onMonitorTick(); });
        monitorTickPending_ = true;
    }
}

void
ServingNode::setMonitorMode(MonitorMode mode)
{
    config_.mode = mode;
    if (monitor_)
        monitor_->setMode(mode);
}

void
ServingNode::setCacheShardCapacity(std::size_t capacity)
{
    config_.cacheCapacity = capacity;
    config_.latentCacheCapacity = capacity;
    scheduler_->setCacheCapacity(capacity);
}

void
ServingNode::setRetrievalEf(std::size_t ef)
{
    scheduler_->setRetrievalEf(ef);
}

void
ServingNode::setRetrievalNprobe(std::size_t nprobe)
{
    scheduler_->setRetrievalNprobe(nprobe);
}

double
ServingNode::downtimeS(double until) const
{
    double down = downtimeS_;
    if (downSince_ >= 0.0)
        down += std::max(until - downSince_, 0.0);
    return down;
}

double
ServingNode::drainedS(double until) const
{
    double drained = drainedS_;
    if (drainSince_ >= 0.0)
        drained += std::max(until - drainSince_, 0.0);
    return drained;
}

std::vector<std::pair<double, double>>
ServingNode::downIntervals(double until) const
{
    auto intervals = downIntervals_;
    if (downSince_ >= 0.0)
        intervals.push_back({downSince_, std::max(until, downSince_)});
    return intervals;
}

void
ServingNode::finishRequest(const ClassifiedJob &job, double start,
                           double finish, ServeKind kind,
                           const std::string &served_by,
                           const diffusion::Image *image)
{
    RequestRecord record;
    record.promptId = job.request.prompt.id;
    record.arrival = job.request.arrival;
    record.classified = job.classifiedAt;
    record.start = start;
    record.finish = finish;
    record.cacheHit = job.hit;
    record.k = job.k;
    record.similarity = job.similarity;
    record.kind = kind;
    record.servedBy = served_by;
    result_.metrics.record(record);

    if (metrics_ != nullptr) {
        metrics_->registry->add(metrics_->completions, events_.now());
        metrics_->registry->observe(metrics_->latency, events_.now(),
                                    finish - job.request.arrival);
    }

    if (config_.keepOutputs && image) {
        result_.prompts.push_back(job.request.prompt);
        result_.images.push_back(*image);
    }
}

void
ServingNode::onMonitorTick()
{
    monitorTickPending_ = false;
    if (config_.kind == SystemKind::MoDM) {
        const std::uint64_t classified = periodHits_ + periodMisses_;
        if (classified > 0) {
            MonitorInputs inputs;
            // Demand estimate: arrivals per minute, except under a
            // saturating burst (all arrivals land in one period, e.g.
            // the paper's timestamp-free throughput experiments) where
            // the classification rate is the better load signal.
            inputs.requestRate = std::max(
                static_cast<double>(periodArrivals_),
                static_cast<double>(classified)) *
                60.0 / config_.monitorPeriod;
            inputs.hitRate = static_cast<double>(periodHits_) /
                static_cast<double>(classified);
            for (const auto &[k, count] : periodKCounts_) {
                inputs.kRates[k] = static_cast<double>(count) /
                    static_cast<double>(std::max<std::uint64_t>(
                        periodHits_, 1));
            }
            lastInputs_ = inputs;
            haveInputs_ = true;
        }
        if (haveInputs_) {
            allocation_ = monitor_->update(lastInputs_);
            allocations_.push({events_.now(), allocation_.numLarge,
                               allocation_.smallModelIndex, id_});
            // Feed the measured load to the retrieval backend so an
            // adaptive IVF index can shed probes under pressure (a
            // no-op for exact backends and when the knob is off).
            scheduler_->setRetrievalLoad(monitor_->load(lastInputs_));
        }
    }
    if (metrics_ != nullptr) {
        metrics_->registry->set(
            metrics_->queueDepth, events_.now(),
            static_cast<double>(intake_.size() + largeQueue_.size() +
                                smallQueue_.size()));
        metrics_->registry->set(
            metrics_->numLarge, events_.now(),
            static_cast<double>(allocation_.numLarge));
    }
    periodArrivals_ = 0;
    periodHits_ = 0;
    periodMisses_ = 0;
    periodKCounts_.clear();

    if (run_.completed < run_.total) {
        monitorTick_ = events_.scheduleAfter(
            config_.monitorPeriod,
            obs::eventMeta(obs::EventKind::MonitorTick, id_),
            [this]() { onMonitorTick(); });
        monitorTickPending_ = true;
        tryDispatch();
    }
}

NodeStats
ServingNode::stats(double duration) const
{
    NodeStats stats;
    stats.node = id_;
    stats.numWorkers = cluster_.size();
    stats.assigned = assigned_;
    stats.completed = completed_;
    const auto &sched = scheduler_->stats();
    stats.hits = sched.hits;
    stats.misses = sched.misses;
    stats.hitRate = sched.classified == 0
        ? 0.0
        : static_cast<double>(sched.hits) /
            static_cast<double>(sched.classified);
    if (const auto *cache = scheduler_->imageCache()) {
        stats.cacheSize = cache->size();
        stats.cacheBytes = cache->storedBytes();
    } else if (const auto *latents = scheduler_->latentCache()) {
        stats.cacheSize = latents->size();
        stats.cacheBytes = latents->storedBytes();
    }
    stats.retrievalMemoryBytes = scheduler_->retrievalMemoryBytes();
    // A dead node draws no idle power; with no faults the downtime is
    // zero and this reproduces the original accounting bit-for-bit.
    stats.energyJ = cluster_.totalEnergyJ(duration) -
        downtimeS(duration) * config_.idlePowerW *
            static_cast<double>(cluster_.size());
    stats.modelSwitches = cluster_.totalModelSwitches();
    return stats;
}

} // namespace modm::serving

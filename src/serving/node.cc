#include "src/serving/node.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"
#include "src/serving/system.hh"

namespace modm::serving {

namespace {

/** Profiled full-generation throughputs for the monitor. */
MonitorConfig
makeMonitorConfig(const ServingConfig &config)
{
    MonitorConfig mc;
    mc.numWorkers = static_cast<int>(config.numWorkers);
    mc.pLarge = config.largeModel.throughputPerMin(config.gpu);
    mc.pSmall.clear();
    for (const auto &m : config.smallModels)
        mc.pSmall.push_back(m.throughputPerMin(config.gpu));
    mc.totalSteps = config.largeModel.defaultSteps;
    mc.mode = config.mode;
    mc.pid = config.pid;
    return mc;
}

} // namespace

ServingNode::ServingNode(const ServingConfig &node_config,
                         std::size_t node_id, sim::EventQueue &events,
                         ClusterRunState &run, ServingResult &result)
    : config_(node_config), id_(node_id), events_(events), run_(run),
      result_(result),
      lookahead_(config_.intakeLookahead
                     ? config_.intakeLookahead
                     : 4 * config_.numWorkers),
      sampler_(config_.seed ^ 0x5a3b1e9cULL, config_.sampler,
               config_.schedule),
      scheduler_(std::make_unique<RequestScheduler>(config_)),
      cluster_(config_.numWorkers, config_.gpu, config_.idlePowerW),
      allocations_(config_.maxTelemetrySamples)
{
    MODM_ASSERT(!config_.smallModels.empty() ||
                config_.kind != SystemKind::MoDM,
                "MoDM needs at least one small model");
    MODM_ASSERT(config_.kind != SystemKind::StandaloneSmall ||
                !config_.smallModels.empty(),
                "StandaloneSmall needs its model in smallModels");
    if (config_.kind == SystemKind::MoDM)
        monitor_ = std::make_unique<GlobalMonitor>(
            makeMonitorConfig(config_));

    // Static allocations for the baselines: Vanilla / Nirvana /
    // Pinecone run everything on the large model; StandaloneSmall runs
    // everything on the first small model.
    switch (config_.kind) {
      case SystemKind::MoDM:
        allocation_ = monitor_->current();
        break;
      case SystemKind::Vanilla:
      case SystemKind::Nirvana:
      case SystemKind::Pinecone:
        allocation_.numLarge = static_cast<int>(config_.numWorkers);
        break;
      case SystemKind::StandaloneSmall:
        allocation_.numLarge = 0;
        break;
    }
}

void
ServingNode::reserveWarm(std::size_t count)
{
    scheduler_->reserveCache(count);
}

void
ServingNode::warm(const workload::Prompt &prompt)
{
    const auto image = sampler_.generate(config_.largeModel, prompt, 0.0);
    const auto textEmb = scheduler_->textEncoder().encode(
        prompt.visualConcept, prompt.lexicalStyle, prompt.text);
    scheduler_->admitGenerated(image, textEmb, /*from_miss=*/true, 0.0);
}

void
ServingNode::onArrival(const workload::Request &request)
{
    ++periodArrivals_;
    ++assigned_;
    intake_.push_back(request);
    processIntake();
    tryDispatch();
}

void
ServingNode::scheduleMonitorTick()
{
    events_.schedule(config_.monitorPeriod,
                     [this]() { onMonitorTick(); });
}

bool
ServingNode::isLargeRole(std::size_t worker_index) const
{
    return static_cast<int>(worker_index) < allocation_.numLarge;
}

void
ServingNode::processIntake()
{
    while (!intake_.empty() &&
           largeQueue_.size() + smallQueue_.size() < lookahead_) {
        const workload::Request request = intake_.front();
        intake_.pop_front();
        ClassifiedJob job = scheduler_->classify(request, events_.now());

        if (job.hit) {
            ++periodHits_;
            if (job.k > 0)
                ++periodKCounts_[job.k];
        } else {
            ++periodMisses_;
        }

        if (job.direct) {
            completeDirect(job);
            continue;
        }
        if (config_.kind == SystemKind::StandaloneSmall) {
            // Single-small-model serving: every job runs on the small
            // workers (there are no large ones).
            smallQueue_.push_back(std::move(job));
        } else if (!job.hit ||
                   config_.kind == SystemKind::Nirvana) {
            // Misses need the large model; Nirvana also refines its
            // latents with the large model itself.
            largeQueue_.push_back(std::move(job));
        } else {
            smallQueue_.push_back(std::move(job));
        }
    }
}

void
ServingNode::completeDirect(const ClassifiedJob &job)
{
    const double start = events_.now();
    const double finish = start + config_.retrievalLatency;
    finishRequest(job, start, finish, ServeKind::DirectReturn, "-",
                  &job.base);
    ++completed_;
    ++run_.completed;
}

void
ServingNode::tryDispatch()
{
    const double now = events_.now();
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t w = 0; w < cluster_.size(); ++w) {
            sim::Worker &worker = cluster_.worker(w);
            if (worker.busyAt(now))
                continue;

            const bool large = isLargeRole(w);
            ClassifiedJob job;
            bool haveJob = false;
            bool useLarge = large;

            if (large) {
                if (!largeQueue_.empty()) {
                    job = std::move(largeQueue_.front());
                    largeQueue_.pop_front();
                    haveJob = true;
                } else if (!smallQueue_.empty() &&
                           (config_.mode ==
                                MonitorMode::QualityOptimized ||
                            allocation_.numLarge ==
                                static_cast<int>(cluster_.size()))) {
                    // Quality-optimized mode serves cache hits with the
                    // large model when capacity allows (paper Q.9); the
                    // all-large corner also drains hits to avoid
                    // stranding them.
                    job = std::move(smallQueue_.front());
                    smallQueue_.pop_front();
                    haveJob = true;
                }
            } else if (!smallQueue_.empty()) {
                job = std::move(smallQueue_.front());
                smallQueue_.pop_front();
                haveJob = true;
            }
            if (!haveJob)
                continue;

            // Bind the model at dispatch time: the monitor may change
            // the small-model choice while this job is in flight.
            const std::size_t smallIdx = allocation_.smallModelIndex;
            const diffusion::ModelSpec &model = useLarge
                ? config_.largeModel
                : config_.smallModels[smallIdx];
            // k counts skipped steps of the large model's T-step
            // schedule; a refining model with a different step count
            // (e.g. the 10-step Turbo distillate) runs the same
            // *fraction* of its own schedule.
            int steps = model.defaultSteps;
            if (job.hit) {
                const double remaining = 1.0 -
                    static_cast<double>(job.k) /
                        static_cast<double>(
                            config_.largeModel.defaultSteps);
                steps = std::max(
                    1, static_cast<int>(std::lround(
                           model.defaultSteps * remaining)));
            }
            const double finish = worker.startJob(model, steps, now);
            const double dispatchTime = now;
            // Capture by value; the job lives until the event fires.
            auto jobPtr = std::make_shared<ClassifiedJob>(std::move(job));
            events_.schedule(finish, [this, w, jobPtr, dispatchTime,
                                      useLarge, smallIdx]() {
                onJobComplete(w, *jobPtr, dispatchTime, useLarge,
                              smallIdx);
            });
            progress = true;
            processIntake(); // a freed lookahead slot admits a new job
        }
    }
}

void
ServingNode::onJobComplete(std::size_t worker_index,
                           const ClassifiedJob &job, double dispatch_time,
                           bool used_large, std::size_t small_index)
{
    (void)worker_index;
    const double now = events_.now();
    const diffusion::ModelSpec &model = used_large
        ? config_.largeModel
        : config_.smallModels[small_index];

    diffusion::Image image;
    ServeKind kind;
    if (job.hit) {
        image = sampler_.refine(model, job.request.prompt, job.base,
                                job.k, now);
        kind = ServeKind::Refinement;
    } else {
        image = sampler_.generate(model, job.request.prompt, now);
        kind = ServeKind::FullGeneration;
    }

    scheduler_->admitGenerated(image, job.textEmbedding, !job.hit, now);
    finishRequest(job, dispatch_time, now, kind, model.name, &image);
    ++completed_;
    ++run_.completed;
    processIntake();
    tryDispatch();
}

void
ServingNode::finishRequest(const ClassifiedJob &job, double start,
                           double finish, ServeKind kind,
                           const std::string &served_by,
                           const diffusion::Image *image)
{
    RequestRecord record;
    record.promptId = job.request.prompt.id;
    record.arrival = job.request.arrival;
    record.start = start;
    record.finish = finish;
    record.cacheHit = job.hit;
    record.k = job.k;
    record.similarity = job.similarity;
    record.kind = kind;
    record.servedBy = served_by;
    result_.metrics.record(record);

    if (config_.keepOutputs && image) {
        result_.prompts.push_back(job.request.prompt);
        result_.images.push_back(*image);
    }
}

void
ServingNode::onMonitorTick()
{
    if (config_.kind == SystemKind::MoDM) {
        const std::uint64_t classified = periodHits_ + periodMisses_;
        if (classified > 0) {
            MonitorInputs inputs;
            // Demand estimate: arrivals per minute, except under a
            // saturating burst (all arrivals land in one period, e.g.
            // the paper's timestamp-free throughput experiments) where
            // the classification rate is the better load signal.
            inputs.requestRate = std::max(
                static_cast<double>(periodArrivals_),
                static_cast<double>(classified)) *
                60.0 / config_.monitorPeriod;
            inputs.hitRate = static_cast<double>(periodHits_) /
                static_cast<double>(classified);
            for (const auto &[k, count] : periodKCounts_) {
                inputs.kRates[k] = static_cast<double>(count) /
                    static_cast<double>(std::max<std::uint64_t>(
                        periodHits_, 1));
            }
            lastInputs_ = inputs;
            haveInputs_ = true;
        }
        if (haveInputs_) {
            allocation_ = monitor_->update(lastInputs_);
            allocations_.push({events_.now(), allocation_.numLarge,
                               allocation_.smallModelIndex, id_});
            // Feed the measured load to the retrieval backend so an
            // adaptive IVF index can shed probes under pressure (a
            // no-op for exact backends and when the knob is off).
            scheduler_->setRetrievalLoad(monitor_->load(lastInputs_));
        }
    }
    periodArrivals_ = 0;
    periodHits_ = 0;
    periodMisses_ = 0;
    periodKCounts_.clear();

    if (run_.completed < run_.total) {
        events_.scheduleAfter(config_.monitorPeriod,
                              [this]() { onMonitorTick(); });
        tryDispatch();
    }
}

NodeStats
ServingNode::stats(double duration) const
{
    NodeStats stats;
    stats.node = id_;
    stats.numWorkers = cluster_.size();
    stats.assigned = assigned_;
    stats.completed = completed_;
    const auto &sched = scheduler_->stats();
    stats.hits = sched.hits;
    stats.misses = sched.misses;
    stats.hitRate = sched.classified == 0
        ? 0.0
        : static_cast<double>(sched.hits) /
            static_cast<double>(sched.classified);
    if (const auto *cache = scheduler_->imageCache()) {
        stats.cacheSize = cache->size();
        stats.cacheBytes = cache->storedBytes();
    } else if (const auto *latents = scheduler_->latentCache()) {
        stats.cacheSize = latents->size();
        stats.cacheBytes = latents->storedBytes();
    }
    stats.energyJ = cluster_.totalEnergyJ(duration);
    stats.modelSwitches = cluster_.totalModelSwitches();
    return stats;
}

} // namespace modm::serving

#include "src/serving/system.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/cache/shard.hh"
#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::serving {

std::string
resultDigest(const ServingResult &result)
{
    std::string out;
    out.reserve(result.metrics.count() * 96 + 512);
    char buf[256];
    const auto emit = [&out, &buf](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };
    const bool multinode = result.numNodes > 1;

    emit("n=%zu dur=%a tput=%a hit=%a energy=%a switches=%llu "
         "cacheSize=%zu cacheBytes=%a recall=%a recallChecked=%llu\n",
         result.metrics.count(), result.duration,
         result.throughputPerMin, result.hitRate, result.energyJ,
         static_cast<unsigned long long>(result.modelSwitches),
         result.cacheSize, result.cacheBytes, result.retrievalRecallAt1,
         static_cast<unsigned long long>(result.retrievalChecked));
    for (const auto &r : result.metrics.records()) {
        emit("r %llu %a %a %a %d %d %a %d %s\n",
             static_cast<unsigned long long>(r.promptId), r.arrival,
             r.start, r.finish, r.cacheHit ? 1 : 0, r.k, r.similarity,
             static_cast<int>(r.kind), r.servedBy.c_str());
    }
    for (const auto &a : result.allocations) {
        // Single-node digests keep the frozen pre-cluster line format.
        if (multinode)
            emit("a %a %d %zu @%zu\n", a.time, a.numLarge,
                 a.smallModelIndex, a.node);
        else
            emit("a %a %d %zu\n", a.time, a.numLarge,
                 a.smallModelIndex);
    }
    for (const double age : result.hitAges)
        emit("h %a\n", age);
    if (multinode) {
        for (const auto &n : result.nodes) {
            emit("N %zu workers=%zu assigned=%llu completed=%llu "
                 "hits=%llu misses=%llu hit=%a cacheSize=%zu "
                 "cacheBytes=%a energy=%a switches=%llu\n",
                 n.node, n.numWorkers,
                 static_cast<unsigned long long>(n.assigned),
                 static_cast<unsigned long long>(n.completed),
                 static_cast<unsigned long long>(n.hits),
                 static_cast<unsigned long long>(n.misses), n.hitRate,
                 n.cacheSize, n.cacheBytes, n.energyJ,
                 static_cast<unsigned long long>(n.modelSwitches));
        }
        emit("nodes=%zu imbalance=%a spread=%a\n", result.numNodes,
             result.loadImbalance, result.hitRateSpread);
    }
    // Output images fold to a checksum of their content bit patterns.
    std::uint64_t imageHash = 0xcbf29ce484222325ULL;
    for (const auto &img : result.images) {
        imageHash = mix64(imageHash ^ img.id);
        std::uint64_t fidelityBits = 0;
        std::memcpy(&fidelityBits, &img.fidelity, sizeof(fidelityBits));
        imageHash = mix64(imageHash ^ fidelityBits);
        for (const float f : img.content) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &f, sizeof(bits));
            imageHash = mix64(imageHash ^ bits);
        }
    }
    emit("outputs=%zu imageHash=%llx\n", result.images.size(),
         static_cast<unsigned long long>(imageHash));
    // Retrieval-memory accounting appears only for non-flat backends,
    // so every digest produced under the exact default keeps its
    // frozen format.
    if (result.retrievalBackend != embedding::RetrievalBackend::Flat) {
        emit("R %s bytes=%zu\n",
             embedding::retrievalBackendName(result.retrievalBackend),
             result.retrievalMemoryBytes);
    }
    // Failover telemetry appears only for runs with a fault plan, so
    // every digest produced without one keeps its frozen format.
    if (result.failover.active) {
        const auto &fo = result.failover;
        emit("F rerouted=%llu kill=%a pre=%a tput=%a rec=%a cap=%a\n",
             static_cast<unsigned long long>(fo.rerouted),
             fo.firstKillTime, fo.preFaultHitRate,
             fo.preFaultThroughputPerMin, fo.hitRateRecoveryS,
             fo.lostCapacityS);
        for (const auto &n : fo.nodes) {
            emit("D %zu rerouted=%llu aborted=%llu replicas=%llu "
                 "down=%a drained=%a\n",
                 n.node, static_cast<unsigned long long>(n.reroutedOut),
                 static_cast<unsigned long long>(n.abortedJobs),
                 static_cast<unsigned long long>(n.replicaAdmits),
                 n.downtimeS, n.drainedS);
            for (const auto &[from, to] : n.downIntervals)
                emit("d %zu %a %a\n", n.node, from, to);
        }
    }
    return out;
}

ServingConfig
ServingSystem::nodeConfig(std::size_t node) const
{
    const std::size_t nodes = config_.cluster.numNodes;
    ServingConfig nc = config_;
    nc.numWorkers = cache::shardCapacity(config_.numWorkers, nodes, node);
    // Both partitionings shard the physical budget; Replicated spends
    // it on k copies per entry (same bytes, fewer unique entries)
    // instead of k=1 with pure affinity placement.
    nc.cacheCapacity =
        cache::shardCapacity(config_.cacheCapacity, nodes, node);
    nc.latentCacheCapacity = cache::shardCapacity(
        config_.latentCacheCapacity, nodes, node);
    // Node 0 keeps the experiment seed so a one-node cluster is
    // byte-identical to the pre-cluster monolith; siblings get
    // decorrelated streams derived from it.
    if (node > 0)
        nc.seed = mix64(config_.seed ^ (0x6e0d5a17ULL + node));
    return nc;
}

ServingSystem::ServingSystem(ServingConfig config)
    : config_(std::move(config)),
      router_(makeRouter(config_.cluster.routing,
                         config_.cluster.numNodes,
                         config_.seed ^ kRingSeedSalt,
                         config_.cluster.boundedLoadFactor))
{
    MODM_ASSERT(config_.cluster.numNodes > 0,
                "cluster needs at least one node");
    validatePlan(config_.faults, config_.cluster.numNodes);
    validateKnobPlan(config_.knobs, config_);
    nodes_.reserve(config_.cluster.numNodes);
    for (std::size_t n = 0; n < config_.cluster.numNodes; ++n) {
        nodes_.push_back(std::make_unique<ServingNode>(
            nodeConfig(n), n, events_, run_, result_));
    }
    // Observability: the config wins; the MODM_TRACE env knob is a
    // debugging override that applies only when the config left
    // tracing off. With both off (the default) no tap is installed,
    // no registry exists, and every observability branch below and in
    // the nodes is dead.
    if (!config_.trace.enabled())
        config_.trace = obs::traceEnvConfig();
    if (config_.trace.events) {
        tracer_ = std::make_unique<obs::Tracer>();
        events_.setTap(tracer_.get());
    }
    if (config_.trace.metricsWindow > 0.0) {
        metrics_ = std::make_unique<obs::MetricsRegistry>(
            config_.trace.metricsWindow, config_.trace.maxMetricsRows);
        nodeMetrics_.registry = metrics_.get();
        nodeMetrics_.arrivals = metrics_->counter("arrivals");
        nodeMetrics_.hits = metrics_->counter("cache_hits");
        nodeMetrics_.misses = metrics_->counter("cache_misses");
        nodeMetrics_.completions = metrics_->counter("completions");
        nodeMetrics_.latency = metrics_->histogram("latency_s");
        nodeMetrics_.similarity = metrics_->histogram("hit_similarity");
        nodeMetrics_.queueDepth = metrics_->gauge("queue_depth");
        nodeMetrics_.numLarge = metrics_->gauge("num_large_workers");
    }
    if (tracer_ != nullptr || metrics_ != nullptr) {
        for (auto &node : nodes_)
            node->setObservers(tracer_.get(),
                               metrics_ ? &nodeMetrics_ : nullptr);
    }
    // Replica write-through needs a placement ring that matches the
    // affinity routers' (same kRingSeedSalt-derived seed), so a
    // topic's primary replica is exactly where consistent-hash
    // routing sends its queries. A single node replicates onto
    // itself, which is plain admission — skip the sink so the
    // monolithic path stays untouched.
    if (config_.cluster.cachePartitioning ==
            CachePartitioning::Replicated &&
        config_.cluster.numNodes > 1) {
        MODM_ASSERT(config_.cluster.replicationFactor >= 1,
                    "replication factor must be >= 1");
        replicaRing_ = std::make_unique<HashRing>(
            config_.cluster.numNodes, config_.seed ^ kRingSeedSalt);
        for (auto &node : nodes_)
            node->setReplicaSink(this);
    }
}

void
ServingSystem::admitReplicated(std::size_t origin,
                               const diffusion::Image &image,
                               const embedding::Embedding
                                   &text_embedding,
                               bool from_miss, std::uint32_t topic_id,
                               double now)
{
    // The first k distinct alive owners clockwise of the topic. After
    // a kill the ring heals so the dead primary's topics route to
    // their old second replica — which is exactly who holds the data.
    const auto targets = replicaRing_->owners(
        replicaRing_->topicKey(topic_id),
        config_.cluster.replicationFactor, router_->aliveMask());
    for (const std::size_t target : targets)
        nodes_[target]->admitLocal(origin, image, text_embedding,
                                   from_miss, now);
}

void
ServingSystem::warmCache(const std::vector<workload::Prompt> &prompts)
{
    MODM_ASSERT(!ran_, "warmCache must precede run()");
    // Route everything first so each node reserves its exact share,
    // then admit node by node (node-major keeps the one-node case in
    // the original admission order). Under replication a generation
    // fans out to its k ring owners, so reservations count admission
    // targets rather than generation sites.
    std::vector<std::vector<const workload::Prompt *>> perNode(
        nodes_.size());
    std::vector<std::size_t> admissions(nodes_.size(), 0);
    for (const auto &prompt : prompts) {
        perNode[router_->routeWarm(prompt)].push_back(&prompt);
        if (replicaRing_) {
            for (const std::size_t target : replicaRing_->owners(
                     replicaRing_->topicKey(prompt.topicId),
                     config_.cluster.replicationFactor))
                ++admissions[target];
        }
    }
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        nodes_[n]->reserveWarm(replicaRing_ ? admissions[n]
                                            : perNode[n].size());
        for (const workload::Prompt *prompt : perNode[n]) {
            if (tracer_ != nullptr)
                tracer_->emit(0.0, obs::EventKind::Warm,
                              static_cast<std::uint32_t>(n),
                              prompt->id);
            nodes_[n]->warm(*prompt);
        }
    }
}

std::vector<std::size_t>
ServingSystem::outstandingSnapshot() const
{
    std::vector<std::size_t> outstanding(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n)
        outstanding[n] = nodes_[n]->outstanding();
    return outstanding;
}

void
ServingSystem::deliver(const workload::Request &request)
{
    // Snapshot node state only for policies that read it; the
    // stateless ones keep the arrival path allocation-free.
    const std::size_t n = router_->needsOutstanding()
        ? router_->route(request.prompt, outstandingSnapshot())
        : router_->route(request.prompt, {});
    if (tracer_ != nullptr)
        tracer_->emit(events_.now(), obs::EventKind::Route,
                      static_cast<std::uint32_t>(n),
                      request.prompt.id);
    nodes_[n]->onArrival(request);
}

void
ServingSystem::onFault(const FaultEvent &event)
{
    const double now = events_.now();
    MODM_LOG_DEBUG(now, "fault: %s node %zu",
                   faultKindName(event.kind), event.node);
    switch (event.kind) {
      case FaultKind::Kill: {
        // Remove from routing first: the surrendered backlog must not
        // route straight back onto the corpse.
        router_->setNodeAlive(event.node, false);
        const auto owed = nodes_[event.node]->kill(now);
        MODM_LOG_DEBUG(now,
                       "node %zu surrendered %zu requests for "
                       "re-routing",
                       event.node, owed.size());
        for (const auto &request : owed) {
            if (tracer_ != nullptr)
                tracer_->emit(now, obs::EventKind::Reroute,
                              static_cast<std::uint32_t>(event.node),
                              request.prompt.id);
            deliver(request);
        }
        break;
      }
      case FaultKind::Drain:
        router_->setNodeAlive(event.node, false);
        nodes_[event.node]->drain(now);
        break;
      case FaultKind::Rejoin:
        nodes_[event.node]->rejoin(now);
        router_->setNodeAlive(event.node, true);
        break;
    }
}

void
ServingSystem::onKnob(const KnobEvent &event)
{
    MODM_LOG_DEBUG(events_.now(), "knob: %s = %zu",
                   knobTargetName(event.target), event.value);
    switch (event.target) {
      case KnobTarget::MonitorMode:
        for (auto &node : nodes_)
            node->setMonitorMode(event.mode);
        break;
      case KnobTarget::CacheCapacity:
        // Re-shard the cluster-wide budget with the same split as
        // construction; each shard evicts down under its own policy.
        for (std::size_t n = 0; n < nodes_.size(); ++n)
            nodes_[n]->setCacheShardCapacity(
                cache::shardCapacity(event.value, nodes_.size(), n));
        break;
      case KnobTarget::ReplicationFactor:
        // Read on every subsequent replicated admission; a single
        // node has no ring and the change is a no-op there.
        config_.cluster.replicationFactor = event.value;
        break;
      case KnobTarget::RetrievalEf:
        for (auto &node : nodes_)
            node->setRetrievalEf(event.value);
        break;
      case KnobTarget::RetrievalNprobe:
        for (auto &node : nodes_)
            node->setRetrievalNprobe(event.value);
        break;
    }
}

ServingResult
ServingSystem::run(const workload::Trace &trace)
{
    MODM_ASSERT(!ran_, "ServingSystem::run is single-shot");
    ran_ = true;
    MODM_ASSERT(!trace.empty(), "cannot run an empty trace");
    MODM_ASSERT(std::is_sorted(trace.begin(), trace.end(),
                               [](const auto &a, const auto &b) {
                                   return a.arrival < b.arrival;
                               }),
                "trace arrivals must be non-decreasing");

    run_.total = trace.size();
    if (config_.keepOutputs) {
        result_.prompts.reserve(run_.total);
        result_.images.reserve(run_.total);
    }

    // Fault events first: a kill scheduled at time t outranks every
    // same-instant arrival and monitor tick (FIFO tie-break), so the
    // node is gone before anything else observes that instant.
    for (const auto &event : config_.faults.events) {
        events_.schedule(event.time,
                         obs::eventMeta(obs::EventKind::Fault,
                                        event.node),
                         [this, event]() { onFault(event); });
    }
    // Knob changes after same-instant faults but before arrivals, so a
    // reconfiguration at time t governs every request arriving at t.
    for (const auto &event : config_.knobs.events) {
        events_.schedule(event.time,
                         obs::eventMeta(obs::EventKind::Knob),
                         [this, event]() { onKnob(event); });
    }
    for (const auto &request : trace) {
        events_.schedule(request.arrival,
                         obs::eventMeta(obs::EventKind::Arrival,
                                        sim::kNoNode,
                                        request.prompt.id),
                         [this, request]() { deliver(request); });
    }
    for (auto &node : nodes_)
        node->scheduleMonitorTick();

    events_.runAll();
    MODM_ASSERT(run_.completed == run_.total,
                "simulation ended with %zu of %zu requests served",
                run_.completed, run_.total);

    result_.duration = result_.metrics.lastCompletion();
    result_.throughputPerMin = result_.metrics.throughputPerMinute();
    result_.hitRate = result_.metrics.hitRate();

    std::uint64_t checked = 0;
    std::uint64_t agreed = 0;
    result_.energyJ = 0.0;
    result_.modelSwitches = 0;
    result_.cacheSize = 0;
    result_.cacheBytes = 0.0;
    result_.retrievalBackend = config_.retrieval.kind;
    result_.retrievalMemoryBytes = 0;
    const kernels::KernelInfo kernel = kernels::active();
    result_.kernel = kernel.name;
    result_.kernelForced = kernel.fromEnv;
    result_.numNodes = nodes_.size();
    result_.nodes.clear();
    result_.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_) {
        const auto &stats = node->scheduler().stats();
        checked += stats.retrievalChecked;
        agreed += stats.retrievalAgreed;
        for (const double age : node->scheduler().hitAges())
            result_.hitAges.push_back(age);
        NodeStats ns = node->stats(result_.duration);
        result_.energyJ += ns.energyJ;
        result_.modelSwitches += ns.modelSwitches;
        result_.cacheSize += ns.cacheSize;
        result_.cacheBytes += ns.cacheBytes;
        result_.retrievalMemoryBytes += ns.retrievalMemoryBytes;
        result_.nodes.push_back(ns);
    }
    result_.retrievalChecked = checked;
    result_.retrievalRecallAt1 = checked == 0
        ? 1.0
        : static_cast<double>(agreed) / static_cast<double>(checked);

    // Time-ordered allocation history across nodes: concatenate
    // node-major (each node's snapshots are already chronological),
    // then stable-sort by time so simultaneous ticks order by node.
    result_.allocations.clear();
    for (const auto &node : nodes_) {
        for (const auto &snap : node->allocations().items())
            result_.allocations.push_back(snap);
    }
    std::stable_sort(result_.allocations.begin(),
                     result_.allocations.end(),
                     [](const AllocationSnapshot &a,
                        const AllocationSnapshot &b) {
                         return a.time < b.time;
                     });

    // Cross-node balance metrics.
    std::uint64_t maxCompleted = 0;
    double minHit = 1.0;
    double maxHit = 0.0;
    for (const auto &ns : result_.nodes) {
        maxCompleted = std::max(maxCompleted, ns.completed);
        minHit = std::min(minHit, ns.hitRate);
        maxHit = std::max(maxHit, ns.hitRate);
    }
    const double meanCompleted = static_cast<double>(run_.completed) /
        static_cast<double>(nodes_.size());
    result_.loadImbalance = meanCompleted > 0.0
        ? static_cast<double>(maxCompleted) / meanCompleted
        : 1.0;
    result_.hitRateSpread = nodes_.size() > 1 ? maxHit - minHit : 0.0;

    // Failover telemetry only for runs that scripted faults; the
    // default-constructed report keeps no-fault results untouched.
    if (!config_.faults.empty()) {
        result_.failover =
            analyzeFailover(result_.metrics, config_.faults);
        result_.failover.nodes.reserve(nodes_.size());
        for (const auto &node : nodes_) {
            NodeFailoverStats nf;
            nf.node = node->id();
            nf.reroutedOut = node->reroutedOut();
            nf.abortedJobs = node->abortedJobs();
            nf.replicaAdmits = node->replicaAdmits();
            nf.downtimeS = node->downtimeS(result_.duration);
            nf.drainedS = node->drainedS(result_.duration);
            nf.downIntervals = node->downIntervals(result_.duration);
            result_.failover.rerouted += nf.reroutedOut;
            result_.failover.nodes.push_back(std::move(nf));
        }
    }

    // Export the recorded observability artifacts. Both summaries are
    // excluded from resultDigest, so traced runs digest identically to
    // untraced ones.
    if (tracer_ != nullptr) {
        result_.trace.enabled = true;
        result_.trace.events = tracer_->log().size();
        result_.trace.hash = tracer_->log().finalHash();
        result_.trace.path = config_.trace.path;
        if (!config_.trace.path.empty()) {
            obs::saveTrace(tracer_->log(), config_.trace.path);
            MODM_LOG_INFO(-1.0, "wrote %llu-event trace to %s",
                          static_cast<unsigned long long>(
                              result_.trace.events),
                          config_.trace.path.c_str());
        }
        result_.traceLog = tracer_->sharedLog();
        events_.setTap(nullptr);
    }
    if (metrics_ != nullptr)
        result_.series = metrics_->take();

    return std::move(result_);
}

} // namespace modm::serving

#include "src/serving/system.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/cache/shard.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::serving {

std::string
resultDigest(const ServingResult &result)
{
    std::string out;
    out.reserve(result.metrics.count() * 96 + 512);
    char buf[256];
    const auto emit = [&out, &buf](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };
    const bool multinode = result.numNodes > 1;

    emit("n=%zu dur=%a tput=%a hit=%a energy=%a switches=%llu "
         "cacheSize=%zu cacheBytes=%a recall=%a recallChecked=%llu\n",
         result.metrics.count(), result.duration,
         result.throughputPerMin, result.hitRate, result.energyJ,
         static_cast<unsigned long long>(result.modelSwitches),
         result.cacheSize, result.cacheBytes, result.retrievalRecallAt1,
         static_cast<unsigned long long>(result.retrievalChecked));
    for (const auto &r : result.metrics.records()) {
        emit("r %llu %a %a %a %d %d %a %d %s\n",
             static_cast<unsigned long long>(r.promptId), r.arrival,
             r.start, r.finish, r.cacheHit ? 1 : 0, r.k, r.similarity,
             static_cast<int>(r.kind), r.servedBy.c_str());
    }
    for (const auto &a : result.allocations) {
        // Single-node digests keep the frozen pre-cluster line format.
        if (multinode)
            emit("a %a %d %zu @%zu\n", a.time, a.numLarge,
                 a.smallModelIndex, a.node);
        else
            emit("a %a %d %zu\n", a.time, a.numLarge,
                 a.smallModelIndex);
    }
    for (const double age : result.hitAges)
        emit("h %a\n", age);
    if (multinode) {
        for (const auto &n : result.nodes) {
            emit("N %zu workers=%zu assigned=%llu completed=%llu "
                 "hits=%llu misses=%llu hit=%a cacheSize=%zu "
                 "cacheBytes=%a energy=%a switches=%llu\n",
                 n.node, n.numWorkers,
                 static_cast<unsigned long long>(n.assigned),
                 static_cast<unsigned long long>(n.completed),
                 static_cast<unsigned long long>(n.hits),
                 static_cast<unsigned long long>(n.misses), n.hitRate,
                 n.cacheSize, n.cacheBytes, n.energyJ,
                 static_cast<unsigned long long>(n.modelSwitches));
        }
        emit("nodes=%zu imbalance=%a spread=%a\n", result.numNodes,
             result.loadImbalance, result.hitRateSpread);
    }
    // Output images fold to a checksum of their content bit patterns.
    std::uint64_t imageHash = 0xcbf29ce484222325ULL;
    for (const auto &img : result.images) {
        imageHash = mix64(imageHash ^ img.id);
        std::uint64_t fidelityBits = 0;
        std::memcpy(&fidelityBits, &img.fidelity, sizeof(fidelityBits));
        imageHash = mix64(imageHash ^ fidelityBits);
        for (const float f : img.content) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &f, sizeof(bits));
            imageHash = mix64(imageHash ^ bits);
        }
    }
    emit("outputs=%zu imageHash=%llx\n", result.images.size(),
         static_cast<unsigned long long>(imageHash));
    return out;
}

ServingConfig
ServingSystem::nodeConfig(std::size_t node) const
{
    const std::size_t nodes = config_.cluster.numNodes;
    ServingConfig nc = config_;
    nc.numWorkers = cache::shardCapacity(config_.numWorkers, nodes, node);
    if (config_.cluster.cachePartitioning == CachePartitioning::Sharded) {
        nc.cacheCapacity =
            cache::shardCapacity(config_.cacheCapacity, nodes, node);
        nc.latentCacheCapacity = cache::shardCapacity(
            config_.latentCacheCapacity, nodes, node);
    }
    // Node 0 keeps the experiment seed so a one-node cluster is
    // byte-identical to the pre-cluster monolith; siblings get
    // decorrelated streams derived from it.
    if (node > 0)
        nc.seed = mix64(config_.seed ^ (0x6e0d5a17ULL + node));
    return nc;
}

ServingSystem::ServingSystem(ServingConfig config)
    : config_(std::move(config)),
      router_(makeRouter(config_.cluster.routing,
                         config_.cluster.numNodes,
                         config_.seed ^ 0x40a73e5ULL))
{
    MODM_ASSERT(config_.cluster.numNodes > 0,
                "cluster needs at least one node");
    nodes_.reserve(config_.cluster.numNodes);
    for (std::size_t n = 0; n < config_.cluster.numNodes; ++n) {
        nodes_.push_back(std::make_unique<ServingNode>(
            nodeConfig(n), n, events_, run_, result_));
    }
}

void
ServingSystem::warmCache(const std::vector<workload::Prompt> &prompts)
{
    MODM_ASSERT(!ran_, "warmCache must precede run()");
    // Route everything first so each node reserves its exact share,
    // then admit node by node (node-major keeps the one-node case in
    // the original admission order).
    std::vector<std::vector<const workload::Prompt *>> perNode(
        nodes_.size());
    for (const auto &prompt : prompts)
        perNode[router_->routeWarm(prompt)].push_back(&prompt);
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        nodes_[n]->reserveWarm(perNode[n].size());
        for (const workload::Prompt *prompt : perNode[n])
            nodes_[n]->warm(*prompt);
    }
}

std::vector<std::size_t>
ServingSystem::outstandingSnapshot() const
{
    std::vector<std::size_t> outstanding(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n)
        outstanding[n] = nodes_[n]->outstanding();
    return outstanding;
}

ServingResult
ServingSystem::run(const workload::Trace &trace)
{
    MODM_ASSERT(!ran_, "ServingSystem::run is single-shot");
    ran_ = true;
    MODM_ASSERT(!trace.empty(), "cannot run an empty trace");
    MODM_ASSERT(std::is_sorted(trace.begin(), trace.end(),
                               [](const auto &a, const auto &b) {
                                   return a.arrival < b.arrival;
                               }),
                "trace arrivals must be non-decreasing");

    run_.total = trace.size();
    if (config_.keepOutputs) {
        result_.prompts.reserve(run_.total);
        result_.images.reserve(run_.total);
    }

    for (const auto &request : trace) {
        events_.schedule(request.arrival, [this, request]() {
            // Snapshot node state only for policies that read it; the
            // stateless ones keep the arrival path allocation-free.
            const std::size_t n = router_->needsOutstanding()
                ? router_->route(request.prompt, outstandingSnapshot())
                : router_->route(request.prompt, {});
            nodes_[n]->onArrival(request);
        });
    }
    for (auto &node : nodes_)
        node->scheduleMonitorTick();

    events_.runAll();
    MODM_ASSERT(run_.completed == run_.total,
                "simulation ended with %zu of %zu requests served",
                run_.completed, run_.total);

    result_.duration = result_.metrics.lastCompletion();
    result_.throughputPerMin = result_.metrics.throughputPerMinute();
    result_.hitRate = result_.metrics.hitRate();

    std::uint64_t checked = 0;
    std::uint64_t agreed = 0;
    result_.energyJ = 0.0;
    result_.modelSwitches = 0;
    result_.cacheSize = 0;
    result_.cacheBytes = 0.0;
    result_.numNodes = nodes_.size();
    result_.nodes.clear();
    result_.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_) {
        const auto &stats = node->scheduler().stats();
        checked += stats.retrievalChecked;
        agreed += stats.retrievalAgreed;
        for (const double age : node->scheduler().hitAges())
            result_.hitAges.push_back(age);
        NodeStats ns = node->stats(result_.duration);
        result_.energyJ += ns.energyJ;
        result_.modelSwitches += ns.modelSwitches;
        result_.cacheSize += ns.cacheSize;
        result_.cacheBytes += ns.cacheBytes;
        result_.nodes.push_back(ns);
    }
    result_.retrievalChecked = checked;
    result_.retrievalRecallAt1 = checked == 0
        ? 1.0
        : static_cast<double>(agreed) / static_cast<double>(checked);

    // Time-ordered allocation history across nodes: concatenate
    // node-major (each node's snapshots are already chronological),
    // then stable-sort by time so simultaneous ticks order by node.
    result_.allocations.clear();
    for (const auto &node : nodes_) {
        for (const auto &snap : node->allocations().items())
            result_.allocations.push_back(snap);
    }
    std::stable_sort(result_.allocations.begin(),
                     result_.allocations.end(),
                     [](const AllocationSnapshot &a,
                        const AllocationSnapshot &b) {
                         return a.time < b.time;
                     });

    // Cross-node balance metrics.
    std::uint64_t maxCompleted = 0;
    double minHit = 1.0;
    double maxHit = 0.0;
    for (const auto &ns : result_.nodes) {
        maxCompleted = std::max(maxCompleted, ns.completed);
        minHit = std::min(minHit, ns.hitRate);
        maxHit = std::max(maxHit, ns.hitRate);
    }
    const double meanCompleted = static_cast<double>(run_.completed) /
        static_cast<double>(nodes_.size());
    result_.loadImbalance = meanCompleted > 0.0
        ? static_cast<double>(maxCompleted) / meanCompleted
        : 1.0;
    result_.hitRateSpread = nodes_.size() > 1 ? maxHit - minHit : 0.0;

    return std::move(result_);
}

} // namespace modm::serving

/**
 * @file
 * The end-to-end serving system: request scheduler + global monitor +
 * GPU workers wired onto the discrete-event simulator (paper Fig. 4).
 *
 * One ServingSystem instance runs one experiment: optionally warm the
 * cache, then replay a request trace to completion and return every
 * metric the paper reports. The same class executes MoDM and all four
 * baselines (selected by ServingConfig::kind), so comparisons differ
 * only in policy.
 */

#ifndef MODM_SERVING_SYSTEM_HH
#define MODM_SERVING_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/diffusion/sampler.hh"
#include "src/serving/config.hh"
#include "src/serving/metrics.hh"
#include "src/serving/monitor.hh"
#include "src/serving/scheduler.hh"
#include "src/sim/cluster.hh"
#include "src/sim/event_queue.hh"
#include "src/workload/trace.hh"

namespace modm::serving {

/** Allocation decision at a point in time (for Fig. 10-style plots). */
struct AllocationSnapshot
{
    double time = 0.0;
    int numLarge = 0;
    std::size_t smallModelIndex = 0;
};

/** Everything an experiment produces. */
struct ServingResult
{
    /** Per-request records and aggregates. */
    MetricsCollector metrics;
    /** Virtual time of the last completion. */
    double duration = 0.0;
    /** Completed requests per minute over the run. */
    double throughputPerMin = 0.0;
    /** Cache hit rate. */
    double hitRate = 0.0;
    /**
     * Retrieval recall@1 vs an exhaustive scan: 1.0 under the exact
     * Flat backend; under approximate backends, the fraction of
     * checked lookups that returned the exact best entry (an
     * approximate hit may refine from a different cached image, so
     * quality deltas attribute to this number).
     */
    double retrievalRecallAt1 = 1.0;
    /** Lookups behind retrievalRecallAt1 (0 under exact backends). */
    std::uint64_t retrievalChecked = 0;
    /** Total cluster energy (compute + idle) in joules. */
    double energyJ = 0.0;
    /** Model switches across workers. */
    std::uint64_t modelSwitches = 0;
    /** Monitor decisions over time. */
    std::vector<AllocationSnapshot> allocations;
    /** Cache-hit retrieval ages (Fig. 15). */
    std::vector<double> hitAges;
    /** Final cache occupancy. */
    std::size_t cacheSize = 0;
    /** Final cache bytes. */
    double cacheBytes = 0.0;
    /** Served prompts (parallel to images; kept when keepOutputs). */
    std::vector<workload::Prompt> prompts;
    /** Output images (kept when keepOutputs). */
    std::vector<diffusion::Image> images;
};

/**
 * Exact textual digest of a ServingResult: every per-request record,
 * aggregate, allocation snapshot, and output-image checksum rendered
 * with hex-float (%a) formatting so two results compare bit-identical
 * iff their digests are string-equal. This is what the serial-vs-
 * concurrent sweep property test (and the CI determinism diff) pin —
 * experiments must be reproducible from their config seed alone, no
 * matter which thread ran them.
 */
std::string resultDigest(const ServingResult &result);

/**
 * The serving system.
 */
class ServingSystem
{
  public:
    /** Build scheduler, monitor, sampler, and cluster from config. */
    explicit ServingSystem(ServingConfig config);

    /**
     * Pre-populate the cache with full large-model generations of the
     * given prompts (the paper's warm-up phase). Must be called before
     * run(). Warm images carry createdAt = 0.
     */
    void warmCache(const std::vector<workload::Prompt> &prompts);

    /**
     * Replay a trace (arrivals must be non-decreasing) until every
     * request completes; single-shot per instance.
     */
    ServingResult run(const workload::Trace &trace);

    /** Active configuration. */
    const ServingConfig &config() const { return config_; }

    /** The scheduler (exposed for tests and diagnostics). */
    const RequestScheduler &scheduler() const { return *scheduler_; }

  private:
    /** Move arrivals into classified queues while within lookahead. */
    void processIntake();
    /** Dispatch queued jobs to idle workers per current allocation. */
    void tryDispatch();
    /** Worker role under the current allocation. */
    bool isLargeRole(std::size_t worker_index) const;
    /** Handle a finished generation. */
    void onJobComplete(std::size_t worker_index, const ClassifiedJob &job,
                       double dispatch_time, bool used_large,
                       std::size_t small_index);
    /** Complete a direct (no-GPU) cache return. */
    void completeDirect(const ClassifiedJob &job);
    /** Monitor tick. */
    void onMonitorTick();
    /** Record outputs and metrics for a served request. */
    void finishRequest(const ClassifiedJob &job, double start,
                       double finish, ServeKind kind,
                       const std::string &served_by,
                       const diffusion::Image *image);

    ServingConfig config_;
    std::size_t lookahead_;
    diffusion::Sampler sampler_;
    std::unique_ptr<RequestScheduler> scheduler_;
    std::unique_ptr<GlobalMonitor> monitor_;
    sim::Cluster cluster_;
    sim::EventQueue events_;

    std::deque<workload::Request> intake_;   // arrived, unclassified
    std::deque<ClassifiedJob> largeQueue_;   // needs the large model
    std::deque<ClassifiedJob> smallQueue_;   // refinements for small

    Allocation allocation_;
    std::size_t completed_ = 0;
    std::size_t total_ = 0;
    bool ran_ = false;

    // Per-monitor-period counters.
    std::uint64_t periodArrivals_ = 0;
    std::uint64_t periodHits_ = 0;
    std::uint64_t periodMisses_ = 0;
    std::map<int, std::uint64_t> periodKCounts_;
    MonitorInputs lastInputs_;
    bool haveInputs_ = false;

    ServingResult result_;
};

} // namespace modm::serving

#endif // MODM_SERVING_SYSTEM_HH

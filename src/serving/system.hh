/**
 * @file
 * The serving front-end: one shared discrete-event clock, N serving
 * nodes (scheduler + cache shard + monitor + worker pool each, see
 * node.hh), and a pluggable request router deciding which node every
 * arrival lands on (paper Fig. 4, generalized to a cluster).
 *
 * One ServingSystem instance runs one experiment: optionally warm the
 * caches, then replay a request trace to completion and return every
 * metric the paper reports plus the cross-node aggregates (per-node
 * hit rates, load imbalance) that only exist at numNodes > 1. The same
 * class executes MoDM and all four baselines (selected by
 * ServingConfig::kind), so comparisons differ only in policy — and at
 * the default single node it reproduces the original monolithic system
 * byte-for-byte (pinned by resultDigest in the test suite).
 */

#ifndef MODM_SERVING_SYSTEM_HH
#define MODM_SERVING_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"
#include "src/serving/config.hh"
#include "src/serving/fault.hh"
#include "src/serving/metrics.hh"
#include "src/serving/node.hh"
#include "src/serving/router.hh"
#include "src/sim/event_queue.hh"
#include "src/workload/trace.hh"

namespace modm::serving {

/**
 * What the event tracer recorded over a run (default: tracing off,
 * nothing recorded). Like the kernel provenance fields, deliberately
 * excluded from resultDigest: a traced run must digest identically to
 * an untraced one.
 */
struct TraceSummary
{
    /** True when the run recorded an event trace. */
    bool enabled = false;
    /** Records in the log (queue dispatches + serving emits). */
    std::uint64_t events = 0;
    /** Final rolling hash over the whole log. */
    std::uint64_t hash = obs::kTraceHashSeed;
    /** .mtrace file the log was written to ("" = memory only). */
    std::string path;
};

/** Everything an experiment produces. */
struct ServingResult
{
    /** Per-request records and aggregates. */
    MetricsCollector metrics;
    /** Virtual time of the last completion. */
    double duration = 0.0;
    /** Completed requests per minute over the run. */
    double throughputPerMin = 0.0;
    /** Cache hit rate. */
    double hitRate = 0.0;
    /**
     * Retrieval recall@1 vs an exhaustive scan: 1.0 under the exact
     * Flat backend; under approximate backends, the fraction of
     * checked lookups that returned the exact best entry (an
     * approximate hit may refine from a different cached image, so
     * quality deltas attribute to this number).
     */
    double retrievalRecallAt1 = 1.0;
    /** Lookups behind retrievalRecallAt1 (0 under exact backends). */
    std::uint64_t retrievalChecked = 0;
    /** Retrieval backend the run used (config_.retrieval.kind). */
    embedding::RetrievalBackend retrievalBackend =
        embedding::RetrievalBackend::Flat;
    /**
     * Bytes the retrieval backends held at run end, summed over node
     * shards — the memory-budget axis of the backend trade-off.
     */
    std::size_t retrievalMemoryBytes = 0;
    /**
     * Dot-kernel dispatch tier the run executed with (kernels::active)
     * — provenance for artifacts, deliberately excluded from
     * resultDigest so equal results compare equal across tiers (the
     * tiers are bit-identical by contract; see kernels.hh).
     */
    std::string kernel;
    /** True when MODM_KERNEL forced the tier (vs CPUID auto-pick). */
    bool kernelForced = false;
    /** Total cluster energy (compute + idle) in joules. */
    double energyJ = 0.0;
    /** Model switches across workers. */
    std::uint64_t modelSwitches = 0;
    /** Monitor decisions over time (all nodes, time-ordered). */
    std::vector<AllocationSnapshot> allocations;
    /** Cache-hit retrieval ages (Fig. 15); node-major order. */
    std::vector<double> hitAges;
    /** Final cache occupancy, summed over node shards. */
    std::size_t cacheSize = 0;
    /** Final cache bytes, summed over node shards. */
    double cacheBytes = 0.0;
    /** Served prompts (parallel to images; kept when keepOutputs). */
    std::vector<workload::Prompt> prompts;
    /** Output images (kept when keepOutputs). */
    std::vector<diffusion::Image> images;

    /** Nodes the experiment ran with. */
    std::size_t numNodes = 1;
    /** Per-node aggregates (size numNodes). */
    std::vector<NodeStats> nodes;
    /**
     * Completion imbalance: max over nodes of completed requests,
     * divided by the per-node mean (1.0 = perfectly balanced).
     */
    double loadImbalance = 1.0;
    /** Max minus min per-node hit rate (0 for one node). */
    double hitRateSpread = 0.0;

    /**
     * Failover telemetry: recovery times, rerouted-request ledger,
     * per-node up/down intervals. Default-initialized (active=false)
     * when the config carries no fault plan.
     */
    FailoverReport failover;

    /** Event-trace summary (enabled=false when tracing was off). */
    TraceSummary trace;
    /**
     * The recorded event log itself (null when tracing was off).
     * Shared so results stay copyable; the log is immutable once the
     * run ends.
     */
    std::shared_ptr<const obs::TraceLog> traceLog;
    /**
     * Streaming metrics time series (empty when
     * trace.metricsWindow == 0). Excluded from resultDigest.
     */
    obs::MetricsSeries series;
};

/**
 * Exact textual digest of a ServingResult: every per-request record,
 * aggregate, allocation snapshot, and output-image checksum rendered
 * with hex-float (%a) formatting so two results compare bit-identical
 * iff their digests are string-equal. This is what the serial-vs-
 * concurrent sweep property test (and the CI determinism diff) pin —
 * experiments must be reproducible from their config seed alone, no
 * matter which thread ran them. Single-node digests keep the exact
 * pre-cluster format (pinned against frozen hashes in the test suite);
 * multi-node results append per-node lines and tag allocation
 * snapshots with their node.
 */
std::string resultDigest(const ServingResult &result);

/**
 * The serving front-end. Under Replicated partitioning it doubles as
 * the nodes' ReplicaSink, fanning each finished generation out to the
 * k alive ring successors of its topic; it also executes the fault
 * plan — removing killed/draining nodes from routing, re-routing a
 * killed node's backlog, and restoring rejoining nodes.
 */
class ServingSystem : private ReplicaSink
{
  public:
    /** Build router and nodes (with per-node shards) from config. */
    explicit ServingSystem(ServingConfig config);

    /**
     * Pre-populate the node caches with full large-model generations
     * of the given prompts (the paper's warm-up phase), routed with
     * the same policy as live traffic so affinity-routed content lands
     * where later queries will look. Must be called before run().
     * Warm images carry createdAt = 0.
     */
    void warmCache(const std::vector<workload::Prompt> &prompts);

    /**
     * Replay a trace (arrivals must be non-decreasing) until every
     * request completes; single-shot per instance.
     */
    ServingResult run(const workload::Trace &trace);

    /** Active configuration. */
    const ServingConfig &config() const { return config_; }

    /** Number of serving nodes. */
    std::size_t numNodes() const { return nodes_.size(); }

    /** Node access (exposed for tests and diagnostics). */
    const ServingNode &node(std::size_t i) const { return *nodes_[i]; }

    /** Node 0's scheduler (single-node tests and diagnostics). */
    const RequestScheduler &scheduler() const
    {
        return nodes_.front()->scheduler();
    }

    /** The request router. */
    const Router &router() const { return *router_; }

  private:
    /** Node-local config: worker slice, cache shard, per-node seed. */
    ServingConfig nodeConfig(std::size_t node) const;

    /** Current per-node outstanding counts for the router. */
    std::vector<std::size_t> outstandingSnapshot() const;

    /** Route one request to an admitting node and deliver it. */
    void deliver(const workload::Request &request);

    /** Execute one scripted fault event at its scheduled time. */
    void onFault(const FaultEvent &event);

    /** Execute one scripted knob change at its scheduled time. */
    void onKnob(const KnobEvent &event);

    /** ReplicaSink: write-through to the k alive ring successors. */
    void admitReplicated(std::size_t origin,
                         const diffusion::Image &image,
                         const embedding::Embedding &text_embedding,
                         bool from_miss, std::uint32_t topic_id,
                         double now) override;

    ServingConfig config_;
    sim::EventQueue events_;
    ClusterRunState run_;
    ServingResult result_;
    /** Event recorder, installed as the queue tap (null = off). */
    std::unique_ptr<obs::Tracer> tracer_;
    /** Streaming metrics registry (null = off). */
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    /** Pre-registered handles the nodes sample through. */
    NodeMetrics nodeMetrics_;
    std::unique_ptr<Router> router_;
    /** Replica placement ring (Replicated partitioning, > 1 node). */
    std::unique_ptr<HashRing> replicaRing_;
    std::vector<std::unique_ptr<ServingNode>> nodes_;
    bool ran_ = false;
};

} // namespace modm::serving

#endif // MODM_SERVING_SYSTEM_HH

/**
 * @file
 * Fault injection and failover analysis for multi-node serving.
 *
 * A FaultPlan scripts deterministic node events on the shared virtual
 * clock — the resilience axis the cluster refactor opened:
 *
 *  - Kill: the node dies instantly. In-flight generations abort (their
 *    completion events are cancelled on the EventQueue), queued and
 *    in-flight requests re-route to surviving nodes, and the node's
 *    cache shard is lost (a later Rejoin starts cold).
 *  - Drain: graceful decommission — the node stops admitting new
 *    requests (the router marks it dead) but finishes everything
 *    already assigned and keeps its cache for a later Rejoin.
 *  - Rejoin: the node returns to the routable set. After a Kill it
 *    restarts with an empty cache and reloads models on first use;
 *    after a Drain it resumes exactly where it stopped.
 *
 * The plan is part of ServingConfig, so fault scenarios are sweepable
 * cells like any other axis, and an empty plan is a strict no-op: the
 * serving pipeline takes the exact pre-fault code paths and published
 * results stay byte-identical.
 *
 * analyzeFailover() turns a finished run's request records into the
 * recovery telemetry the ablations plot: hit rate and completion
 * throughput in fixed buckets after the first kill, the time each
 * takes to return to a target fraction (default 95%) of its pre-fault
 * level, and the rerouted-request ledger.
 */

#ifndef MODM_SERVING_FAULT_HH
#define MODM_SERVING_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/serving/metrics.hh"

namespace modm::serving {

/** What happens to a node at a fault event. */
enum class FaultKind
{
    Kill,   ///< instant death: abort, re-route, lose the cache shard
    Drain,  ///< stop admitting, finish everything already assigned
    Rejoin, ///< return to the routable set
};

/** Printable fault name. */
const char *faultKindName(FaultKind kind);

/** One scripted node event. */
struct FaultEvent
{
    /** Virtual time (seconds) the event fires. */
    double time = 0.0;
    /** Target node. */
    std::size_t node = 0;
    FaultKind kind = FaultKind::Kill;
};

/**
 * A deterministic fault script plus the knobs of the recovery
 * analysis. Empty plans disable the subsystem entirely.
 */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    /**
     * Trailing-window length, in classifications, of the post-kill
     * hit-rate series the recovery analysis scans. Smooths topic-mix
     * noise; larger windows are steadier but lag true recovery by up
     * to the window's fill time.
     */
    std::size_t recoveryWindow = 100;

    /** Recovered = windowed metric >= target x pre-fault level. */
    double recoveryTarget = 0.95;

    /** True when no events are scripted (the subsystem is a no-op). */
    bool empty() const { return events.empty(); }

    /** Convenience: append an event and return *this for chaining. */
    FaultPlan &add(double time, std::size_t node, FaultKind kind)
    {
        events.push_back({time, node, kind});
        return *this;
    }
};

/** Per-node failover ledger (reported only when a plan is active). */
struct NodeFailoverStats
{
    std::size_t node = 0;
    /** Requests this node lost to re-routing when it was killed. */
    std::uint64_t reroutedOut = 0;
    /** In-flight generations aborted by kills. */
    std::uint64_t abortedJobs = 0;
    /** Cache entries admitted as ring replicas of another node's
     *  generation (Replicated partitioning only). */
    std::uint64_t replicaAdmits = 0;
    /** Total seconds the node was dead (killed, pre-rejoin). */
    double downtimeS = 0.0;
    /** Total seconds the node spent draining (up, not admitting). */
    double drainedS = 0.0;
    /** Closed [down, up) intervals; an unrecovered node's final
     *  interval closes at the run's duration. */
    std::vector<std::pair<double, double>> downIntervals;
};

/** Cluster-level failover outcome of one run. */
struct FailoverReport
{
    /** True when the config carried a non-empty fault plan. */
    bool active = false;
    /** Requests re-routed off killed nodes, cluster-wide. */
    std::uint64_t rerouted = 0;
    /** Time of the first Kill event; -1 when the plan kills nothing. */
    double firstKillTime = -1.0;
    /** Hit rate over completions before the first kill. */
    double preFaultHitRate = 0.0;
    /** Completion throughput (per minute) before the first kill. */
    double preFaultThroughputPerMin = 0.0;
    /**
     * Seconds after the first kill until the hit rate over the
     * trailing recoveryWindow post-kill classifications first reaches
     * recoveryTarget x preFaultHitRate; -1 = never proven within the
     * run ("did not recover"). A cluster that never dips proves
     * recovery as soon as the first window fills.
     */
    double hitRateRecoveryS = -1.0;
    /**
     * The lost-capacity window: seconds after the first kill at which
     * cumulative post-kill completions last trailed recoveryTarget x
     * the cumulative work *arrived* since the kill — i.e. when
     * service finished catching back up with the offered load.
     * Arrivals-anchored (not pre-fault-rate-anchored) so the
     * post-trace queue drain closes the window instead of extending
     * it forever. 0 = service never fell behind; up to
     * (duration - kill) when the deficit is never repaid in-run.
     */
    double lostCapacityS = 0.0;
    /** Per-node ledgers, indexed by node. */
    std::vector<NodeFailoverStats> nodes;
};

/**
 * Compute the recovery half of a FailoverReport from a finished run's
 * records (completion-ordered, as MetricsCollector stores them).
 * Pre-fault levels cover [0, firstKill): hit rate by classification
 * stamp (the hit decision reflects cache state at classification),
 * capacity by completion stamp. Post-kill, the hit rate is scanned
 * over a trailing window of recoveryWindow classifications and the
 * capacity deficit cumulatively. Pure and deterministic — virtual
 * time in, virtual time out. Returns a report with only the recovery
 * fields populated; the caller owns the ledgers. No-op (all defaults)
 * when the plan has no Kill.
 */
FailoverReport analyzeFailover(const MetricsCollector &metrics,
                               const FaultPlan &plan);

/**
 * Validate a plan against a cluster size: nodes in range, event times
 * non-negative and non-decreasing, no Kill/Drain of the last alive
 * node, Rejoin only of a dead/draining node. Panics on violations —
 * plans are authored, not data-driven, so a bad plan is a bug.
 */
void validatePlan(const FaultPlan &plan, std::size_t num_nodes);

} // namespace modm::serving

#endif // MODM_SERVING_FAULT_HH

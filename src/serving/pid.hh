/**
 * @file
 * PID controller stabilising the global monitor's GPU allocation
 * (paper §5.3, Algorithm 1 lines 25-27).
 *
 * The heuristic allocation reacts instantly to measured load; the PID
 * term damps that reaction so allocation changes are gradual and the
 * cluster does not thrash model loads. Paper tuning: Kp = 0.6,
 * Ki = 0.05, Kd = 0.05.
 */

#ifndef MODM_SERVING_PID_HH
#define MODM_SERVING_PID_HH

namespace modm::serving {

/** PID gains. */
struct PidGains
{
    double kp = 0.6;
    double ki = 0.05;
    double kd = 0.05;
};

/**
 * Discrete PID controller with unit timestep (one monitor period).
 */
class PidController
{
  public:
    /** Construct with gains. */
    explicit PidController(PidGains gains = {});

    /**
     * One control step: returns the adjustment to apply toward
     * `setpoint` given the current `measured` value.
     */
    double compute(double setpoint, double measured);

    /** Reset integral and derivative state. */
    void reset();

    /** Accumulated integral term (for tests/telemetry). */
    double integral() const { return integral_; }

  private:
    PidGains gains_;
    double integral_ = 0.0;
    double prevError_ = 0.0;
    bool hasPrev_ = false;
};

} // namespace modm::serving

#endif // MODM_SERVING_PID_HH

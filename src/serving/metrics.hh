/**
 * @file
 * Serving metrics collector: per-request records plus the aggregates the
 * paper evaluates — throughput, p99 tail latency, SLO violation rates at
 * configurable multiples of the large model's inference latency, cache
 * hit rates, and the skipped-step distribution.
 */

#ifndef MODM_SERVING_METRICS_HH
#define MODM_SERVING_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hh"

namespace modm::serving {

/** How one request was served. */
enum class ServeKind
{
    FullGeneration,     ///< cache miss: full T-step generation
    Refinement,         ///< cache hit refined with a model
    DirectReturn,       ///< cache hit returned without refinement
};

/** One completed request. */
struct RequestRecord
{
    std::uint64_t promptId = 0;
    double arrival = 0.0;
    /**
     * Scheduler classification instant (cache lookup time). The hit
     * decision reflects cache state *here*, so failover recovery
     * analysis buckets hit rates by this stamp. Not part of the
     * digest line (whose format is frozen).
     */
    double classified = 0.0;
    double start = 0.0;    ///< dispatch to a worker (or direct return)
    double finish = 0.0;
    bool cacheHit = false;
    int k = 0;             ///< skipped steps (0 for full generation)
    double similarity = -1.0;
    ServeKind kind = ServeKind::FullGeneration;
    std::string servedBy;  ///< model name ("-" for direct returns)

    /** End-to-end latency. */
    double latency() const { return finish - arrival; }

    /** Queueing delay before dispatch. */
    double queueDelay() const { return start - arrival; }
};

/**
 * Collects request records and computes the paper's aggregates.
 */
class MetricsCollector
{
  public:
    /** Record one completed request. */
    void record(const RequestRecord &record);

    /** All records, in completion order. */
    const std::vector<RequestRecord> &records() const { return records_; }

    /** Number of completed requests. */
    std::size_t count() const { return records_.size(); }

    /** Fraction of requests served from cache. */
    double hitRate() const;

    /** Mean k over cache hits (0 when no hits). */
    double meanK() const;

    /** Distribution of k over cache hits: k -> fraction of hits. */
    std::map<int, double> kDistribution() const;

    /** p-th percentile of end-to-end latency. */
    double latencyPercentile(double p) const;

    /** Mean end-to-end latency. */
    double meanLatency() const;

    /**
     * Fraction of requests with latency above the threshold (the
     * paper's SLO violation rate; thresholds are 2x / 4x the large
     * model's full inference latency).
     */
    double sloViolationRate(double threshold_seconds) const;

    /** Completed requests per minute over the span of the records. */
    double throughputPerMinute() const;

    /** Time of the last completion (0 when empty). */
    double lastCompletion() const;

    /**
     * Completions per minute bucketed by wall-clock minute, for the
     * throughput-over-time figures (Fig. 10 / Fig. 17).
     */
    std::vector<double> completionsPerMinute(double duration) const;

  private:
    std::vector<RequestRecord> records_;
};

} // namespace modm::serving

#endif // MODM_SERVING_METRICS_HH

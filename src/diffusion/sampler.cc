#include "src/diffusion/sampler.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/embedding/tokenizer.hh"

namespace modm::diffusion {

Sampler::Sampler(std::uint64_t seed, SamplerConfig config,
                 ScheduleConfig schedule)
    : seed_(seed), config_(config), schedule_(schedule)
{
}

double
Sampler::lockAt(int k) const
{
    MODM_ASSERT(k >= 0 && k < schedule_.steps(),
                "lockAt: k=%d out of range", k);
    const double frac =
        static_cast<double>(k) / static_cast<double>(schedule_.steps());
    return std::min(config_.lockMax,
                    config_.lockBase + config_.lockSlope * frac);
}

std::uint64_t
Sampler::streamSeed(const ModelSpec &model, std::uint64_t prompt_id,
                    std::uint64_t base_id) const
{
    std::uint64_t h = seed_;
    h = mix64(h ^ embedding::tokenHash(model.name));
    h = mix64(h ^ prompt_id);
    h = mix64(h ^ (base_id + 0x9e3779b97f4a7c15ULL));
    return h;
}

Vec
Sampler::modelTarget(const ModelSpec &model,
                     const workload::Prompt &prompt) const
{
    // The target the model would converge to given unlimited steps: the
    // prompt's concept displaced by the model's adherence misalignment
    // plus this sampler's style direction. The displacement direction
    // is deterministic per (model, prompt) — the same prompt re-run on
    // the same model converges the same way.
    if (styleDir_.size() != prompt.visualConcept.size()) {
        Rng styleRng(mix64(seed_ ^ 0x57a1ed12ULL));
        styleDir_ = randomUnitVec(prompt.visualConcept.size(), styleRng);
    }
    Rng rng(streamSeed(model, prompt.id, 0));
    Vec target =
        jitterUnitVec(prompt.visualConcept, model.misalignment, rng);
    axpy(target, config_.styleBias, styleDir_);
    normalize(target);
    return target;
}

Image
Sampler::generate(const ModelSpec &model, const workload::Prompt &prompt,
                  int steps, double now)
{
    MODM_ASSERT(steps >= 1 && steps <= schedule_.steps(),
                "generate: steps=%d out of range", steps);
    Rng rng(streamSeed(model, prompt.id, 0));
    const Vec target = modelTarget(model, prompt);

    // Latent walk: start at pure noise, contract toward the target by
    // the schedule's sigma ratios. When `steps` is below the schedule
    // length the walk subsamples the schedule uniformly, as samplers do
    // when running distilled models at reduced step counts.
    Vec latent = randomUnitVec(target.size(), rng);
    scale(latent, schedule_.sigmaNorm(0) * 2.0);
    const int total = schedule_.steps();
    for (int i = 0; i < total; ++i) {
        const double ratio = schedule_.sigma(i + 1) /
            std::max(schedule_.sigma(i), 1e-12);
        // latent <- target + ratio * (latent - target)
        for (std::size_t d = 0; d < latent.size(); ++d) {
            latent[d] = static_cast<float>(
                target[d] + ratio * (latent[d] - target[d]));
        }
    }
    Vec content = latent;
    axpy(content, config_.contentNoise,
         randomUnitVec(content.size(), rng));
    normalize(content);

    Image img;
    img.id = ++nextImageId_;
    img.content = std::move(content);
    const double stepFraction =
        static_cast<double>(steps) /
        static_cast<double>(model.defaultSteps);
    const double undersample = stepFraction >= 1.0
        ? 0.0
        : config_.undersampleCoef * (1.0 - stepFraction);
    img.fidelity = std::clamp(
        model.baseFidelity - undersample +
            rng.normal(0.0, config_.fidelityNoise),
        0.0, 1.0);
    img.modelName = model.name;
    img.promptId = prompt.id;
    img.topicId = prompt.topicId;
    img.createdAt = now;
    img.stepsRun = steps;
    img.byteSize = model.imageBytes;
    img.refined = false;
    return img;
}

Image
Sampler::generate(const ModelSpec &model, const workload::Prompt &prompt,
                  double now)
{
    return generate(model, prompt, model.defaultSteps, now);
}

Image
Sampler::refine(const ModelSpec &model, const workload::Prompt &prompt,
                const Image &base, int k, double now)
{
    MODM_ASSERT(k >= 0 && k < schedule_.steps(),
                "refine: k=%d out of range", k);
    MODM_ASSERT(!base.content.empty(), "refine: base image has no content");
    Rng rng(streamSeed(model, prompt.id, base.id));

    // Paper Eq. 2: re-noise the retrieved image to the level of step k.
    const double sigmaK = schedule_.sigmaNorm(k);
    Vec latent(base.content.size());
    const Vec eps = randomUnitVec(latent.size(), rng);
    for (std::size_t d = 0; d < latent.size(); ++d) {
        latent[d] = static_cast<float>(
            sigmaK * eps[d] + (1.0 - sigmaK) * base.content[d]);
    }

    // Early steps (0..k-1) were skipped, so the structural decisions
    // baked into the retrieved image persist: the reachable target is a
    // lock-weighted blend of the model's own target and the base. The
    // blend of two unit vectors has norm < 1; renormalising it directly
    // would *increase* prompt alignment (an artifact of shrinkage), so
    // the lost norm is refilled with an orthogonal defect component:
    // structurally incompatible content becomes artifacts, it does not
    // vanish.
    const double lock = lockAt(k);
    const Vec own = modelTarget(model, prompt);
    Vec target = lerp(own, base.content, lock);
    const double blendNorm2 = dot(target, target);
    if (blendNorm2 < 1.0) {
        axpy(target, std::sqrt(1.0 - blendNorm2),
             randomUnitVec(target.size(), rng));
    }
    normalize(target);

    for (int i = k; i < schedule_.steps(); ++i) {
        const double ratio = schedule_.sigma(i + 1) /
            std::max(schedule_.sigma(i), 1e-12);
        for (std::size_t d = 0; d < latent.size(); ++d) {
            latent[d] = static_cast<float>(
                target[d] + ratio * (latent[d] - target[d]));
        }
    }
    Vec content = latent;
    axpy(content, config_.contentNoise,
         randomUnitVec(content.size(), rng));
    normalize(content);

    // Fidelity: the un-locked portion is regenerated at the refining
    // model's own fidelity; the locked portion inherits the base's
    // defects, minus what the remaining T-k steps clean up; late-stage
    // repainting of a mismatched image adds artifacts.
    const double mismatch =
        1.0 - cosine(prompt.visualConcept, base.content);
    const double clampedMismatch = std::max(mismatch, 0.0);
    const double artifacts = config_.artifactCoef * lock *
        clampedMismatch * clampedMismatch;
    const double stepsFrac =
        static_cast<double>(schedule_.steps() - k) /
        static_cast<double>(schedule_.steps());
    const double inheritedDefect = lock * (1.0 - base.fidelity) *
        (1.0 - config_.cleanupCoef * stepsFrac);
    const double ownDefect = (1.0 - lock) * (1.0 - model.baseFidelity);
    Image img;
    img.id = ++nextImageId_;
    img.content = std::move(content);
    img.fidelity = std::clamp(
        1.0 - ownDefect - inheritedDefect - artifacts +
            rng.normal(0.0, config_.fidelityNoise),
        0.0, 1.0);
    img.modelName = model.name;
    img.promptId = prompt.id;
    img.topicId = prompt.topicId;
    img.createdAt = now;
    img.stepsRun = schedule_.steps() - k;
    img.byteSize = model.imageBytes;
    img.refined = true;
    return img;
}

} // namespace modm::diffusion

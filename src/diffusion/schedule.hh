/**
 * @file
 * Noise schedules for the diffusion samplers.
 *
 * A schedule fixes the noise level sigma_i before each of the T
 * de-noising steps, from sigma_max (pure noise) down to ~0. MoDM's
 * cache-hit path re-enters the schedule at step k by mixing the retrieved
 * image with Gaussian noise at level sigma_{t_k} (paper Eq. 2), so the
 * schedule determines both how much of the retrieved image survives and
 * how much refinement the remaining T-k steps can do.
 */

#ifndef MODM_DIFFUSION_SCHEDULE_HH
#define MODM_DIFFUSION_SCHEDULE_HH

#include <vector>

namespace modm::diffusion {

/** Parameters of a Karras-style power-law schedule. */
struct ScheduleConfig
{
    /** Total number of de-noising steps (T). */
    int steps = 50;
    /** Initial (largest) noise level. */
    double sigmaMax = 14.6;
    /** Final (smallest) positive noise level. */
    double sigmaMin = 0.03;
    /** Power-law exponent (rho). */
    double rho = 7.0;
};

/**
 * Karras power-law noise schedule:
 *   sigma_i = (smax^(1/rho) + i/(T-1) * (smin^(1/rho) - smax^(1/rho)))^rho
 * plus sigma_T = 0 at the end of sampling.
 */
class NoiseSchedule
{
  public:
    /** Build the sigma table. */
    explicit NoiseSchedule(const ScheduleConfig &config = {});

    /** Number of steps T. */
    int steps() const { return config_.steps; }

    /** Noise level before step i, for i in [0, T]; sigma(T) == 0. */
    double sigma(int i) const;

    /**
     * Noise level at step i normalised to [0, 1] by sigma_max — the
     * blend weight used in the paper's Eq. 2 re-noising.
     */
    double sigmaNorm(int i) const;

    /**
     * Contraction factor of the residual (latent minus target) when
     * denoising from step `from` to completion: sigma(T-1)/sigma(from).
     * Close to 0 when entering early (full repaint possible), larger
     * when entering late.
     */
    double residualFactor(int from) const;

    /** Active configuration. */
    const ScheduleConfig &config() const { return config_; }

  private:
    ScheduleConfig config_;
    std::vector<double> sigmas_;
};

} // namespace modm::diffusion

#endif // MODM_DIFFUSION_SCHEDULE_HH

/**
 * @file
 * Step-accurate diffusion sampler simulator.
 *
 * The sampler reproduces the two generation paths the paper's serving
 * system uses:
 *
 * - generate(): full from-scratch sampling. The latent starts as pure
 *   noise and contracts toward the model's generation target over T
 *   schedule steps. The target is the prompt's visual concept perturbed
 *   by the model's prompt-adherence misalignment.
 *
 * - refine(): MoDM's cache-hit path. The retrieved image is re-noised to
 *   the schedule's level at step k (paper Eq. 2) and de-noised for the
 *   remaining T-k steps. Because early de-noising steps determine image
 *   *structure* and later steps only refine detail (paper §3.3), the
 *   reachable target is a blend of the model's own target and the
 *   retrieved image's content, with the retrieved structure "locked in"
 *   more strongly for larger k. Refining a structurally mismatched image
 *   late also produces artifacts, captured as a fidelity penalty
 *   proportional to lock x mismatch.
 *
 * All stochasticity is deterministic in (sampler seed, prompt id, model
 * name, base image id), so repeated runs of an experiment are bitwise
 * reproducible.
 */

#ifndef MODM_DIFFUSION_SAMPLER_HH
#define MODM_DIFFUSION_SAMPLER_HH

#include <cstdint>

#include "src/common/log.hh"
#include "src/diffusion/image.hh"
#include "src/diffusion/model_spec.hh"
#include "src/diffusion/schedule.hh"
#include "src/workload/prompt.hh"

namespace modm::diffusion {

/** Tunables of the refinement response model. */
struct SamplerConfig
{
    /** Structure lock at k = 0 (some structure persists immediately). */
    double lockBase = 0.15;
    /** Additional lock per unit of k/T. */
    double lockSlope = 1.05;
    /** Upper bound on the structure lock. */
    double lockMax = 0.90;
    /**
     * Fidelity penalty coefficient for refining a mismatched image
     * late: penalty = artifactCoef * lock(k) * mismatch^2 where
     * mismatch = 1 - cos(prompt, base). Quadratic in mismatch: the
     * small residual drift of an admitted cache hit costs little, while
     * repainting a structurally wrong image late produces severe
     * artifacts — the regime the retrieval threshold exists to avoid.
     */
    double artifactCoef = 2.2;
    /**
     * Fraction of *inherited* defects the remaining T-k de-noising
     * steps clean up (scaled by (T-k)/T). Without cleanup, repeated
     * refine-from-refined chains (the cache-all policy) would compound
     * fidelity loss generation over generation; the paper's §A.6
     * measurement shows reuse is quality-stable, which this term
     * reproduces.
     */
    double cleanupCoef = 0.8;
    /** Norm of residual per-generation content noise. */
    double contentNoise = 0.05;
    /** Std-dev of per-image fidelity noise. */
    double fidelityNoise = 0.01;
    /** Fidelity penalty per unit of missing steps below the default. */
    double undersampleCoef = 0.35;
    /**
     * Norm of the per-sampler-instance style direction added to every
     * generation target. Two independently seeded samplers (e.g. the
     * serving run vs the reference-set run) produce slightly different
     * output distributions, giving the non-zero same-model FID floor
     * the paper reports (Vanilla FID ~6 against its own reference).
     */
    double styleBias = 0.28;
};

/**
 * Deterministic sampler over a shared noise schedule.
 */
class Sampler
{
  public:
    /** Construct with a seed for all generation noise. */
    explicit Sampler(std::uint64_t seed, SamplerConfig config = {},
                     ScheduleConfig schedule = {});

    /**
     * Full from-scratch generation.
     *
     * @param model Model to run.
     * @param prompt Prompt to serve.
     * @param steps De-noising steps to run (usually model.defaultSteps).
     * @param now Simulated time stamp recorded on the image.
     */
    Image generate(const ModelSpec &model, const workload::Prompt &prompt,
                   int steps, double now);

    /** Full generation with the model's default step count. */
    Image generate(const ModelSpec &model, const workload::Prompt &prompt,
                   double now);

    /**
     * Cache-hit refinement: re-noise `base` to schedule step k, then
     * de-noise the remaining T-k steps with `model` (paper §5.1).
     *
     * @param model Model performing the refinement (usually small).
     * @param prompt The *new* prompt being served.
     * @param base The retrieved cached image.
     * @param k Number of de-noising steps skipped (k in the paper's K).
     * @param now Simulated time stamp recorded on the image.
     */
    Image refine(const ModelSpec &model, const workload::Prompt &prompt,
                 const Image &base, int k, double now);

    /** Structure-lock factor for entering the schedule at step k. */
    double lockAt(int k) const;

    /** The shared noise schedule. */
    const NoiseSchedule &schedule() const { return schedule_; }

    /** Active configuration. */
    const SamplerConfig &config() const { return config_; }

    /** Number of images produced so far. */
    std::uint64_t imagesProduced() const
    {
        return nextImageId_ - idBase_;
    }

    /**
     * Start image ids at `base` instead of 0. Multi-node clusters give
     * each node a disjoint id range so content replicated across node
     * caches never collides (ids must be unique within one cache).
     * Must be called before the first generation; node 0 keeps base 0,
     * preserving single-node ids exactly.
     */
    void offsetImageIds(std::uint64_t base)
    {
        MODM_ASSERT(nextImageId_ == idBase_,
                    "image-id base must be set before generating");
        nextImageId_ = base;
        idBase_ = base;
    }

  private:
    /** The model's generation target for a prompt (deterministic). */
    Vec modelTarget(const ModelSpec &model,
                    const workload::Prompt &prompt) const;

    /** Per-image deterministic noise stream. */
    std::uint64_t streamSeed(const ModelSpec &model,
                             std::uint64_t prompt_id,
                             std::uint64_t base_id) const;

    std::uint64_t seed_;
    SamplerConfig config_;
    NoiseSchedule schedule_;
    mutable Vec styleDir_;  // built lazily once the dimension is known
    std::uint64_t nextImageId_ = 0;
    std::uint64_t idBase_ = 0;
};

} // namespace modm::diffusion

#endif // MODM_DIFFUSION_SAMPLER_HH

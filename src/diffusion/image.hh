/**
 * @file
 * Generated image artifact.
 *
 * The simulator's stand-in for a 1024x1024 PNG: the visual content is a
 * unit vector in concept space (what the image depicts), and fidelity is
 * a scalar in [0, 1] capturing realism / freedom from small-model
 * defects. Both are measurable by downstream components exactly the way
 * a real image is: the image encoder embeds the content (with
 * fidelity-dependent noise) and the quality metrics score content
 * alignment and the fidelity distribution.
 */

#ifndef MODM_DIFFUSION_IMAGE_HH
#define MODM_DIFFUSION_IMAGE_HH

#include <cstdint>
#include <string>

#include "src/common/vec.hh"

namespace modm::diffusion {

/** One generated image. */
struct Image
{
    /** Unique image id (assigned by the sampler). */
    std::uint64_t id = 0;
    /** Visual content (unit vector in concept space). */
    Vec content;
    /** Realism in [0, 1]; large models score higher. */
    double fidelity = 0.0;
    /** Name of the model that produced (or last refined) the image. */
    std::string modelName;
    /** Prompt that produced the image. */
    std::uint64_t promptId = 0;
    /** Topic of that prompt (workload ground truth, for diagnostics). */
    std::uint32_t topicId = 0;
    /** Simulated wall-clock seconds when generation finished. */
    double createdAt = 0.0;
    /** Number of de-noising steps actually run. */
    int stepsRun = 0;
    /** Compressed size in bytes (storage accounting). */
    double byteSize = 0.0;
    /** True when produced by refining a cached image. */
    bool refined = false;
};

} // namespace modm::diffusion

#endif // MODM_DIFFUSION_IMAGE_HH

/**
 * @file
 * Diffusion model specifications.
 *
 * Each ModelSpec captures everything the serving system needs to know
 * about a model: per-step inference latency per GPU type, per-step power,
 * output fidelity/adherence, and parameter count. The numbers are
 * calibrated so the serving-level ratios match the paper's measurements:
 * e.g. SD3.5L takes ~60 s per 1024x1024 image on an A40 (about 1 request
 * per minute per GPU — the Vanilla baseline's measured ceiling), SDXL
 * steps cost ~0.35x and SANA ~0.15x of an SD3.5L step, and SD3.5L-Turbo
 * runs 10 steps instead of 50.
 */

#ifndef MODM_DIFFUSION_MODEL_SPEC_HH
#define MODM_DIFFUSION_MODEL_SPEC_HH

#include <string>
#include <vector>

namespace modm::diffusion {

/** GPU types the paper deploys on. */
enum class GpuKind
{
    A40,    ///< NVIDIA A40, 48 GB
    MI210,  ///< AMD MI210, 64 GB
};

/** Printable GPU name. */
const char *gpuName(GpuKind kind);

/** Model families (for the cross-family serving experiments). */
enum class ModelFamily
{
    StableDiffusion,
    Flux,
    Sana,
};

/** Static description of one diffusion model. */
struct ModelSpec
{
    /** Model name as used in the paper ("SD3.5L", "SDXL", ...). */
    std::string name;
    /** Model family. */
    ModelFamily family = ModelFamily::StableDiffusion;
    /** Parameter count in billions. */
    double paramsB = 0.0;
    /** Default number of de-noising steps (T). */
    int defaultSteps = 50;
    /** Seconds per de-noising step on an A40. */
    double stepLatencyA40 = 0.0;
    /** Seconds per de-noising step on an MI210. */
    double stepLatencyMI210 = 0.0;
    /** Average GPU power draw while stepping (watts). */
    double stepPowerW = 0.0;
    /**
     * Base output fidelity in [0, 1]: realism / freedom from defects of
     * from-scratch generations. Drives the FID-style metrics.
     */
    double baseFidelity = 0.0;
    /**
     * Prompt-adherence misalignment: the norm of the residual between
     * the model's generation target and the true prompt concept. Lower
     * is better alignment; drives the CLIP-style metrics.
     */
    double misalignment = 0.0;
    /** Bytes of one compressed output image (PNG/JPEG model). */
    double imageBytes = 1.4e6;
    /** Bytes of one cached latent *set* (Nirvana-style multi-k). */
    double latentSetBytes = 2.5e6;
    /** Seconds to load this model onto an idle GPU worker. */
    double loadLatency = 20.0;

    /** Seconds per step on the given GPU. */
    double stepLatency(GpuKind kind) const;

    /** Seconds for a full defaultSteps generation on the given GPU. */
    double fullLatency(GpuKind kind) const;

    /**
     * Profiled throughput in requests/minute/GPU for full generations
     * (the paper's P_large / P_small monitor inputs).
     */
    double throughputPerMin(GpuKind kind) const;

    /** Energy of running `steps` de-noising steps (joules). */
    double stepEnergyJ(GpuKind kind, int steps) const;
};

/** Registry of the paper's models. @{ */
ModelSpec sd35Large();
ModelSpec flux1Dev();
ModelSpec sdxl();
ModelSpec sana();
ModelSpec sd35LargeTurbo();
/** @} */

/** All registry models. */
std::vector<ModelSpec> allModels();

/** Look up a registry model by name; fatal() when unknown. */
ModelSpec modelByName(const std::string &name);

} // namespace modm::diffusion

#endif // MODM_DIFFUSION_MODEL_SPEC_HH

#include "src/diffusion/model_spec.hh"

#include "src/common/log.hh"

namespace modm::diffusion {

const char *
gpuName(GpuKind kind)
{
    switch (kind) {
      case GpuKind::A40:
        return "A40";
      case GpuKind::MI210:
        return "MI210";
    }
    panic("unknown GpuKind");
}

double
ModelSpec::stepLatency(GpuKind kind) const
{
    switch (kind) {
      case GpuKind::A40:
        return stepLatencyA40;
      case GpuKind::MI210:
        return stepLatencyMI210;
    }
    panic("unknown GpuKind");
}

double
ModelSpec::fullLatency(GpuKind kind) const
{
    return defaultSteps * stepLatency(kind);
}

double
ModelSpec::throughputPerMin(GpuKind kind) const
{
    return 60.0 / fullLatency(kind);
}

double
ModelSpec::stepEnergyJ(GpuKind kind, int steps) const
{
    return stepPowerW * stepLatency(kind) * steps;
}

ModelSpec
sd35Large()
{
    ModelSpec m;
    m.name = "SD3.5L";
    m.family = ModelFamily::StableDiffusion;
    m.paramsB = 8.0;
    m.defaultSteps = 50;
    // ~60 s per image on an A40 => ~1 request/min/GPU, the Vanilla
    // ceiling behind Fig. 12's 4-GPU results. MI210s profile slower for
    // this stack (16 of them saturate near 10 req/min in Fig. 10).
    m.stepLatencyA40 = 1.20;
    m.stepLatencyMI210 = 1.92;
    m.stepPowerW = 300.0;
    m.baseFidelity = 0.965;
    m.misalignment = 0.51;
    return m;
}

ModelSpec
flux1Dev()
{
    ModelSpec m;
    m.name = "FLUX";
    m.family = ModelFamily::Flux;
    m.paramsB = 12.0;
    m.defaultSteps = 50;
    m.stepLatencyA40 = 1.65;
    m.stepLatencyMI210 = 2.60;
    m.stepPowerW = 320.0;
    m.baseFidelity = 0.968;
    // FLUX's guidance-distilled objective trades a little prompt
    // adherence (lower CLIP in Table 3) for fidelity.
    m.misalignment = 0.64;
    return m;
}

ModelSpec
sdxl()
{
    ModelSpec m;
    m.name = "SDXL";
    m.family = ModelFamily::StableDiffusion;
    m.paramsB = 3.0;
    m.defaultSteps = 50;
    // ~0.35x of an SD3.5L step on the CUDA stack; the ROCm stack is
    // relatively less optimized for SDXL (the paper notes profiling
    // varies across software stacks), which is what pushes MoDM-SDXL
    // past its ceiling near 22 req/min on 16 MI210s (Fig. 10).
    m.stepLatencyA40 = 0.42;
    m.stepLatencyMI210 = 0.80;
    m.stepPowerW = 260.0;
    // Strong prompt adherence (Table 2 CLIP above SD3.5L) but visibly
    // worse realism (FID ~16 vs ~6).
    m.baseFidelity = 0.845;
    m.misalignment = 0.45;
    return m;
}

ModelSpec
sana()
{
    ModelSpec m;
    m.name = "SANA";
    m.family = ModelFamily::Sana;
    m.paramsB = 1.6;
    m.defaultSteps = 50;
    // Linear-attention transformer: ~0.15x of an SD3.5L step.
    m.stepLatencyA40 = 0.18;
    m.stepLatencyMI210 = 0.29;
    m.stepPowerW = 220.0;
    m.baseFidelity = 0.790;
    m.misalignment = 0.55;
    return m;
}

ModelSpec
sd35LargeTurbo()
{
    ModelSpec m;
    m.name = "SD3.5L-Turbo";
    m.family = ModelFamily::StableDiffusion;
    m.paramsB = 8.0;
    // Distilled: 10 steps at full-model per-step cost.
    m.defaultSteps = 10;
    m.stepLatencyA40 = 1.20;
    m.stepLatencyMI210 = 1.92;
    m.stepPowerW = 300.0;
    m.baseFidelity = 0.855;
    m.misalignment = 0.66;
    return m;
}

std::vector<ModelSpec>
allModels()
{
    return {sd35Large(), flux1Dev(), sdxl(), sana(), sd35LargeTurbo()};
}

ModelSpec
modelByName(const std::string &name)
{
    for (auto &m : allModels()) {
        if (m.name == name)
            return m;
    }
    fatal("unknown model name: %s", name.c_str());
}

} // namespace modm::diffusion

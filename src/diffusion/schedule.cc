#include "src/diffusion/schedule.hh"

#include <cmath>

#include "src/common/log.hh"

namespace modm::diffusion {

NoiseSchedule::NoiseSchedule(const ScheduleConfig &config)
    : config_(config)
{
    MODM_ASSERT(config_.steps >= 2, "schedule needs at least two steps");
    MODM_ASSERT(config_.sigmaMax > config_.sigmaMin &&
                config_.sigmaMin > 0.0,
                "schedule sigma range invalid");
    sigmas_.resize(config_.steps + 1);
    const double hiRoot = std::pow(config_.sigmaMax, 1.0 / config_.rho);
    const double loRoot = std::pow(config_.sigmaMin, 1.0 / config_.rho);
    for (int i = 0; i < config_.steps; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(config_.steps - 1);
        sigmas_[i] = std::pow(hiRoot + frac * (loRoot - hiRoot),
                              config_.rho);
    }
    sigmas_[config_.steps] = 0.0;
}

double
NoiseSchedule::sigma(int i) const
{
    MODM_ASSERT(i >= 0 && i <= config_.steps,
                "schedule index %d out of range", i);
    return sigmas_[i];
}

double
NoiseSchedule::sigmaNorm(int i) const
{
    return sigma(i) / sigmas_[0];
}

double
NoiseSchedule::residualFactor(int from) const
{
    MODM_ASSERT(from >= 0 && from < config_.steps,
                "residualFactor start %d out of range", from);
    return sigmas_[config_.steps - 1] / sigmas_[from];
}

} // namespace modm::diffusion

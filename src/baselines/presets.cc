#include "src/baselines/presets.hh"

namespace modm::baselines {

namespace {

serving::ServingConfig
base(const diffusion::ModelSpec &large, const PresetParams &params)
{
    serving::ServingConfig config;
    config.largeModel = large;
    config.numWorkers = params.numWorkers;
    config.gpu = params.gpu;
    config.cacheCapacity = params.cacheCapacity;
    config.latentCacheCapacity = params.cacheCapacity;
    config.seed = params.seed;
    config.keepOutputs = params.keepOutputs;
    return config;
}

} // namespace

serving::ServingConfig
vanilla(const diffusion::ModelSpec &large, const PresetParams &params)
{
    auto config = base(large, params);
    config.kind = serving::SystemKind::Vanilla;
    config.smallModels.clear();
    return config;
}

serving::ServingConfig
nirvana(const diffusion::ModelSpec &large, const PresetParams &params)
{
    auto config = base(large, params);
    config.kind = serving::SystemKind::Nirvana;
    config.smallModels.clear();
    return config;
}

serving::ServingConfig
pinecone(const diffusion::ModelSpec &large, const PresetParams &params)
{
    auto config = base(large, params);
    config.kind = serving::SystemKind::Pinecone;
    config.smallModels.clear();
    return config;
}

serving::ServingConfig
standalone(const diffusion::ModelSpec &model, const PresetParams &params)
{
    // The "large" model slot is unused for dispatch but still defines
    // the SLO reference; keep it for latency profiling symmetry.
    auto config = base(model, params);
    config.kind = serving::SystemKind::StandaloneSmall;
    config.smallModels = {model};
    return config;
}

serving::ServingConfig
modm(const diffusion::ModelSpec &large, const diffusion::ModelSpec &small,
     const PresetParams &params)
{
    auto config = base(large, params);
    config.kind = serving::SystemKind::MoDM;
    config.smallModels = {small};
    return config;
}

serving::ServingConfig
modmMulti(const diffusion::ModelSpec &large,
          const std::vector<diffusion::ModelSpec> &smalls,
          const PresetParams &params)
{
    auto config = base(large, params);
    config.kind = serving::SystemKind::MoDM;
    config.smallModels = smalls;
    return config;
}

} // namespace modm::baselines

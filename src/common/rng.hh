/**
 * @file
 * Deterministic pseudo-random number generation for the MoDM simulators.
 *
 * All stochastic behaviour in the repository (workload generation, diffusion
 * noise, arrival processes) flows through Rng so that every experiment is
 * reproducible from a single 64-bit seed. The generator is xoshiro256++,
 * seeded via splitmix64 as its authors recommend.
 */

#ifndef MODM_COMMON_RNG_HH
#define MODM_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace modm {

/** One splitmix64 step; used for seeding and cheap hash mixing. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless mix of a 64-bit value (one splitmix64 round). */
std::uint64_t mix64(std::uint64_t value);

/**
 * Deterministic random number generator (xoshiro256++) with the
 * distributions the simulators need.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Poisson-distributed count with the given mean. */
    std::uint64_t poisson(double mean);

    /** Geometric number of failures before success; p in (0, 1]. */
    std::uint64_t geometric(double p);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Fork an independent generator (stream-split by counter). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
    std::uint64_t forkCounter_;
};

/**
 * Exact Zipf distribution over [0, n) with exponent s, sampled by inverse
 * transform over a precomputed CDF. Setup is O(n) and sampling is
 * O(log n); the workload generators construct one per topic universe, so
 * the setup cost is paid once.
 */
class ZipfDistribution
{
  public:
    /** Build the CDF for support size n and exponent s > 0. */
    ZipfDistribution(std::uint64_t n, double s);

    /** Draw one value in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    /** Probability mass of value k. */
    double prob(std::uint64_t k) const;

    /** Support size. */
    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace modm

#endif // MODM_COMMON_RNG_HH

#include "src/common/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "src/common/log.hh"

namespace modm {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MODM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    MODM_ASSERT(cells.size() == headers_.size(),
                "table row width %zu != header width %zu",
                cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::fmt(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emitRow(headers_);
    std::size_t ruleWidth = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        ruleWidth += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(ruleWidth, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return out.str();
}

std::string
Table::render(const std::string &title) const
{
    return "\n== " + title + " ==\n" + toString();
}

void
Table::print(const std::string &title) const
{
    std::fputs(render(title).c_str(), stdout);
    std::fflush(stdout);
}

} // namespace modm

#include "src/common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace modm {

namespace {

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/** Threshold resolved once from MODM_LOG; Info when unset. */
LogLevel
envLogLevel()
{
    const char *env = std::getenv("MODM_LOG");
    if (env == nullptr || env[0] == '\0')
        return LogLevel::Info;
    return parseLogLevel(env);
}

LogLevel &
activeLogLevel()
{
    static LogLevel level = envLogLevel();
    return level;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

LogLevel
parseLogLevel(const char *text)
{
    if (std::strcmp(text, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(text, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(text, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(text, "error") == 0)
        return LogLevel::Error;
    fatal("MODM_LOG must be debug|info|warn|error, not \"%s\"", text);
}

LogLevel
logLevel()
{
    return activeLogLevel();
}

void
setLogLevel(LogLevel level)
{
    activeLogLevel() = level;
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
        static_cast<int>(activeLogLevel());
}

void
logAt(LogLevel level, double clock, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;
    if (clock >= 0.0)
        std::fprintf(stderr, "[t=%.6f] %s: ", clock,
                     logLevelName(level));
    else
        std::fprintf(stderr, "%s: ", logLevelName(level));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
assertFail(const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion failed (%s): ", cond);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!logEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace modm

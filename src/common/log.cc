#include "src/common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace modm {

namespace {

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
assertFail(const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion failed (%s): ", cond);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace modm

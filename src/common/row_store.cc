#include "src/common/row_store.hh"

#include <cstring>

#include "src/common/log.hh"

namespace modm {

namespace {

float *
allocAligned(std::size_t floats)
{
    return static_cast<float *>(
        ::operator new[](floats * sizeof(float), std::align_val_t{64}));
}

} // namespace

// ----------------------------------------------------------- AlignedRows

void
AlignedRows::reset(std::size_t dim)
{
    MODM_ASSERT(dim > 0, "AlignedRows needs a positive dim");
    dim_ = dim;
    stride_ = alignedRowStride(dim);
    size_ = 0;
    capacity_ = 0;
    data_.reset();
}

void
AlignedRows::grow(std::size_t rows)
{
    std::size_t cap = capacity_ ? capacity_ : 16;
    while (cap < rows)
        cap *= 2;
    std::unique_ptr<float[], Free> fresh(allocAligned(cap * stride_));
    if (size_ > 0) {
        std::memcpy(fresh.get(), data_.get(),
                    size_ * stride_ * sizeof(float));
    }
    data_ = std::move(fresh);
    capacity_ = cap;
}

void
AlignedRows::reserve(std::size_t rows)
{
    if (rows > capacity_)
        grow(rows);
}

std::size_t
AlignedRows::pushBack(const float *src)
{
    MODM_ASSERT(dim_ > 0, "AlignedRows::reset before pushBack");
    if (size_ == capacity_)
        grow(size_ + 1);
    float *dst = data_.get() + size_ * stride_;
    std::memcpy(dst, src, dim_ * sizeof(float));
    // Zero the pad once so the buffer never holds indeterminate bytes
    // (the kernels score exactly dim elements and skip the pad).
    for (std::size_t i = dim_; i < stride_; ++i)
        dst[i] = 0.0f;
    return size_++;
}

void
AlignedRows::swapRemove(std::size_t slot)
{
    MODM_ASSERT(slot < size_, "AlignedRows::swapRemove out of range");
    const std::size_t last = size_ - 1;
    if (slot != last) {
        std::memcpy(data_.get() + slot * stride_,
                    data_.get() + last * stride_,
                    stride_ * sizeof(float));
    }
    size_ = last;
}

// ------------------------------------------------------------- RowStore

RowStore::RowStore(std::size_t dim, std::size_t rowsPerChunk)
    : dim_(dim), stride_(alignedRowStride(dim)),
      rowsPerChunk_(rowsPerChunk)
{
    MODM_ASSERT(dim > 0, "RowStore needs a positive dim");
    MODM_ASSERT(rowsPerChunk > 0, "RowStore needs rows per chunk");
}

RowStore::Slot
RowStore::insert(const float *src)
{
    Slot slot;
    if (!freelist_.empty()) {
        slot = freelist_.back();
        freelist_.pop_back();
    } else {
        slot = static_cast<Slot>(next_++);
        if (slot / rowsPerChunk_ == chunks_.size())
            chunks_.emplace_back(allocAligned(rowsPerChunk_ * stride_));
    }
    float *dst = row(slot);
    std::memcpy(dst, src, dim_ * sizeof(float));
    for (std::size_t i = dim_; i < stride_; ++i)
        dst[i] = 0.0f;
    ++live_;
    return slot;
}

void
RowStore::release(Slot slot)
{
    MODM_ASSERT(slot < next_, "RowStore::release of unknown slot");
    MODM_ASSERT(live_ > 0, "RowStore::release with no live rows");
    freelist_.push_back(slot);
    --live_;
}

void
RowStore::clear()
{
    chunks_.clear();
    freelist_.clear();
    next_ = 0;
    live_ = 0;
}

} // namespace modm

#include "src/common/kernels.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define MODM_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace modm::kernels {
namespace {

// ---------------------------------------------------------------------
// Scalar tier: the 4-stripe accumulation written as the naive nested
// loop. Stripe j collects elements i % 4 == j in i order — the exact
// sums (and roundings) of every other default tier, so this is the
// reference the CI kernels job diffs against.
// ---------------------------------------------------------------------

double
dotScalar(const float *a, const float *b, std::size_t n)
{
    double stripe[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        for (std::size_t j = 0; j < 4; ++j) {
            stripe[j] += static_cast<double>(a[i + j]) *
                static_cast<double>(b[i + j]);
        }
    }
    double acc = (stripe[0] + stripe[1]) + (stripe[2] + stripe[3]);
    for (; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

void
dot8Scalar(const float *q, const float *rows, std::size_t stride,
           const float *next, std::size_t n, double *out)
{
    (void)next;
    for (std::size_t r = 0; r < 8; ++r)
        out[r] = dotScalar(q, rows + r * stride, n);
}

void
gather8Scalar(const float *q, const float *const *rows, std::size_t n,
              double *out)
{
    for (std::size_t r = 0; r < 8; ++r)
        out[r] = dotScalar(q, rows[r], n);
}

// ---------------------------------------------------------------------
// Unrolled tier: the PR 5 hot loop (four independent accumulators, one
// pass). Same stripes, same combine, same remainder as scalar —
// bit-identical, just friendlier to the scheduler.
// ---------------------------------------------------------------------

double
dotUnrolled(const float *a, const float *b, std::size_t n)
{
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        acc1 += static_cast<double>(a[i + 1]) *
            static_cast<double>(b[i + 1]);
        acc2 += static_cast<double>(a[i + 2]) *
            static_cast<double>(b[i + 2]);
        acc3 += static_cast<double>(a[i + 3]) *
            static_cast<double>(b[i + 3]);
    }
    double acc = (acc0 + acc1) + (acc2 + acc3);
    for (; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

void
dot8Unrolled(const float *q, const float *rows, std::size_t stride,
             const float *next, std::size_t n, double *out)
{
    (void)next;
    for (std::size_t r = 0; r < 8; ++r)
        out[r] = dotUnrolled(q, rows + r * stride, n);
}

void
gather8Unrolled(const float *q, const float *const *rows, std::size_t n,
                double *out)
{
    for (std::size_t r = 0; r < 8; ++r)
        out[r] = dotUnrolled(q, rows[r], n);
}

#ifdef MODM_KERNELS_X86

// ---------------------------------------------------------------------
// AVX2 tier. Each __m256d accumulator IS the four stripes: lane j of
// `_mm256_fmadd_pd(cvtps_pd(row), cvtps_pd(query), acc)` performs
// stripe j's `acc += (double)a * (double)b` with a single rounding
// (the float product is exact in double), so sums stay bit-identical
// to the scalar tiers. The speed comes from the 8-row block — the
// query converts once per 4 elements instead of once per row — and
// from prefetching the next block: a 1M x 512 scan streams 2 GB and
// is bandwidth-bound, so hiding the miss latency beats widening the
// ALUs (measured 2.3x over the unrolled tier on this class of VM).
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double
dotAvx2(const float *a, const float *b, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
        const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
        acc = _mm256_fmadd_pd(va, vb, acc);
    }
    alignas(32) double l[4];
    _mm256_store_pd(l, acc);
    double out = (l[0] + l[1]) + (l[2] + l[3]);
    for (; i < n; ++i)
        out += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return out;
}

__attribute__((target("avx2,fma"))) void
dot8Avx2(const float *q, const float *rows, std::size_t stride,
         const float *next, std::size_t n, double *out)
{
    __m256d a[8];
    for (int r = 0; r < 8; ++r)
        a[r] = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vq = _mm256_cvtps_pd(_mm_loadu_ps(q + i));
        // Walk the next block at 2x the consumption rate so its lines
        // arrive before the current block's arithmetic runs out.
        if (next) {
            _mm_prefetch(reinterpret_cast<const char *>(next + i * 8),
                         _MM_HINT_T0);
        }
        for (int r = 0; r < 8; ++r) {
            a[r] = _mm256_fmadd_pd(
                _mm256_cvtps_pd(_mm_loadu_ps(rows + r * stride + i)), vq,
                a[r]);
        }
    }
    for (int r = 0; r < 8; ++r) {
        alignas(32) double l[4];
        _mm256_store_pd(l, a[r]);
        double acc = (l[0] + l[1]) + (l[2] + l[3]);
        for (std::size_t j = i; j < n; ++j) {
            acc += static_cast<double>(q[j]) *
                static_cast<double>(rows[r * stride + j]);
        }
        out[r] = acc;
    }
}

__attribute__((target("avx2,fma"))) void
gather8Avx2(const float *q, const float *const *rows, std::size_t n,
            double *out)
{
    __m256d a[8];
    for (int r = 0; r < 8; ++r)
        a[r] = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vq = _mm256_cvtps_pd(_mm_loadu_ps(q + i));
        for (int r = 0; r < 8; ++r) {
            a[r] = _mm256_fmadd_pd(
                _mm256_cvtps_pd(_mm_loadu_ps(rows[r] + i)), vq, a[r]);
        }
    }
    for (int r = 0; r < 8; ++r) {
        alignas(32) double l[4];
        _mm256_store_pd(l, a[r]);
        double acc = (l[0] + l[1]) + (l[2] + l[3]);
        for (std::size_t j = i; j < n; ++j) {
            acc += static_cast<double>(q[j]) *
                static_cast<double>(rows[r][j]);
        }
        out[r] = acc;
    }
}

#ifdef MODM_NATIVE

// ---------------------------------------------------------------------
// AVX-512 tier (MODM_NATIVE builds only; never auto-selected). Each
// row's __m512d holds TWO interleaved 4-stripe halves — lane layout
// [s0 s1 s2 s3 | s0' s1' s2' s3'] — reduced as s_j = half0[j] +
// half1[j], then (s0+s1)+(s2+s3). Splitting each stripe into two
// sub-chains changes the rounding order, so this tier is ≤1-ulp per
// element rather than bit-identical; it exists for wide-vector
// machines where the extra width wins despite that.
// ---------------------------------------------------------------------

__attribute__((target("avx512f"))) double
reduce512(__m512d acc)
{
    alignas(64) double l[8];
    _mm512_store_pd(l, acc);
    const double s0 = l[0] + l[4];
    const double s1 = l[1] + l[5];
    const double s2 = l[2] + l[6];
    const double s3 = l[3] + l[7];
    return (s0 + s1) + (s2 + s3);
}

__attribute__((target("avx512f"))) double
dotAvx512(const float *a, const float *b, std::size_t n)
{
    __m512d acc = _mm512_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d va = _mm512_cvtps_pd(_mm256_loadu_ps(a + i));
        const __m512d vb = _mm512_cvtps_pd(_mm256_loadu_ps(b + i));
        acc = _mm512_fmadd_pd(va, vb, acc);
    }
    double out = reduce512(acc);
    for (; i < n; ++i)
        out += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return out;
}

__attribute__((target("avx512f"))) void
dot8Avx512(const float *q, const float *rows, std::size_t stride,
           const float *next, std::size_t n, double *out)
{
    __m512d a[8];
    for (int r = 0; r < 8; ++r)
        a[r] = _mm512_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d vq = _mm512_cvtps_pd(_mm256_loadu_ps(q + i));
        if (next) {
            _mm_prefetch(reinterpret_cast<const char *>(next + i * 8),
                         _MM_HINT_T0);
        }
        for (int r = 0; r < 8; ++r) {
            a[r] = _mm512_fmadd_pd(
                _mm512_cvtps_pd(_mm256_loadu_ps(rows + r * stride + i)),
                vq, a[r]);
        }
    }
    for (int r = 0; r < 8; ++r) {
        double acc = reduce512(a[r]);
        for (std::size_t j = i; j < n; ++j) {
            acc += static_cast<double>(q[j]) *
                static_cast<double>(rows[r * stride + j]);
        }
        out[r] = acc;
    }
}

__attribute__((target("avx512f"))) void
gather8Avx512(const float *q, const float *const *rows, std::size_t n,
              double *out)
{
    __m512d a[8];
    for (int r = 0; r < 8; ++r)
        a[r] = _mm512_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d vq = _mm512_cvtps_pd(_mm256_loadu_ps(q + i));
        for (int r = 0; r < 8; ++r) {
            a[r] = _mm512_fmadd_pd(
                _mm512_cvtps_pd(_mm256_loadu_ps(rows[r] + i)), vq, a[r]);
        }
    }
    for (int r = 0; r < 8; ++r) {
        double acc = reduce512(a[r]);
        for (std::size_t j = i; j < n; ++j) {
            acc += static_cast<double>(q[j]) *
                static_cast<double>(rows[r][j]);
        }
        out[r] = acc;
    }
}

#endif // MODM_NATIVE
#endif // MODM_KERNELS_X86

// ---------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------

struct Ops
{
    double (*dot1)(const float *, const float *, std::size_t);
    void (*dot8)(const float *, const float *, std::size_t,
                 const float *, std::size_t, double *);
    void (*gather8)(const float *, const float *const *, std::size_t,
                    double *);
};

const Ops &
opsFor(Tier tier)
{
    static const Ops scalar{dotScalar, dot8Scalar, gather8Scalar};
    static const Ops unrolled{dotUnrolled, dot8Unrolled,
                              gather8Unrolled};
#ifdef MODM_KERNELS_X86
    static const Ops avx2{dotAvx2, dot8Avx2, gather8Avx2};
#ifdef MODM_NATIVE
    static const Ops avx512{dotAvx512, dot8Avx512, gather8Avx512};
#endif
#endif
    switch (tier) {
    case Tier::Scalar:
        return scalar;
#ifdef MODM_KERNELS_X86
    case Tier::Avx2:
        return avx2;
#ifdef MODM_NATIVE
    case Tier::Avx512:
        return avx512;
#endif
#endif
    case Tier::Unrolled:
    default:
        return unrolled;
    }
}

struct State
{
    Tier tier = Tier::Unrolled;
    bool fromEnv = false;
};

Tier
autoTier()
{
#ifdef MODM_KERNELS_X86
    // AVX-512 is opt-in even when compiled: on the common
    // downclock-prone parts the avx2 tier measured faster, so wide
    // vectors are a deliberate MODM_KERNEL=avx512 choice, not a
    // default.
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return Tier::Avx2;
#endif
    return Tier::Unrolled;
}

State
initState()
{
    State s;
    s.tier = autoTier();
    if (const char *env = std::getenv("MODM_KERNEL")) {
        bool known = false;
        for (const Tier t : {Tier::Scalar, Tier::Unrolled, Tier::Avx2,
                             Tier::Avx512}) {
            if (std::strcmp(env, tierName(t)) != 0)
                continue;
            known = true;
            if (tierAvailable(t)) {
                s.tier = t;
                s.fromEnv = true;
            } else {
                std::fprintf(stderr,
                             "[kernels] MODM_KERNEL=%s unavailable on "
                             "this build/CPU; using %s\n",
                             env, tierName(s.tier));
            }
            break;
        }
        if (!known) {
            std::fprintf(stderr,
                         "[kernels] unknown MODM_KERNEL=%s; using %s\n",
                         env, tierName(s.tier));
        }
    }
    return s;
}

State &
state()
{
    static State s = initState();
    return s;
}

/** Rows per scoring block in topKBatch/bestBatch. */
constexpr std::size_t kScoreBlock = 256;

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Unrolled:
        return "unrolled";
    case Tier::Avx2:
        return "avx2";
    case Tier::Avx512:
        return "avx512";
    }
    return "unrolled";
}

bool
tierAvailable(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
    case Tier::Unrolled:
        return true;
    case Tier::Avx2:
#ifdef MODM_KERNELS_X86
        return __builtin_cpu_supports("avx2") &&
            __builtin_cpu_supports("fma");
#else
        return false;
#endif
    case Tier::Avx512:
#if defined(MODM_KERNELS_X86) && defined(MODM_NATIVE)
        return __builtin_cpu_supports("avx512f");
#else
        return false;
#endif
    }
    return false;
}

KernelInfo
active()
{
    const State &s = state();
    return {s.tier, tierName(s.tier), s.fromEnv};
}

bool
setTier(Tier tier)
{
    if (!tierAvailable(tier))
        return false;
    state().tier = tier;
    return true;
}

double
dot(const float *a, const float *b, std::size_t n)
{
    return opsFor(state().tier).dot1(a, b, n);
}

void
dotBatch(const float *query, const float *rows, std::size_t stride,
         std::size_t count, std::size_t n, double *out)
{
    const Ops &ops = opsFor(state().tier);
    std::size_t r = 0;
    for (; r + 8 <= count; r += 8) {
        const float *next =
            r + 16 <= count ? rows + (r + 8) * stride : nullptr;
        ops.dot8(query, rows + r * stride, stride, next, n, out + r);
    }
    for (; r < count; ++r)
        out[r] = ops.dot1(query, rows + r * stride, n);
}

void
dotGather(const float *query, const float *const *rows,
          std::size_t count, std::size_t n, double *out)
{
    const Ops &ops = opsFor(state().tier);
    // Touch every line of the following block's rows before scoring
    // the current one; scattered candidates (HNSW expansion) get the
    // same latency hiding the contiguous path gets from dot8.
    const std::size_t lines = (n * sizeof(float) + 63) / 64;
    std::size_t r = 0;
    for (; r + 8 <= count; r += 8) {
        if (r + 16 <= count) {
            for (std::size_t p = 0; p < 8; ++p) {
                const float *row = rows[r + 8 + p];
                for (std::size_t l = 0; l < lines; ++l)
                    __builtin_prefetch(row + l * 16);
            }
        }
        ops.gather8(query, rows + r, n, out + r);
    }
    for (; r < count; ++r)
        out[r] = ops.dot1(query, rows[r], n);
}

std::vector<Scored>
topKBatch(const float *query, const float *rows, std::size_t stride,
          std::size_t count, std::size_t n, std::size_t k)
{
    std::vector<Scored> heap;
    if (k == 0)
        return heap;
    heap.reserve(std::min(k, count));
    // (score desc, slot asc): the FlatIndex ordering contract.
    const auto better = [](const Scored &x, const Scored &y) {
        if (x.score != y.score)
            return x.score > y.score;
        return x.slot < y.slot;
    };
    double scores[kScoreBlock];
    for (std::size_t base = 0; base < count; base += kScoreBlock) {
        const std::size_t len = std::min(kScoreBlock, count - base);
        dotBatch(query, rows + base * stride, stride, len, n, scores);
        for (std::size_t i = 0; i < len; ++i) {
            const Scored cand{base + i, scores[i]};
            if (heap.size() < k) {
                heap.push_back(cand);
                std::push_heap(heap.begin(), heap.end(), better);
            } else if (better(cand, heap.front())) {
                std::pop_heap(heap.begin(), heap.end(), better);
                heap.back() = cand;
                std::push_heap(heap.begin(), heap.end(), better);
            }
        }
    }
    std::sort(heap.begin(), heap.end(), better);
    return heap;
}

bool
bestBatch(const float *query, const float *rows, std::size_t stride,
          std::size_t count, std::size_t n, std::size_t *slot,
          double *score)
{
    if (count == 0)
        return false;
    double bestScore = 0.0;
    std::size_t bestSlot = 0;
    bool any = false;
    double scores[kScoreBlock];
    for (std::size_t base = 0; base < count; base += kScoreBlock) {
        const std::size_t len = std::min(kScoreBlock, count - base);
        dotBatch(query, rows + base * stride, stride, len, n, scores);
        for (std::size_t i = 0; i < len; ++i) {
            // Strictly greater: earliest slot wins ties, matching the
            // pre-kernel FlatIndex::scanBest admission.
            if (!any || scores[i] > bestScore) {
                any = true;
                bestScore = scores[i];
                bestSlot = base + i;
            }
        }
    }
    *slot = bestSlot;
    *score = bestScore;
    return true;
}

} // namespace modm::kernels

/**
 * @file
 * Dense float vector math used by the synthetic CLIP embedding space, the
 * diffusion latent simulator, and the evaluation metrics.
 *
 * Vectors are plain std::vector<float>; the helpers here keep hot loops
 * (dot products against a cache of 100k embeddings) simple enough for the
 * compiler to vectorise.
 */

#ifndef MODM_COMMON_VEC_HH
#define MODM_COMMON_VEC_HH

#include <cstddef>
#include <vector>

namespace modm {

class Rng;

using Vec = std::vector<float>;

/** Dot product; both vectors must have equal dimension. */
double dot(const Vec &a, const Vec &b);

/**
 * Dot product over raw rows of length n — THE retrieval hot loop,
 * shared by every VectorIndex backend (FlatIndex row scans, IvfIndex
 * centroid assignment and list scans). One definition, inline in the
 * header so each scan loop vectorizes it in context. Speed up here
 * and every backend speeds up together.
 *
 * The inner loop is a 4-way unrolled multi-accumulator: a single
 * `acc += a[i] * b[i]` chain serializes on the ~4-cycle FP-add
 * latency and cannot be auto-vectorized without -ffast-math (FP
 * addition is not associative, so the compiler must preserve the
 * chain); four independent double accumulators break the dependence
 * and let the compiler emit SIMD multiply-adds. Each float product is
 * exact in double (24+24 significand bits < 53), but the blocked
 * summation order differs from the sequential chain, so results can
 * differ from the pre-unroll loop in the last ulp — the pinned serving
 * digests were re-pinned once for this change (hex-float digests
 * capture every bit; all figure tables, which print rounded values,
 * were verified byte-identical).
 */
inline double
dot(const float *a, const float *b, std::size_t n)
{
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        acc1 += static_cast<double>(a[i + 1]) *
            static_cast<double>(b[i + 1]);
        acc2 += static_cast<double>(a[i + 2]) *
            static_cast<double>(b[i + 2]);
        acc3 += static_cast<double>(a[i + 3]) *
            static_cast<double>(b[i + 3]);
    }
    double acc = (acc0 + acc1) + (acc2 + acc3);
    for (; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

/** Euclidean norm. */
double norm(const Vec &a);

/** Squared Euclidean distance. */
double distanceSquared(const Vec &a, const Vec &b);

/** Normalize in place to unit length; zero vectors are left unchanged. */
void normalize(Vec &a);

/** Return a unit-length copy. */
Vec normalized(const Vec &a);

/** Cosine similarity in [-1, 1]; zero vectors yield 0. */
double cosine(const Vec &a, const Vec &b);

/** a += s * b. */
void axpy(Vec &a, double s, const Vec &b);

/** Element-wise convex blend: (1 - t) * a + t * b. */
Vec lerp(const Vec &a, const Vec &b, double t);

/** Scale in place. */
void scale(Vec &a, double s);

/** i.i.d. standard normal vector of the given dimension. */
Vec gaussianVec(std::size_t dim, Rng &rng);

/** Unit vector drawn uniformly from the sphere. */
Vec randomUnitVec(std::size_t dim, Rng &rng);

/**
 * Perturb a unit vector by an isotropic random direction of total norm
 * `strength`, then re-normalize; models "a nearby concept".
 *
 * The perturbation norm (not the per-coordinate noise) is what controls
 * the resulting cosine: cos(out, base) ~= 1 / sqrt(1 + strength^2), so
 * callers can dial in similarity structure independent of dimension.
 */
Vec jitterUnitVec(const Vec &base, double strength, Rng &rng);

} // namespace modm

#endif // MODM_COMMON_VEC_HH

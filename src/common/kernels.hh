/**
 * @file
 * Runtime-dispatched dot-product kernels for the retrieval hot path.
 *
 * Every VectorIndex backend (Flat scans, IVF centroid assignment and
 * list scans, HNSW neighbor expansion, IVF-PQ ADC table builds) bottoms
 * out in "one query against many rows". This layer centralizes that
 * loop behind a tier picked once at startup via CPUID:
 *
 *   scalar    4-stripe double accumulation, naive inner loop
 *   unrolled  the PR 5 4-way unrolled loop (modm::dot)
 *   avx2      FMA in double precision, 8 rows per block + software
 *             prefetch of the next block
 *   avx512    8-wide double accumulators (compiled only under the
 *             CMake MODM_NATIVE option)
 *
 * Determinism contract: scalar, unrolled, and avx2 produce BIT-IDENTICAL
 * sums. All three accumulate stripe j = elements i % 4 == j in i order,
 * combine (s0+s1)+(s2+s3), then fold the remainder sequentially. Each
 * float product is exact in double (24+24 < 53 significand bits), so
 * AVX2's fused multiply-add rounds exactly once per element — the same
 * rounding the scalar `acc += (double)a*(double)b` performs. Frozen
 * serving digests therefore do not move when dispatch upgrades the
 * tier, and the CI kernels job diffs MODM_KERNEL=scalar against the
 * default byte for byte. The avx512 tier splits each stripe into two
 * sub-chains (lane layout [s0..s3 | s0'..s3']) and is only ≤1-ulp
 * close; it never auto-selects into default builds.
 *
 * MODM_KERNEL=scalar|unrolled|avx2|avx512 overrides auto-detection
 * (unavailable tiers fall back to auto with a stderr notice).
 */

#ifndef MODM_COMMON_KERNELS_HH
#define MODM_COMMON_KERNELS_HH

#include <cstddef>
#include <vector>

namespace modm::kernels {

/** Dispatch tiers, in increasing capability order. */
enum class Tier : int {
    Scalar = 0,
    Unrolled = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** The selected kernel, surfaced in ServingResult / BENCH artifacts. */
struct KernelInfo
{
    Tier tier = Tier::Unrolled;
    /** Stable lowercase name: "scalar" | "unrolled" | "avx2" | "avx512". */
    const char *name = "unrolled";
    /** True when MODM_KERNEL forced this tier. */
    bool fromEnv = false;
};

/** Stable lowercase name for a tier. */
const char *tierName(Tier tier);

/** Compiled in AND supported by this CPU. */
bool tierAvailable(Tier tier);

/** The active kernel (detected once, then cached). */
KernelInfo active();

/**
 * Force a tier (test hook; also used by the MODM_KERNEL override).
 * Returns false — and leaves the active tier unchanged — when the tier
 * is not available. Not thread-safe against in-flight queries; call
 * from single-threaded setup only.
 */
bool setTier(Tier tier);

/** Dispatched single-row dot product (both rows length n). */
double dot(const float *a, const float *b, std::size_t n);

/**
 * One query against `count` contiguous rows: row r starts at
 * rows + r * stride (stride >= n, in floats). Blocks 8 rows per pass so
 * the query stays in registers, and prefetches the next block — on a
 * 1M x 512 scan this is memory-bandwidth-bound and the prefetch is
 * worth more than the vector width. out[r] receives the r-th score.
 */
void dotBatch(const float *query, const float *rows, std::size_t stride,
              std::size_t count, std::size_t n, double *out);

/**
 * One query against `count` scattered rows (HNSW neighbor expansion:
 * candidates are link-ordered, not laid out together). Prefetches every
 * cache line of the following block's rows before scoring the current
 * one.
 */
void dotGather(const float *query, const float *const *rows,
               std::size_t count, std::size_t n, double *out);

/** One scored slot from topKBatch, ordered (score desc, slot asc). */
struct Scored
{
    std::size_t slot = 0;
    double score = 0.0;
};

/**
 * Top-k of one query against contiguous rows, by (score desc, slot
 * asc) — the FlatIndex ordering contract. Slots are relative to
 * `rows`; callers scanning a shard add their base offset. Scores come
 * from dotBatch blocks, so ties and sums are bit-identical across
 * tiers that share the summation order.
 */
std::vector<Scored> topKBatch(const float *query, const float *rows,
                              std::size_t stride, std::size_t count,
                              std::size_t n, std::size_t k);

/**
 * Argmax of one query against contiguous rows; earliest slot wins
 * ties (strictly-greater admission, matching FlatIndex::scanBest).
 * Returns false when count == 0.
 */
bool bestBatch(const float *query, const float *rows, std::size_t stride,
               std::size_t count, std::size_t n, std::size_t *slot,
               double *score);

} // namespace modm::kernels

#endif // MODM_COMMON_KERNELS_HH

#include "src/common/thread_pool.hh"

#include <algorithm>

namespace modm {

ThreadPool::ThreadPool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::submit(TaskGroup *group, std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++group->pending_;
        queue_.push_back(Task{group, std::move(fn)});
    }
    wake_.notify_one();
    // A waiter of this group may be asleep in groupDone_ (its other
    // tasks are running on workers); wake it so it helps with the new
    // task instead of idling.
    groupDone_.notify_all();
}

void
ThreadPool::runTask(std::unique_lock<std::mutex> &lock, Task task)
{
    lock.unlock();
    task.fn();
    task.fn = nullptr; // release captures before re-locking
    lock.lock();
    if (--task.group->pending_ == 0)
        groupDone_.notify_all();
}

void
ThreadPool::waitGroup(TaskGroup *group)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (group->pending_ > 0) {
        // Help with our own group's queued tasks first: progress then
        // never depends on a free worker, which is what makes nested
        // groups (a task waiting on sub-tasks) deadlock-free.
        auto it = std::find_if(queue_.begin(), queue_.end(),
                               [group](const Task &t) {
                                   return t.group == group;
                               });
        if (it != queue_.end()) {
            Task task = std::move(*it);
            queue_.erase(it);
            runTask(lock, std::move(task));
            continue;
        }
        // Everything left of ours is running on workers.
        groupDone_.wait(lock);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_)
            return;
        Task task = std::move(queue_.front());
        queue_.pop_front();
        runTask(lock, std::move(task));
    }
}

void
ThreadPool::parallelFor(std::size_t shardCount,
                        const std::function<void(std::size_t)> &fn)
{
    if (shardCount == 0)
        return;
    if (workers_.empty() || shardCount == 1) {
        for (std::size_t shard = 0; shard < shardCount; ++shard)
            fn(shard);
        return;
    }
    TaskGroup group(*this);
    for (std::size_t shard = 1; shard < shardCount; ++shard)
        group.submit([&fn, shard] { fn(shard); });
    fn(0);
    group.wait();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1) - 1);
    return pool;
}

} // namespace modm

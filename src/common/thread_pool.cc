#include "src/common/thread_pool.hh"

#include <algorithm>

namespace modm {

ThreadPool::ThreadPool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::parallelFor(std::size_t shardCount,
                        const std::function<void(std::size_t)> &fn)
{
    if (shardCount == 0)
        return;
    if (workers_.empty() || shardCount == 1) {
        for (std::size_t shard = 0; shard < shardCount; ++shard)
            fn(shard);
        return;
    }

    // One job at a time: a second submitter must not overwrite the
    // shared shard counters while the first job is mid-flight.
    std::lock_guard<std::mutex> submitLock(submitMutex_);
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    nextShard_ = 0;
    shardCount_ = shardCount;
    pendingShards_ = shardCount;
    ++generation_;
    wake_.notify_all();

    // The caller is shard runner number zero: it pulls work like any
    // other thread so a pool under contention still makes progress.
    while (nextShard_ < shardCount_) {
        const std::size_t shard = nextShard_++;
        lock.unlock();
        fn(shard);
        lock.lock();
        --pendingShards_;
    }
    done_.wait(lock, [this] { return pendingShards_ == 0; });
    job_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seenGeneration = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stopping_ ||
                   (job_ != nullptr && generation_ != seenGeneration &&
                    nextShard_ < shardCount_);
        });
        if (stopping_)
            return;
        seenGeneration = generation_;
        while (job_ != nullptr && nextShard_ < shardCount_) {
            const std::size_t shard = nextShard_++;
            const auto *fn = job_;
            lock.unlock();
            (*fn)(shard);
            lock.lock();
            if (--pendingShards_ == 0)
                done_.notify_all();
        }
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        std::max<std::size_t>(std::thread::hardware_concurrency(), 1) - 1);
    return pool;
}

} // namespace modm

#include "src/common/matrix.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace modm {

Matrix::Matrix(std::size_t n)
    : n_(n), data_(n * n, 0.0)
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    MODM_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[r * n_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    MODM_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[r * n_ + c];
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    MODM_ASSERT(n_ == other.n_, "matrix size mismatch");
    Matrix out(n_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    MODM_ASSERT(n_ == other.n_, "matrix size mismatch");
    Matrix out(n_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    MODM_ASSERT(n_ == other.n_, "matrix size mismatch");
    Matrix out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t k = 0; k < n_; ++k) {
            const double aik = at(i, k);
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < n_; ++j)
                out.at(i, j) += aik * other.at(k, j);
        }
    }
    return out;
}

Matrix
Matrix::scaled(double s) const
{
    Matrix out(n_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * s;
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(n_);
    for (std::size_t r = 0; r < n_; ++r)
        for (std::size_t c = 0; c < n_; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

double
Matrix::trace() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        acc += at(i, i);
    return acc;
}

double
Matrix::asymmetry() const
{
    double worst = 0.0;
    for (std::size_t r = 0; r < n_; ++r)
        for (std::size_t c = r + 1; c < n_; ++c)
            worst = std::max(worst, std::fabs(at(r, c) - at(c, r)));
    return worst;
}

namespace {

double
offDiagonalNorm(const Matrix &m)
{
    double acc = 0.0;
    for (std::size_t r = 0; r < m.size(); ++r)
        for (std::size_t c = 0; c < m.size(); ++c)
            if (r != c)
                acc += m.at(r, c) * m.at(r, c);
    return std::sqrt(acc);
}

double
frobenius(const Matrix &m)
{
    double acc = 0.0;
    for (std::size_t r = 0; r < m.size(); ++r)
        for (std::size_t c = 0; c < m.size(); ++c)
            acc += m.at(r, c) * m.at(r, c);
    return std::sqrt(acc);
}

} // namespace

EigenDecomposition
eigenSymmetric(const Matrix &m, double tol)
{
    const std::size_t n = m.size();
    MODM_ASSERT(m.asymmetry() < 1e-6 * (1.0 + frobenius(m)),
                "eigenSymmetric requires a symmetric matrix");

    Matrix a = m;
    Matrix v = Matrix::identity(n);
    const double threshold = tol * (frobenius(m) + 1e-300);

    // Cyclic Jacobi sweeps; converges quadratically once off-diagonal
    // mass is small. Cap sweeps to guarantee termination.
    const int maxSweeps = 100;
    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        if (offDiagonalNorm(a) <= threshold)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) <= threshold / (n * n + 1.0))
                    continue;
                const double app = a.at(p, p);
                const double aqq = a.at(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p);
                    const double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k);
                    const double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p);
                    const double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    EigenDecomposition out;
    out.values.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out.values[i] = a.at(i, i);
    out.vectors = v;
    return out;
}

Matrix
sqrtSymmetricPSD(const Matrix &m)
{
    const auto eig = eigenSymmetric(m);
    const std::size_t n = m.size();
    Matrix out(n);
    // out = V * sqrt(diag) * V^T
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                const double lambda = std::max(eig.values[k], 0.0);
                acc += eig.vectors.at(r, k) * std::sqrt(lambda) *
                    eig.vectors.at(c, k);
            }
            out.at(r, c) = acc;
        }
    }
    return out;
}

Matrix
covariance(const std::vector<Vec> &samples)
{
    MODM_ASSERT(samples.size() >= 2, "covariance needs >= 2 samples");
    const std::size_t n = samples.front().size();
    const auto mu = meanVector(samples);
    Matrix cov(n);
    for (const auto &s : samples) {
        MODM_ASSERT(s.size() == n, "covariance: inconsistent dimensions");
        for (std::size_t r = 0; r < n; ++r) {
            const double dr = s[r] - mu[r];
            for (std::size_t c = r; c < n; ++c)
                cov.at(r, c) += dr * (s[c] - mu[c]);
        }
    }
    const double denom = static_cast<double>(samples.size() - 1);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = r; c < n; ++c) {
            cov.at(r, c) /= denom;
            cov.at(c, r) = cov.at(r, c);
        }
    }
    return cov;
}

std::vector<double>
meanVector(const std::vector<Vec> &samples)
{
    MODM_ASSERT(!samples.empty(), "meanVector needs samples");
    const std::size_t n = samples.front().size();
    std::vector<double> mu(n, 0.0);
    for (const auto &s : samples)
        for (std::size_t i = 0; i < n; ++i)
            mu[i] += s[i];
    for (auto &x : mu)
        x /= static_cast<double>(samples.size());
    return mu;
}

double
frechetDistance(const std::vector<Vec> &a, const std::vector<Vec> &b)
{
    MODM_ASSERT(a.size() >= 2 && b.size() >= 2,
                "frechetDistance needs >= 2 samples per population");
    const auto mu1 = meanVector(a);
    const auto mu2 = meanVector(b);
    const Matrix c1 = covariance(a);
    const Matrix c2 = covariance(b);

    double meanTerm = 0.0;
    for (std::size_t i = 0; i < mu1.size(); ++i) {
        const double d = mu1[i] - mu2[i];
        meanTerm += d * d;
    }

    // tr((C1^{1/2} C2 C1^{1/2})^{1/2}): the inner matrix is symmetric PSD
    // by construction, so the Jacobi-based square root applies directly.
    const Matrix sqrtC1 = sqrtSymmetricPSD(c1);
    Matrix inner = sqrtC1 * c2 * sqrtC1;
    // Symmetrise away round-off before the second square root.
    inner = (inner + inner.transposed()).scaled(0.5);
    const Matrix cross = sqrtSymmetricPSD(inner);

    const double value =
        meanTerm + c1.trace() + c2.trace() - 2.0 * cross.trace();
    // The exact value is non-negative; clamp floating-point residue.
    return std::max(value, 0.0);
}

} // namespace modm

/**
 * @file
 * Contiguous, cache-line-aligned storage for embedding rows.
 *
 * Before this layer, every index and cache owned scattered per-row
 * allocations (std::vector<float> per entry), so the retrieval hot
 * loops — which are memory-bound, not ALU-bound — chased pointers
 * across the heap. Two containers replace that:
 *
 *   AlignedRows  dense slot-addressed storage for index scans: one
 *                buffer, rows at slot * stride, 64-byte aligned, with
 *                swap-remove compaction. This is what dotBatch /
 *                topKBatch stream over.
 *
 *   RowStore     chunked slab with STABLE row pointers plus a LIFO
 *                freelist, for caches: entries hand out `Slot` handles,
 *                eviction releases the slot for the next insert, and
 *                RowSource::row() returns the slab pointer directly
 *                (zero-copy re-rank).
 *
 * Rows are padded to a 16-float (64-byte) stride so every row starts
 * on a cache line; the pad floats are zeroed once and never read by
 * the kernels (which score exactly `dim` elements), so results are
 * unchanged. At the embedding dims this repo uses (64, 512) the
 * stride equals the dim and the byte accounting is identical to the
 * per-row-vector layout it replaces.
 */

#ifndef MODM_COMMON_ROW_STORE_HH
#define MODM_COMMON_ROW_STORE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace modm {

/** Round a row length up to a whole number of cache lines. */
constexpr std::size_t
alignedRowStride(std::size_t dim)
{
    return (dim + 15) / 16 * 16;
}

/**
 * Dense slot-addressed row storage: row r lives at data() + r *
 * stride(). Append with pushBack, compact with swapRemove (the caller
 * owns the slot-to-id mapping, exactly as with the flat vector this
 * replaces). Reallocation moves the buffer, so raw pointers are only
 * stable between mutations — index scans take them fresh per query.
 */
class AlignedRows
{
  public:
    AlignedRows() = default;
    explicit AlignedRows(std::size_t dim) { reset(dim); }

    /** Set the row length and drop all rows. */
    void reset(std::size_t dim);

    std::size_t dim() const { return dim_; }
    /** Floats between consecutive rows (>= dim, 16-float aligned). */
    std::size_t stride() const { return stride_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const float *data() const { return data_.get(); }
    const float *row(std::size_t slot) const
    {
        return data_.get() + slot * stride_;
    }
    float *row(std::size_t slot) { return data_.get() + slot * stride_; }

    void reserve(std::size_t rows);
    /** Append a copy of src[0..dim); returns the new row's slot. */
    std::size_t pushBack(const float *src);
    /** Move the last row into `slot` and shrink by one. */
    void swapRemove(std::size_t slot);
    void clear() { size_ = 0; }

    /** Bytes of row payload (size * stride * 4); no allocator slack,
     *  so the figure is a pure function of the construction sequence. */
    std::size_t memoryBytes() const
    {
        return size_ * stride_ * sizeof(float);
    }

  private:
    void grow(std::size_t rows);

    struct Free
    {
        void operator()(float *p) const
        {
            ::operator delete[](p, std::align_val_t{64});
        }
    };
    std::unique_ptr<float[], Free> data_;
    std::size_t dim_ = 0;
    std::size_t stride_ = 0;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

/**
 * Chunked slab with stable pointers and freelist reuse. insert()
 * returns a Slot handle; row(slot) stays valid until release(slot)
 * regardless of later growth (chunks are never reallocated, only
 * appended). Released slots are reused LIFO, so a cache at steady
 * state (evict one, admit one) touches the same warm lines instead of
 * growing the heap.
 */
class RowStore
{
  public:
    using Slot = std::uint32_t;

    explicit RowStore(std::size_t dim, std::size_t rowsPerChunk = 1024);

    std::size_t dim() const { return dim_; }
    std::size_t stride() const { return stride_; }
    /** Slots currently handed out. */
    std::size_t liveRows() const { return live_; }

    /** Copy src[0..dim) into a (possibly recycled) slot. */
    Slot insert(const float *src);
    /** Return the slot to the freelist; its pointer becomes invalid. */
    void release(Slot slot);

    const float *row(Slot slot) const
    {
        return chunks_[slot / rowsPerChunk_].get() +
            static_cast<std::size_t>(slot % rowsPerChunk_) * stride_;
    }
    float *row(Slot slot)
    {
        return chunks_[slot / rowsPerChunk_].get() +
            static_cast<std::size_t>(slot % rowsPerChunk_) * stride_;
    }

    /** Drop every slot and chunk. */
    void clear();

    /** Bytes of live row payload (live * stride * 4). */
    std::size_t memoryBytes() const
    {
        return live_ * stride_ * sizeof(float);
    }

  private:
    struct Free
    {
        void operator()(float *p) const
        {
            ::operator delete[](p, std::align_val_t{64});
        }
    };

    std::size_t dim_;
    std::size_t stride_;
    std::size_t rowsPerChunk_;
    std::vector<std::unique_ptr<float[], Free>> chunks_;
    std::vector<Slot> freelist_;
    std::size_t next_ = 0; // first never-used slot
    std::size_t live_ = 0;
};

} // namespace modm

#endif // MODM_COMMON_ROW_STORE_HH

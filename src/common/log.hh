/**
 * @file
 * Logging and error-exit helpers, following the gem5 fatal/panic split.
 *
 * fatal()  — the condition is the *user's* fault (bad configuration,
 *            invalid arguments); exits with code 1.
 * panic()  — the condition is a library bug (violated invariant);
 *            calls std::abort() so a core dump / debugger is useful.
 * warn()   — something is off but execution can continue.
 * inform() — status messages with no negative connotation.
 */

#ifndef MODM_COMMON_LOG_HH
#define MODM_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace modm {

/** Print a formatted fatal error (user error) and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a formatted panic (library bug) and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warn(const char *fmt, ...);

/** Print a formatted informational message to stderr. */
void inform(const char *fmt, ...);

/**
 * Print "assertion failed (<cond>): <formatted message>" and abort().
 * A separate entry point (rather than folding #cond into the panic
 * varargs) so the condition text cannot shift the caller's format
 * arguments: the old macro passed #cond *after* the user args, which
 * made every assert that fired with format arguments print garbage —
 * or crash inside vfprintf — instead of its message.
 */
[[noreturn]] void assertFail(const char *cond, const char *fmt, ...);

/**
 * Assert a library invariant; panics with the given message on failure.
 * Unlike assert(3) this is active in release builds — simulators must not
 * silently continue past corrupted state.
 */
#define MODM_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::modm::assertFail(#cond, __VA_ARGS__);                          \
    } while (0)

} // namespace modm

#endif // MODM_COMMON_LOG_HH

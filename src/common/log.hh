/**
 * @file
 * Logging and error-exit helpers, following the gem5 fatal/panic split.
 *
 * fatal()  — the condition is the *user's* fault (bad configuration,
 *            invalid arguments); exits with code 1.
 * panic()  — the condition is a library bug (violated invariant);
 *            calls std::abort() so a core dump / debugger is useful.
 * warn()   — something is off but execution can continue.
 * inform() — status messages with no negative connotation.
 *
 * Diagnostics are leveled: the MODM_LOG environment knob
 * (debug|info|warn|error, default info) sets the stderr threshold,
 * warn()/inform() filter through it, and the MODM_LOG_* macros add
 * virtual-clock-stamped lines ("[t=...] level: ...") that skip
 * argument formatting entirely when filtered. fatal/panic/assert
 * always print — errors are not a verbosity choice.
 */

#ifndef MODM_COMMON_LOG_HH
#define MODM_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace modm {

/** Stderr diagnostic levels, in decreasing verbosity. */
enum class LogLevel : int
{
    Debug = 0,
    Info,
    Warn,
    Error,
};

/** Printable level name ("debug" / "info" / "warn" / "error"). */
const char *logLevelName(LogLevel level);

/**
 * Parse a MODM_LOG value; fatal() on anything but
 * debug|info|warn|error.
 */
LogLevel parseLogLevel(const char *text);

/** Active threshold: MODM_LOG at first use, default Info. */
LogLevel logLevel();

/** Override the threshold programmatically (wins over MODM_LOG). */
void setLogLevel(LogLevel level);

/** True when messages at `level` pass the active threshold. */
bool logEnabled(LogLevel level);

/**
 * Print one leveled, virtual-clock-stamped line to stderr:
 * "[t=<clock>] <level>: <message>". A negative clock drops the stamp
 * (for tools with no virtual clock). Filtered by logEnabled(); prefer
 * the MODM_LOG_* macros, which skip argument evaluation when off.
 */
void logAt(LogLevel level, double clock, const char *fmt, ...);

/** Clock-stamped leveled log lines; arguments only evaluate when on. */
#define MODM_LOG_AT(level, clock, ...)                                       \
    do {                                                                     \
        if (::modm::logEnabled(level))                                       \
            ::modm::logAt(level, clock, __VA_ARGS__);                        \
    } while (0)
#define MODM_LOG_DEBUG(clock, ...)                                           \
    MODM_LOG_AT(::modm::LogLevel::Debug, clock, __VA_ARGS__)
#define MODM_LOG_INFO(clock, ...)                                            \
    MODM_LOG_AT(::modm::LogLevel::Info, clock, __VA_ARGS__)
#define MODM_LOG_WARN(clock, ...)                                            \
    MODM_LOG_AT(::modm::LogLevel::Warn, clock, __VA_ARGS__)
#define MODM_LOG_ERROR(clock, ...)                                           \
    MODM_LOG_AT(::modm::LogLevel::Error, clock, __VA_ARGS__)

/** Print a formatted fatal error (user error) and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a formatted panic (library bug) and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a formatted warning to stderr (filtered at LogLevel::Warn). */
void warn(const char *fmt, ...);

/** Print a formatted status message (filtered at LogLevel::Info). */
void inform(const char *fmt, ...);

/**
 * Print "assertion failed (<cond>): <formatted message>" and abort().
 * A separate entry point (rather than folding #cond into the panic
 * varargs) so the condition text cannot shift the caller's format
 * arguments: the old macro passed #cond *after* the user args, which
 * made every assert that fired with format arguments print garbage —
 * or crash inside vfprintf — instead of its message.
 */
[[noreturn]] void assertFail(const char *cond, const char *fmt, ...);

/**
 * Assert a library invariant; panics with the given message on failure.
 * Unlike assert(3) this is active in release builds — simulators must not
 * silently continue past corrupted state.
 */
#define MODM_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::modm::assertFail(#cond, __VA_ARGS__);                          \
    } while (0)

} // namespace modm

#endif // MODM_COMMON_LOG_HH

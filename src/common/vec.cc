#include "src/common/vec.hh"

#include <cmath>

#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm {

double
dot(const Vec &a, const Vec &b)
{
    MODM_ASSERT(a.size() == b.size(), "dot: dimension mismatch %zu vs %zu",
                a.size(), b.size());
    return dot(a.data(), b.data(), a.size());
}

double
norm(const Vec &a)
{
    return std::sqrt(dot(a, a));
}

double
distanceSquared(const Vec &a, const Vec &b)
{
    MODM_ASSERT(a.size() == b.size(), "distance: dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
    }
    return acc;
}

void
normalize(Vec &a)
{
    const double n = norm(a);
    if (n <= 0.0)
        return;
    const float inv = static_cast<float>(1.0 / n);
    for (auto &x : a)
        x *= inv;
}

Vec
normalized(const Vec &a)
{
    Vec out = a;
    normalize(out);
    return out;
}

double
cosine(const Vec &a, const Vec &b)
{
    const double na = norm(a);
    const double nb = norm(b);
    if (na <= 0.0 || nb <= 0.0)
        return 0.0;
    return dot(a, b) / (na * nb);
}

void
axpy(Vec &a, double s, const Vec &b)
{
    MODM_ASSERT(a.size() == b.size(), "axpy: dimension mismatch");
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] += static_cast<float>(s * b[i]);
}

Vec
lerp(const Vec &a, const Vec &b, double t)
{
    MODM_ASSERT(a.size() == b.size(), "lerp: dimension mismatch");
    Vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = static_cast<float>((1.0 - t) * a[i] + t * b[i]);
    return out;
}

void
scale(Vec &a, double s)
{
    for (auto &x : a)
        x = static_cast<float>(x * s);
}

Vec
gaussianVec(std::size_t dim, Rng &rng)
{
    Vec out(dim);
    for (auto &x : out)
        x = static_cast<float>(rng.normal());
    return out;
}

Vec
randomUnitVec(std::size_t dim, Rng &rng)
{
    Vec out = gaussianVec(dim, rng);
    normalize(out);
    return out;
}

Vec
jitterUnitVec(const Vec &base, double strength, Rng &rng)
{
    Vec noise = randomUnitVec(base.size(), rng);
    Vec out = base;
    axpy(out, strength, noise);
    normalize(out);
    return out;
}

} // namespace modm

/**
 * @file
 * Task-based thread pool shared by the retrieval hot path and the
 * experiment sweep engine.
 *
 * The pool executes arbitrary submitted jobs. Work is grouped into
 * TaskGroups so a caller can wait on exactly the batch it submitted;
 * while waiting, the caller *helps* by draining its own group's queued
 * tasks, which makes nested submission safe: a pool task may itself
 * create a group, submit, and wait (e.g. a sharded CosineIndex scan
 * inside an experiment that is itself a pool task) without deadlocking
 * even when every worker is busy. Independent groups submit and run
 * concurrently — no cross-caller serialization.
 *
 * parallelFor() is a convenience built on TaskGroup for the
 * embarrassingly-parallel sharded scans (CosineIndex::best/topK): the
 * caller runs shard 0 itself and drains the rest, so a pool with zero
 * workers degrades to a plain serial loop.
 *
 * A process-wide pool (ThreadPool::global()) is created lazily with
 * hardware_concurrency() - 1 workers.
 */

#ifndef MODM_COMMON_THREAD_POOL_HH
#define MODM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modm {

/**
 * Fixed set of worker threads executing submitted tasks.
 */
class ThreadPool
{
  public:
    /**
     * A batch of tasks submitted together and waited on together.
     * Groups are independent: several threads may each drive their own
     * group on the same pool concurrently, and a task may create a
     * nested group on the same pool.
     */
    class TaskGroup
    {
      public:
        /** Bind to a pool; submit() queues onto it. */
        explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

        /** Waits for outstanding tasks before destruction. */
        ~TaskGroup() { wait(); }

        TaskGroup(const TaskGroup &) = delete;
        TaskGroup &operator=(const TaskGroup &) = delete;

        /**
         * Queue one task. Tasks must not throw. May be called from
         * inside another task of the same group (the waiter picks the
         * addition up).
         */
        void submit(std::function<void()> fn)
        {
            pool_.submit(this, std::move(fn));
        }

        /**
         * Block until every submitted task finished. The calling
         * thread drains this group's queued tasks itself while it
         * waits, so progress never depends on a free worker.
         */
        void wait() { pool_.waitGroup(this); }

      private:
        friend class ThreadPool;
        ThreadPool &pool_;
        std::size_t pending_ = 0; // guarded by pool_.mutex_
    };

    /**
     * @param workers Number of worker threads (in addition to any
     *        calling thread). 0 yields a pool that runs everything
     *        inline on the callers.
     */
    explicit ThreadPool(std::size_t workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool (excludes callers). */
    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Maximum tasks that can run concurrently when one caller also
     * helps: the workers plus the calling thread.
     */
    std::size_t concurrency() const { return workers_.size() + 1; }

    /**
     * Run fn(shard) for every shard in [0, shardCount); blocks until
     * all shards completed. Shard 0 runs on the calling thread.
     * Reentrant and concurrency-safe: fn may itself call parallelFor
     * (or submit tasks) on this pool, and independent callers proceed
     * in parallel rather than serializing.
     */
    void parallelFor(std::size_t shardCount,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Process-wide pool with hardware_concurrency() - 1 workers.
     * Created on first use; never destroyed before exit.
     */
    static ThreadPool &global();

  private:
    /** One queued unit of work. */
    struct Task
    {
        TaskGroup *group;
        std::function<void()> fn;
    };

    void submit(TaskGroup *group, std::function<void()> fn);
    void waitGroup(TaskGroup *group);
    void workerLoop();
    /** Run a task and do completion bookkeeping. Lock held on entry
     *  and exit, released around fn(). */
    void runTask(std::unique_lock<std::mutex> &lock, Task task);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;     // workers: queue non-empty / stop
    std::condition_variable groupDone_; // waiters: task finished/queued
    std::deque<Task> queue_;
    bool stopping_ = false;
};

} // namespace modm

#endif // MODM_COMMON_THREAD_POOL_HH

/**
 * @file
 * Minimal fixed-size thread pool for sharded scans.
 *
 * The retrieval hot path (CosineIndex::best/topK over up to 100k rows)
 * is embarrassingly parallel: each shard scans a contiguous row range
 * and the partial results merge exactly. The pool is deliberately
 * small and synchronous — parallelFor() blocks until every shard ran —
 * because retrieval latency, not throughput, is what the paper budgets
 * (~0.05 s against 10+ s of denoising).
 *
 * A process-wide pool (ThreadPool::global()) is created lazily with
 * hardware_concurrency() - 1 workers; shard 0 always runs on the
 * calling thread, so a single-core machine degrades to a plain serial
 * loop with zero synchronization.
 */

#ifndef MODM_COMMON_THREAD_POOL_HH
#define MODM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modm {

/**
 * Fixed set of worker threads executing sharded jobs.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads (in addition to the
     *        calling thread). 0 yields a pool that runs everything
     *        inline on the caller.
     */
    explicit ThreadPool(std::size_t workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads owned by the pool (excludes the caller). */
    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Maximum shards parallelFor() can run concurrently: the workers
     * plus the calling thread.
     */
    std::size_t concurrency() const { return workers_.size() + 1; }

    /**
     * Run fn(shard) for every shard in [0, shardCount); blocks until
     * all shards completed. Shard 0 runs on the calling thread.
     * Concurrent callers are serialized (one job at a time). Not
     * reentrant: fn must not itself call parallelFor on this pool.
     */
    void parallelFor(std::size_t shardCount,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Process-wide pool with hardware_concurrency() - 1 workers.
     * Created on first use; never destroyed before exit.
     */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex submitMutex_; // serializes parallelFor callers
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t nextShard_ = 0;
    std::size_t shardCount_ = 0;
    std::size_t pendingShards_ = 0;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
};

} // namespace modm

#endif // MODM_COMMON_THREAD_POOL_HH

/**
 * @file
 * Small dense symmetric-matrix linear algebra for the FID metric.
 *
 * The Fréchet Inception Distance requires the matrix square root of
 * covariance products. Feature dimensionality in this repository is small
 * (64), so a cyclic Jacobi eigensolver is fast, dependency-free, and
 * numerically robust for the symmetric positive semi-definite matrices we
 * encounter.
 */

#ifndef MODM_COMMON_MATRIX_HH
#define MODM_COMMON_MATRIX_HH

#include <cstddef>
#include <vector>

#include "src/common/vec.hh"

namespace modm {

/** Row-major square matrix of doubles. */
class Matrix
{
  public:
    /** Zero matrix of size n x n. */
    explicit Matrix(std::size_t n = 0);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Element access. */
    double &at(std::size_t r, std::size_t c);

    /** Const element access. */
    double at(std::size_t r, std::size_t c) const;

    /** Dimension. */
    std::size_t size() const { return n_; }

    /** Matrix sum; dimensions must match. */
    Matrix operator+(const Matrix &other) const;

    /** Matrix difference. */
    Matrix operator-(const Matrix &other) const;

    /** Matrix product. */
    Matrix operator*(const Matrix &other) const;

    /** Scalar product. */
    Matrix scaled(double s) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Trace. */
    double trace() const;

    /** Max |a_ij - a_ji|; 0 for symmetric matrices. */
    double asymmetry() const;

  private:
    std::size_t n_;
    std::vector<double> data_;
};

/**
 * Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
 * Eigenvalues are returned in `values`, the corresponding orthonormal
 * eigenvectors as the *columns* of `vectors`.
 */
struct EigenDecomposition
{
    std::vector<double> values;
    Matrix vectors;
};

/**
 * Decompose a symmetric matrix. Off-diagonal magnitude is reduced below
 * tol * frobenius(m) before returning.
 */
EigenDecomposition eigenSymmetric(const Matrix &m, double tol = 1e-12);

/**
 * Principal square root of a symmetric positive semi-definite matrix.
 * Slightly negative eigenvalues from floating-point noise are clamped to
 * zero.
 */
Matrix sqrtSymmetricPSD(const Matrix &m);

/** Sample covariance (denominator n - 1) of a set of feature vectors. */
Matrix covariance(const std::vector<Vec> &samples);

/** Column-wise mean of a set of feature vectors. */
std::vector<double> meanVector(const std::vector<Vec> &samples);

/**
 * Fréchet distance between two Gaussians fit to the given feature
 * populations:
 *   |mu1 - mu2|^2 + tr(C1 + C2 - 2 (C1^{1/2} C2 C1^{1/2})^{1/2}).
 * This is the exact FID formula; only the feature extractor upstream is
 * synthetic.
 */
double frechetDistance(const std::vector<Vec> &a, const std::vector<Vec> &b);

} // namespace modm

#endif // MODM_COMMON_MATRIX_HH

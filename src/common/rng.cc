#include "src/common/rng.hh"

#include <cmath>

#include "src/common/log.hh"

namespace modm {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitmix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedNormal_(0.0), hasCachedNormal_(false), forkCounter_(0)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    MODM_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Rejection to remove modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    MODM_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    MODM_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth multiplication method.
        const double limit = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation for large means, clamped at zero.
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::uint64_t
Rng::geometric(double p)
{
    MODM_ASSERT(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s)
{
    MODM_ASSERT(n > 0, "Zipf needs a non-empty support");
    MODM_ASSERT(s > 0.0, "Zipf exponent must be positive");
    cdf_.resize(n);
    double total = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        total += std::pow(static_cast<double>(k + 1), -s);
        cdf_[k] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::uint64_t
ZipfDistribution::sample(Rng &rng) const
{
    const double u = rng.uniform();
    // First index whose CDF value exceeds u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf_[mid] <= u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
ZipfDistribution::prob(std::uint64_t k) const
{
    MODM_ASSERT(k < cdf_.size(), "Zipf prob out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

Rng
Rng::fork()
{
    // Derive a child stream from the parent state plus a fork counter so
    // repeated forks yield distinct, deterministic children.
    const std::uint64_t childSeed =
        mix64(s_[0] ^ rotl(s_[2], 13) ^ ++forkCounter_);
    return Rng(childSeed);
}

} // namespace modm

#include "src/common/stats.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"

namespace modm {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileTracker::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
PercentileTracker::percentile(double p) const
{
    MODM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double acc = 0.0;
    for (double s : samples_)
        acc += s;
    return acc / static_cast<double>(samples_.size());
}

double
PercentileTracker::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    MODM_ASSERT(hi > lo, "histogram range must be non-empty");
    MODM_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    const double unit = (x - lo_) / (hi_ - lo_);
    const auto n = static_cast<double>(counts_.size());
    std::size_t bin;
    if (unit <= 0.0)
        bin = 0;
    else if (unit >= 1.0)
        bin = counts_.size() - 1;
    else
        bin = static_cast<std::size_t>(unit * n);
    ++counts_[bin];
    ++total_;
    sum_ += x;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    MODM_ASSERT(i < counts_.size(), "histogram bin out of range");
    return counts_[i];
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(i)) / static_cast<double>(total_);
}

double
Histogram::binCenter(std::size_t i) const
{
    MODM_ASSERT(i < counts_.size(), "histogram bin out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::cumulativeFraction(double x) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (binCenter(i) <= x)
            acc += counts_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

WindowedRate::WindowedRate(double window_seconds)
    : window_(window_seconds)
{
    MODM_ASSERT(window_seconds > 0.0, "rate window must be positive");
}

void
WindowedRate::record(double time)
{
    MODM_ASSERT(events_.empty() || time >= events_.back(),
                "rate events must be recorded in time order");
    events_.push_back(time);
}

void
WindowedRate::expire(double now) const
{
    while (!events_.empty() && events_.front() < now - window_)
        events_.pop_front();
}

double
WindowedRate::perMinute(double now) const
{
    expire(now);
    return static_cast<double>(events_.size()) * 60.0 / window_;
}

std::size_t
WindowedRate::countInWindow(double now) const
{
    expire(now);
    return events_.size();
}

} // namespace modm

/**
 * @file
 * Memory-bounded telemetry collection via deterministic stride
 * downsampling.
 *
 * Serving runs accumulate per-event telemetry (cache-hit ages,
 * allocation snapshots) into plain vectors; at million-request trace
 * scale those vectors become the experiment's memory ceiling.
 * SampledVector caps retained samples at a configured bound: it keeps
 * every element until the cap is hit, then halves the retained set and
 * doubles its sampling stride — so the kept elements are always the
 * original sequence at indexes 0, stride, 2*stride, ... This preserves
 * coverage of the whole run (unlike head/tail truncation), is a pure
 * function of (cap, push sequence) — no clocks, no RNG — and keeps
 * sweep results bit-reproducible at any parallelism.
 *
 * A cap of 0 disables sampling entirely: every push is retained and
 * behaviour is byte-identical to the plain vector it replaces (the
 * serving default, so published figures do not change).
 */

#ifndef MODM_COMMON_SAMPLED_VECTOR_HH
#define MODM_COMMON_SAMPLED_VECTOR_HH

#include <cstdint>
#include <vector>

namespace modm {

template <typename T>
class SampledVector
{
  public:
    /** @param cap Retained-sample bound; 0 keeps every sample. */
    explicit SampledVector(std::size_t cap = 0) : cap_(cap) {}

    /** Offer one sample; retained iff its index lands on the stride. */
    void
    push(const T &value)
    {
        const std::uint64_t index = seen_++;
        if (index % stride_ != 0)
            return;
        items_.push_back(value);
        if (cap_ != 0 && items_.size() > cap_)
            thin();
    }

    /** Retained samples, in push order. */
    const std::vector<T> &items() const { return items_; }

    /** Move the retained samples out. */
    std::vector<T> take() { return std::move(items_); }

    /** Total samples offered (retained + dropped). */
    std::uint64_t seen() const { return seen_; }

    /** Current sampling stride (1 until the cap first binds). */
    std::uint64_t stride() const { return stride_; }

    /** Configured bound (0 = unbounded). */
    std::size_t cap() const { return cap_; }

  private:
    void
    thin()
    {
        // Keep every other retained sample: survivors are the original
        // indexes divisible by the doubled stride.
        std::size_t write = 0;
        for (std::size_t read = 0; read < items_.size(); read += 2)
            items_[write++] = items_[read];
        items_.resize(write);
        stride_ *= 2;
    }

    std::size_t cap_;
    std::uint64_t stride_ = 1;
    std::uint64_t seen_ = 0;
    std::vector<T> items_;
};

} // namespace modm

#endif // MODM_COMMON_SAMPLED_VECTOR_HH

/**
 * @file
 * Statistics primitives shared by the simulator and the benchmark
 * harnesses: running mean/variance, percentile tracking for tail-latency
 * reporting, fixed-bin histograms for distribution figures, and windowed
 * rate estimation for the global monitor.
 */

#ifndef MODM_COMMON_STATS_HH
#define MODM_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace modm {

/** Welford running mean / variance / min / max. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples so far. */
    std::uint64_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Maximum sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact percentile tracker: stores all samples and sorts on demand.
 * Serving experiments run at most a few hundred thousand requests, so the
 * exact tracker is both affordable and free of estimator bias in the p99
 * numbers the paper reports.
 */
class PercentileTracker
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /**
     * Percentile in [0, 100] using nearest-rank interpolation; returns 0
     * when empty.
     */
    double percentile(double p) const;

    /** Convenience p99 accessor. */
    double p99() const { return percentile(99.0); }

    /** Mean of samples. */
    double mean() const;

    /** Maximum sample (0 when empty). */
    double max() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Fixed-bin histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    /** Create with the given number of bins over [lo, hi). */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Fraction of all samples in bin i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total samples. */
    std::uint64_t total() const { return total_; }

    /** Mean of added samples. */
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    /** Fraction of samples at or below x. */
    double cumulativeFraction(double x) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Sliding-window event rate estimator; the global monitor uses one to
 * measure the request rate R over the last monitoring period.
 */
class WindowedRate
{
  public:
    /** Window length in simulated seconds. */
    explicit WindowedRate(double window_seconds);

    /** Record an event at the given simulated time (non-decreasing). */
    void record(double time);

    /** Events per minute over the trailing window ending at `now`. */
    double perMinute(double now) const;

    /** Events in the trailing window ending at `now`. */
    std::size_t countInWindow(double now) const;

  private:
    void expire(double now) const;

    double window_;
    mutable std::deque<double> events_;
};

} // namespace modm

#endif // MODM_COMMON_STATS_HH

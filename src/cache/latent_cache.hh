/**
 * @file
 * Nirvana-style latent cache (the paper's primary caching baseline,
 * §2.2).
 *
 * Nirvana stores *intermediate latent representations* of previous
 * generations at several de-noising depths, retrieves by text-to-text
 * similarity between prompt embeddings, and skips the first k steps of
 * the large model. Consequences the paper calls out, all modelled here:
 *
 *  - storage is ~2.5 MB per image (multiple latents) vs 1.4 MB for a
 *    final image;
 *  - latents are model-specific: entries record the producing model and
 *    retrieval rejects mismatched models (cache fragmentation);
 *  - text-to-text retrieval has no visual grounding, so thresholds are
 *    high (0.65-0.95 band) and selected k values are conservative,
 *    capping the end-to-end saving near 20 %.
 */

#ifndef MODM_CACHE_LATENT_CACHE_HH
#define MODM_CACHE_LATENT_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/row_store.hh"
#include "src/diffusion/image.hh"
#include "src/embedding/encoder.hh"
#include "src/embedding/vector_index.hh"

namespace modm::cache {

/** Bytes of one multi-k latent set (paper §3.1: ~2.5 MB per image). */
constexpr double kLatentSetBytes = 2.5e6;

/** Nirvana text-to-text threshold -> k mapping. */
struct NirvanaThresholds
{
    /** Minimum text-to-text similarity for any hit. */
    double hitThreshold = 0.82;
    /**
     * Similarity floors for increasing k, parallel to kValues. The
     * highest floor not exceeding the observed similarity decides k.
     * Conservative: text-to-text similarity has no visual grounding,
     * so Nirvana cannot risk large skips (the root of its ~20 % cap).
     */
    std::vector<double> similarityFloors = {0.82, 0.90, 0.96};
    /** k values available in the cached latent sets. */
    std::vector<int> kValues = {5, 10, 15};
};

/** One cached latent set. */
struct LatentEntry
{
    /** Final image of the generation whose latents are cached. */
    diffusion::Image image;
    /** Slot of the prompt's text embedding (the retrieval key) in the
     *  cache's row slab. */
    RowStore::Slot embeddingSlot = 0;
    /** Producing model; latents are unusable by other models. */
    std::string modelName;
    double insertTime = 0.0;
    std::uint64_t hits = 0;
};

/** Result of a latent-cache lookup. */
struct LatentHit
{
    bool found = false;
    std::uint64_t entryId = 0;
    /** Text-to-text similarity of the match. */
    double similarity = -1.0;
    /** De-noising steps to skip, per the threshold mapping. */
    int k = 0;
    /** True when compared against an exhaustive scan (recall@1). */
    bool exactChecked = false;
    /** When checked: did the backend return the exact best entry? */
    bool exactAgreed = false;
};

/**
 * Fixed-capacity latent cache with utility eviction (Nirvana's policy).
 *
 * Doubles as the retrieval backend's RowSource over the stored text
 * embeddings (see ImageCache for the rationale).
 */
class LatentCache : public embedding::RowSource
{
  public:
    /**
     * @param capacity Maximum number of cached latent sets.
     * @param model_name The single model this cache serves.
     * @param thresholds Similarity -> k mapping.
     * @param seed Seed for sampled utility eviction.
     * @param retrieval Retrieval-backend selection and tuning; the
     *        default is the exact flat scan.
     */
    LatentCache(std::size_t capacity, std::string model_name,
                NirvanaThresholds thresholds = {},
                std::uint64_t seed = 1,
                embedding::RetrievalBackendConfig retrieval = {});

    /**
     * Pre-size the entry map and retrieval index for `expected`
     * entries (clamped to capacity); used before warm-up bulk loads.
     */
    void reserve(std::size_t expected);

    /**
     * Cache the latents of a finished generation. Images from other
     * models are rejected (model dependence) and counted.
     */
    void insert(const diffusion::Image &image,
                const embedding::Embedding &text_embedding, double now);

    /**
     * Look up by the *text* embedding of a new prompt; applies the hit
     * threshold and decides k.
     */
    LatentHit retrieve(const embedding::Embedding &query_text) const;

    /** Record a used hit (utility bookkeeping). */
    void recordHit(std::uint64_t entry_id);

    /** Entry access; panics when absent. */
    const LatentEntry &entry(std::uint64_t entry_id) const;

    /** Number of cached latent sets. */
    std::size_t size() const { return entries_.size(); }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Change the capacity mid-run (scripted knob change). Shrinking
     * evicts down to the new bound; growing just raises it.
     */
    void setCapacity(std::size_t capacity);

    /** Bytes stored (latentSetBytes per entry). */
    double storedBytes() const { return storedBytes_; }

    /** Number of inserts rejected due to model mismatch. */
    std::uint64_t rejectedInserts() const { return rejectedInserts_; }

    /**
     * Slots held by the insertion-order deque, live + stale; bounded
     * at roughly twice the live entry count by compaction (exposed so
     * tests can pin the bound).
     */
    std::size_t orderSlots() const { return order_.size(); }

    /** Times the insertion-order deque was compacted. */
    std::uint64_t orderCompactions() const { return orderCompactions_; }

    /** The threshold table in use. */
    const NirvanaThresholds &thresholds() const { return thresholds_; }

    /**
     * Retrieval scan parallelism, forwarded to the retrieval backend:
     * 1 (default) = serial, 0 = match the global thread pool. Backends
     * without a sharded scan ignore it.
     */
    void setRetrievalParallelism(std::size_t threads)
    {
        index_->setParallelism(threads);
    }

    /**
     * Serving load in [0, 1], forwarded to the retrieval backend for
     * load-adaptive search (IVF adaptiveNprobe, HNSW adaptiveEfSearch);
     * exact backends ignore it.
     */
    void setRetrievalLoad(double load) { index_->setLoadSignal(load); }

    /** Runtime efSearch override (scenario knob); 0 ignored. */
    void setRetrievalEf(std::size_t ef) { index_->setEfSearch(ef); }

    /** Runtime nprobe override (scenario knob); 0 ignored. */
    void setRetrievalNprobe(std::size_t nprobe)
    {
        index_->setNprobe(nprobe);
    }

    /** Bytes the retrieval backend holds (memory-budget axis). */
    std::size_t retrievalMemoryBytes() const
    {
        return index_->memoryBytes();
    }

    /**
     * Exact-row oracle over cached entries (RowSource): returns the
     * slab row in place (zero-copy; see ImageCache::row).
     */
    const float *row(std::uint64_t id) const override
    {
        const auto it = entries_.find(id);
        if (it == entries_.end())
            return nullptr;
        ++rowAccesses_;
        return rows_.row(it->second.embeddingSlot);
    }

    /** Slab-row pointers handed out through the RowSource. */
    std::uint64_t rowAccesses() const { return rowAccesses_; }

    /** Lookups compared against an exhaustive scan (recall@1). */
    std::uint64_t recallChecked() const { return recallChecked_; }

    /** Checked lookups where the backend matched the exact best. */
    std::uint64_t recallAgreed() const { return recallAgreed_; }

    /** The retrieval backend (exposed for tests and benchmarks). */
    const embedding::VectorIndex &index() const { return *index_; }

    /** Remove everything (node restart); counters are kept. */
    void clear();

  private:
    void evictOne();
    /** Drop stale order slots once they outnumber live ones. */
    void compactOrder();

    std::size_t capacity_;
    std::string modelName_;
    NirvanaThresholds thresholds_;
    embedding::RetrievalBackendConfig retrieval_;
    mutable Rng rng_;

    std::unordered_map<std::uint64_t, LatentEntry> entries_;
    /** Embedding rows, slot-addressed from LatentEntry (stable slab
     *  pointers, freelist reuse on eviction). */
    RowStore rows_;
    mutable std::uint64_t rowAccesses_ = 0;
    std::unique_ptr<embedding::VectorIndex> index_;
    std::deque<std::uint64_t> order_;
    std::size_t staleOrder_ = 0; // order_ ids no longer in entries_
    std::uint64_t orderCompactions_ = 0;
    double storedBytes_ = 0.0;
    std::uint64_t rejectedInserts_ = 0;
    mutable std::uint64_t recallChecked_ = 0;
    mutable std::uint64_t recallAgreed_ = 0;
};

} // namespace modm::cache

#endif // MODM_CACHE_LATENT_CACHE_HH

/**
 * @file
 * MoDM's final-image cache (paper §3.1, §5.4).
 *
 * The cache stores *final generated images* plus their CLIP image
 * embeddings — the model-agnostic design that lets any diffusion model
 * family consume cached content. Retrieval is text-to-image cosine
 * similarity (paper Eq. 1) over a flat embedding index.
 *
 * Eviction policies:
 *  - FIFO: the paper's choice — a sliding window over recent generations,
 *    justified by the strong temporal locality of production traffic
 *    (>90 % of hits retrieve images generated within 4 h, Fig. 15) and
 *    by the diversity benefit of automatically expiring popular items.
 *  - LRU and Utility: provided for the cache-policy ablation. Utility
 *    eviction uses sampled eviction (candidate sampling, as production
 *    caches do) to stay O(1)-ish per insert.
 */

#ifndef MODM_CACHE_IMAGE_CACHE_HH
#define MODM_CACHE_IMAGE_CACHE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <string>
#include <unordered_map>

#include <memory>

#include "src/common/rng.hh"
#include "src/common/row_store.hh"
#include "src/diffusion/image.hh"
#include "src/embedding/encoder.hh"
#include "src/embedding/vector_index.hh"

namespace modm::cache {

/** Cache eviction policy. */
enum class EvictionPolicy
{
    FIFO,     ///< sliding window (the paper's choice)
    LRU,      ///< least-recently-hit
    Utility,  ///< keep frequently-hit items (Nirvana-style utility)
};

/** Printable policy name. */
const char *policyName(EvictionPolicy policy);

/** One cached image plus retrieval metadata. */
struct CacheEntry
{
    diffusion::Image image;
    /** Slot of the CLIP image embedding in the cache's row slab. */
    RowStore::Slot embeddingSlot = 0;
    double insertTime = 0.0;
    double lastHitTime = 0.0;
    std::uint64_t hits = 0;
};

/** Result of a cache lookup. */
struct RetrievalResult
{
    /** True when the cache is non-empty and a best match exists. */
    bool found = false;
    /** Best-match entry id (image id). */
    std::uint64_t entryId = 0;
    /** Cosine similarity of the best match. */
    double similarity = -1.0;
    /**
     * True when this lookup was compared against an exhaustive scan
     * (approximate backends with recall tracking on).
     */
    bool exactChecked = false;
    /** When checked: did the backend return the exact best entry? */
    bool exactAgreed = false;
};

/** Aggregate cache statistics. */
struct ImageCacheStats
{
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hitsRecorded = 0;
    /** Times the FIFO deque was compacted to drop stale slots. */
    std::uint64_t fifoCompactions = 0;
    /** Lookups compared against an exhaustive scan (recall@1). */
    std::uint64_t recallChecked = 0;
    /** Checked lookups where the backend matched the exact best. */
    std::uint64_t recallAgreed = 0;
};

/**
 * Fixed-capacity image cache with embedding retrieval.
 *
 * The cache doubles as the retrieval backend's RowSource: it already
 * stores every entry's embedding, so quantized backends (IVF-PQ)
 * re-rank their shortlists against exact rows at no extra memory.
 */
class ImageCache : public embedding::RowSource
{
  public:
    /**
     * @param capacity Maximum number of cached images.
     * @param policy Eviction policy.
     * @param encoder_config Image-tower configuration for embedding
     *        inserted images.
     * @param seed Seed for sampled utility eviction.
     * @param retrieval Retrieval-backend selection and tuning; the
     *        default is the exact flat scan.
     */
    ImageCache(std::size_t capacity, EvictionPolicy policy,
               embedding::ImageEncoderConfig encoder_config = {},
               std::uint64_t seed = 1,
               embedding::RetrievalBackendConfig retrieval = {});

    /**
     * Pre-size the entry map, retrieval index, and LRU bookkeeping for
     * `expected` entries (clamped to capacity). Called before warm-up
     * so bulk insertion pays neither repeated embedding-row
     * reallocation nor hash rehashing.
     */
    void reserve(std::size_t expected);

    /**
     * Insert an image at simulated time `now`, embedding it with the
     * image tower and evicting per policy when full.
     */
    void insert(const diffusion::Image &image, double now);

    /** Best match for a query embedding (no threshold applied). */
    RetrievalResult retrieve(const embedding::Embedding &query) const;

    /**
     * Record that a retrieval was used (affects LRU/Utility ordering).
     */
    void recordHit(std::uint64_t entry_id, double now);

    /** Entry access; panics when absent. */
    const CacheEntry &entry(std::uint64_t entry_id) const;

    /** True when the id is cached. */
    bool contains(std::uint64_t entry_id) const;

    /** Number of cached images. */
    std::size_t size() const { return entries_.size(); }

    /** Capacity. */
    std::size_t capacity() const { return capacity_; }

    /**
     * Change the capacity mid-run (scripted knob change). Shrinking
     * evicts down to the new bound under the active eviction policy;
     * growing just raises the bound.
     */
    void setCapacity(std::size_t capacity);

    /** Total bytes of cached images (storage accounting). */
    double storedBytes() const { return storedBytes_; }

    /** Statistics. */
    const ImageCacheStats &stats() const { return stats_; }

    /** Active policy. */
    EvictionPolicy policy() const { return policy_; }

    /**
     * Retrieval scan parallelism, forwarded to the retrieval backend:
     * 1 (default) = serial, 0 = match the global thread pool. Backends
     * without a sharded scan ignore it.
     */
    void setRetrievalParallelism(std::size_t threads)
    {
        index_->setParallelism(threads);
    }

    /**
     * Minimum index size before retrieval scans shard (forwarded to
     * the retrieval backend); lower it to engage sharding on small
     * caches.
     */
    void setRetrievalParallelThreshold(std::size_t rows)
    {
        index_->setParallelThreshold(rows);
    }

    /**
     * Serving load in [0, 1], forwarded to the retrieval backend for
     * load-adaptive search (IVF adaptiveNprobe, HNSW adaptiveEfSearch);
     * exact backends ignore it.
     */
    void setRetrievalLoad(double load) { index_->setLoadSignal(load); }

    /** Runtime efSearch override (scenario knob); 0 ignored. */
    void setRetrievalEf(std::size_t ef) { index_->setEfSearch(ef); }

    /** Runtime nprobe override (scenario knob); 0 ignored. */
    void setRetrievalNprobe(std::size_t nprobe)
    {
        index_->setNprobe(nprobe);
    }

    /** Bytes the retrieval backend holds (memory-budget axis). */
    std::size_t retrievalMemoryBytes() const
    {
        return index_->memoryBytes();
    }

    /**
     * Exact-row oracle over cached entries (RowSource): returns the
     * slab row in place — quantized backends re-rank against it with
     * zero copies (rowAccesses() counts the handed-out pointers so
     * tests can pin the zero-copy path).
     */
    const float *row(std::uint64_t id) const override
    {
        const auto it = entries_.find(id);
        if (it == entries_.end())
            return nullptr;
        ++rowAccesses_;
        return rows_.row(it->second.embeddingSlot);
    }

    /** Slab-row pointers handed out through the RowSource. */
    std::uint64_t rowAccesses() const { return rowAccesses_; }

    /** The retrieval backend (exposed for tests and benchmarks). */
    const embedding::VectorIndex &index() const { return *index_; }

    /** Active retrieval-backend configuration. */
    const embedding::RetrievalBackendConfig &retrievalConfig() const
    {
        return retrieval_;
    }

    /**
     * Slots currently held by the FIFO deque, live + stale. Bounded at
     * roughly twice the live entry count by opportunistic compaction
     * (exposed so tests can pin the bound).
     */
    std::size_t fifoSlots() const { return fifo_.size(); }

    /** Remove everything. */
    void clear();

  private:
    void evictOne();
    std::uint64_t pickUtilityVictim();
    void erase(std::uint64_t id);
    /** Drop stale fifo slots once they outnumber live ones. */
    void compactFifo();

    std::size_t capacity_;
    EvictionPolicy policy_;
    embedding::ImageEncoder encoder_;
    embedding::RetrievalBackendConfig retrieval_;
    mutable Rng rng_;

    std::unordered_map<std::uint64_t, CacheEntry> entries_;
    /** Embedding rows, slot-addressed from CacheEntry (stable slab
     *  pointers, freelist reuse on eviction). */
    RowStore rows_;
    mutable std::uint64_t rowAccesses_ = 0;
    std::unique_ptr<embedding::VectorIndex> index_;
    std::deque<std::uint64_t> fifo_;          // FIFO order
    std::list<std::uint64_t> lruOrder_;       // front = least recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        lruPos_;
    std::size_t staleFifo_ = 0; // fifo_ ids no longer in entries_
    double storedBytes_ = 0.0;
    ImageCacheStats stats_;
};

} // namespace modm::cache

#endif // MODM_CACHE_IMAGE_CACHE_HH

#include "src/cache/image_cache.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace modm::cache {

const char *
policyName(EvictionPolicy policy)
{
    switch (policy) {
      case EvictionPolicy::FIFO:
        return "FIFO";
      case EvictionPolicy::LRU:
        return "LRU";
      case EvictionPolicy::Utility:
        return "Utility";
    }
    panic("unknown EvictionPolicy");
}

ImageCache::ImageCache(std::size_t capacity, EvictionPolicy policy,
                       embedding::ImageEncoderConfig encoder_config,
                       std::uint64_t seed,
                       embedding::RetrievalBackendConfig retrieval)
    : capacity_(capacity), policy_(policy), encoder_(encoder_config),
      retrieval_(retrieval), rng_(seed), rows_(encoder_config.dim),
      index_(embedding::makeVectorIndex(retrieval, encoder_config.dim))
{
    MODM_ASSERT(capacity_ > 0, "cache capacity must be positive");
    // The cache itself is the exact-row oracle: entries_ already holds
    // every embedding, so quantized backends re-rank for free.
    index_->setRowSource(this);
}

void
ImageCache::reserve(std::size_t expected)
{
    const std::size_t n = std::min(expected, capacity_);
    entries_.reserve(n);
    lruPos_.reserve(n);
    index_->reserve(n);
}

void
ImageCache::insert(const diffusion::Image &image, double now)
{
    MODM_ASSERT(!entries_.count(image.id),
                "duplicate cache insert for image %llu",
                static_cast<unsigned long long>(image.id));
    while (entries_.size() >= capacity_)
        evictOne();

    const embedding::Embedding emb =
        encoder_.encode(image.content, image.fidelity, image.id);
    CacheEntry entry;
    entry.image = image;
    entry.embeddingSlot = rows_.insert(emb.vec().data());
    entry.insertTime = now;
    entry.lastHitTime = now;

    index_->insert(image.id, emb);
    fifo_.push_back(image.id);
    lruOrder_.push_back(image.id);
    lruPos_[image.id] = std::prev(lruOrder_.end());
    storedBytes_ += image.byteSize;
    entries_.emplace(image.id, std::move(entry));
    ++stats_.insertions;
}

RetrievalResult
ImageCache::retrieve(const embedding::Embedding &query) const
{
    auto &stats = const_cast<ImageCacheStats &>(stats_);
    ++stats.lookups;
    RetrievalResult result;
    if (entries_.empty())
        return result;
    const auto match = index_->best(query);
    result.found = true;
    result.entryId = match.id;
    result.similarity = match.similarity;
    if (retrieval_.trackRecall && index_->approximate()) {
        // Quality attribution for approximate backends: did this
        // lookup return the entry an exhaustive scan would have?
        const auto exact = index_->exactBest(query);
        result.exactChecked = true;
        result.exactAgreed = exact.id == match.id;
        ++stats.recallChecked;
        if (result.exactAgreed)
            ++stats.recallAgreed;
    }
    return result;
}

void
ImageCache::recordHit(std::uint64_t entry_id, double now)
{
    auto it = entries_.find(entry_id);
    MODM_ASSERT(it != entries_.end(), "recordHit on absent entry");
    ++it->second.hits;
    it->second.lastHitTime = now;
    ++stats_.hitsRecorded;
    // Move to most-recently-used position.
    auto pos = lruPos_.find(entry_id);
    MODM_ASSERT(pos != lruPos_.end(), "LRU bookkeeping out of sync");
    lruOrder_.splice(lruOrder_.end(), lruOrder_, pos->second);
    pos->second = std::prev(lruOrder_.end());
}

const CacheEntry &
ImageCache::entry(std::uint64_t entry_id) const
{
    const auto it = entries_.find(entry_id);
    MODM_ASSERT(it != entries_.end(), "entry() on absent id %llu",
                static_cast<unsigned long long>(entry_id));
    return it->second;
}

bool
ImageCache::contains(std::uint64_t entry_id) const
{
    return entries_.count(entry_id) > 0;
}

std::uint64_t
ImageCache::pickUtilityVictim()
{
    // Sampled eviction: examine a bounded number of random candidates
    // and evict the one with the lowest utility (hit count with mild
    // recency weighting). Keeps eviction O(sample) like production
    // caches (e.g. Redis' approximated LFU).
    constexpr std::size_t kSample = 24;
    MODM_ASSERT(!fifo_.empty(), "utility eviction on empty cache");
    std::uint64_t victim = 0;
    double worst = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < kSample; ++i) {
        const std::uint64_t id = fifo_[rng_.uniformInt(fifo_.size())];
        const auto it = entries_.find(id);
        if (it == entries_.end())
            continue; // stale fifo slot (already evicted)
        const CacheEntry &e = it->second;
        const double utility = static_cast<double>(e.hits) +
            0.001 * e.lastHitTime;
        if (first || utility < worst) {
            worst = utility;
            victim = id;
            first = false;
        }
    }
    if (first) {
        // All sampled slots were stale: fall back to FIFO head.
        for (std::uint64_t id : fifo_) {
            if (entries_.count(id))
                return id;
        }
        panic("utility eviction found no live entries");
    }
    return victim;
}

void
ImageCache::setCapacity(std::size_t capacity)
{
    MODM_ASSERT(capacity > 0, "cache capacity must be positive");
    capacity_ = capacity;
    while (entries_.size() > capacity_)
        evictOne();
}

void
ImageCache::evictOne()
{
    MODM_ASSERT(!entries_.empty(), "evict on empty cache");
    std::uint64_t victim = 0;
    switch (policy_) {
      case EvictionPolicy::FIFO:
        while (!fifo_.empty() && !entries_.count(fifo_.front())) {
            fifo_.pop_front();
            --staleFifo_;
        }
        MODM_ASSERT(!fifo_.empty(), "FIFO bookkeeping out of sync");
        victim = fifo_.front();
        break;
      case EvictionPolicy::LRU:
        MODM_ASSERT(!lruOrder_.empty(), "LRU bookkeeping out of sync");
        victim = lruOrder_.front();
        break;
      case EvictionPolicy::Utility:
        victim = pickUtilityVictim();
        break;
    }
    erase(victim);
    ++stats_.evictions;
}

void
ImageCache::erase(std::uint64_t id)
{
    const auto it = entries_.find(id);
    MODM_ASSERT(it != entries_.end(), "erase of absent entry");
    storedBytes_ -= it->second.image.byteSize;
    // Remove from the index before releasing the slab slot: the index
    // may still read this id's row through the RowSource mid-removal.
    index_->remove(id);
    rows_.release(it->second.embeddingSlot);
    const auto pos = lruPos_.find(id);
    if (pos != lruPos_.end()) {
        lruOrder_.erase(pos->second);
        lruPos_.erase(pos);
    }
    if (!fifo_.empty() && fifo_.front() == id) {
        fifo_.pop_front();
        // The erased front may expose stale slots behind it.
        while (!fifo_.empty() && !entries_.count(fifo_.front())) {
            fifo_.pop_front();
            --staleFifo_;
        }
    } else {
        // Mid-deque erase (LRU/Utility victims): leave the stale id in
        // fifo_ — eviction paths skip absent ids, and compactFifo()
        // keeps the stale population bounded. Lazy deletion keeps
        // erase O(1) amortized.
        ++staleFifo_;
    }
    entries_.erase(it);
    compactFifo();
}

void
ImageCache::compactFifo()
{
    // Compact once stale slots outnumber live ones: each rebuild is
    // O(fifo) but is triggered only after at least fifo/2 mid-deque
    // erases, so the amortized cost per erase is O(1) and fifo_ never
    // exceeds ~2x the live entry count — previously Utility (and LRU)
    // eviction leaked stale ids unboundedly on long traces.
    if (staleFifo_ * 2 <= fifo_.size() || fifo_.empty())
        return;
    std::deque<std::uint64_t> live;
    for (const std::uint64_t id : fifo_) {
        if (entries_.count(id))
            live.push_back(id);
    }
    fifo_.swap(live);
    staleFifo_ = 0;
    ++stats_.fifoCompactions;
}

void
ImageCache::clear()
{
    entries_.clear();
    rows_.clear();
    index_->clear();
    fifo_.clear();
    lruOrder_.clear();
    lruPos_.clear();
    staleFifo_ = 0;
    storedBytes_ = 0.0;
}

} // namespace modm::cache

/**
 * @file
 * Per-shard capacity accounting for partitioned caches.
 *
 * A multi-node deployment splits one logical cache budget (entry count
 * or worker count) across N node-local shards. The split is a pure
 * function of (total, shards, shard index) — never of runtime state —
 * so any node can compute its own share and the shares always sum to
 * the total: the first `total % shards` shards take one extra unit.
 * Every share is clamped to at least 1 because both caches and worker
 * pools reject zero capacity; an over-sharded budget (total < shards)
 * therefore sums to `shards`, the minimum viable deployment.
 */

#ifndef MODM_CACHE_SHARD_HH
#define MODM_CACHE_SHARD_HH

#include <cstddef>

#include "src/common/log.hh"

namespace modm::cache {

/** Shard `shard`'s share of a budget split across `shards` shards. */
inline std::size_t
shardCapacity(std::size_t total, std::size_t shards, std::size_t shard)
{
    MODM_ASSERT(shards > 0, "shardCapacity needs at least one shard");
    MODM_ASSERT(shard < shards, "shard index %zu out of %zu", shard,
                shards);
    const std::size_t base = total / shards;
    const std::size_t share = base + (shard < total % shards ? 1 : 0);
    return share == 0 ? 1 : share;
}

} // namespace modm::cache

#endif // MODM_CACHE_SHARD_HH

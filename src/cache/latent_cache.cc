#include "src/cache/latent_cache.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace modm::cache {

LatentCache::LatentCache(std::size_t capacity, std::string model_name,
                         NirvanaThresholds thresholds, std::uint64_t seed,
                         embedding::RetrievalBackendConfig retrieval)
    : capacity_(capacity), modelName_(std::move(model_name)),
      thresholds_(std::move(thresholds)), retrieval_(retrieval),
      rng_(seed), rows_(embedding::kEmbeddingDim),
      index_(embedding::makeVectorIndex(retrieval,
                                        embedding::kEmbeddingDim))
{
    MODM_ASSERT(capacity_ > 0, "latent cache capacity must be positive");
    MODM_ASSERT(thresholds_.similarityFloors.size() ==
                thresholds_.kValues.size(),
                "threshold floors and k values must align");
    MODM_ASSERT(std::is_sorted(thresholds_.similarityFloors.begin(),
                               thresholds_.similarityFloors.end()),
                "similarity floors must be ascending");
    index_->setRowSource(this);
}

void
LatentCache::reserve(std::size_t expected)
{
    const std::size_t n = std::min(expected, capacity_);
    entries_.reserve(n);
    index_->reserve(n);
}

void
LatentCache::insert(const diffusion::Image &image,
                    const embedding::Embedding &text_embedding, double now)
{
    if (image.modelName != modelName_) {
        // Latents are model-specific: content from other models cannot
        // populate this cache (the fragmentation MoDM avoids).
        ++rejectedInserts_;
        return;
    }
    MODM_ASSERT(!entries_.count(image.id),
                "duplicate latent insert for image %llu",
                static_cast<unsigned long long>(image.id));
    while (entries_.size() >= capacity_)
        evictOne();

    LatentEntry entry;
    entry.image = image;
    entry.embeddingSlot = rows_.insert(text_embedding.vec().data());
    entry.modelName = image.modelName;
    entry.insertTime = now;

    index_->insert(image.id, text_embedding);
    order_.push_back(image.id);
    storedBytes_ += kLatentSetBytes;
    entries_.emplace(image.id, std::move(entry));
}

LatentHit
LatentCache::retrieve(const embedding::Embedding &query_text) const
{
    LatentHit hit;
    if (entries_.empty())
        return hit;
    const auto match = index_->best(query_text);
    if (retrieval_.trackRecall && index_->approximate()) {
        // Recall accounting runs before thresholding: an approximate
        // miss of the exact best can also flip a hit into a miss.
        const auto exact = index_->exactBest(query_text);
        hit.exactChecked = true;
        hit.exactAgreed = exact.id == match.id;
        ++recallChecked_;
        if (hit.exactAgreed)
            ++recallAgreed_;
    }
    if (match.similarity < thresholds_.hitThreshold)
        return hit;
    hit.found = true;
    hit.entryId = match.id;
    hit.similarity = match.similarity;
    hit.k = thresholds_.kValues.front();
    for (std::size_t i = 0; i < thresholds_.similarityFloors.size(); ++i) {
        if (match.similarity >= thresholds_.similarityFloors[i])
            hit.k = thresholds_.kValues[i];
    }
    return hit;
}

void
LatentCache::recordHit(std::uint64_t entry_id)
{
    auto it = entries_.find(entry_id);
    MODM_ASSERT(it != entries_.end(), "recordHit on absent latent entry");
    ++it->second.hits;
}

const LatentEntry &
LatentCache::entry(std::uint64_t entry_id) const
{
    const auto it = entries_.find(entry_id);
    MODM_ASSERT(it != entries_.end(), "latent entry() on absent id");
    return it->second;
}

void
LatentCache::setCapacity(std::size_t capacity)
{
    MODM_ASSERT(capacity > 0, "cache capacity must be positive");
    capacity_ = capacity;
    while (entries_.size() > capacity_)
        evictOne();
}

void
LatentCache::evictOne()
{
    // Nirvana keeps high-utility latents: sampled eviction of the
    // lowest-hit entry.
    constexpr std::size_t kSample = 24;
    MODM_ASSERT(!order_.empty(), "latent evict on empty cache");
    std::uint64_t victim = 0;
    std::uint64_t worst = 0;
    bool first = true;
    for (std::size_t i = 0; i < kSample; ++i) {
        const std::uint64_t id = order_[rng_.uniformInt(order_.size())];
        const auto it = entries_.find(id);
        if (it == entries_.end())
            continue;
        if (first || it->second.hits < worst) {
            worst = it->second.hits;
            victim = id;
            first = false;
        }
    }
    if (first) {
        while (!order_.empty() && !entries_.count(order_.front())) {
            order_.pop_front();
            --staleOrder_;
        }
        MODM_ASSERT(!order_.empty(), "latent cache bookkeeping out of sync");
        victim = order_.front();
    }
    const auto it = entries_.find(victim);
    MODM_ASSERT(it != entries_.end(), "latent victim vanished");
    // Remove from the index before releasing the slab slot: the index
    // may still read this id's row through the RowSource mid-removal.
    index_->remove(victim);
    rows_.release(it->second.embeddingSlot);
    storedBytes_ -= kLatentSetBytes;
    entries_.erase(it);
    if (!order_.empty() && order_.front() == victim)
        order_.pop_front();
    else
        ++staleOrder_;
    compactOrder();
}

void
LatentCache::compactOrder()
{
    // Same lazy-deletion bound as ImageCache::compactFifo: rebuild the
    // insertion-order deque once stale slots outnumber live ones, so
    // utility eviction cannot grow order_ without bound on long
    // traces. Each O(order) rebuild follows at least order/2 mid-deque
    // erases — O(1) amortized.
    if (staleOrder_ * 2 <= order_.size() || order_.empty())
        return;
    std::deque<std::uint64_t> live;
    for (const std::uint64_t id : order_) {
        if (entries_.count(id))
            live.push_back(id);
    }
    order_.swap(live);
    staleOrder_ = 0;
    ++orderCompactions_;
}

void
LatentCache::clear()
{
    entries_.clear();
    rows_.clear();
    index_->clear();
    order_.clear();
    staleOrder_ = 0;
    storedBytes_ = 0.0;
}

} // namespace modm::cache

#include "src/obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/log.hh"

namespace modm::obs {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

MetricsRegistry::MetricsRegistry(double window, std::size_t max_rows)
    : window_(window), rows_(max_rows)
{
    MODM_ASSERT(window > 0.0, "metrics window must be positive");
}

MetricId
MetricsRegistry::define(std::string name, MetricKind kind)
{
    defs_.push_back({std::move(name), kind});
    current_.emplace_back();
    return defs_.size() - 1;
}

MetricId
MetricsRegistry::counter(std::string name)
{
    return define(std::move(name), MetricKind::Counter);
}

MetricId
MetricsRegistry::gauge(std::string name)
{
    return define(std::move(name), MetricKind::Gauge);
}

MetricId
MetricsRegistry::histogram(std::string name)
{
    return define(std::move(name), MetricKind::Histogram);
}

void
MetricsRegistry::roll(double t)
{
    const auto target =
        static_cast<std::uint64_t>(std::max(t, 0.0) / window_);
    // Flush every window between the current one and the sample's —
    // empty windows emit rows too, so the series has one row per
    // elapsed window and downstream plots need no gap-filling.
    while (touched_ && currentWindow_ < target) {
        flush();
        ++currentWindow_;
    }
    if (!touched_)
        currentWindow_ = target;
}

void
MetricsRegistry::flush()
{
    MetricsRow row;
    row.window = currentWindow_;
    row.values = current_;
    rows_.push(row);
    ++windowsSeen_;
    for (std::size_t i = 0; i < current_.size(); ++i) {
        const double last = current_[i].last;
        current_[i] = WindowValue{};
        // A gauge holds its reading across windows it is not set in.
        if (defs_[i].kind == MetricKind::Gauge) {
            current_[i].last = last;
            current_[i].min = last;
            current_[i].max = last;
        }
    }
}

void
MetricsRegistry::add(MetricId id, double t, double amount)
{
    MODM_ASSERT(id < defs_.size() &&
                defs_[id].kind == MetricKind::Counter,
                "add() on a non-counter metric");
    roll(t);
    touched_ = true;
    WindowValue &w = current_[id];
    ++w.count;
    w.sum += amount;
    w.last = amount;
}

void
MetricsRegistry::set(MetricId id, double t, double value)
{
    MODM_ASSERT(id < defs_.size() && defs_[id].kind == MetricKind::Gauge,
                "set() on a non-gauge metric");
    roll(t);
    touched_ = true;
    WindowValue &w = current_[id];
    if (w.count == 0) {
        w.min = value;
        w.max = value;
    } else {
        w.min = std::min(w.min, value);
        w.max = std::max(w.max, value);
    }
    ++w.count;
    w.sum += value;
    w.last = value;
}

void
MetricsRegistry::observe(MetricId id, double t, double value)
{
    MODM_ASSERT(id < defs_.size() &&
                defs_[id].kind == MetricKind::Histogram,
                "observe() on a non-histogram metric");
    roll(t);
    touched_ = true;
    WindowValue &w = current_[id];
    if (w.count == 0) {
        w.min = value;
        w.max = value;
    } else {
        w.min = std::min(w.min, value);
        w.max = std::max(w.max, value);
    }
    ++w.count;
    w.sum += value;
    w.last = value;
}

MetricsSeries
MetricsRegistry::take()
{
    if (touched_)
        flush();
    MetricsSeries series;
    series.window = window_;
    series.metrics = std::move(defs_);
    series.rows = rows_.take();
    series.windowsSeen = windowsSeen_;
    defs_.clear();
    current_.clear();
    touched_ = false;
    return series;
}

std::string
MetricsSeries::csv(const std::string &cell) const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "# modm-metrics v%d window=%.17g\n",
                  schema, window);
    out += buf;
    out += "cell,window_start,metric,kind,count,sum,min,max,last\n";
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < metrics.size(); ++i) {
            const auto &v = row.values[i];
            std::snprintf(
                buf, sizeof(buf),
                "%s,%.17g,%s,%s,%llu,%.17g,%.17g,%.17g,%.17g\n",
                cell.c_str(),
                static_cast<double>(row.window) * window,
                metrics[i].name.c_str(),
                metricKindName(metrics[i].kind),
                static_cast<unsigned long long>(v.count), v.sum, v.min,
                v.max, v.last);
            out += buf;
        }
    }
    return out;
}

std::vector<double>
bucketCounts(const std::vector<double> &times, double width,
             double duration)
{
    MODM_ASSERT(width > 0.0, "bucket width must be positive");
    const auto buckets = static_cast<std::size_t>(
        std::ceil(std::max(duration, 1.0) / width));
    std::vector<double> out(buckets, 0.0);
    for (const double t : times) {
        const auto b = static_cast<std::size_t>(t / width);
        if (b < buckets)
            out[b] += 1.0;
    }
    return out;
}

std::vector<double>
groupMeans(const std::vector<double> &series, std::size_t group)
{
    MODM_ASSERT(group > 0, "group size must be positive");
    std::vector<double> out;
    out.reserve((series.size() + group - 1) / group);
    for (std::size_t start = 0; start < series.size(); start += group) {
        double acc = 0.0;
        for (std::size_t i = start;
             i < std::min(series.size(), start + group); ++i)
            acc += series[i];
        out.push_back(acc / static_cast<double>(group));
    }
    return out;
}

} // namespace modm::obs

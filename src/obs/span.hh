/**
 * @file
 * Per-request span derivation from an event trace.
 *
 * A TraceLog is a flat dispatch-ordered stream; debugging one request
 * means grepping it by request id. deriveSpans() does that walk once
 * and folds each request's records into a RequestSpan — the lifecycle
 * timestamps (arrival, route, cache classification, worker dispatch,
 * completion) plus the node hop list a failover reroute produces. The
 * span is purely derived: it adds no recording cost and any span can
 * be recomputed from the log alone.
 */

#ifndef MODM_OBS_SPAN_HH
#define MODM_OBS_SPAN_HH

#include <string>
#include <vector>

#include "src/obs/trace.hh"

namespace modm::obs {

/** One routing hop of a request (repeated on failover reroutes). */
struct SpanHop
{
    std::uint32_t node = sim::kNoNode;
    /** Virtual time the router picked this node. */
    double routed = -1.0;
};

/**
 * One request's lifecycle, folded from its trace records. Timestamps
 * are virtual seconds; -1 marks a stage the request never reached
 * (e.g. `dispatched` for a direct cache return, `completed` for a
 * request still in flight when the log ended).
 */
struct RequestSpan
{
    std::uint64_t request = sim::kNoRequest;
    double arrival = -1.0;
    /** First route decision (== hops.front().routed). */
    double routed = -1.0;
    /** Cache classification (hit or miss) at the serving node. */
    double classified = -1.0;
    /** Handed to a worker (stays -1 on direct cache returns). */
    double dispatched = -1.0;
    double completed = -1.0;
    /** Cache classification outcome. */
    bool hit = false;
    /** Served straight from cache, no diffusion pass. */
    bool direct = false;
    /** Node that completed the request (last hop's node). */
    std::uint32_t node = sim::kNoNode;
    /** Every node the request was routed to, in order. */
    std::vector<SpanHop> hops;
    /** Failover re-route count (hops.size() - 1 when routed at all). */
    std::uint32_t reroutes = 0;
};

/**
 * Fold a trace into per-request spans, ordered by first appearance
 * (arrival order). Records with no request id are skipped.
 */
std::vector<RequestSpan> deriveSpans(const TraceLog &log);

/**
 * One-line human-readable span: request id, waypoint timestamps,
 * hit/direct flags, and the hop list.
 */
std::string formatSpan(const RequestSpan &span);

} // namespace modm::obs

#endif // MODM_OBS_SPAN_HH

/**
 * @file
 * Event-level tracing for the discrete-event serving stack.
 *
 * Every determinism guarantee in this repo (sweep 1-vs-N bit-identity,
 * frozen digests, scenario goldens) used to rest on the end-of-run
 * serving::resultDigest, which says *that* two runs diverged but never
 * *where*. The tracer records the full dispatched event stream — one
 * TraceRecord per sim::EventQueue dispatch plus app-level sub-events
 * the serving layer emits (route, cache hit/miss, dispatch, serve) —
 * each carrying the virtual clock, queue sequence number, node id,
 * request id, event kind, and a rolling FNV-1a hash chained from the
 * previous record. Because the hash chains, records [0..i] of two logs
 * are identical iff their i-th hashes are equal, so firstDivergence()
 * binary-searches the first divergent event in O(log n) hash compares
 * and reports exactly where two runs parted ways.
 *
 * Logs live in memory (TraceLog) and round-trip through a compact
 * varint-encoded binary format (.mtrace, see encodeTrace): clock bits
 * are XOR-delta'd against the previous record (smoothly advancing
 * clocks share high bits, so the delta packs small), sequence numbers
 * are zigzag deltas, and a final-hash footer makes corruption
 * detectable at load. Tracing is off by default and the zero-trace
 * path schedules and dispatches exactly as before, so every frozen
 * digest and golden is byte-identical with the subsystem compiled in.
 */

#ifndef MODM_OBS_TRACE_HH
#define MODM_OBS_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_queue.hh"

namespace modm::obs {

/**
 * Event kinds the serving stack tags its events with. Queue-dispatched
 * events (arrival, completion, monitor tick, fault, knob) carry their
 * kind in sim::EventMeta; the remaining kinds are sub-events the
 * serving layer emits directly on the tracer between dispatches.
 */
enum class EventKind : std::uint16_t
{
    Generic = 0,      ///< untagged queue event
    Arrival,          ///< queue: request arrival at the front-end
    Completion,       ///< queue: a worker finished a generation
    MonitorTick,      ///< queue: periodic monitor tick
    Fault,            ///< queue: scripted kill / drain / rejoin
    Knob,             ///< queue: scripted mid-run reconfiguration
    Route,            ///< emit: router picked a node for a request
    CacheHit,         ///< emit: classification found a usable entry
    CacheMiss,        ///< emit: classification found nothing usable
    DirectReturn,     ///< emit: cache hit served without refinement
    Dispatch,         ///< emit: job handed to a worker
    Serve,            ///< emit: request finished (any serve kind)
    Reroute,          ///< emit: killed-node backlog request re-routed
    Warm,             ///< emit: warm-up admission
};

/** Printable name of an event kind ("?" for out-of-range values). */
const char *eventKindName(std::uint16_t kind);

/** Build a sim::EventMeta tagged with an EventKind. */
inline sim::EventMeta
eventMeta(EventKind kind, std::size_t node = sim::kNoNode,
          std::uint64_t request = sim::kNoRequest)
{
    return {static_cast<std::uint16_t>(kind),
            static_cast<std::uint32_t>(node), request};
}

/** FNV-1a 64 offset basis: the hash of the empty record prefix. */
inline constexpr std::uint64_t kTraceHashSeed = 0xcbf29ce484222325ULL;

/** One traced event. */
struct TraceRecord
{
    double clock = 0.0;
    /** Queue sequence of the dispatch (emits reuse the enclosing
     *  dispatch's sequence, 0 before the first dispatch). */
    std::uint64_t seq = 0;
    std::uint16_t kind = 0;
    std::uint32_t node = sim::kNoNode;
    std::uint64_t request = sim::kNoRequest;
    /** Rolling FNV-1a hash over every record up to and including this
     *  one; equal i-th hashes mean equal [0..i] prefixes. */
    std::uint64_t hash = kTraceHashSeed;
};

/** In-memory event log with the chained rolling hash. */
class TraceLog
{
  public:
    /** Append one record, chaining its hash onto the previous one. */
    void append(double clock, std::uint64_t seq, std::uint16_t kind,
                std::uint32_t node, std::uint64_t request);

    /** All records, in dispatch order. */
    const std::vector<TraceRecord> &records() const { return records_; }

    /** Mutable record access (perturbation tooling); rechain() after. */
    std::vector<TraceRecord> &mutableRecords() { return records_; }

    /** Number of records. */
    std::size_t size() const { return records_.size(); }

    /** True when nothing was recorded. */
    bool empty() const { return records_.empty(); }

    /** Hash of the whole log (kTraceHashSeed when empty). */
    std::uint64_t finalHash() const
    {
        return records_.empty() ? kTraceHashSeed : records_.back().hash;
    }

    /**
     * Recompute every chained hash from the record fields (after
     * mutating records) and return the final hash.
     */
    std::uint64_t rechain();

    /**
     * Hash one record's fields onto a previous chain value — the
     * single definition of the trace hash, shared by append, rechain,
     * and the decoder.
     */
    static std::uint64_t chainHash(std::uint64_t prev,
                                   const TraceRecord &record);

  private:
    std::vector<TraceRecord> records_;
};

/**
 * Tracing configuration, carried by ServingConfig::trace. Default:
 * everything off, behaviour and digests byte-identical to a build
 * without the subsystem.
 */
struct TraceConfig
{
    /** Record the event stream (in memory; written to `path` if set). */
    bool events = false;
    /** Write the log as a .mtrace file at end of run ("" = memory only). */
    std::string path;
    /**
     * Streaming-metrics window in virtual seconds: > 0 samples
     * counters/gauges/histograms per window into
     * ServingResult::series. 0 disables the metrics layer.
     */
    double metricsWindow = 0.0;
    /**
     * Retained metrics rows bound (stride-downsampled via
     * SampledVector once exceeded); 0 keeps every window.
     */
    std::size_t maxMetricsRows = 0;

    /** True when any observability layer is on. */
    bool enabled() const { return events || metricsWindow > 0.0; }
};

/**
 * Tracing configuration from the MODM_TRACE environment knob:
 * unset/"0"/"" leaves tracing off, "1" records in memory, anything
 * else records and writes that path at end of run. The env knob is a
 * debugging override — config-driven tracing wins when enabled.
 */
TraceConfig traceEnvConfig();

/**
 * The event recorder: a sim::EventTap that appends one chained record
 * per queue dispatch, plus emit() for the serving layer's sub-events.
 * Recording only — installing a tracer cannot change simulation
 * behaviour, which is what keeps traced and untraced runs bitwise
 * equal in everything but the log.
 */
class Tracer : public sim::EventTap
{
  public:
    Tracer() : log_(std::make_shared<TraceLog>()) {}

    void onDispatch(double time, std::uint64_t seq,
                    const sim::EventMeta &meta) override;

    /** Record an app-level sub-event of the current dispatch. */
    void emit(double clock, EventKind kind, std::uint32_t node,
              std::uint64_t request);

    /** The log recorded so far. */
    const TraceLog &log() const { return *log_; }

    /** Shared ownership of the log (ServingResult keeps it alive). */
    std::shared_ptr<const TraceLog> sharedLog() const { return log_; }

  private:
    std::shared_ptr<TraceLog> log_;
    std::uint64_t lastSeq_ = 0;
};

/** Serialize a log to the .mtrace binary format. */
std::string encodeTrace(const TraceLog &log);

/**
 * Decode a .mtrace image; `what` names the source in diagnostics.
 * Exits via fatal() on malformed or corrupt input (footer hash
 * mismatch), so tools never act on a silently truncated log.
 */
TraceLog decodeTrace(const std::string &data, const char *what);

/** Write a log to `path` in .mtrace format (fatal on I/O error). */
void saveTrace(const TraceLog &log, const std::string &path);

/** Load a .mtrace file (fatal on I/O error or corruption). */
TraceLog loadTrace(const std::string &path);

/** Where two logs part ways (see firstDivergence). */
struct Divergence
{
    /** False when the logs are identical (index/records meaningless). */
    bool diverged = false;
    /** Index of the first divergent record. */
    std::size_t index = 0;
    /** Record at `index` in each log; have* false when that log ended
     *  before the divergence (pure prefix). */
    bool haveA = false;
    bool haveB = false;
    TraceRecord a = {};
    TraceRecord b = {};
    std::size_t sizeA = 0;
    std::size_t sizeB = 0;
};

/**
 * Binary-search the first divergent record of two logs using the
 * rolling-hash checkpoints: prefixes [0..i] are equal iff the i-th
 * hashes are equal, so O(log n) hash compares localize the first
 * difference exactly. Two identical-prefix logs of different lengths
 * diverge at the shorter one's end.
 */
Divergence firstDivergence(const TraceLog &a, const TraceLog &b);

/**
 * Human-readable divergence report: clock, queue seq, node, request
 * id, and both event kinds of the first divergent record (or a
 * "logs identical" line).
 */
std::string formatDivergence(const Divergence &d);

} // namespace modm::obs

#endif // MODM_OBS_TRACE_HH

/**
 * @file
 * Streaming metrics on virtual-clock windows.
 *
 * ServingResult reports end-of-run aggregates only, so every figure
 * that needed per-interval telemetry (hit rate over the stream in
 * Fig. 6, throughput per wall-clock window in Fig. 10) hand-rolled its
 * own windowed accounting. MetricsRegistry standardizes that: named
 * counters, gauges, and histograms sampled on fixed virtual-clock
 * windows, flushed into a MetricsSeries of per-window rows that
 * exports as a schema-versioned CSV time series. Rows are bounded by
 * deterministic stride downsampling (SampledVector), so million-window
 * runs stay memory-bounded without losing whole-run coverage.
 *
 * Everything is a pure function of the sample stream — no wall clocks,
 * no allocation-order dependence — so series produced by concurrent
 * sweep cells are bit-identical to serial ones.
 */

#ifndef MODM_OBS_METRICS_HH
#define MODM_OBS_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sampled_vector.hh"

namespace modm::obs {

/** Metrics CSV schema version (bump when columns change). */
inline constexpr int kMetricsSchema = 1;

/** What a metric aggregates per window. */
enum class MetricKind : std::uint8_t
{
    Counter,    ///< sum of added amounts
    Gauge,      ///< last set value (min/max of sets within the window)
    Histogram,  ///< count/sum/min/max of observed values
};

/** Printable kind name ("counter" / "gauge" / "histogram"). */
const char *metricKindName(MetricKind kind);

/** Registry handle for one metric. */
using MetricId = std::size_t;

/** Name + kind of one registered metric. */
struct MetricDef
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
};

/** One metric's aggregate over one window. */
struct WindowValue
{
    /** Samples that touched the metric this window. */
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Last sampled value (the gauge reading). */
    double last = 0.0;
};

/** One flushed window: aggregates for every registered metric. */
struct MetricsRow
{
    /** Window index; the window covers [window*width, (window+1)*width). */
    std::uint64_t window = 0;
    /** Parallel to MetricsSeries::metrics. */
    std::vector<WindowValue> values;
};

/** A finished time series: definitions plus per-window rows. */
struct MetricsSeries
{
    int schema = kMetricsSchema;
    /** Window width in virtual seconds. */
    double window = 0.0;
    std::vector<MetricDef> metrics;
    /** Retained rows, window-ordered (possibly stride-downsampled). */
    std::vector<MetricsRow> rows;
    /** Windows flushed in total (retained + downsampled away). */
    std::uint64_t windowsSeen = 0;

    /** True when nothing was registered or sampled. */
    bool empty() const { return metrics.empty() || rows.empty(); }

    /**
     * Render as CSV: a `# modm-metrics v<schema> window=<w>` comment,
     * a header row, then one line per (window, metric) with the
     * aggregate columns. `cell` labels the first column so series
     * from multiple sweep cells concatenate into one file.
     */
    std::string csv(const std::string &cell = "") const;
};

/**
 * The streaming registry. Register metrics up front, sample with
 * non-decreasing virtual timestamps, then take() the finished series.
 */
class MetricsRegistry
{
  public:
    /**
     * @param window Window width in virtual seconds (> 0).
     * @param max_rows Retained-row bound (0 = keep every window).
     */
    explicit MetricsRegistry(double window, std::size_t max_rows = 0);

    /** Register a counter; returns its sampling handle. */
    MetricId counter(std::string name);

    /** Register a gauge. */
    MetricId gauge(std::string name);

    /** Register a histogram. */
    MetricId histogram(std::string name);

    /** Add `amount` to a counter at virtual time `t`. */
    void add(MetricId id, double t, double amount = 1.0);

    /** Set a gauge at virtual time `t`. */
    void set(MetricId id, double t, double value);

    /** Observe one histogram value at virtual time `t`. */
    void observe(MetricId id, double t, double value);

    /** Window width. */
    double window() const { return window_; }

    /**
     * Flush the open window and move the series out; the registry is
     * spent afterwards.
     */
    MetricsSeries take();

  private:
    MetricId define(std::string name, MetricKind kind);
    /** Flush complete windows up to (not including) `t`'s window. */
    void roll(double t);
    void flush();

    double window_;
    std::vector<MetricDef> defs_;
    std::vector<WindowValue> current_;
    std::uint64_t currentWindow_ = 0;
    bool touched_ = false;
    SampledVector<MetricsRow> rows_;
    std::uint64_t windowsSeen_ = 0;
};

/**
 * Count samples into fixed-width buckets over [0, duration): the
 * standardized form of the per-minute completion bucketing the
 * throughput-over-time figures use. ceil(max(duration,1)/width)
 * buckets; samples past the end are dropped (they belong to the
 * simulator's trailing drain, which the figures never plot).
 */
std::vector<double> bucketCounts(const std::vector<double> &times,
                                 double width, double duration);

/**
 * Mean of consecutive groups of `group` entries (last group padded
 * with zeros): the "per 4-minute window" re-bucketing the rate
 * figures apply on top of per-minute series.
 */
std::vector<double> groupMeans(const std::vector<double> &series,
                               std::size_t group);

} // namespace modm::obs

#endif // MODM_OBS_METRICS_HH

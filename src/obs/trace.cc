#include "src/obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/log.hh"

namespace modm::obs {

namespace {

constexpr char kMagic[4] = {'M', 'T', 'R', 'C'};
constexpr std::uint64_t kFormatVersion = 1;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/** FNV-1a over the raw bytes of one little-endian 64-bit value. */
std::uint64_t
fnvWord(std::uint64_t hash, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (word >> (8 * i)) & 0xffu;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
clockBits(double clock)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &clock, sizeof(bits));
    return bits;
}

double
bitsClock(std::uint64_t bits)
{
    double clock = 0.0;
    std::memcpy(&clock, &bits, sizeof(clock));
    return clock;
}

void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
        static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
        -static_cast<std::int64_t>(value & 1);
}

/** Cursor over an encoded image; fatal() names `what` on underrun. */
struct Reader
{
    const std::string &data;
    std::size_t pos = 0;
    const char *what;

    std::uint64_t
    varint()
    {
        std::uint64_t value = 0;
        int shift = 0;
        for (;;) {
            if (pos >= data.size())
                fatal("%s: truncated .mtrace varint", what);
            const auto byte =
                static_cast<unsigned char>(data[pos++]);
            if (shift >= 63 && byte > 1)
                fatal("%s: oversized .mtrace varint", what);
            value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                return value;
            shift += 7;
        }
    }
};

} // namespace

const char *
eventKindName(std::uint16_t kind)
{
    switch (static_cast<EventKind>(kind)) {
      case EventKind::Generic: return "generic";
      case EventKind::Arrival: return "arrival";
      case EventKind::Completion: return "completion";
      case EventKind::MonitorTick: return "monitor-tick";
      case EventKind::Fault: return "fault";
      case EventKind::Knob: return "knob";
      case EventKind::Route: return "route";
      case EventKind::CacheHit: return "cache-hit";
      case EventKind::CacheMiss: return "cache-miss";
      case EventKind::DirectReturn: return "direct-return";
      case EventKind::Dispatch: return "dispatch";
      case EventKind::Serve: return "serve";
      case EventKind::Reroute: return "reroute";
      case EventKind::Warm: return "warm";
    }
    return "?";
}

std::uint64_t
TraceLog::chainHash(std::uint64_t prev, const TraceRecord &record)
{
    std::uint64_t hash = prev;
    hash = fnvWord(hash, clockBits(record.clock));
    hash = fnvWord(hash, record.seq);
    hash = fnvWord(hash, record.kind);
    hash = fnvWord(hash, record.node);
    hash = fnvWord(hash, record.request);
    return hash;
}

void
TraceLog::append(double clock, std::uint64_t seq, std::uint16_t kind,
                 std::uint32_t node, std::uint64_t request)
{
    TraceRecord record;
    record.clock = clock;
    record.seq = seq;
    record.kind = kind;
    record.node = node;
    record.request = request;
    record.hash = chainHash(finalHash(), record);
    records_.push_back(record);
}

std::uint64_t
TraceLog::rechain()
{
    std::uint64_t hash = kTraceHashSeed;
    for (auto &record : records_) {
        hash = chainHash(hash, record);
        record.hash = hash;
    }
    return hash;
}

void
Tracer::onDispatch(double time, std::uint64_t seq,
                   const sim::EventMeta &meta)
{
    lastSeq_ = seq;
    log_->append(time, seq, meta.kind, meta.node, meta.request);
}

void
Tracer::emit(double clock, EventKind kind, std::uint32_t node,
             std::uint64_t request)
{
    log_->append(clock, lastSeq_, static_cast<std::uint16_t>(kind),
                 node, request);
}

TraceConfig
traceEnvConfig()
{
    TraceConfig config;
    const char *env = std::getenv("MODM_TRACE");
    if (env == nullptr || env[0] == '\0' ||
        (env[0] == '0' && env[1] == '\0'))
        return config;
    config.events = true;
    if (!(env[0] == '1' && env[1] == '\0'))
        config.path = env;
    return config;
}

std::string
encodeTrace(const TraceLog &log)
{
    std::string out;
    out.reserve(16 + log.size() * 8);
    out.append(kMagic, sizeof(kMagic));
    putVarint(out, kFormatVersion);
    putVarint(out, log.size());
    std::uint64_t prevClockBits = 0;
    std::uint64_t prevSeq = 0;
    for (const auto &record : log.records()) {
        // XOR-delta on the clock bits: smoothly advancing clocks share
        // sign/exponent/high-mantissa bits, so the delta packs into a
        // short varint (and repeated clocks into a single zero byte).
        const std::uint64_t bits = clockBits(record.clock);
        putVarint(out, bits ^ prevClockBits);
        prevClockBits = bits;
        putVarint(out,
                  zigzag(static_cast<std::int64_t>(record.seq -
                                                   prevSeq)));
        prevSeq = record.seq;
        putVarint(out, record.kind);
        putVarint(out, record.node);
        // +1 wraps kNoRequest (all ones) to zero: untagged events cost
        // one byte instead of ten.
        putVarint(out, record.request + 1);
    }
    putVarint(out, log.finalHash());
    return out;
}

TraceLog
decodeTrace(const std::string &data, const char *what)
{
    if (data.size() < sizeof(kMagic) ||
        std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        fatal("%s: not a .mtrace file (bad magic)", what);
    Reader reader{data, sizeof(kMagic), what};
    const std::uint64_t version = reader.varint();
    if (version != kFormatVersion)
        fatal("%s: unsupported .mtrace version %llu", what,
              static_cast<unsigned long long>(version));
    const std::uint64_t count = reader.varint();

    TraceLog log;
    std::uint64_t prevClockBits = 0;
    std::uint64_t prevSeq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t bits = prevClockBits ^ reader.varint();
        prevClockBits = bits;
        const std::uint64_t seq = prevSeq +
            static_cast<std::uint64_t>(unzigzag(reader.varint()));
        prevSeq = seq;
        const std::uint64_t kind = reader.varint();
        if (kind > 0xffffu)
            fatal("%s: corrupt .mtrace event kind", what);
        const std::uint64_t node = reader.varint();
        if (node > 0xffffffffull)
            fatal("%s: corrupt .mtrace node id", what);
        const std::uint64_t request = reader.varint() - 1;
        log.append(bitsClock(bits), seq,
                   static_cast<std::uint16_t>(kind),
                   static_cast<std::uint32_t>(node), request);
    }
    const std::uint64_t footer = reader.varint();
    if (footer != log.finalHash())
        fatal("%s: .mtrace footer hash mismatch (corrupt log): "
              "stored %016llx, recomputed %016llx",
              what, static_cast<unsigned long long>(footer),
              static_cast<unsigned long long>(log.finalHash()));
    if (reader.pos != data.size())
        fatal("%s: trailing bytes after .mtrace footer", what);
    return log;
}

void
saveTrace(const TraceLog &log, const std::string &path)
{
    const std::string data = encodeTrace(log);
    FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        fatal("cannot write trace %s", path.c_str());
    const std::size_t written =
        std::fwrite(data.data(), 1, data.size(), file);
    const bool ok = written == data.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write on trace %s", path.c_str());
}

TraceLog
loadTrace(const std::string &path)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        fatal("cannot read trace %s", path.c_str());
    std::string data;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        data.append(buf, got);
    const bool readError = std::ferror(file) != 0;
    std::fclose(file);
    if (readError)
        fatal("read error on trace %s", path.c_str());
    return decodeTrace(data, path.c_str());
}

Divergence
firstDivergence(const TraceLog &a, const TraceLog &b)
{
    Divergence d;
    d.sizeA = a.size();
    d.sizeB = b.size();
    const std::size_t common = std::min(a.size(), b.size());

    // The chained hash makes prefix equality a single compare: find
    // the smallest index whose hashes differ. Invariant: records
    // [0, lo) are equal, some record in [lo, hi) differs (when any
    // does — checked against the last common hash first).
    std::size_t first = common;
    if (common > 0 && a.records()[common - 1].hash !=
                          b.records()[common - 1].hash) {
        std::size_t lo = 0;
        std::size_t hi = common - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (a.records()[mid].hash == b.records()[mid].hash)
                lo = mid + 1;
            else
                hi = mid;
        }
        first = lo;
    }

    if (first == common && a.size() == b.size())
        return d; // identical
    d.diverged = true;
    d.index = first;
    if (first < a.size()) {
        d.haveA = true;
        d.a = a.records()[first];
    }
    if (first < b.size()) {
        d.haveB = true;
        d.b = b.records()[first];
    }
    return d;
}

namespace {

void
appendRecordLine(std::string &out, const char *side, bool have,
                 const TraceRecord &record)
{
    char buf[192];
    if (!have) {
        std::snprintf(buf, sizeof(buf), "  %s: <log ended>\n", side);
        out += buf;
        return;
    }
    char node[16];
    if (record.node == sim::kNoNode)
        std::snprintf(node, sizeof(node), "-");
    else
        std::snprintf(node, sizeof(node), "%u", record.node);
    char request[24];
    if (record.request == sim::kNoRequest)
        std::snprintf(request, sizeof(request), "-");
    else
        std::snprintf(request, sizeof(request), "%llu",
                      static_cast<unsigned long long>(record.request));
    std::snprintf(buf, sizeof(buf),
                  "  %s: clock=%.9g seq=%llu kind=%s node=%s "
                  "request=%s hash=%016llx\n",
                  side, record.clock,
                  static_cast<unsigned long long>(record.seq),
                  eventKindName(record.kind), node, request,
                  static_cast<unsigned long long>(record.hash));
    out += buf;
}

} // namespace

std::string
formatDivergence(const Divergence &d)
{
    char buf[128];
    std::string out;
    if (!d.diverged) {
        std::snprintf(buf, sizeof(buf),
                      "logs identical (%zu events)\n", d.sizeA);
        return buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "first divergence at event %zu (log A: %zu events, "
                  "log B: %zu events)\n",
                  d.index, d.sizeA, d.sizeB);
    out += buf;
    appendRecordLine(out, "A", d.haveA, d.a);
    appendRecordLine(out, "B", d.haveB, d.b);
    return out;
}

} // namespace modm::obs

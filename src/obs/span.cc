#include "src/obs/span.hh"

#include <cstdio>
#include <unordered_map>

namespace modm::obs {

std::vector<RequestSpan>
deriveSpans(const TraceLog &log)
{
    std::vector<RequestSpan> spans;
    std::unordered_map<std::uint64_t, std::size_t> index;

    for (const auto &record : log.records()) {
        if (record.request == sim::kNoRequest)
            continue;
        auto [it, fresh] =
            index.try_emplace(record.request, spans.size());
        if (fresh) {
            spans.emplace_back();
            spans.back().request = record.request;
        }
        RequestSpan &span = spans[it->second];

        switch (static_cast<EventKind>(record.kind)) {
          case EventKind::Arrival:
            span.arrival = record.clock;
            break;
          case EventKind::Route:
            if (span.routed < 0.0)
                span.routed = record.clock;
            span.hops.push_back({record.node, record.clock});
            span.node = record.node;
            break;
          case EventKind::Reroute:
            ++span.reroutes;
            break;
          case EventKind::CacheHit:
            span.classified = record.clock;
            span.hit = true;
            break;
          case EventKind::CacheMiss:
            span.classified = record.clock;
            span.hit = false;
            break;
          case EventKind::Dispatch:
            span.dispatched = record.clock;
            if (record.node != sim::kNoNode)
                span.node = record.node;
            break;
          case EventKind::DirectReturn:
            span.direct = true;
            span.completed = record.clock;
            break;
          case EventKind::Serve:
            span.completed = record.clock;
            if (record.node != sim::kNoNode)
                span.node = record.node;
            break;
          default:
            break;
        }
    }
    return spans;
}

namespace {

void
appendStamp(std::string &out, const char *name, double t)
{
    char buf[64];
    if (t < 0.0)
        std::snprintf(buf, sizeof(buf), " %s=-", name);
    else
        std::snprintf(buf, sizeof(buf), " %s=%.6g", name, t);
    out += buf;
}

} // namespace

std::string
formatSpan(const RequestSpan &span)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "request %llu:",
                  static_cast<unsigned long long>(span.request));
    std::string out = buf;
    appendStamp(out, "arrival", span.arrival);
    appendStamp(out, "routed", span.routed);
    appendStamp(out, "classified", span.classified);
    appendStamp(out, "dispatched", span.dispatched);
    appendStamp(out, "completed", span.completed);
    out += span.hit ? " hit" : " miss";
    if (span.direct)
        out += " direct";
    out += " hops=[";
    for (std::size_t i = 0; i < span.hops.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%u", i > 0 ? " " : "",
                      span.hops[i].node);
        out += buf;
    }
    out += "]";
    if (span.reroutes > 0) {
        std::snprintf(buf, sizeof(buf), " reroutes=%u", span.reroutes);
        out += buf;
    }
    out += "\n";
    return out;
}

} // namespace modm::obs

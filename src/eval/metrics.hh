/**
 * @file
 * Image-quality metrics (paper §6): CLIPScore, FID, Inception Score and
 * PickScore.
 *
 * The metric *formulas* are the published ones; the feature extractors
 * operate on the simulator's image representation (content vector +
 * fidelity scalar) instead of pixels:
 *
 *  - CLIPScore: 100 x cosine(text embedding, image embedding) computed
 *    with the synthetic CLIP towers — the same towers the serving system
 *    retrieves with, mirroring the paper's use of one CLIP model for
 *    both retrieval and evaluation (they add PickScore to control for
 *    that bias; so do we).
 *  - FID: exact Fréchet distance between Gaussians fit to "inception"
 *    features of the generated and reference populations. Features are
 *    the image content plus fidelity-dependent defect components, so
 *    low-fidelity models shift the feature mean and inflate covariance —
 *    exactly how visual defects move InceptionV3 statistics.
 *  - Inception Score: exp(E[KL(p(y|x) || p(y))]) over a fixed random
 *    linear classifier whose confidence scales with image fidelity.
 *  - PickScore: preference-calibrated affine blend of prompt alignment
 *    and fidelity, on the ~19-22 scale the paper reports.
 */

#ifndef MODM_EVAL_METRICS_HH
#define MODM_EVAL_METRICS_HH

#include <cstdint>
#include <vector>

#include "src/common/vec.hh"
#include "src/diffusion/image.hh"
#include "src/embedding/encoder.hh"
#include "src/workload/prompt.hh"

namespace modm::eval {

/** Aggregated quality metrics for one image population. */
struct QualityReport
{
    double clip = 0.0;  ///< mean CLIPScore (higher better)
    double fid = 0.0;   ///< FID vs the reference set (lower better)
    double is = 0.0;    ///< Inception Score (higher better)
    double pick = 0.0;  ///< mean PickScore (higher better)
    std::size_t count = 0;
};

/** Configuration for the metric suite. */
struct MetricConfig
{
    /** Text tower used for CLIPScore. */
    embedding::TextEncoderConfig textEncoder = {};
    /** Image tower used for CLIPScore. */
    embedding::ImageEncoderConfig imageEncoder = {};
    /** Number of classes of the synthetic inception classifier. */
    std::size_t inceptionClasses = 32;
    /** Classifier confidence multiplier per unit fidelity. */
    double inceptionSharpness = 55.0;
    /** Feature scale of the content part of inception features. */
    double fidContentScale = 7.0;
    /** Mean shift per unit of missing fidelity (systematic defects). */
    double fidDefectShift = 19.0;
    /** Covariance inflation per unit of missing fidelity. */
    double fidDefectNoise = 13.0;
    /** Baseline per-image feature noise. */
    double fidBaseNoise = 1.2;
    /** PickScore affine calibration: pick = a + b*cos + c*fidelity. */
    double pickBias = 13.2;
    double pickAlignWeight = 16.0;
    double pickFidelityWeight = 3.8;
};

/**
 * Metric suite with fixed encoders and classifier; construct once per
 * experiment so all populations are scored identically.
 */
class MetricSuite
{
  public:
    /** Build the towers and the inception classifier. */
    explicit MetricSuite(MetricConfig config = {});

    /** CLIPScore of one (prompt, image) pair (0-100 scale / 100). */
    double clipScore(const workload::Prompt &prompt,
                     const diffusion::Image &image) const;

    /** PickScore of one (prompt, image) pair. */
    double pickScore(const workload::Prompt &prompt,
                     const diffusion::Image &image) const;

    /** Synthetic inception features of one image (for FID). */
    Vec inceptionFeatures(const diffusion::Image &image) const;

    /** Class posterior of the synthetic inception classifier. */
    std::vector<double> classPosterior(const diffusion::Image &image) const;

    /** Inception Score of a population. */
    double inceptionScore(const std::vector<diffusion::Image> &images) const;

    /** FID between generated and reference populations. */
    double fid(const std::vector<diffusion::Image> &generated,
               const std::vector<diffusion::Image> &reference) const;

    /**
     * Full report: CLIP/Pick averaged over (prompt, image) pairs, IS
     * over the generated set, FID vs the reference set. `prompts` and
     * `images` must be parallel.
     */
    QualityReport report(const std::vector<workload::Prompt> &prompts,
                         const std::vector<diffusion::Image> &images,
                         const std::vector<diffusion::Image> &reference)
        const;

    /** The text tower (shared with serving code in experiments). */
    const embedding::TextEncoder &textEncoder() const { return text_; }

    /** The image tower. */
    const embedding::ImageEncoder &imageEncoder() const { return image_; }

  private:
    MetricConfig config_;
    embedding::TextEncoder text_;
    embedding::ImageEncoder image_;
    std::vector<Vec> classifier_;  // one weight vector per class
    Vec defectDirection_;
};

} // namespace modm::eval

#endif // MODM_EVAL_METRICS_HH

#include "src/eval/metrics.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"
#include "src/common/matrix.hh"
#include "src/common/rng.hh"

namespace modm::eval {

MetricSuite::MetricSuite(MetricConfig config)
    : config_(config), text_(config.textEncoder),
      image_(config.imageEncoder)
{
    MODM_ASSERT(config_.inceptionClasses >= 2,
                "inception classifier needs >= 2 classes");
    Rng rng(0xfeedc1a551f1e5ULL);
    classifier_.reserve(config_.inceptionClasses);
    for (std::size_t c = 0; c < config_.inceptionClasses; ++c) {
        classifier_.push_back(
            randomUnitVec(config_.textEncoder.dim, rng));
    }
    defectDirection_ = randomUnitVec(config_.textEncoder.dim, rng);
}

double
MetricSuite::clipScore(const workload::Prompt &prompt,
                       const diffusion::Image &image) const
{
    const auto t = text_.encode(prompt.visualConcept, prompt.lexicalStyle,
                                prompt.text);
    const auto e = image_.encode(image.content, image.fidelity, image.id);
    return 100.0 * t.similarity(e);
}

double
MetricSuite::pickScore(const workload::Prompt &prompt,
                       const diffusion::Image &image) const
{
    const auto t = text_.encode(prompt.visualConcept, prompt.lexicalStyle,
                                prompt.text);
    const auto e = image_.encode(image.content, image.fidelity, image.id);
    return config_.pickBias +
        config_.pickAlignWeight * t.similarity(e) +
        config_.pickFidelityWeight * image.fidelity;
}

Vec
MetricSuite::inceptionFeatures(const diffusion::Image &image) const
{
    Rng rng(mix64(image.id ^ 0xa11ce5e1f1d0ULL));
    const double defect = 1.0 - std::clamp(image.fidelity, 0.0, 1.0);
    Vec f = image.content;
    scale(f, config_.fidContentScale);
    // Systematic defect shift: low-fidelity models share failure modes
    // (mangled anatomy, texture artifacts), moving the feature mean.
    axpy(f, config_.fidDefectShift * defect, defectDirection_);
    // Idiosyncratic defects inflate the covariance.
    axpy(f, config_.fidDefectNoise * defect,
         randomUnitVec(f.size(), rng));
    axpy(f, config_.fidBaseNoise, randomUnitVec(f.size(), rng));
    return f;
}

std::vector<double>
MetricSuite::classPosterior(const diffusion::Image &image) const
{
    const double sharp =
        config_.inceptionSharpness * std::clamp(image.fidelity, 0.0, 1.0);
    std::vector<double> logits(classifier_.size());
    double maxLogit = -1e300;
    for (std::size_t c = 0; c < classifier_.size(); ++c) {
        logits[c] = sharp * dot(classifier_[c], image.content);
        maxLogit = std::max(maxLogit, logits[c]);
    }
    double z = 0.0;
    for (auto &l : logits) {
        l = std::exp(l - maxLogit);
        z += l;
    }
    for (auto &l : logits)
        l /= z;
    return logits;
}

double
MetricSuite::inceptionScore(
    const std::vector<diffusion::Image> &images) const
{
    MODM_ASSERT(!images.empty(), "inception score of an empty set");
    const std::size_t classes = classifier_.size();
    std::vector<double> marginal(classes, 0.0);
    std::vector<std::vector<double>> posteriors;
    posteriors.reserve(images.size());
    for (const auto &img : images) {
        auto p = classPosterior(img);
        for (std::size_t c = 0; c < classes; ++c)
            marginal[c] += p[c];
        posteriors.push_back(std::move(p));
    }
    for (auto &m : marginal)
        m /= static_cast<double>(images.size());

    double klSum = 0.0;
    for (const auto &p : posteriors) {
        double kl = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
            if (p[c] > 1e-300)
                kl += p[c] * std::log(p[c] / std::max(marginal[c], 1e-300));
        }
        klSum += kl;
    }
    return std::exp(klSum / static_cast<double>(images.size()));
}

double
MetricSuite::fid(const std::vector<diffusion::Image> &generated,
                 const std::vector<diffusion::Image> &reference) const
{
    MODM_ASSERT(generated.size() >= 2 && reference.size() >= 2,
                "FID needs >= 2 samples per population");
    std::vector<Vec> genFeatures;
    genFeatures.reserve(generated.size());
    for (const auto &img : generated)
        genFeatures.push_back(inceptionFeatures(img));
    std::vector<Vec> refFeatures;
    refFeatures.reserve(reference.size());
    for (const auto &img : reference)
        refFeatures.push_back(inceptionFeatures(img));
    return frechetDistance(genFeatures, refFeatures);
}

QualityReport
MetricSuite::report(const std::vector<workload::Prompt> &prompts,
                    const std::vector<diffusion::Image> &images,
                    const std::vector<diffusion::Image> &reference) const
{
    MODM_ASSERT(prompts.size() == images.size(),
                "report: prompts and images must be parallel");
    MODM_ASSERT(!images.empty(), "report of an empty population");
    QualityReport out;
    out.count = images.size();
    for (std::size_t i = 0; i < images.size(); ++i) {
        out.clip += clipScore(prompts[i], images[i]);
        out.pick += pickScore(prompts[i], images[i]);
    }
    out.clip /= static_cast<double>(images.size());
    out.pick /= static_cast<double>(images.size());
    out.is = inceptionScore(images);
    out.fid = fid(images, reference);
    return out;
}

} // namespace modm::eval

/**
 * @file
 * Hierarchical navigable-small-world (HNSW) approximate retrieval —
 * the Hnsw backend of the VectorIndex interface (vector_index.hh).
 *
 * HNSW layers proximity graphs: every row lands on layer 0, and each
 * higher layer keeps an exponentially thinning subset, so a query
 * greedily descends coarse layers in a few hops and then runs a
 * best-first beam (efSearch candidates) over the dense bottom layer.
 * Search cost grows roughly logarithmically with index size — at 1M
 * rows x 512 dims a query touches a few thousand rows where the flat
 * scan touches a million — at a small recall cost the efSearch knob
 * trades against latency. recall@1 stays >= 0.9 on clustered
 * embedding workloads at the default knobs (pinned by the property
 * suite; the 1M-row micro-benchmark pins >= 0.95 with >= 5x speedup
 * over the serial flat scan).
 *
 * Life cycle, built for cache churn:
 *  - insert is incremental: the new node's layer is a pure function of
 *    (id, seed), it links to the efConstruction-beam's best M
 *    neighbors per layer (diversity-pruned, so clustered inserts keep
 *    long-range edges), and over-full neighbors re-prune.
 *  - remove tombstones the node: its row and out-links stay as graph
 *    waypoints (searches route through, never return it), each
 *    neighbor drops its link and repairs connectivity from the dead
 *    node's own links. When tombstones outnumber live rows, the graph
 *    compacts: live rows re-insert in slot order (deterministic), so
 *    FIFO churn holds steady-state memory at <= 2x live.
 *  - setLoadSignal sheds efSearch linearly toward minEfSearch when
 *    config.adaptiveEfSearch is set (same hook as IVF's adaptive
 *    nprobe).
 *
 * Determinism: layer draws, beam expansion order, neighbor selection,
 * and every tiebreak are pure functions of (construction sequence,
 * config.seed). No thread-pool use, so sweep parallelism cannot
 * perturb results. Results order by (similarity desc, id asc).
 */

#ifndef MODM_EMBEDDING_HNSW_INDEX_HH
#define MODM_EMBEDDING_HNSW_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/row_store.hh"
#include "src/embedding/embedding.hh"
#include "src/embedding/vector_index.hh"

namespace modm::embedding {

/**
 * HNSW cosine index keyed by caller-assigned 64-bit ids.
 */
class HnswIndex final : public VectorIndex
{
  public:
    /** Layer cap; reached with probability ~M^-32 (never, in practice). */
    static constexpr std::uint32_t kMaxLevel = 32;

    /** Create an index for embeddings of the given dimensionality. */
    explicit HnswIndex(const RetrievalBackendConfig &config,
                       std::size_t dim = kEmbeddingDim);

    void reserve(std::size_t rows) override;
    void insert(std::uint64_t id, const Embedding &embedding) override;
    bool remove(std::uint64_t id) override;
    bool contains(std::uint64_t id) const override;
    std::size_t size() const override { return slotOf_.size(); }
    Match best(const Embedding &query) const override;
    std::vector<Match> topK(const Embedding &query,
                            std::size_t k) const override;
    void clear() override;

    /** Rows (tombstones included) + links + ids + locator payloads. */
    std::size_t memoryBytes() const override;

    /** Graph search may miss the exact best once multiple rows exist. */
    bool approximate() const override { return size() > 1; }

    /** Exhaustive scan over live rows (recall accounting). */
    Match exactBest(const Embedding &query) const override;

    /**
     * Serving load in [0, 1] for the adaptive beam scheduler; ignored
     * unless config.adaptiveEfSearch is set.
     */
    void setLoadSignal(double load) override;

    /** Runtime efSearch override (scenario knob); 0 ignored. */
    void setEfSearch(std::size_t ef) override;

    /**
     * Beam width a query uses right now: the configured efSearch,
     * linearly shed toward minEfSearch as the load signal rises
     * (monotone nonincreasing in load).
     */
    std::size_t effectiveEfSearch() const;

    /** Graph slots, tombstones included (compaction telemetry). */
    std::size_t slots() const { return nodes_.size(); }

    /** Times the graph compacted tombstones away. */
    std::uint64_t compactions() const { return compactions_; }

  private:
    /** One graph node; row lives at slot `slot` of rows_. */
    struct Node
    {
        std::uint64_t id = 0;
        std::uint32_t level = 0;
        bool dead = false;
        /** Out-links per layer, [0, level]. */
        std::vector<std::vector<std::uint32_t>> links;
    };

    /** Scored slot, the unit search and selection operate on. */
    struct Candidate
    {
        std::uint32_t slot;
        double score;
    };

    /** Row of a slot. */
    const float *row(std::uint32_t slot) const
    {
        return rows_.row(slot);
    }

    /**
     * Score every link of `slot` on `level` against the query through
     * the gather kernel (skipping slots the filter rejects), appending
     * (slot, score) pairs to scratch buffers in link order. Shared by
     * the beam expansion and the greedy descent so both get batched
     * row loads with cross-row prefetch.
     */
    std::size_t scoreLinks(const float *query, std::uint32_t slot,
                           std::uint32_t level, bool skipVisited) const;

    /** Layer draw: pure function of (id, config.seed). */
    std::uint32_t levelFor(std::uint64_t id) const;

    /** Max out-degree on a layer (2M on layer 0, M above). */
    std::size_t maxLinks(std::uint32_t level) const;

    /** Greedy hill-climb toward the query on one layer. */
    std::uint32_t greedyStep(const float *query, std::uint32_t start,
                             std::uint32_t level) const;

    /**
     * Best-first beam over one layer from `entry`: tracks up to `ef`
     * best reachable nodes (tombstones route but are excluded from the
     * returned set when `liveOnly`). Returns candidates sorted by
     * (score desc, slot asc).
     */
    std::vector<Candidate> searchLayer(const float *query,
                                       std::uint32_t entry,
                                       std::size_t ef,
                                       std::uint32_t level,
                                       bool liveOnly) const;

    /**
     * Diversity-pruned neighbor selection (the HNSW heuristic): walk
     * candidates by score desc (scores are similarity to the target)
     * and keep one only when it is closer to the target than to every
     * already-kept neighbor, falling back to the best rejected ones
     * when fewer than `m` survive.
     */
    std::vector<std::uint32_t>
    selectNeighbors(std::vector<Candidate> candidates,
                    std::size_t m) const;

    /** Re-prune an over-full neighbor list to maxLinks(level). */
    void pruneLinks(std::uint32_t slot, std::uint32_t level);

    /** Link the new slot into layers [0, level]. */
    void linkNewNode(std::uint32_t slot, std::uint32_t level);

    /** Insert a raw row (shared by insert and compact). */
    void insertRow(std::uint64_t id, const float *data);

    /** Deterministic entry-point replacement after a removal. */
    void replaceEntry();

    /** Re-insert live rows in slot order, dropping tombstones. */
    void compact();

    std::size_t dim_;
    RetrievalBackendConfig config_;
    /** Latest monitor load signal (adaptive beam scheduling). */
    double load_ = 0.0;
    /** 1 / ln(M): the layer distribution's scale. */
    double levelMult_;
    AlignedRows rows_; // slot-addressed, tombstones keep their row
    std::vector<Node> nodes_;
    /** id -> slot, live nodes only. */
    std::unordered_map<std::uint64_t, std::uint32_t> slotOf_;
    /** Entry slot (highest live layer), or kNoEntry when empty. */
    static constexpr std::uint32_t kNoEntry = 0xffffffffu;
    std::uint32_t entry_ = kNoEntry;
    std::size_t dead_ = 0;
    std::uint64_t compactions_ = 0;
    /** Scratch visited-marks, versioned to avoid per-query clears. */
    mutable std::vector<std::uint64_t> visited_;
    mutable std::uint64_t visitEpoch_ = 0;
    /** Scratch for scoreLinks (single-threaded by contract, so shared
     *  scratch keeps the expansion allocation-free at steady state). */
    mutable std::vector<std::uint32_t> linkSlots_;
    mutable std::vector<const float *> linkRows_;
    mutable std::vector<double> linkScores_;
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_HNSW_INDEX_HH

/**
 * @file
 * Embedding value type for the synthetic CLIP space.
 *
 * MoDM retrieves cached images by cosine similarity between a query *text*
 * embedding and cached *image* embeddings (paper Eq. 1). Both kinds of
 * embedding live in the same unit-sphere space, as in CLIP.
 */

#ifndef MODM_EMBEDDING_EMBEDDING_HH
#define MODM_EMBEDDING_EMBEDDING_HH

#include "src/common/vec.hh"

namespace modm::embedding {

/** Dimensionality of the synthetic CLIP space. */
constexpr std::size_t kEmbeddingDim = 64;

/**
 * A unit-length embedding. Construction normalizes; similarity is plain
 * cosine (dot product of unit vectors).
 */
class Embedding
{
  public:
    /** Empty (dimension 0) embedding. */
    Embedding() = default;

    /** Construct from raw features; the vector is normalized. */
    explicit Embedding(Vec features);

    /** Cosine similarity with another embedding. */
    double similarity(const Embedding &other) const;

    /** Underlying unit vector. */
    const Vec &vec() const { return v_; }

    /** Dimensionality. */
    std::size_t dim() const { return v_.size(); }

    /** True when the embedding holds data. */
    bool valid() const { return !v_.empty(); }

  private:
    Vec v_;
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_EMBEDDING_HH

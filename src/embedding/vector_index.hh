/**
 * @file
 * Pluggable retrieval backends: the abstract VectorIndex interface the
 * caches program against, plus the RetrievalBackendConfig knob that
 * selects and tunes a concrete backend.
 *
 * MoDM's whole serving loop hinges on one hot path — cosine retrieval
 * over the image/latent cache — so the backend is a first-class measured
 * knob rather than an implementation detail. Four backends exist today:
 *
 *  - Flat (FlatIndex, index.hh): exact brute-force scan, optionally
 *    sharded across the thread pool. Bit-for-bit the pre-refactor
 *    CosineIndex behaviour; the default everywhere so existing figures
 *    stay byte-identical.
 *  - IVF (IvfIndex, ivf_index.hh): inverted-file approximate search
 *    with deterministic seeded k-means coarse clustering and an nprobe
 *    knob. Sub-linear scans at 100k-1M entries at a small recall cost.
 *  - HNSW (HnswIndex, hnsw_index.hh): deterministic seeded hierarchical
 *    navigable-small-world graph. Logarithmic-ish search at million-row
 *    scale, incremental insert, tombstone + neighbor-repair removal
 *    matching cache churn, and an efSearch recall/latency knob.
 *  - IVF-PQ (IvfPqIndex, ivf_pq_index.hh): product-quantized residual
 *    codes over the IVF coarse clustering — ~8-32x smaller per entry
 *    than flat rows — with asymmetric distance tables on query and an
 *    exact re-rank of the top candidates when a RowSource is attached.
 *
 * Every backend supports incremental insert/remove (the FIFO/LRU/
 * Utility eviction policies need both), reports its exact memory
 * footprint (memoryBytes — the sweep's bytes-per-entry axis), and is
 * deterministic: equal construction sequences and equal queries yield
 * equal results, machine-independently.
 */

#ifndef MODM_EMBEDDING_VECTOR_INDEX_HH
#define MODM_EMBEDDING_VECTOR_INDEX_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/embedding/embedding.hh"

namespace modm::embedding {

/** One retrieval result. */
struct Match
{
    std::uint64_t id = 0;
    double similarity = -1.0;
};

/** Which retrieval backend a cache builds. */
enum class RetrievalBackend
{
    Flat,  ///< exact brute-force scan (the default)
    Ivf,   ///< inverted-file approximate search
    Hnsw,  ///< hierarchical navigable-small-world graph
    IvfPq, ///< product-quantized codes over IVF coarse clustering
};

/** Printable backend name. */
const char *retrievalBackendName(RetrievalBackend kind);

/**
 * Optional exact-row oracle an index may consult for rows it stores
 * only in compressed form (IVF-PQ re-ranking and recall accounting).
 * The caches implement this over the embeddings they already keep per
 * entry, so attaching a source costs no extra memory; row() may return
 * nullptr when the id's row is unavailable, and the index must then
 * fall back to its own (approximate) representation.
 */
class RowSource
{
  public:
    virtual ~RowSource() = default;

    /** Exact row for `id` (dim floats), or nullptr when unknown. */
    virtual const float *row(std::uint64_t id) const = 0;
};

/** Backend selection plus the knobs the approximate backends expose. */
struct RetrievalBackendConfig
{
    RetrievalBackend kind = RetrievalBackend::Flat;

    /** IVF: number of coarse k-means clusters (inverted lists). */
    std::size_t nlist = 64;
    /** IVF: lists scanned per query; recall/latency knob. */
    std::size_t nprobe = 8;
    /**
     * IVF: retrain the coarse quantizer when the largest list exceeds
     * this multiple of the mean list size (insert/evict churn skews
     * lists over time). <= 1 disables skew-triggered retraining.
     */
    double retrainThreshold = 3.0;
    /** IVF: k-means seed (part of the experiment's determinism). */
    std::uint64_t seed = 0x1f4a9ULL;
    /**
     * IVF: adapt the probe count to the serving monitor's load signal
     * (the ROADMAP's adaptive probe scheduler): at load 0 queries scan
     * the configured nprobe lists, shedding linearly to minNprobe at
     * saturation. Recall then degrades monotonically — probed lists at
     * a higher load are always a prefix of those at a lower load — and
     * deterministically, because the load signal itself is derived
     * from deterministic per-period counters. Off by default.
     */
    bool adaptiveNprobe = false;
    /** IVF: probe floor the adaptive scheduler never sheds below. */
    std::size_t minNprobe = 1;

    /**
     * HNSW: max out-degree per node on layers above 0 (layer 0 keeps
     * 2M links). Higher M = denser graph = better recall, more memory
     * (~4(M + 2M) bytes of links per entry) and slower inserts.
     */
    std::size_t hnswM = 16;
    /**
     * HNSW: beam width while building (candidates tracked per layer
     * during insert). Build-time recall knob; does not affect queries.
     */
    std::size_t efConstruction = 128;
    /**
     * HNSW: beam width while searching layer 0. The recall/latency
     * knob (queries always track at least k candidates).
     */
    std::size_t efSearch = 64;
    /**
     * HNSW: shed efSearch linearly toward minEfSearch as the monitor's
     * load signal rises (the HNSW analogue of adaptiveNprobe, fed by
     * the same setLoadSignal hook). Off by default.
     */
    bool adaptiveEfSearch = false;
    /** HNSW: beam floor the adaptive scheduler never sheds below. */
    std::size_t minEfSearch = 8;

    /**
     * IVF-PQ: subquantizer count — each embedding splits into pqM
     * contiguous subvectors of dim/pqM floats, each encoded to one
     * code. Must divide the embedding dimension. Codes cost
     * pqM * pqBits / 8 bytes per entry (vs 4 * dim flat).
     */
    std::size_t pqM = 8;
    /**
     * IVF-PQ: bits per code (4 or 8 — codes pack into whole bytes);
     * each subspace trains 2^pqBits codewords.
     */
    std::size_t pqBits = 8;

    /**
     * Caches compare approximate retrievals against an exhaustive scan
     * and report recall@1 (quality attribution: an approximate hit may
     * refine from a different cached image than the exact scan would
     * pick). Costs one extra flat scan per lookup on approximate
     * backends only; irrelevant for Flat, which is always exact.
     */
    bool trackRecall = true;
};

/**
 * Abstract retrieval index over unit-norm embeddings, keyed by
 * caller-assigned 64-bit ids. Implementations must order results by
 * (similarity desc, deterministic tiebreak) and be reproducible from
 * their construction sequence alone.
 */
class VectorIndex
{
  public:
    virtual ~VectorIndex() = default;

    /** Pre-allocate room for `rows` embeddings (bulk warm-up). */
    virtual void reserve(std::size_t rows) = 0;

    /** Insert an embedding under a fresh id; ids must be unique. */
    virtual void insert(std::uint64_t id, const Embedding &embedding) = 0;

    /** Remove an id; returns false when absent. */
    virtual bool remove(std::uint64_t id) = 0;

    /** True when the id is present. */
    virtual bool contains(std::uint64_t id) const = 0;

    /** Number of stored embeddings. */
    virtual std::size_t size() const = 0;

    /** True when empty. */
    bool empty() const { return size() == 0; }

    /**
     * Best match for a query, or a Match with similarity -1 when the
     * index is empty.
     */
    virtual Match best(const Embedding &query) const = 0;

    /** Top-k matches ordered by decreasing similarity. */
    virtual std::vector<Match> topK(const Embedding &query,
                                    std::size_t k) const = 0;

    /** Remove everything (keeps tuning state). */
    virtual void clear() = 0;

    /**
     * Exact bytes of index-owned storage right now: rows, codes, graph
     * links, centroids, codebooks, ids, and locator-map payloads. A
     * pure function of the construction sequence (no capacity or
     * allocator slack), so it digests deterministically; the sweep's
     * bytes-per-entry axis is memoryBytes() / size().
     */
    virtual std::size_t memoryBytes() const = 0;

    /** True when best/topK may differ from an exhaustive scan. */
    virtual bool approximate() const { return false; }

    /**
     * Exhaustive exact best match, regardless of backend — what recall
     * accounting compares approximate results against. Exact backends
     * alias best().
     */
    virtual Match exactBest(const Embedding &query) const
    {
        return best(query);
    }

    /**
     * Scan parallelism hint: 1 = serial, 0 = match the global thread
     * pool, N = that many shards. Backends without a sharded scan
     * ignore it.
     */
    virtual void setParallelism(std::size_t threads) { (void)threads; }

    /**
     * Minimum index size before scans shard (sharded backends only);
     * lower to 0 to force sharding on tiny indexes (property tests).
     */
    virtual void setParallelThreshold(std::size_t rows) { (void)rows; }

    /**
     * Normalized serving load in [0, 1], fed by the monitor each
     * period. Backends with load-adaptive search (IVF with
     * adaptiveNprobe, HNSW with adaptiveEfSearch) shed work as load
     * rises; everything else ignores it.
     */
    virtual void setLoadSignal(double load) { (void)load; }

    /**
     * Attach (or detach, with nullptr) an exact-row oracle. The source
     * must outlive the index or be detached first; backends that store
     * exact rows themselves ignore it.
     */
    virtual void setRowSource(const RowSource *source) { (void)source; }

    /**
     * Runtime search-knob overrides (the scenario DSL's `set ef` /
     * `set nprobe` ops). Backends without the knob ignore the call;
     * 0 is ignored everywhere.
     */
    virtual void setEfSearch(std::size_t ef) { (void)ef; }
    virtual void setNprobe(std::size_t nprobe) { (void)nprobe; }
};

/**
 * Deterministic accounting for the id -> payload locator hash maps
 * every backend keeps: key + payload + one bucket pointer per entry.
 * Counts no load-factor or allocator slack, so memoryBytes() stays a
 * pure function of the construction sequence.
 */
inline std::size_t
locatorBytes(std::size_t entries, std::size_t payloadBytes)
{
    return entries *
        (sizeof(std::uint64_t) + payloadBytes + sizeof(void *));
}

/**
 * Validate `config` for embeddings of dimension `dim`. Returns an
 * empty string when well-formed; otherwise a message naming the
 * offending knob and the constraint it broke (e.g. "pqM (5) must
 * divide the embedding dimension (64)"). Never asserts.
 */
std::string validateRetrievalConfig(const RetrievalBackendConfig &config,
                                    std::size_t dim);

/**
 * Build the configured backend for embeddings of dimension `dim`.
 * Flat ignores every knob except the parallelism hints set later.
 * Throws std::invalid_argument with the validateRetrievalConfig
 * message on a malformed config — config files and sweep axes get a
 * diagnostic naming the knob, never a silent clamp or an assert.
 */
std::unique_ptr<VectorIndex>
makeVectorIndex(const RetrievalBackendConfig &config, std::size_t dim);

} // namespace modm::embedding

#endif // MODM_EMBEDDING_VECTOR_INDEX_HH

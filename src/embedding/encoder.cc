#include "src/embedding/encoder.hh"

#include <algorithm>
#include <cmath>

#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/embedding/tokenizer.hh"

namespace modm::embedding {

namespace {

Vec
computeTextAnchor(std::size_t dim)
{
    Rng rng(0x7e37a11c00001111ULL);
    return randomUnitVec(dim, rng);
}

Vec
computeImageAnchor(std::size_t dim)
{
    // Start from an independent direction and remove the text-anchor
    // component so the two cones are exactly orthogonal.
    Rng rng(0x13a6e00002222ULL);
    Vec raw = randomUnitVec(dim, rng);
    const Vec t = computeTextAnchor(dim);
    axpy(raw, -dot(raw, t), t);
    normalize(raw);
    return raw;
}

} // namespace

Vec
textAnchor(std::size_t dim)
{
    // Encoders call this on every encode; cache the common dimension.
    static const Vec cached = computeTextAnchor(kEmbeddingDim);
    if (dim == kEmbeddingDim)
        return cached;
    return computeTextAnchor(dim);
}

Vec
imageAnchor(std::size_t dim)
{
    static const Vec cached = computeImageAnchor(kEmbeddingDim);
    if (dim == kEmbeddingDim)
        return cached;
    return computeImageAnchor(dim);
}

namespace {

/**
 * Remove the anchor-plane components of a content mix so cross-modal
 * similarity is driven purely by concept agreement: without this, the
 * random overlap between a concept and the anchors adds a per-concept
 * similarity bias of ~0.06, large relative to the paper's 0.25-0.30
 * threshold band.
 */
void
deflateAnchors(Vec &mix, std::size_t dim)
{
    const Vec t = textAnchor(dim);
    const Vec i = imageAnchor(dim);
    axpy(mix, -dot(mix, t), t);
    axpy(mix, -dot(mix, i), i);
}

} // namespace

TextEncoder::TextEncoder(TextEncoderConfig config)
    : config_(config), anchor_(textAnchor(config.dim))
{
    MODM_ASSERT(config_.coneWeight > 0.0 && config_.coneWeight < 1.0,
                "cone weight must be in (0, 1)");
}

Embedding
TextEncoder::encode(const Vec &visual_concept, const Vec &lexical_style,
                    const std::string &text) const
{
    MODM_ASSERT(visual_concept.size() == config_.dim,
                "text encoder: concept dimension mismatch");
    MODM_ASSERT(lexical_style.size() == config_.dim,
                "text encoder: style dimension mismatch");
    Rng rng(mix64(tokenHash(text) ^ 0x7c1a2b3c4d5e6f70ULL));

    // Content part: concept + lexical contamination + encoder noise.
    Vec mix = visual_concept;
    axpy(mix, config_.lexicalWeight, lexical_style);
    axpy(mix, config_.noise, randomUnitVec(config_.dim, rng));
    deflateAnchors(mix, config_.dim);
    normalize(mix);

    // Place on the text cone.
    const double beta = config_.coneWeight;
    Vec features = anchor_;
    scale(features, std::sqrt(1.0 - beta * beta));
    axpy(features, beta, mix);
    return Embedding(std::move(features));
}

ImageEncoder::ImageEncoder(ImageEncoderConfig config)
    : config_(config), anchor_(imageAnchor(config.dim))
{
    MODM_ASSERT(config_.coneWeight > 0.0 && config_.coneWeight < 1.0,
                "cone weight must be in (0, 1)");
}

Embedding
ImageEncoder::encode(const Vec &content, double fidelity,
                     std::uint64_t image_id) const
{
    MODM_ASSERT(content.size() == config_.dim,
                "image encoder: content dimension mismatch");
    Rng rng(mix64(image_id ^ 0x51f0e9d8c7b6a594ULL));
    const double defect = 1.0 - std::clamp(fidelity, 0.0, 1.0);
    const double noise =
        config_.noiseBase + config_.noisePerDefect * defect;

    Vec mix = content;
    axpy(mix, noise, randomUnitVec(config_.dim, rng));
    deflateAnchors(mix, config_.dim);
    normalize(mix);

    const double gamma = config_.coneWeight;
    Vec features = anchor_;
    scale(features, std::sqrt(1.0 - gamma * gamma));
    axpy(features, gamma, mix);
    return Embedding(std::move(features));
}

Embedding
HashingTextEncoder::encode(const std::string &text) const
{
    Vec features(kEmbeddingDim, 0.0f);
    const auto tokens = tokenize(text);
    for (const auto &token : tokens) {
        std::uint64_t h = tokenHash(token);
        // Each token contributes to four hashed slots with signs, a
        // standard feature-hashing scheme.
        for (int probe = 0; probe < 4; ++probe) {
            h = mix64(h + probe);
            const std::size_t slot = h % kEmbeddingDim;
            const float sign = (h >> 63) ? 1.0f : -1.0f;
            features[slot] += sign;
        }
    }
    if (tokens.empty())
        features[0] = 1.0f;
    return Embedding(std::move(features));
}

} // namespace modm::embedding

#include "src/embedding/embedding.hh"

#include "src/common/log.hh"

namespace modm::embedding {

Embedding::Embedding(Vec features)
    : v_(std::move(features))
{
    MODM_ASSERT(!v_.empty(), "embedding must be non-empty");
    normalize(v_);
}

double
Embedding::similarity(const Embedding &other) const
{
    MODM_ASSERT(valid() && other.valid(),
                "similarity on an empty embedding");
    return dot(v_, other.v_);
}

} // namespace modm::embedding

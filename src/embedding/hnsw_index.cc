#include "src/embedding/hnsw_index.hh"

#include <algorithm>
#include <cmath>

#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::embedding {

namespace {

/** Total order on scored ids: similarity desc, id asc. */
bool
idScoreBefore(std::uint64_t idA, double scoreA, std::uint64_t idB,
              double scoreB)
{
    if (scoreA != scoreB)
        return scoreA > scoreB;
    return idA < idB;
}

} // namespace

HnswIndex::HnswIndex(const RetrievalBackendConfig &config,
                     std::size_t dim)
    : dim_(dim), config_(config)
{
    MODM_ASSERT(dim_ > 0, "hnsw index dimension must be positive");
    // makeVectorIndex validates with a thrown diagnostic before this
    // runs; the asserts only backstop direct construction.
    MODM_ASSERT(config_.hnswM >= 2, "hnsw M %zu must be >= 2",
                config_.hnswM);
    MODM_ASSERT(config_.efConstruction >= config_.hnswM,
                "hnsw efConstruction %zu must be >= M %zu",
                config_.efConstruction, config_.hnswM);
    MODM_ASSERT(config_.efSearch >= 1, "hnsw efSearch must be >= 1");
    levelMult_ = 1.0 / std::log(static_cast<double>(config_.hnswM));
    rows_.reset(dim_);
}

std::uint32_t
HnswIndex::levelFor(std::uint64_t id) const
{
    // Geometric layer draw from a pure hash of (id, seed): the graph
    // shape depends only on the construction sequence, never on an rng
    // stream whose position could drift across rebuilds.
    const std::uint64_t bits = mix64(id ^ mix64(config_.seed));
    const double u =
        (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
    const double draw = -std::log(u) * levelMult_;
    const auto level = static_cast<std::uint32_t>(draw);
    return std::min(level, kMaxLevel);
}

std::size_t
HnswIndex::maxLinks(std::uint32_t level) const
{
    return level == 0 ? 2 * config_.hnswM : config_.hnswM;
}

void
HnswIndex::reserve(std::size_t rows)
{
    rows_.reserve(rows);
    nodes_.reserve(rows);
    slotOf_.reserve(rows);
    visited_.reserve(rows);
}

std::size_t
HnswIndex::scoreLinks(const float *query, std::uint32_t slot,
                      std::uint32_t level, bool skipVisited) const
{
    // Pass 1: collect candidate rows in link order (marking visited in
    // that same order, which is part of the beam's determinism
    // contract). Pass 2: score them together through the gather
    // kernel, which prefetches upcoming rows while scoring the current
    // block — the links point at scattered slab rows, so this is where
    // the expansion's cache misses get hidden.
    linkSlots_.clear();
    linkRows_.clear();
    for (const std::uint32_t nb : nodes_[slot].links[level]) {
        if (skipVisited) {
            if (visited_[nb] == visitEpoch_)
                continue;
            visited_[nb] = visitEpoch_;
        }
        linkSlots_.push_back(nb);
        linkRows_.push_back(row(nb));
    }
    linkScores_.resize(linkSlots_.size());
    kernels::dotGather(query, linkRows_.data(), linkRows_.size(), dim_,
                       linkScores_.data());
    return linkSlots_.size();
}

std::uint32_t
HnswIndex::greedyStep(const float *query, std::uint32_t start,
                      std::uint32_t level) const
{
    // Hill-climb to a local optimum: move to the strictly best-scoring
    // neighbor until none improves. Tombstones route like any node.
    // Scoring all links then folding in link order admits the same
    // node the per-link loop did (strictly-greater, earliest link
    // wins).
    std::uint32_t cur = start;
    double curScore = kernels::dot(query, row(cur), dim_);
    bool improved = true;
    while (improved) {
        improved = false;
        const std::size_t n = scoreLinks(query, cur, level, false);
        for (std::size_t i = 0; i < n; ++i) {
            if (linkScores_[i] > curScore) {
                curScore = linkScores_[i];
                cur = linkSlots_[i];
                improved = true;
            }
        }
    }
    return cur;
}

std::vector<HnswIndex::Candidate>
HnswIndex::searchLayer(const float *query, std::uint32_t entry,
                       std::size_t ef, std::uint32_t level,
                       bool liveOnly) const
{
    // Best-first beam: expand the best unexpanded candidate until none
    // can beat the ef-th best result. Tombstones are expanded (they
    // keep the graph navigable after churn) but never returned when
    // liveOnly — the beam keeps admitting until ef *live* results
    // exist, so tombstone density degrades latency, not correctness.
    visited_.resize(nodes_.size(), 0);
    ++visitEpoch_;
    visited_[entry] = visitEpoch_;

    // Expansion heap: best (score desc, slot asc) at front.
    const auto expandLess = [](const Candidate &a, const Candidate &b) {
        if (a.score != b.score)
            return a.score < b.score;
        return a.slot > b.slot;
    };
    // Result heap: worst at front, so the ef-th best pops first.
    const auto better = [](const Candidate &a, const Candidate &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.slot < b.slot;
    };

    std::vector<Candidate> frontier, results;
    const Candidate seed{entry, kernels::dot(query, row(entry), dim_)};
    frontier.push_back(seed);
    if (!liveOnly || !nodes_[entry].dead)
        results.push_back(seed);

    while (!frontier.empty()) {
        std::pop_heap(frontier.begin(), frontier.end(), expandLess);
        const Candidate cur = frontier.back();
        frontier.pop_back();
        if (results.size() >= ef && cur.score < results.front().score)
            break; // nothing reachable can improve the beam
        // Two passes (collect-and-mark, then batch-score) feed the
        // heap admission below in the exact link order the per-link
        // loop used, so the beam — and therefore every result — is
        // unchanged; only the row loads got batched.
        const std::size_t n = scoreLinks(query, cur.slot, level, true);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t nb = linkSlots_[i];
            const double score = linkScores_[i];
            if (results.size() >= ef &&
                score <= results.front().score)
                continue;
            frontier.push_back({nb, score});
            std::push_heap(frontier.begin(), frontier.end(),
                           expandLess);
            if (liveOnly && nodes_[nb].dead)
                continue;
            results.push_back({nb, score});
            std::push_heap(results.begin(), results.end(), better);
            if (results.size() > ef) {
                std::pop_heap(results.begin(), results.end(), better);
                results.pop_back();
            }
        }
    }
    std::sort(results.begin(), results.end(), better);
    return results;
}

std::vector<std::uint32_t>
HnswIndex::selectNeighbors(std::vector<Candidate> candidates,
                           std::size_t m) const
{
    // The HNSW diversity heuristic: walking best-first, keep a
    // candidate only when it is closer to the query than to every
    // already-kept neighbor. Clustered inserts then keep a few
    // long-range edges instead of m near-duplicates, which is what
    // preserves recall on exactly the clustered embeddings the caches
    // hold. Backfill from the best rejects when fewer than m survive.
    std::vector<std::uint32_t> selected, rejected;
    for (const Candidate &c : candidates) {
        if (selected.size() >= m)
            break;
        bool diverse = true;
        for (const std::uint32_t s : selected) {
            if (kernels::dot(row(c.slot), row(s), dim_) > c.score) {
                diverse = false;
                break;
            }
        }
        if (diverse)
            selected.push_back(c.slot);
        else
            rejected.push_back(c.slot);
    }
    for (const std::uint32_t r : rejected) {
        if (selected.size() >= m)
            break;
        selected.push_back(r);
    }
    return selected;
}

void
HnswIndex::pruneLinks(std::uint32_t slot, std::uint32_t level)
{
    auto &links = nodes_[slot].links[level];
    if (links.size() <= maxLinks(level))
        return;
    std::vector<Candidate> candidates;
    candidates.reserve(links.size());
    for (const std::uint32_t nb : links)
        candidates.push_back({nb, kernels::dot(row(slot), row(nb), dim_)});
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.slot < b.slot;
              });
    links = selectNeighbors(std::move(candidates), maxLinks(level));
}

void
HnswIndex::linkNewNode(std::uint32_t slot, std::uint32_t level)
{
    const float *q = row(slot);
    std::uint32_t ep = entry_;
    const std::uint32_t epLevel = nodes_[ep].level;
    for (std::uint32_t l = epLevel; l > level; --l)
        ep = greedyStep(q, ep, l);
    for (std::uint32_t l = std::min(level, epLevel) + 1; l-- > 0;) {
        auto candidates =
            searchLayer(q, ep, config_.efConstruction, l, true);
        if (!candidates.empty())
            ep = candidates.front().slot;
        const auto neighbors =
            selectNeighbors(std::move(candidates), config_.hnswM);
        for (const std::uint32_t nb : neighbors) {
            nodes_[slot].links[l].push_back(nb);
            nodes_[nb].links[l].push_back(slot);
            pruneLinks(nb, l);
        }
    }
}

void
HnswIndex::insert(std::uint64_t id, const Embedding &embedding)
{
    MODM_ASSERT(embedding.dim() == dim_,
                "hnsw insert: dimension %zu != %zu", embedding.dim(),
                dim_);
    insertRow(id, embedding.vec().data());
}

void
HnswIndex::insertRow(std::uint64_t id, const float *data)
{
    MODM_ASSERT(!contains(id), "hnsw insert: duplicate id %llu",
                static_cast<unsigned long long>(id));
    const auto slot = static_cast<std::uint32_t>(nodes_.size());
    rows_.pushBack(data);
    Node node;
    node.id = id;
    node.level = levelFor(id);
    node.links.resize(node.level + 1);
    nodes_.push_back(std::move(node));
    visited_.push_back(0);
    slotOf_[id] = slot;
    if (entry_ == kNoEntry) {
        entry_ = slot;
        return;
    }
    linkNewNode(slot, nodes_[slot].level);
    if (nodes_[slot].level > nodes_[entry_].level)
        entry_ = slot;
}

void
HnswIndex::replaceEntry()
{
    // Highest live layer wins; ties to the lowest slot. O(slots), but
    // only runs when the current entry point is removed.
    entry_ = kNoEntry;
    for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
        if (nodes_[s].dead)
            continue;
        if (entry_ == kNoEntry ||
            nodes_[s].level > nodes_[entry_].level)
            entry_ = s;
    }
}

bool
HnswIndex::remove(std::uint64_t id)
{
    const auto it = slotOf_.find(id);
    if (it == slotOf_.end())
        return false;
    const std::uint32_t slot = it->second;
    slotOf_.erase(it);
    Node &v = nodes_[slot];
    v.dead = true;
    ++dead_;

    // Repair each layer: out-neighbors drop their link to the
    // tombstone, then reconnect across it from the tombstone's own
    // links (every ordered pair, so the patch stays symmetric),
    // re-pruned to the layer's degree cap. The tombstone keeps its row
    // and out-links as a routing waypoint; asymmetric in-links from
    // elsewhere keep working the same way.
    for (std::uint32_t l = 0; l <= v.level; ++l) {
        const std::vector<std::uint32_t> peers = v.links[l];
        for (const std::uint32_t u : peers) {
            auto &ul = nodes_[u].links[l];
            const auto pos = std::find(ul.begin(), ul.end(), slot);
            if (pos != ul.end())
                ul.erase(pos);
        }
        for (const std::uint32_t u : peers) {
            if (nodes_[u].dead)
                continue;
            auto &ul = nodes_[u].links[l];
            for (const std::uint32_t w : peers) {
                if (w == u || nodes_[w].dead)
                    continue;
                if (std::find(ul.begin(), ul.end(), w) != ul.end())
                    continue;
                ul.push_back(w);
            }
            pruneLinks(u, l);
        }
    }
    if (entry_ == slot)
        replaceEntry();
    if (dead_ > slotOf_.size())
        compact();
    return true;
}

void
HnswIndex::compact()
{
    // Rebuild from the live rows in slot order — a pure function of
    // the construction sequence, so two indexes fed equal sequences
    // compact identically. Bounds memory at <= 2x live under churn.
    AlignedRows oldRows = std::move(rows_);
    std::vector<Node> oldNodes;
    oldNodes.swap(nodes_);
    rows_.reset(dim_);
    slotOf_.clear();
    visited_.clear();
    visitEpoch_ = 0;
    entry_ = kNoEntry;
    dead_ = 0;
    reserve(oldNodes.size());
    for (std::uint32_t s = 0; s < oldNodes.size(); ++s) {
        if (oldNodes[s].dead)
            continue;
        insertRow(oldNodes[s].id, oldRows.row(s));
    }
    ++compactions_;
}

bool
HnswIndex::contains(std::uint64_t id) const
{
    return slotOf_.find(id) != slotOf_.end();
}

Match
HnswIndex::best(const Embedding &query) const
{
    const auto top = topK(query, 1);
    return top.empty() ? Match{} : top.front();
}

std::vector<Match>
HnswIndex::topK(const Embedding &query, std::size_t k) const
{
    std::vector<Match> out;
    if (empty() || k == 0)
        return out;
    MODM_ASSERT(query.dim() == dim_, "hnsw query: dimension mismatch");
    const float *q = query.vec().data();
    std::uint32_t ep = entry_;
    for (std::uint32_t l = nodes_[ep].level; l > 0; --l)
        ep = greedyStep(q, ep, l);
    const std::size_t ef = std::max(effectiveEfSearch(), k);
    auto candidates = searchLayer(q, ep, ef, 0, true);
    out.reserve(std::min(k, candidates.size()));
    for (const Candidate &c : candidates)
        out.push_back({nodes_[c.slot].id, c.score});
    // Slot-ordered ties re-rank by id so results match the backend-wide
    // (similarity desc, id asc) contract across compactions.
    std::sort(out.begin(), out.end(),
              [](const Match &a, const Match &b) {
                  return idScoreBefore(a.id, a.similarity, b.id,
                                       b.similarity);
              });
    if (out.size() > k)
        out.resize(k);
    return out;
}

Match
HnswIndex::exactBest(const Embedding &query) const
{
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "hnsw query: dimension mismatch");
    const float *q = query.vec().data();
    // Rows are slot-contiguous in the slab (tombstones included), so
    // score everything with the batched kernel and skip tombstones in
    // the fold; ties still break by id, exactly as before.
    bool found = false;
    constexpr std::size_t kBlock = 256;
    double scores[kBlock];
    for (std::size_t base = 0; base < nodes_.size(); base += kBlock) {
        const std::size_t len = std::min(kBlock, nodes_.size() - base);
        kernels::dotBatch(q, rows_.row(base), rows_.stride(), len, dim_,
                          scores);
        for (std::size_t i = 0; i < len; ++i) {
            const Node &node = nodes_[base + i];
            if (node.dead)
                continue;
            if (!found ||
                idScoreBefore(node.id, scores[i], result.id,
                              result.similarity)) {
                result.id = node.id;
                result.similarity = scores[i];
                found = true;
            }
        }
    }
    return result;
}

void
HnswIndex::setLoadSignal(double load)
{
    if (!config_.adaptiveEfSearch)
        return;
    load_ = std::clamp(load, 0.0, 1.0);
}

void
HnswIndex::setEfSearch(std::size_t ef)
{
    if (ef == 0)
        return; // 0 = leave the configured value
    config_.efSearch = ef;
}

std::size_t
HnswIndex::effectiveEfSearch() const
{
    if (!config_.adaptiveEfSearch)
        return config_.efSearch;
    const std::size_t floor = std::clamp<std::size_t>(
        config_.minEfSearch, 1, config_.efSearch);
    const double span =
        static_cast<double>(config_.efSearch - floor);
    // Linear shed: the full beam when idle, the floor at saturation.
    return floor + static_cast<std::size_t>(
                       std::floor(span * (1.0 - load_) + 1e-9));
}

std::size_t
HnswIndex::memoryBytes() const
{
    // Rows count dim (not stride) floats per slot, tombstones
    // included, so the figure is unchanged from the pre-slab layout.
    std::size_t bytes = nodes_.size() * dim_ * sizeof(float) +
        locatorBytes(slotOf_.size(), sizeof(std::uint32_t));
    for (const Node &node : nodes_) {
        bytes += sizeof(node.id) + sizeof(node.level) + 1;
        for (const auto &links : node.links)
            bytes += links.size() * sizeof(std::uint32_t);
    }
    return bytes;
}

void
HnswIndex::clear()
{
    rows_.clear();
    nodes_.clear();
    slotOf_.clear();
    visited_.clear();
    visitEpoch_ = 0;
    entry_ = kNoEntry;
    dead_ = 0;
    compactions_ = 0;
}

} // namespace modm::embedding

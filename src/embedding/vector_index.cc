#include "src/embedding/vector_index.hh"

#include "src/common/log.hh"
#include "src/embedding/index.hh"
#include "src/embedding/ivf_index.hh"

namespace modm::embedding {

const char *
retrievalBackendName(RetrievalBackend kind)
{
    switch (kind) {
      case RetrievalBackend::Flat:
        return "Flat";
      case RetrievalBackend::Ivf:
        return "IVF";
    }
    panic("unknown RetrievalBackend");
}

std::unique_ptr<VectorIndex>
makeVectorIndex(const RetrievalBackendConfig &config, std::size_t dim)
{
    switch (config.kind) {
      case RetrievalBackend::Flat:
        return std::make_unique<FlatIndex>(dim);
      case RetrievalBackend::Ivf:
        return std::make_unique<IvfIndex>(config, dim);
    }
    panic("unknown RetrievalBackend");
}

} // namespace modm::embedding

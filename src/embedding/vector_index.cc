#include "src/embedding/vector_index.hh"

#include <stdexcept>

#include "src/common/log.hh"
#include "src/embedding/hnsw_index.hh"
#include "src/embedding/index.hh"
#include "src/embedding/ivf_index.hh"
#include "src/embedding/ivf_pq_index.hh"

namespace modm::embedding {

namespace {

std::string
num(std::size_t v)
{
    return std::to_string(v);
}

/** Constraints shared by the IVF-coarse-quantized backends. */
std::string
validateIvfCommon(const RetrievalBackendConfig &c)
{
    if (c.nlist < 1)
        return "nlist (" + num(c.nlist) + ") must be >= 1";
    if (c.nlist > IvfIndex::kMaxTrainRows)
        return "nlist (" + num(c.nlist) +
            ") must be <= the training-sample cap (" +
            num(IvfIndex::kMaxTrainRows) + ")";
    if (c.nprobe < 1)
        return "nprobe (" + num(c.nprobe) + ") must be >= 1";
    if (c.nprobe > c.nlist)
        return "nprobe (" + num(c.nprobe) + ") must be <= nlist (" +
            num(c.nlist) + ")";
    if (c.adaptiveNprobe &&
        (c.minNprobe < 1 || c.minNprobe > c.nprobe))
        return "minNprobe (" + num(c.minNprobe) +
            ") must be in [1, nprobe (" + num(c.nprobe) + ")]";
    return "";
}

} // namespace

const char *
retrievalBackendName(RetrievalBackend kind)
{
    switch (kind) {
      case RetrievalBackend::Flat:
        return "Flat";
      case RetrievalBackend::Ivf:
        return "IVF";
      case RetrievalBackend::Hnsw:
        return "HNSW";
      case RetrievalBackend::IvfPq:
        return "IVF-PQ";
    }
    panic("unknown RetrievalBackend");
}

std::string
validateRetrievalConfig(const RetrievalBackendConfig &config,
                        std::size_t dim)
{
    if (dim == 0)
        return "embedding dimension must be positive";
    switch (config.kind) {
      case RetrievalBackend::Flat:
        return "";
      case RetrievalBackend::Ivf:
        return validateIvfCommon(config);
      case RetrievalBackend::Hnsw:
        if (config.hnswM < 2)
            return "hnswM (" + num(config.hnswM) + ") must be >= 2";
        if (config.efConstruction < config.hnswM)
            return "efConstruction (" + num(config.efConstruction) +
                ") must be >= hnswM (" + num(config.hnswM) + ")";
        if (config.efSearch < 1)
            return "efSearch (" + num(config.efSearch) +
                ") must be >= 1";
        if (config.adaptiveEfSearch &&
            (config.minEfSearch < 1 ||
             config.minEfSearch > config.efSearch))
            return "minEfSearch (" + num(config.minEfSearch) +
                ") must be in [1, efSearch (" + num(config.efSearch) +
                ")]";
        return "";
      case RetrievalBackend::IvfPq: {
        const std::string ivf = validateIvfCommon(config);
        if (!ivf.empty())
            return ivf;
        if (config.pqM < 1)
            return "pqM (" + num(config.pqM) + ") must be >= 1";
        if (dim % config.pqM != 0)
            return "pqM (" + num(config.pqM) +
                ") must divide the embedding dimension (" + num(dim) +
                ")";
        if (config.pqBits != 4 && config.pqBits != 8)
            return "pqBits (" + num(config.pqBits) +
                ") must be 4 or 8";
        return "";
      }
    }
    return "unknown retrieval backend";
}

std::unique_ptr<VectorIndex>
makeVectorIndex(const RetrievalBackendConfig &config, std::size_t dim)
{
    const std::string error = validateRetrievalConfig(config, dim);
    if (!error.empty())
        throw std::invalid_argument("retrieval config: " + error);
    switch (config.kind) {
      case RetrievalBackend::Flat:
        return std::make_unique<FlatIndex>(dim);
      case RetrievalBackend::Ivf:
        return std::make_unique<IvfIndex>(config, dim);
      case RetrievalBackend::Hnsw:
        return std::make_unique<HnswIndex>(config, dim);
      case RetrievalBackend::IvfPq:
        return std::make_unique<IvfPqIndex>(config, dim);
    }
    panic("unknown RetrievalBackend");
}

} // namespace modm::embedding

#include "src/embedding/ivf_pq_index.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::embedding {

namespace {

/** Total order on scored ids: similarity desc, id asc. */
bool
idScoreBefore(std::uint64_t idA, double scoreA, std::uint64_t idB,
              double scoreB)
{
    if (scoreA != scoreB)
        return scoreA > scoreB;
    return idA < idB;
}

/** Squared L2 distance over raw rows of length n. */
double
l2Squared(const float *a, const float *b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a[i]) -
            static_cast<double>(b[i]);
        acc += d * d;
    }
    return acc;
}

/** Lloyd iterations a codebook gets (ksub centroids per subspace). */
constexpr std::size_t kCodebookIters = 4;

} // namespace

IvfPqIndex::IvfPqIndex(const RetrievalBackendConfig &config,
                       std::size_t dim)
    : dim_(dim), config_(config)
{
    MODM_ASSERT(dim_ > 0, "ivfpq index dimension must be positive");
    // makeVectorIndex validates with a thrown diagnostic before this
    // runs; the asserts only backstop direct construction.
    MODM_ASSERT(config_.nlist >= 1 && config_.nlist <= kMaxTrainRows,
                "ivfpq nlist %zu must be in [1, %zu]", config_.nlist,
                kMaxTrainRows);
    MODM_ASSERT(config_.nprobe >= 1 && config_.nprobe <= config_.nlist,
                "ivfpq nprobe %zu must be in [1, nlist %zu]",
                config_.nprobe, config_.nlist);
    MODM_ASSERT(config_.pqM >= 1 && dim_ % config_.pqM == 0,
                "ivfpq pqM %zu must divide dim %zu", config_.pqM, dim_);
    MODM_ASSERT(config_.pqBits == 4 || config_.pqBits == 8,
                "ivfpq pqBits %zu must be 4 or 8", config_.pqBits);
    subDim_ = dim_ / config_.pqM;
    ksub_ = std::size_t{1} << config_.pqBits;
    codeBytes_ = (config_.pqM * config_.pqBits + 7) / 8;
}

std::size_t
IvfPqIndex::trainFloor() const
{
    // Enough rows to seed nlist distinct centroids with headroom, and
    // enough to seed every codeword of a subspace codebook.
    return std::max(kTrainFactor * config_.nlist, ksub_);
}

void
IvfPqIndex::reserve(std::size_t rows)
{
    locator_.reserve(rows);
    if (!trained_) {
        const std::size_t stage = std::min(rows, trainFloor());
        staging_.reserve(stage * dim_);
        stagingIds_.reserve(stage);
    }
}

std::size_t
IvfPqIndex::codeAt(const std::uint8_t *row, std::size_t m) const
{
    if (config_.pqBits == 8)
        return row[m];
    const std::uint8_t byte = row[m >> 1];
    return (m & 1) ? (byte >> 4) : (byte & 0x0f);
}

void
IvfPqIndex::setCodeAt(std::uint8_t *row, std::size_t m,
                      std::size_t code) const
{
    if (config_.pqBits == 8) {
        row[m] = static_cast<std::uint8_t>(code);
        return;
    }
    std::uint8_t &byte = row[m >> 1];
    if (m & 1)
        byte = static_cast<std::uint8_t>((byte & 0x0f) | (code << 4));
    else
        byte = static_cast<std::uint8_t>((byte & 0xf0) | code);
}

std::size_t
IvfPqIndex::assignList(const float *row) const
{
    // Strictly-greater admission in index order: lowest index wins
    // ties, same as the scalar loop this replaces.
    std::size_t bestList = 0;
    double bestScore = 0.0;
    kernels::bestBatch(row, centroids_.data(), dim_, lists_.size(),
                       dim_, &bestList, &bestScore);
    return bestList;
}

void
IvfPqIndex::encodeRow(std::size_t list, const float *row,
                      std::uint8_t *codes) const
{
    // Quantize the residual against the coarse centroid, one subspace
    // at a time: nearest codeword by L2 (ties: lowest index).
    const float *centroid = &centroids_[list * dim_];
    std::vector<float> residual(dim_);
    for (std::size_t d = 0; d < dim_; ++d)
        residual[d] = row[d] - centroid[d];
    std::memset(codes, 0, codeBytes_);
    for (std::size_t m = 0; m < config_.pqM; ++m) {
        const float *sub = &residual[m * subDim_];
        std::size_t bestCode = 0;
        double bestDist = 0.0;
        for (std::size_t j = 0; j < ksub_; ++j) {
            const double dist = l2Squared(sub, codeword(m, j), subDim_);
            if (j == 0 || dist < bestDist) {
                bestDist = dist;
                bestCode = j;
            }
        }
        setCodeAt(codes, m, bestCode);
    }
}

void
IvfPqIndex::reconstructRow(std::size_t list, const std::uint8_t *codes,
                           float *out) const
{
    const float *centroid = &centroids_[list * dim_];
    for (std::size_t m = 0; m < config_.pqM; ++m) {
        const float *cw = codeword(m, codeAt(codes, m));
        float *sub = out + m * subDim_;
        const float *csub = centroid + m * subDim_;
        for (std::size_t d = 0; d < subDim_; ++d)
            sub[d] = csub[d] + cw[d];
    }
}

void
IvfPqIndex::appendToList(std::size_t list, std::uint64_t id,
                         const std::uint8_t *codes)
{
    List &l = lists_[list];
    locator_[id] = {list, l.ids.size()};
    l.ids.push_back(id);
    l.codes.insert(l.codes.end(), codes, codes + codeBytes_);
}

void
IvfPqIndex::insert(std::uint64_t id, const Embedding &embedding)
{
    MODM_ASSERT(embedding.dim() == dim_,
                "ivfpq insert: dimension %zu != %zu", embedding.dim(),
                dim_);
    MODM_ASSERT(!contains(id), "ivfpq insert: duplicate id %llu",
                static_cast<unsigned long long>(id));
    const float *row = embedding.vec().data();
    if (!trained_) {
        locator_[id] = {0, stagingIds_.size()};
        stagingIds_.push_back(id);
        staging_.insert(staging_.end(), row, row + dim_);
        ++insertsSinceTrain_;
        if (size() >= trainFloor()) {
            std::vector<float> rows;
            std::vector<std::uint64_t> ids;
            materializeAll(rows, ids);
            train(rows, ids);
        }
        return;
    }
    const std::size_t list = assignList(row);
    std::vector<std::uint8_t> codes(codeBytes_);
    encodeRow(list, row, codes.data());
    appendToList(list, id, codes.data());
    ++insertsSinceTrain_;
    maybeRetrain();
}

bool
IvfPqIndex::remove(std::uint64_t id)
{
    const auto it = locator_.find(id);
    if (it == locator_.end())
        return false;
    const Location loc = it->second;
    if (!trained_) {
        const std::size_t last = stagingIds_.size() - 1;
        if (loc.pos != last) {
            std::memcpy(&staging_[loc.pos * dim_],
                        &staging_[last * dim_], dim_ * sizeof(float));
            stagingIds_[loc.pos] = stagingIds_[last];
            locator_[stagingIds_[loc.pos]].pos = loc.pos;
        }
        staging_.resize(last * dim_);
        stagingIds_.pop_back();
        locator_.erase(it);
        return true;
    }
    List &l = lists_[loc.list];
    const std::size_t last = l.ids.size() - 1;
    if (loc.pos != last) {
        std::memcpy(&l.codes[loc.pos * codeBytes_],
                    &l.codes[last * codeBytes_], codeBytes_);
        l.ids[loc.pos] = l.ids[last];
        locator_[l.ids[loc.pos]].pos = loc.pos;
    }
    l.codes.resize(last * codeBytes_);
    l.ids.pop_back();
    locator_.erase(it);
    return true;
}

bool
IvfPqIndex::contains(std::uint64_t id) const
{
    return locator_.find(id) != locator_.end();
}

void
IvfPqIndex::materializeAll(std::vector<float> &rows,
                           std::vector<std::uint64_t> &ids) const
{
    if (!trained_) {
        rows = staging_;
        ids = stagingIds_;
        return;
    }
    rows.resize(size() * dim_);
    ids.clear();
    ids.reserve(size());
    std::size_t n = 0;
    for (std::size_t c = 0; c < lists_.size(); ++c) {
        const List &l = lists_[c];
        for (std::size_t p = 0; p < l.ids.size(); ++p) {
            // Prefer the true row when the source still has it:
            // retraining then fits the actual distribution instead of
            // compounding quantization error across retrains.
            const float *row =
                source_ != nullptr ? source_->row(l.ids[p]) : nullptr;
            if (row != nullptr)
                std::memcpy(&rows[n * dim_], row,
                            dim_ * sizeof(float));
            else
                reconstructRow(c, &l.codes[p * codeBytes_],
                               &rows[n * dim_]);
            ids.push_back(l.ids[p]);
            ++n;
        }
    }
}

void
IvfPqIndex::train(const std::vector<float> &rows,
                  const std::vector<std::uint64_t> &ids)
{
    const std::size_t total = ids.size();
    const std::size_t nlist = config_.nlist;
    if (total < std::max(nlist, ksub_))
        return; // not enough rows to seed distinct centroids

    // --- Coarse quantizer: spherical k-means, exactly as IvfIndex ---
    std::vector<const float *> rowPtrs(total);
    for (std::size_t i = 0; i < total; ++i)
        rowPtrs[i] = &rows[i * dim_];
    const std::size_t sampleCount = std::min(total, kMaxTrainRows);
    std::vector<const float *> sample(sampleCount);
    for (std::size_t s = 0; s < sampleCount; ++s)
        sample[s] = rowPtrs[total * s / sampleCount];

    Rng rng(config_.seed ^ mix64(trainings_));
    std::vector<std::size_t> perm(sample.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    std::vector<float> centroids(nlist * dim_);
    for (std::size_t c = 0; c < nlist; ++c) {
        const std::size_t pick = c + rng.uniformInt(perm.size() - c);
        std::swap(perm[c], perm[pick]);
        std::memcpy(&centroids[c * dim_], sample[perm[c]],
                    dim_ * sizeof(float));
    }
    std::vector<std::size_t> assign(sample.size());
    std::vector<double> bestDot(sample.size());
    std::vector<double> sums(nlist * dim_);
    std::vector<std::size_t> counts(nlist);
    for (std::size_t iter = 0; iter < kKmeansIters; ++iter) {
        for (std::size_t s = 0; s < sample.size(); ++s) {
            std::size_t bestC = 0;
            double best = -2.0;
            kernels::bestBatch(sample[s], centroids.data(), dim_,
                               nlist, dim_, &bestC, &best);
            assign[s] = bestC;
            bestDot[s] = best;
        }
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (std::size_t s = 0; s < sample.size(); ++s) {
            double *sum = &sums[assign[s] * dim_];
            const float *row = sample[s];
            for (std::size_t d = 0; d < dim_; ++d)
                sum[d] += row[d];
            ++counts[assign[s]];
        }
        for (std::size_t c = 0; c < nlist; ++c) {
            if (counts[c] == 0)
                continue; // reseeded below
            const double *sum = &sums[c * dim_];
            double normSq = 0.0;
            for (std::size_t d = 0; d < dim_; ++d)
                normSq += sum[d] * sum[d];
            if (normSq <= 0.0)
                continue; // degenerate mean: keep the old centroid
            const double inv = 1.0 / std::sqrt(normSq);
            float *out = &centroids[c * dim_];
            for (std::size_t d = 0; d < dim_; ++d)
                out[d] = static_cast<float>(sum[d] * inv);
        }
        for (std::size_t c = 0; c < nlist; ++c) {
            if (counts[c] != 0)
                continue;
            std::size_t worst = sample.size();
            for (std::size_t s = 0; s < sample.size(); ++s) {
                if (counts[assign[s]] <= 1)
                    continue; // don't empty another cluster
                if (worst == sample.size() ||
                    bestDot[s] < bestDot[worst])
                    worst = s;
            }
            if (worst == sample.size())
                break; // fewer distinct rows than clusters
            --counts[assign[worst]];
            assign[worst] = c;
            counts[c] = 1;
            bestDot[worst] = 2.0; // not stolen twice
            std::memcpy(&centroids[c * dim_], sample[worst],
                        dim_ * sizeof(float));
        }
    }
    centroids_ = std::move(centroids);
    lists_.assign(nlist, List{});
    trained_ = true; // assignList / encodeRow now valid

    // --- Codebooks: L2 k-means per subspace over sampled residuals ---
    const std::size_t cbCount = std::min(total, kMaxCodebookRows);
    std::vector<float> residuals(cbCount * dim_);
    for (std::size_t s = 0; s < cbCount; ++s) {
        const float *row = rowPtrs[total * s / cbCount];
        const float *centroid =
            &centroids_[assignList(row) * dim_];
        for (std::size_t d = 0; d < dim_; ++d)
            residuals[s * dim_ + d] = row[d] - centroid[d];
    }
    codebooks_.assign(config_.pqM * ksub_ * subDim_, 0.0f);
    const std::size_t keff = std::min(ksub_, cbCount);
    std::vector<std::size_t> cbAssign(cbCount);
    std::vector<double> cbDist(cbCount);
    std::vector<double> cbSums(ksub_ * subDim_);
    std::vector<std::size_t> cbCounts(ksub_);
    for (std::size_t m = 0; m < config_.pqM; ++m) {
        const auto sub = [&](std::size_t s) {
            return &residuals[s * dim_ + m * subDim_];
        };
        float *book = &codebooks_[m * ksub_ * subDim_];
        // Seed codewords from a subspace-specific shuffle.
        Rng cbRng(mix64(config_.seed ^ mix64(trainings_)) ^
                  mix64(m + 1));
        for (std::size_t i = 0; i < perm.size() && i < cbCount; ++i)
            perm[i] = i;
        for (std::size_t j = 0; j < keff; ++j) {
            const std::size_t pick = j + cbRng.uniformInt(cbCount - j);
            std::swap(perm[j], perm[pick]);
            std::memcpy(&book[j * subDim_], sub(perm[j]),
                        subDim_ * sizeof(float));
        }
        for (std::size_t iter = 0; iter < kCodebookIters; ++iter) {
            for (std::size_t s = 0; s < cbCount; ++s) {
                std::size_t bestJ = 0;
                double best = 0.0;
                for (std::size_t j = 0; j < keff; ++j) {
                    const double dist =
                        l2Squared(sub(s), &book[j * subDim_], subDim_);
                    if (j == 0 || dist < best) {
                        best = dist;
                        bestJ = j;
                    }
                }
                cbAssign[s] = bestJ;
                cbDist[s] = best;
            }
            std::fill(cbSums.begin(), cbSums.end(), 0.0);
            std::fill(cbCounts.begin(), cbCounts.end(), 0);
            for (std::size_t s = 0; s < cbCount; ++s) {
                double *sum = &cbSums[cbAssign[s] * subDim_];
                const float *r = sub(s);
                for (std::size_t d = 0; d < subDim_; ++d)
                    sum[d] += r[d];
                ++cbCounts[cbAssign[s]];
            }
            for (std::size_t j = 0; j < keff; ++j) {
                if (cbCounts[j] == 0)
                    continue; // reseeded below
                const double *sum = &cbSums[j * subDim_];
                const double inv =
                    1.0 / static_cast<double>(cbCounts[j]);
                for (std::size_t d = 0; d < subDim_; ++d)
                    book[j * subDim_ + d] =
                        static_cast<float>(sum[d] * inv);
            }
            for (std::size_t j = 0; j < keff; ++j) {
                if (cbCounts[j] != 0)
                    continue;
                // Reseed from the worst-quantized residual.
                std::size_t worst = cbCount;
                for (std::size_t s = 0; s < cbCount; ++s) {
                    if (cbCounts[cbAssign[s]] <= 1)
                        continue;
                    if (worst == cbCount || cbDist[s] > cbDist[worst])
                        worst = s;
                }
                if (worst == cbCount)
                    break;
                --cbCounts[cbAssign[worst]];
                cbAssign[worst] = j;
                cbCounts[j] = 1;
                cbDist[worst] = -1.0; // not stolen twice
                std::memcpy(&book[j * subDim_], sub(worst),
                            subDim_ * sizeof(float));
            }
        }
    }

    // --- Re-encode every row under the new quantizers ---
    locator_.clear();
    std::vector<std::uint8_t> codes(codeBytes_);
    for (std::size_t i = 0; i < total; ++i) {
        const float *row = rowPtrs[i];
        const std::size_t list = assignList(row);
        encodeRow(list, row, codes.data());
        appendToList(list, ids[i], codes.data());
    }
    staging_.clear();
    staging_.shrink_to_fit();
    stagingIds_.clear();
    stagingIds_.shrink_to_fit();
    ++trainings_;
    insertsSinceTrain_ = 0;
    trainedSize_ = total;
}

void
IvfPqIndex::maybeRetrain()
{
    // Growth retrain: quantizers fitted at the training floor must not
    // govern an index that has since grown kRetrainGrowth-fold — the
    // geometric schedule costs O(log n) retrains over any build.
    const bool grown = size() >= kRetrainGrowth * trainedSize_;
    bool skewed = false;
    if (config_.retrainThreshold > 1.0 &&
        insertsSinceTrain_ >= std::max(size() / 4, config_.nlist)) {
        std::size_t maxList = 0;
        for (const List &l : lists_)
            maxList = std::max(maxList, l.ids.size());
        const double mean = static_cast<double>(size()) /
            static_cast<double>(lists_.size());
        skewed = static_cast<double>(maxList) >
            config_.retrainThreshold * mean;
    }
    if (!grown && !skewed)
        return;
    // Deterministic and self-contained: rows come from the RowSource
    // when attached, reconstructions otherwise — both retrain paths
    // are rare by construction (growth is geometric, skew is bounded).
    std::vector<float> rows;
    std::vector<std::uint64_t> ids;
    materializeAll(rows, ids);
    train(rows, ids);
}

void
IvfPqIndex::setLoadSignal(double load)
{
    if (!config_.adaptiveNprobe)
        return;
    load_ = std::clamp(load, 0.0, 1.0);
}

void
IvfPqIndex::setNprobe(std::size_t nprobe)
{
    if (nprobe == 0)
        return; // 0 = leave the configured value
    config_.nprobe = nprobe;
}

std::size_t
IvfPqIndex::effectiveNprobe() const
{
    if (!config_.adaptiveNprobe)
        return config_.nprobe;
    const std::size_t floor =
        std::clamp<std::size_t>(config_.minNprobe, 1, config_.nprobe);
    const double span = static_cast<double>(config_.nprobe - floor);
    return floor + static_cast<std::size_t>(
                       std::floor(span * (1.0 - load_) + 1e-9));
}

std::vector<std::size_t>
IvfPqIndex::probeLists(const float *query) const
{
    const std::size_t nprobe =
        std::min(effectiveNprobe(), lists_.size());
    std::vector<std::size_t> order(lists_.size());
    for (std::size_t c = 0; c < order.size(); ++c)
        order[c] = c;
    std::vector<double> scores(lists_.size());
    kernels::dotBatch(query, centroids_.data(), dim_, lists_.size(),
                      dim_, scores.data());
    std::partial_sort(order.begin(), order.begin() + nprobe,
                      order.end(),
                      [&scores](std::size_t a, std::size_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
    order.resize(nprobe);
    return order;
}

std::vector<Match>
IvfPqIndex::adcShortlist(const float *query, std::size_t keep) const
{
    // Per-subspace dot tables, shared across every probed list: the
    // asymmetric distance trick — dot(q, centroid + sum codewords) =
    // dot(q, centroid) + sum_m table[m][code_m]. Each subspace's
    // codebook is a contiguous ksub x subDim block, so one batched
    // kernel call fills its whole table row.
    std::vector<double> table(config_.pqM * ksub_);
    for (std::size_t m = 0; m < config_.pqM; ++m)
        kernels::dotBatch(query + m * subDim_, codeword(m, 0), subDim_,
                          ksub_, subDim_, &table[m * ksub_]);

    const auto probes = probeLists(query);
    std::size_t scanned = 0;
    for (const std::size_t c : probes)
        scanned += lists_[c].ids.size();
    // One shortlist slot per kRerankWindow scanned rows (floor
    // `keep`): a fixed-size shortlist is a vanishing fraction of the
    // probed candidates as lists grow, and ADC cannot order near-ties
    // within the quantization error, so recall@1 would decay with
    // index size if the window did not scale.
    keep = std::max(keep, scanned / kRerankWindow);

    const auto better = [](const Match &a, const Match &b) {
        return idScoreBefore(a.id, a.similarity, b.id, b.similarity);
    };
    std::vector<Match> heap;
    heap.reserve(keep);
    const auto offer = [&](std::uint64_t id, double score) {
        const Match candidate{id, score};
        if (heap.size() < keep) {
            heap.push_back(candidate);
            std::push_heap(heap.begin(), heap.end(), better);
        } else if (better(candidate, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = candidate;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    };
    const auto scanList = [&](std::size_t c) {
        const List &l = lists_[c];
        const double base =
            kernels::dot(query, &centroids_[c * dim_], dim_);
        for (std::size_t p = 0; p < l.ids.size(); ++p) {
            const std::uint8_t *codes = &l.codes[p * codeBytes_];
            double score = base;
            for (std::size_t m = 0; m < config_.pqM; ++m)
                score += table[m * ksub_ + codeAt(codes, m)];
            offer(l.ids[p], score);
        }
    };
    for (const std::size_t c : probes)
        scanList(c);
    if (heap.empty()) {
        // Eviction churn drained every probed list: widen to all.
        for (std::size_t c = 0; c < lists_.size(); ++c)
            scanList(c);
    }
    std::sort(heap.begin(), heap.end(), better);
    return heap;
}

Match
IvfPqIndex::best(const Embedding &query) const
{
    const auto top = topK(query, 1);
    return top.empty() ? Match{} : top.front();
}

std::vector<Match>
IvfPqIndex::topK(const Embedding &query, std::size_t k) const
{
    std::vector<Match> result;
    if (empty() || k == 0)
        return result;
    MODM_ASSERT(query.dim() == dim_, "ivfpq query: dimension mismatch");
    const float *q = query.vec().data();

    const auto better = [](const Match &a, const Match &b) {
        return idScoreBefore(a.id, a.similarity, b.id, b.similarity);
    };
    if (!trained_) {
        // Exact single-list scan below the training floor; staging is
        // one contiguous block, so score it in a single batched call.
        std::vector<double> scores(stagingIds_.size());
        kernels::dotBatch(q, staging_.data(), dim_,
                          stagingIds_.size(), dim_, scores.data());
        std::vector<Match> scored;
        scored.reserve(stagingIds_.size());
        for (std::size_t p = 0; p < stagingIds_.size(); ++p)
            scored.push_back({stagingIds_[p], scores[p]});
        std::sort(scored.begin(), scored.end(), better);
        if (scored.size() > k)
            scored.resize(k);
        return scored;
    }

    auto shortlist = adcShortlist(q, std::max(k, kRerank));
    if (source_ != nullptr) {
        // Exact re-rank of the shortlist: ADC picked the candidates,
        // true rows pick the order — recall@1 stays honest against
        // quantization noise. The RowSource hands out slab pointers,
        // so the gather kernel reads the cache's rows in place (no
        // temporary copies); rows the source cannot resolve keep
        // their ADC score.
        std::vector<const float *> rowPtrs;
        std::vector<std::size_t> rowAt;
        rowPtrs.reserve(shortlist.size());
        rowAt.reserve(shortlist.size());
        for (std::size_t i = 0; i < shortlist.size(); ++i) {
            const float *row = source_->row(shortlist[i].id);
            if (row != nullptr) {
                rowPtrs.push_back(row);
                rowAt.push_back(i);
            }
        }
        std::vector<double> exact(rowPtrs.size());
        kernels::dotGather(q, rowPtrs.data(), rowPtrs.size(), dim_,
                           exact.data());
        for (std::size_t i = 0; i < rowAt.size(); ++i)
            shortlist[rowAt[i]].similarity = exact[i];
        std::sort(shortlist.begin(), shortlist.end(), better);
    }
    if (shortlist.size() > k)
        shortlist.resize(k);
    return shortlist;
}

Match
IvfPqIndex::exactBest(const Embedding &query) const
{
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "ivfpq query: dimension mismatch");
    const float *q = query.vec().data();
    if (!trained_) {
        std::vector<double> scores(stagingIds_.size());
        kernels::dotBatch(q, staging_.data(), dim_,
                          stagingIds_.size(), dim_, scores.data());
        bool found = false;
        for (std::size_t p = 0; p < stagingIds_.size(); ++p) {
            const double score = scores[p];
            if (!found ||
                idScoreBefore(stagingIds_[p], score, result.id,
                              result.similarity)) {
                result = {stagingIds_[p], score};
                found = true;
            }
        }
        return result;
    }
    // Exhaustive scan through the RowSource when attached (true exact
    // best); reconstructions otherwise (the best the codes can say).
    std::vector<float> recon(dim_);
    bool found = false;
    for (std::size_t c = 0; c < lists_.size(); ++c) {
        const List &l = lists_[c];
        for (std::size_t p = 0; p < l.ids.size(); ++p) {
            const float *row =
                source_ != nullptr ? source_->row(l.ids[p]) : nullptr;
            if (row == nullptr) {
                reconstructRow(c, &l.codes[p * codeBytes_],
                               recon.data());
                row = recon.data();
            }
            const double score = kernels::dot(q, row, dim_);
            if (!found ||
                idScoreBefore(l.ids[p], score, result.id,
                              result.similarity)) {
                result = {l.ids[p], score};
                found = true;
            }
        }
    }
    return result;
}

std::size_t
IvfPqIndex::memoryBytes() const
{
    std::size_t bytes = centroids_.size() * sizeof(float) +
        codebooks_.size() * sizeof(float) +
        staging_.size() * sizeof(float) +
        stagingIds_.size() * sizeof(std::uint64_t) +
        locatorBytes(locator_.size(), sizeof(Location));
    for (const List &l : lists_)
        bytes += l.codes.size() +
            l.ids.size() * sizeof(std::uint64_t);
    return bytes;
}

void
IvfPqIndex::clear()
{
    staging_.clear();
    stagingIds_.clear();
    lists_.clear();
    centroids_.clear();
    codebooks_.clear();
    locator_.clear();
    trained_ = false;
    trainings_ = 0;
    insertsSinceTrain_ = 0;
    trainedSize_ = 0;
}

} // namespace modm::embedding

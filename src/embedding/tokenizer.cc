#include "src/embedding/tokenizer.hh"

#include <cctype>

namespace modm::embedding {

std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string current;
    for (unsigned char ch : text) {
        if (std::isalnum(ch)) {
            current.push_back(
                static_cast<char>(std::tolower(ch)));
        } else if (!current.empty()) {
            tokens.push_back(std::move(current));
            current.clear();
        }
    }
    if (!current.empty())
        tokens.push_back(std::move(current));
    return tokens;
}

std::uint64_t
tokenHash(const std::string &token)
{
    // FNV-1a, 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : token) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace modm::embedding

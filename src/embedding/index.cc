#include "src/embedding/index.hh"

#include <algorithm>
#include <cstring>

#include "src/common/log.hh"

namespace modm::embedding {

CosineIndex::CosineIndex(std::size_t dim)
    : dim_(dim)
{
    MODM_ASSERT(dim_ > 0, "index dimension must be positive");
}

void
CosineIndex::insert(std::uint64_t id, const Embedding &embedding)
{
    MODM_ASSERT(embedding.dim() == dim_,
                "index insert: dimension %zu != %zu", embedding.dim(), dim_);
    MODM_ASSERT(!contains(id), "index insert: duplicate id %llu",
                static_cast<unsigned long long>(id));
    slotOf_[id] = ids_.size();
    ids_.push_back(id);
    rows_.insert(rows_.end(), embedding.vec().begin(),
                 embedding.vec().end());
}

bool
CosineIndex::remove(std::uint64_t id)
{
    const auto it = slotOf_.find(id);
    if (it == slotOf_.end())
        return false;
    const std::size_t slot = it->second;
    const std::size_t last = ids_.size() - 1;
    if (slot != last) {
        // Swap the last row into the vacated slot.
        std::memcpy(&rows_[slot * dim_], &rows_[last * dim_],
                    dim_ * sizeof(float));
        ids_[slot] = ids_[last];
        slotOf_[ids_[slot]] = slot;
    }
    rows_.resize(last * dim_);
    ids_.pop_back();
    slotOf_.erase(it);
    return true;
}

bool
CosineIndex::contains(std::uint64_t id) const
{
    return slotOf_.find(id) != slotOf_.end();
}

Match
CosineIndex::best(const Embedding &query) const
{
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "index query: dimension mismatch");
    const float *q = query.vec().data();
    for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
        const float *row = &rows_[slot * dim_];
        double acc = 0.0;
        for (std::size_t i = 0; i < dim_; ++i)
            acc += static_cast<double>(q[i]) * row[i];
        if (acc > result.similarity) {
            result.similarity = acc;
            result.id = ids_[slot];
        }
    }
    return result;
}

std::vector<Match>
CosineIndex::topK(const Embedding &query, std::size_t k) const
{
    std::vector<Match> all;
    if (empty() || k == 0)
        return all;
    MODM_ASSERT(query.dim() == dim_, "index query: dimension mismatch");
    all.reserve(ids_.size());
    const float *q = query.vec().data();
    for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
        const float *row = &rows_[slot * dim_];
        double acc = 0.0;
        for (std::size_t i = 0; i < dim_; ++i)
            acc += static_cast<double>(q[i]) * row[i];
        all.push_back({ids_[slot], acc});
    }
    const std::size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                      [](const Match &a, const Match &b) {
                          return a.similarity > b.similarity;
                      });
    all.resize(keep);
    return all;
}

void
CosineIndex::clear()
{
    rows_.clear();
    ids_.clear();
    slotOf_.clear();
}

} // namespace modm::embedding

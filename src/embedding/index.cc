#include "src/embedding/index.hh"

#include <algorithm>

#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/thread_pool.hh"

namespace modm::embedding {

namespace {

/** Total order on scored slots: similarity desc, insertion slot asc. */
bool
scoreBefore(std::size_t slotA, double scoreA, std::size_t slotB,
            double scoreB)
{
    if (scoreA != scoreB)
        return scoreA > scoreB;
    return slotA < slotB;
}

/** Shard s of `shards` over [0, rows): a contiguous slot range. */
std::pair<std::size_t, std::size_t>
shardRange(std::size_t s, std::size_t shards, std::size_t rows)
{
    const std::size_t lo = rows * s / shards;
    const std::size_t hi = rows * (s + 1) / shards;
    return {lo, hi};
}

} // namespace

FlatIndex::FlatIndex(std::size_t dim)
    : dim_(dim)
{
    MODM_ASSERT(dim_ > 0, "index dimension must be positive");
    rows_.reset(dim_);
}

void
FlatIndex::reserve(std::size_t rows)
{
    rows_.reserve(rows);
    ids_.reserve(rows);
    slotOf_.reserve(rows);
}

void
FlatIndex::insert(std::uint64_t id, const Embedding &embedding)
{
    MODM_ASSERT(embedding.dim() == dim_,
                "index insert: dimension %zu != %zu", embedding.dim(), dim_);
    MODM_ASSERT(!contains(id), "index insert: duplicate id %llu",
                static_cast<unsigned long long>(id));
    slotOf_[id] = ids_.size();
    ids_.push_back(id);
    rows_.pushBack(embedding.vec().data());
}

bool
FlatIndex::remove(std::uint64_t id)
{
    const auto it = slotOf_.find(id);
    if (it == slotOf_.end())
        return false;
    const std::size_t slot = it->second;
    const std::size_t last = ids_.size() - 1;
    if (slot != last) {
        // Swap the last row into the vacated slot.
        ids_[slot] = ids_[last];
        slotOf_[ids_[slot]] = slot;
    }
    rows_.swapRemove(slot);
    ids_.pop_back();
    slotOf_.erase(it);
    return true;
}

bool
FlatIndex::contains(std::uint64_t id) const
{
    return slotOf_.find(id) != slotOf_.end();
}

std::size_t
FlatIndex::scanShards() const
{
    if (parallelism_ == 1 || ids_.size() < parallelThreshold_)
        return 1;
    // An explicit setting forces that shard count even when the pool
    // has fewer threads (it then drains shards with what it has) —
    // this is what lets the property tests exercise the sharded merge
    // on any machine. Auto mode matches the pool.
    const std::size_t want = parallelism_ == 0
                                 ? ThreadPool::global().concurrency()
                                 : parallelism_;
    return std::max<std::size_t>(1, std::min(want, ids_.size()));
}

FlatIndex::SlotScore
FlatIndex::scanBest(const float *query, std::size_t lo,
                      std::size_t hi) const
{
    // The batched kernel admits strictly-greater scores in slot order,
    // so the earliest slot wins ties exactly as the old serial loop.
    SlotScore result{lo, -2.0};
    std::size_t slot = 0;
    double score = 0.0;
    if (kernels::bestBatch(query, rows_.row(lo), rows_.stride(),
                           hi - lo, dim_, &slot, &score)) {
        result.slot = lo + slot;
        result.score = score;
    }
    return result;
}

std::vector<FlatIndex::SlotScore>
FlatIndex::scanTop(const float *query, std::size_t lo, std::size_t hi,
                     std::size_t keep) const
{
    // kernels::topKBatch performs the bounded selection over the
    // shard's contiguous slot range by the same (score desc, slot asc)
    // total order, scoring rows through the batched kernel; slots come
    // back relative to `lo`.
    std::vector<SlotScore> top;
    if (keep == 0)
        return top;
    const auto scored = kernels::topKBatch(query, rows_.row(lo),
                                           rows_.stride(), hi - lo,
                                           dim_, keep);
    top.reserve(scored.size());
    for (const auto &s : scored)
        top.push_back({lo + s.slot, s.score});
    return top;
}

Match
FlatIndex::best(const Embedding &query) const
{
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "index query: dimension mismatch");
    const float *q = query.vec().data();
    const std::size_t shards = scanShards();
    SlotScore top{0, -2.0};
    if (shards <= 1) {
        top = scanBest(q, 0, ids_.size());
    } else {
        std::vector<SlotScore> partial(shards);
        ThreadPool::global().parallelFor(shards, [&](std::size_t s) {
            const auto [lo, hi] = shardRange(s, shards, ids_.size());
            partial[s] = scanBest(q, lo, hi);
        });
        // Shards cover ascending slot ranges, so a strictly-greater
        // merge keeps the earliest slot on ties, same as the serial
        // scan.
        top = partial[0];
        for (std::size_t s = 1; s < shards; ++s)
            if (partial[s].score > top.score)
                top = partial[s];
    }
    result.id = ids_[top.slot];
    result.similarity = top.score;
    return result;
}

std::vector<Match>
FlatIndex::topK(const Embedding &query, std::size_t k) const
{
    std::vector<Match> result;
    if (empty() || k == 0)
        return result;
    MODM_ASSERT(query.dim() == dim_, "index query: dimension mismatch");
    const float *q = query.vec().data();
    const std::size_t shards = scanShards();
    std::vector<SlotScore> top;
    if (shards <= 1) {
        top = scanTop(q, 0, ids_.size(), k);
    } else {
        std::vector<std::vector<SlotScore>> partial(shards);
        ThreadPool::global().parallelFor(shards, [&](std::size_t s) {
            const auto [lo, hi] = shardRange(s, shards, ids_.size());
            partial[s] = scanTop(q, lo, hi, k);
        });
        for (const auto &p : partial)
            top.insert(top.end(), p.begin(), p.end());
        const std::size_t keep = std::min(k, top.size());
        std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                          [](const SlotScore &a, const SlotScore &b) {
                              return scoreBefore(a.slot, a.score, b.slot,
                                                 b.score);
                          });
        top.resize(keep);
    }
    result.reserve(top.size());
    for (const auto &entry : top)
        result.push_back({ids_[entry.slot], entry.score});
    return result;
}

void
FlatIndex::clear()
{
    rows_.clear();
    ids_.clear();
    slotOf_.clear();
}

} // namespace modm::embedding

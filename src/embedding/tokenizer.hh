/**
 * @file
 * Minimal prompt tokenizer: lowercases, strips punctuation, and splits on
 * whitespace. Used by the hashing text encoder and by the workload
 * generator's prompt realization.
 */

#ifndef MODM_EMBEDDING_TOKENIZER_HH
#define MODM_EMBEDDING_TOKENIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace modm::embedding {

/** Split a prompt into lowercase alphanumeric tokens. */
std::vector<std::string> tokenize(const std::string &text);

/** Stable 64-bit FNV-1a hash of a token. */
std::uint64_t tokenHash(const std::string &token);

} // namespace modm::embedding

#endif // MODM_EMBEDDING_TOKENIZER_HH

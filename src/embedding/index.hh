/**
 * @file
 * Cosine-similarity top-k index over embeddings.
 *
 * The paper stores 100k image embeddings (~0.29 GB of CLIP vectors) and
 * reports retrieval latency of ~0.05 s — negligible against 10+ s of
 * denoising. This index keeps rows in a contiguous flat array so the
 * brute-force scan is cache-friendly, and supports O(1) removal (swap with
 * the last row) for FIFO/LRU eviction.
 */

#ifndef MODM_EMBEDDING_INDEX_HH
#define MODM_EMBEDDING_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/embedding/embedding.hh"

namespace modm::embedding {

/** One retrieval result. */
struct Match
{
    std::uint64_t id = 0;
    double similarity = -1.0;
};

/**
 * Flat cosine index keyed by caller-assigned 64-bit ids.
 */
class CosineIndex
{
  public:
    /** Create an index for embeddings of the given dimensionality. */
    explicit CosineIndex(std::size_t dim = kEmbeddingDim);

    /** Insert an embedding under a fresh id; ids must be unique. */
    void insert(std::uint64_t id, const Embedding &embedding);

    /** Remove an id; returns false when absent. */
    bool remove(std::uint64_t id);

    /** True when the id is present. */
    bool contains(std::uint64_t id) const;

    /** Number of stored embeddings. */
    std::size_t size() const { return ids_.size(); }

    /** True when empty. */
    bool empty() const { return ids_.empty(); }

    /**
     * Best match for a query, or a Match with similarity -1 when the
     * index is empty.
     */
    Match best(const Embedding &query) const;

    /** Top-k matches ordered by decreasing similarity. */
    std::vector<Match> topK(const Embedding &query, std::size_t k) const;

    /** Remove everything. */
    void clear();

  private:
    std::size_t dim_;
    std::vector<float> rows_;                    // size() * dim_ floats
    std::vector<std::uint64_t> ids_;             // slot -> id
    std::unordered_map<std::uint64_t, std::size_t> slotOf_; // id -> slot
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_INDEX_HH

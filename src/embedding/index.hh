/**
 * @file
 * Exact flat cosine retrieval — the Flat backend of the VectorIndex
 * interface (vector_index.hh).
 *
 * The paper stores 100k image embeddings (~0.29 GB of CLIP vectors) and
 * reports retrieval latency of ~0.05 s — negligible against 10+ s of
 * denoising. This index keeps rows in a contiguous flat array so the
 * brute-force scan is cache-friendly, and supports O(1) removal (swap with
 * the last row) for FIFO/LRU eviction.
 *
 * Scans can shard across ThreadPool::global(): opt in with
 * setParallelism(0) (the default stays serial so existing measurements
 * and single-thread callers are unaffected), and sharding engages once
 * the index is large enough for the fork/join overhead to pay off.
 * Sharding is exact, not approximate: each shard computes the same
 * per-row dot products the serial loop would, and the merge orders by
 * (similarity desc, insertion slot asc) — a total order — so serial and
 * sharded scans return bit-identical results.
 */

#ifndef MODM_EMBEDDING_INDEX_HH
#define MODM_EMBEDDING_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/row_store.hh"
#include "src/embedding/embedding.hh"
#include "src/embedding/vector_index.hh"

namespace modm::embedding {

/**
 * Flat cosine index keyed by caller-assigned 64-bit ids. Exact: every
 * query scans every row.
 */
class FlatIndex final : public VectorIndex
{
  public:
    /**
     * Indexes smaller than this scan serially regardless of the
     * parallelism setting; below it the fork/join overhead exceeds the
     * scan itself.
     */
    static constexpr std::size_t kDefaultParallelThreshold = 8192;

    /** Create an index for embeddings of the given dimensionality. */
    explicit FlatIndex(std::size_t dim = kEmbeddingDim);

    /**
     * Pre-allocate room for `rows` embeddings: one contiguous
     * reservation of the row storage plus hash-map capacity, so bulk
     * insertion (cache warm-up) avoids repeated rows_ reallocation and
     * slotOf_ rehash churn.
     */
    void reserve(std::size_t rows) override;

    /** Insert an embedding under a fresh id; ids must be unique. */
    void insert(std::uint64_t id, const Embedding &embedding) override;

    /** Remove an id; returns false when absent. */
    bool remove(std::uint64_t id) override;

    /** True when the id is present. */
    bool contains(std::uint64_t id) const override;

    /** Number of stored embeddings. */
    std::size_t size() const override { return ids_.size(); }

    /**
     * Best match for a query, or a Match with similarity -1 when the
     * index is empty.
     */
    Match best(const Embedding &query) const override;

    /** Top-k matches ordered by decreasing similarity (ties: insertion
     *  order). */
    std::vector<Match> topK(const Embedding &query,
                            std::size_t k) const override;

    /**
     * Set the scan parallelism: 1 (the default) forces serial scans,
     * 0 shards to match ThreadPool::global(), any other value forces
     * exactly that many shards (the pool drains them with the threads
     * it has).
     */
    void setParallelism(std::size_t threads) override
    {
        parallelism_ = threads;
    }

    /** Configured parallelism (0 = auto). */
    std::size_t parallelism() const { return parallelism_; }

    /**
     * Minimum index size before scans shard; lower it to 0 to force the
     * sharded path even on tiny indexes (used by the property tests).
     */
    void setParallelThreshold(std::size_t rows) override
    {
        parallelThreshold_ = rows;
    }

    /** Active parallel threshold. */
    std::size_t parallelThreshold() const { return parallelThreshold_; }

    /** Remove everything. */
    void clear() override;

    /** Flat rows + ids + locator payloads; ~4 * dim + 32 per entry.
     *  Counts dim (not stride) floats per row so the figure is
     *  unchanged from the pre-slab layout at any dimension. */
    std::size_t memoryBytes() const override
    {
        return ids_.size() * dim_ * sizeof(float) +
            ids_.size() * sizeof(std::uint64_t) +
            locatorBytes(slotOf_.size(), sizeof(std::size_t));
    }

  private:
    /** Scored slot, the unit the scan and merge operate on. */
    struct SlotScore
    {
        std::size_t slot;
        double score;
    };

    /** Shards the next scan will use (1 = serial). */
    std::size_t scanShards() const;

    /** Best slot in [lo, hi), earliest slot winning ties. */
    SlotScore scanBest(const float *query, std::size_t lo,
                       std::size_t hi) const;

    /** Top `keep` slots in [lo, hi) by (score desc, slot asc). */
    std::vector<SlotScore> scanTop(const float *query, std::size_t lo,
                                   std::size_t hi, std::size_t keep) const;

    std::size_t dim_;
    std::size_t parallelism_ = 1;
    std::size_t parallelThreshold_ = kDefaultParallelThreshold;
    AlignedRows rows_;               // slot-addressed, 64-byte aligned
    std::vector<std::uint64_t> ids_;             // slot -> id
    std::unordered_map<std::uint64_t, std::size_t> slotOf_; // id -> slot
};

/** Historical name of the flat backend, kept for existing callers. */
using CosineIndex = FlatIndex;

} // namespace modm::embedding

#endif // MODM_EMBEDDING_INDEX_HH

/**
 * @file
 * Inverted-file (IVF) approximate retrieval — the Ivf backend of the
 * VectorIndex interface (vector_index.hh).
 *
 * An IVF index partitions the embedding space with a coarse quantizer
 * (spherical k-means centroids) and stores each row in the flat list of
 * its nearest centroid. A query scores all centroids, then scans only
 * the `nprobe` nearest lists — sub-linear work at cache scale (100k-1M
 * rows) at the cost of missing a neighbour that fell into an unprobed
 * list. recall@1 at the default nprobe stays >= 0.95 on clustered
 * embedding workloads (pinned by the property suite).
 *
 * Life cycle, built for cache churn (FIFO/LRU/Utility eviction insert
 * and remove continuously):
 *  - Below a training floor the index keeps everything in one list and
 *    scans it exhaustively — exact, and cheap at small sizes.
 *  - Once enough rows exist, a deterministic seeded k-means builds the
 *    coarse quantizer and rows are re-binned. Inserts then append to
 *    their nearest list; removals swap-remove within a list. Both are
 *    incremental — no global rebuild per operation.
 *  - Eviction churn slowly skews list populations away from the
 *    trained clustering. When the largest list exceeds
 *    retrainThreshold x the mean, the quantizer retrains on the
 *    current contents (bounded frequency, so adversarial skew cannot
 *    thrash). If churn drains every probed list, a query widens to
 *    the exhaustive scan — a non-empty index always returns a real
 *    entry.
 *
 * Determinism: training samples, centroid seeding, Lloyd iterations,
 * and every tiebreak are pure functions of (construction sequence,
 * config.seed). Equal insert/remove sequences produce equal centroids,
 * equal list layouts, and equal query results on any machine. Results
 * order by (similarity desc, id asc) — ids, not slots, because list
 * reassignment makes slots an implementation detail.
 */

#ifndef MODM_EMBEDDING_IVF_INDEX_HH
#define MODM_EMBEDDING_IVF_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/row_store.hh"
#include "src/embedding/embedding.hh"
#include "src/embedding/vector_index.hh"

namespace modm::embedding {

/**
 * IVF cosine index keyed by caller-assigned 64-bit ids.
 */
class IvfIndex final : public VectorIndex
{
  public:
    /** Rows-per-list factor that triggers initial training. */
    static constexpr std::size_t kTrainFactor = 4;
    /** Training-set cap; larger indexes train on a stride sample. */
    static constexpr std::size_t kMaxTrainRows = 16384;
    /** Lloyd iterations per (re)training. */
    static constexpr std::size_t kKmeansIters = 8;

    /** Create an index for embeddings of the given dimensionality. */
    explicit IvfIndex(const RetrievalBackendConfig &config,
                      std::size_t dim = kEmbeddingDim);

    void reserve(std::size_t rows) override;
    void insert(std::uint64_t id, const Embedding &embedding) override;
    bool remove(std::uint64_t id) override;
    bool contains(std::uint64_t id) const override;
    std::size_t size() const override { return locator_.size(); }
    Match best(const Embedding &query) const override;
    std::vector<Match> topK(const Embedding &query,
                            std::size_t k) const override;
    void clear() override;

    /** List rows + ids + centroids + locator payloads. */
    std::size_t memoryBytes() const override;

    /** Runtime nprobe override (scenario knob); 0 ignored. */
    void setNprobe(std::size_t nprobe) override;

    /** Approximate once trained and probing fewer than all lists. */
    bool approximate() const override;

    /** Exhaustive scan over every list (recall accounting). */
    Match exactBest(const Embedding &query) const override;

    /**
     * Serving load in [0, 1] for the adaptive probe scheduler; ignored
     * unless config.adaptiveNprobe is set.
     */
    void setLoadSignal(double load) override;

    /**
     * Lists a query scans right now: the configured nprobe, linearly
     * shed toward minNprobe as the load signal rises (monotone
     * nonincreasing in load).
     */
    std::size_t effectiveNprobe() const;

    /** True once the coarse quantizer has been trained. */
    bool trained() const { return trained_; }

    /** Lists the quantizer currently maintains. */
    std::size_t nlist() const { return lists_.size(); }

    /** Times the quantizer has (re)trained. */
    std::uint64_t trainings() const { return trainings_; }

    /** Rows needed before the quantizer trains. */
    std::size_t trainFloor() const;

  private:
    /** One inverted list: parallel slab rows + ids. */
    struct List
    {
        AlignedRows rows;              // slot p holds ids[p]'s row
        std::vector<std::uint64_t> ids;
    };

    /** Fresh lists with row storage sized for this index's dim. */
    std::vector<List> makeLists(std::size_t count) const;

    /** Where an id lives. */
    struct Location
    {
        std::size_t list;
        std::size_t pos;
    };

    /** Nearest-centroid list for a row (ties: lowest index). */
    std::size_t assignList(const float *row) const;

    /** Fold one list's rows into the running best match. */
    void bestInList(const List &l, const float *query, Match &best,
                    bool &found) const;

    /** Append a row to a list and record its location. */
    void appendToList(std::size_t list, std::uint64_t id,
                      const float *row);

    /** Seeded k-means over current contents; re-bins every row. */
    void train();

    /** Retrain when list skew exceeds the configured bound. */
    void maybeRetrain();

    /** Indexes of the `nprobe` highest-scoring centroids for a query. */
    std::vector<std::size_t> probeLists(const float *query) const;

    std::size_t dim_;
    RetrievalBackendConfig config_;
    /** Latest monitor load signal (adaptive probe scheduling). */
    double load_ = 0.0;
    bool trained_ = false;
    std::uint64_t trainings_ = 0;
    /** Inserts since the last training (bounds retrain frequency). */
    std::size_t insertsSinceTrain_ = 0;
    std::vector<float> centroids_;  // lists_.size() * dim_ when trained
    std::vector<List> lists_;       // single list until trained
    std::unordered_map<std::uint64_t, Location> locator_;
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_IVF_INDEX_HH

#include "src/embedding/ivf_index.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"

namespace modm::embedding {

namespace {

/** Total order on scored ids: similarity desc, id asc. */
bool
idScoreBefore(std::uint64_t idA, double scoreA, std::uint64_t idB,
              double scoreB)
{
    if (scoreA != scoreB)
        return scoreA > scoreB;
    return idA < idB;
}

/** Rows per batched-scoring block in the list scans. */
constexpr std::size_t kListBlock = 256;

} // namespace

IvfIndex::IvfIndex(const RetrievalBackendConfig &config, std::size_t dim)
    : dim_(dim), config_(config), lists_(makeLists(1))
{
    MODM_ASSERT(dim_ > 0, "ivf index dimension must be positive");
    MODM_ASSERT(config_.nlist > 0, "ivf nlist must be positive");
    MODM_ASSERT(config_.nlist <= kMaxTrainRows,
                "ivf nlist %zu exceeds the training-sample cap %zu",
                config_.nlist, kMaxTrainRows);
    // makeVectorIndex validates with a thrown diagnostic before this
    // runs; the assert only backstops direct construction.
    MODM_ASSERT(config_.nprobe >= 1 && config_.nprobe <= config_.nlist,
                "ivf nprobe %zu must be in [1, nlist %zu]",
                config_.nprobe, config_.nlist);
}

std::size_t
IvfIndex::trainFloor() const
{
    return kTrainFactor * config_.nlist;
}

std::vector<IvfIndex::List>
IvfIndex::makeLists(std::size_t count) const
{
    std::vector<List> lists(count);
    for (List &l : lists)
        l.rows.reset(dim_);
    return lists;
}

void
IvfIndex::reserve(std::size_t rows)
{
    locator_.reserve(rows);
    if (!trained_) {
        lists_[0].rows.reserve(std::min(rows, trainFloor()));
        lists_[0].ids.reserve(std::min(rows, trainFloor()));
    }
}

std::size_t
IvfIndex::assignList(const float *row) const
{
    // Strictly-greater admission over ascending centroid slots: ties
    // keep the lowest index, matching the pre-kernel loop.
    std::size_t bestList = 0;
    double bestScore = 0.0;
    kernels::bestBatch(row, centroids_.data(), dim_, lists_.size(),
                       dim_, &bestList, &bestScore);
    return bestList;
}

void
IvfIndex::appendToList(std::size_t list, std::uint64_t id,
                       const float *row)
{
    List &l = lists_[list];
    locator_[id] = {list, l.ids.size()};
    l.ids.push_back(id);
    l.rows.pushBack(row);
}

void
IvfIndex::insert(std::uint64_t id, const Embedding &embedding)
{
    MODM_ASSERT(embedding.dim() == dim_,
                "ivf insert: dimension %zu != %zu", embedding.dim(), dim_);
    MODM_ASSERT(!contains(id), "ivf insert: duplicate id %llu",
                static_cast<unsigned long long>(id));
    const float *row = embedding.vec().data();
    appendToList(trained_ ? assignList(row) : 0, id, row);
    ++insertsSinceTrain_;
    if (!trained_) {
        if (size() >= trainFloor())
            train();
    } else {
        maybeRetrain();
    }
}

bool
IvfIndex::remove(std::uint64_t id)
{
    const auto it = locator_.find(id);
    if (it == locator_.end())
        return false;
    const Location loc = it->second;
    List &l = lists_[loc.list];
    const std::size_t last = l.ids.size() - 1;
    if (loc.pos != last) {
        // Swap the list's last row into the vacated position.
        l.ids[loc.pos] = l.ids[last];
        locator_[l.ids[loc.pos]].pos = loc.pos;
    }
    l.rows.swapRemove(loc.pos);
    l.ids.pop_back();
    locator_.erase(it);
    return true;
}

bool
IvfIndex::contains(std::uint64_t id) const
{
    return locator_.find(id) != locator_.end();
}

void
IvfIndex::train()
{
    const std::size_t total = size();
    const std::size_t nlist = config_.nlist;
    if (total < nlist)
        return; // not enough rows to seed distinct centroids

    // Gather the training sample: a fixed stride over the current
    // enumeration order (lists in order, positions in order) capped at
    // kMaxTrainRows — a pure function of the index contents.
    std::vector<const float *> rowPtrs;
    rowPtrs.reserve(total);
    for (const List &l : lists_) {
        for (std::size_t p = 0; p < l.ids.size(); ++p)
            rowPtrs.push_back(l.rows.row(p));
    }
    const std::size_t sampleCount = std::min(total, kMaxTrainRows);
    std::vector<const float *> sample;
    sample.reserve(sampleCount);
    for (std::size_t s = 0; s < sampleCount; ++s)
        sample.push_back(rowPtrs[total * s / sampleCount]);

    // Seed centroids: partial Fisher-Yates over the sample picks nlist
    // distinct rows, driven by the configured seed (mixed with the
    // training generation so retrains explore fresh seedings).
    Rng rng(config_.seed ^ mix64(trainings_));
    std::vector<std::size_t> perm(sample.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    std::vector<float> centroids(nlist * dim_);
    for (std::size_t c = 0; c < nlist; ++c) {
        const std::size_t pick =
            c + rng.uniformInt(perm.size() - c);
        std::swap(perm[c], perm[pick]);
        std::memcpy(&centroids[c * dim_], sample[perm[c]],
                    dim_ * sizeof(float));
    }

    // Lloyd iterations with cosine assignment (spherical k-means):
    // assign to the max-dot centroid (ties: lowest index), recompute
    // each centroid as the normalized mean of its members, and reseed
    // empty clusters from the worst-fitting rows so no list is dead.
    std::vector<std::size_t> assign(sample.size());
    std::vector<double> bestDot(sample.size());
    std::vector<double> sums(nlist * dim_);
    std::vector<std::size_t> counts(nlist);
    for (std::size_t iter = 0; iter < kKmeansIters; ++iter) {
        for (std::size_t s = 0; s < sample.size(); ++s) {
            // Same strictly-greater / lowest-index admission as the
            // pre-kernel centroid loop.
            std::size_t bestC = 0;
            double best = -2.0;
            kernels::bestBatch(sample[s], centroids.data(), dim_, nlist,
                               dim_, &bestC, &best);
            assign[s] = bestC;
            bestDot[s] = best;
        }
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (std::size_t s = 0; s < sample.size(); ++s) {
            double *sum = &sums[assign[s] * dim_];
            const float *row = sample[s];
            for (std::size_t d = 0; d < dim_; ++d)
                sum[d] += row[d];
            ++counts[assign[s]];
        }
        for (std::size_t c = 0; c < nlist; ++c) {
            if (counts[c] == 0)
                continue; // reseeded below
            const double *sum = &sums[c * dim_];
            double normSq = 0.0;
            for (std::size_t d = 0; d < dim_; ++d)
                normSq += sum[d] * sum[d];
            if (normSq <= 0.0)
                continue; // degenerate mean: keep the old centroid
            const double inv = 1.0 / std::sqrt(normSq);
            float *out = &centroids[c * dim_];
            for (std::size_t d = 0; d < dim_; ++d)
                out[d] = static_cast<float>(sum[d] * inv);
        }
        for (std::size_t c = 0; c < nlist; ++c) {
            if (counts[c] != 0)
                continue;
            // Steal the row that fits its current centroid worst.
            std::size_t worst = sample.size();
            for (std::size_t s = 0; s < sample.size(); ++s) {
                if (counts[assign[s]] <= 1)
                    continue; // don't empty another cluster
                if (worst == sample.size() ||
                    bestDot[s] < bestDot[worst])
                    worst = s;
            }
            if (worst == sample.size())
                break; // fewer distinct rows than clusters
            --counts[assign[worst]];
            assign[worst] = c;
            counts[c] = 1;
            bestDot[worst] = 2.0; // not stolen twice
            std::memcpy(&centroids[c * dim_], sample[worst],
                        dim_ * sizeof(float));
        }
    }

    // Adopt the quantizer and re-bin every row.
    centroids_ = std::move(centroids);
    std::vector<List> old;
    old.swap(lists_);
    lists_ = makeLists(nlist);
    trained_ = true;
    for (const List &l : old) {
        for (std::size_t p = 0; p < l.ids.size(); ++p) {
            const float *row = l.rows.row(p);
            appendToList(assignList(row), l.ids[p], row);
        }
    }
    ++trainings_;
    insertsSinceTrain_ = 0;
}

void
IvfIndex::maybeRetrain()
{
    if (config_.retrainThreshold <= 1.0)
        return;
    // Bound retrain frequency: at least a quarter of the index must
    // have been inserted since the last training, so adversarial skew
    // (e.g. every row identical) cannot retrain on every insert.
    const std::size_t minInserts =
        std::max(size() / 4, config_.nlist);
    if (insertsSinceTrain_ < minInserts)
        return;
    std::size_t maxList = 0;
    for (const List &l : lists_)
        maxList = std::max(maxList, l.ids.size());
    const double mean = static_cast<double>(size()) /
        static_cast<double>(lists_.size());
    if (static_cast<double>(maxList) > config_.retrainThreshold * mean)
        train();
}

void
IvfIndex::setLoadSignal(double load)
{
    if (!config_.adaptiveNprobe)
        return;
    load_ = std::clamp(load, 0.0, 1.0);
}

std::size_t
IvfIndex::effectiveNprobe() const
{
    if (!config_.adaptiveNprobe)
        return config_.nprobe;
    const std::size_t floor =
        std::clamp<std::size_t>(config_.minNprobe, 1, config_.nprobe);
    const double span =
        static_cast<double>(config_.nprobe - floor);
    // Linear shed: full nprobe when idle, the floor at saturation.
    // floor() keeps the count monotone nonincreasing in load.
    return floor + static_cast<std::size_t>(
                       std::floor(span * (1.0 - load_) + 1e-9));
}

std::vector<std::size_t>
IvfIndex::probeLists(const float *query) const
{
    const std::size_t nprobe =
        std::min(effectiveNprobe(), lists_.size());
    std::vector<std::size_t> order(lists_.size());
    for (std::size_t c = 0; c < order.size(); ++c)
        order[c] = c;
    std::vector<double> scores(lists_.size());
    kernels::dotBatch(query, centroids_.data(), dim_, lists_.size(),
                      dim_, scores.data());
    std::partial_sort(order.begin(), order.begin() + nprobe, order.end(),
                      [&scores](std::size_t a, std::size_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
    order.resize(nprobe);
    return order;
}

void
IvfIndex::bestInList(const List &l, const float *query,
                     Match &best, bool &found) const
{
    // Score in batched blocks, fold in position order; ties break by
    // id (not slot), so the admission itself stays the scalar loop.
    double scores[kListBlock];
    for (std::size_t base = 0; base < l.ids.size();
         base += kListBlock) {
        const std::size_t len =
            std::min(kListBlock, l.ids.size() - base);
        kernels::dotBatch(query, l.rows.row(base), l.rows.stride(),
                          len, dim_, scores);
        for (std::size_t i = 0; i < len; ++i) {
            const std::uint64_t id = l.ids[base + i];
            if (!found || idScoreBefore(id, scores[i], best.id,
                                        best.similarity)) {
                best.id = id;
                best.similarity = scores[i];
                found = true;
            }
        }
    }
}

Match
IvfIndex::best(const Embedding &query) const
{
    if (!trained_)
        return exactBest(query); // single-list exhaustive scan
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "ivf query: dimension mismatch");
    const float *q = query.vec().data();
    bool found = false;
    for (const std::size_t c : probeLists(q))
        bestInList(lists_[c], q, result, found);
    if (!found) {
        // Eviction churn can drain every probed list while others
        // still hold rows; a non-empty index must return a real
        // entry, so widen to the exhaustive scan.
        return exactBest(query);
    }
    return result;
}

Match
IvfIndex::exactBest(const Embedding &query) const
{
    Match result;
    if (empty())
        return result;
    MODM_ASSERT(query.dim() == dim_, "ivf query: dimension mismatch");
    const float *q = query.vec().data();
    bool found = false;
    for (const List &l : lists_)
        bestInList(l, q, result, found);
    return result;
}

std::vector<Match>
IvfIndex::topK(const Embedding &query, std::size_t k) const
{
    std::vector<Match> result;
    if (empty() || k == 0)
        return result;
    MODM_ASSERT(query.dim() == dim_, "ivf query: dimension mismatch");
    const float *q = query.vec().data();

    // Bounded selection, same shape as the flat scan: a heap of the k
    // best (score, id) candidates seen so far, worst at the front.
    const auto better = [](const Match &a, const Match &b) {
        return idScoreBefore(a.id, a.similarity, b.id, b.similarity);
    };
    std::vector<Match> heap;
    heap.reserve(k);
    const auto offer = [&](std::uint64_t id, double score) {
        const Match candidate{id, score};
        if (heap.size() < k) {
            heap.push_back(candidate);
            std::push_heap(heap.begin(), heap.end(), better);
        } else if (better(candidate, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = candidate;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    };
    const auto scanList = [&](const List &l) {
        double scores[kListBlock];
        for (std::size_t base = 0; base < l.ids.size();
             base += kListBlock) {
            const std::size_t len =
                std::min(kListBlock, l.ids.size() - base);
            kernels::dotBatch(q, l.rows.row(base), l.rows.stride(),
                              len, dim_, scores);
            for (std::size_t i = 0; i < len; ++i)
                offer(l.ids[base + i], scores[i]);
        }
    };

    if (!trained_) {
        for (const List &l : lists_)
            scanList(l);
    } else {
        for (const std::size_t c : probeLists(q))
            scanList(lists_[c]);
        if (heap.empty()) {
            // Every probed list was empty (eviction churn): widen to
            // the exhaustive scan, matching best()'s fallback.
            for (const List &l : lists_)
                scanList(l);
        }
    }
    std::sort(heap.begin(), heap.end(), better);
    return heap;
}

bool
IvfIndex::approximate() const
{
    return trained_ && std::min(effectiveNprobe(), lists_.size()) <
        lists_.size();
}

std::size_t
IvfIndex::memoryBytes() const
{
    // Rows count dim (not stride) floats, so the figure is unchanged
    // from the pre-slab layout at any dimension.
    std::size_t bytes = centroids_.size() * sizeof(float) +
        locatorBytes(locator_.size(), sizeof(Location));
    for (const List &l : lists_)
        bytes += l.ids.size() * dim_ * sizeof(float) +
            l.ids.size() * sizeof(std::uint64_t);
    return bytes;
}

void
IvfIndex::setNprobe(std::size_t nprobe)
{
    if (nprobe == 0)
        return; // 0 = leave the configured value
    // probeLists clamps to the list count, so a too-large override
    // degrades to the exhaustive probe rather than faulting mid-run.
    config_.nprobe = nprobe;
}

void
IvfIndex::clear()
{
    lists_ = makeLists(1);
    centroids_.clear();
    locator_.clear();
    trained_ = false;
    trainings_ = 0;
    insertsSinceTrain_ = 0;
}

} // namespace modm::embedding

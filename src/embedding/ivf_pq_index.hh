/**
 * @file
 * Product-quantized inverted-file (IVF-PQ) retrieval — the IvfPq
 * backend of the VectorIndex interface (vector_index.hh), and the
 * memory-budget end of the backend spectrum.
 *
 * A flat 512-dim float row costs 2 KiB; at the ROADMAP's
 * millions-of-users scale that is GiBs of cache index. IVF-PQ stores
 * each row as its IVF coarse assignment plus a product-quantized code
 * of the residual: the embedding splits into pqM subvectors, each
 * encoded as the index of its nearest codeword in a per-subspace
 * codebook of 2^pqBits entries — pqM * pqBits / 8 bytes per row
 * (16 bytes at pqM=16/pqBits=8 — 128x smaller than the flat row), plus
 * shared centroids + codebooks amortized across the index.
 *
 * Queries score probed lists with asymmetric distance computation
 * (ADC): dot(q, row) ~= dot(q, centroid) + sum_m dot(q_m, codeword_m),
 * where the per-subspace dot tables are built once per query. The ADC
 * shortlist then re-ranks *exactly* when a RowSource is attached (the
 * caches expose the embeddings they already store per entry), so
 * recall@1 stays honest instead of inheriting quantization noise; with
 * no source the ADC order stands (standalone benchmarks measure recall
 * against a flat ground truth instead).
 *
 * Life cycle matches IvfIndex: exact single-list scans below the
 * training floor; seeded k-means for centroids and codebooks at the
 * floor; incremental encode-on-insert and swap-remove after. The
 * quantizers retrain on list skew (as IvfIndex) and whenever the index
 * grows kRetrainGrowth-fold past its last training size, so codebooks
 * fitted at the floor never govern an index orders of magnitude
 * larger; retraining reads true rows through the RowSource when one is
 * attached and reconstructions otherwise (bounded frequency,
 * deterministic). Determinism: training, encoding, ADC, re-ranking and
 * every tiebreak are pure functions of (construction sequence,
 * config.seed); results order by (similarity desc, id asc).
 */

#ifndef MODM_EMBEDDING_IVF_PQ_INDEX_HH
#define MODM_EMBEDDING_IVF_PQ_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/embedding/embedding.hh"
#include "src/embedding/vector_index.hh"

namespace modm::embedding {

/**
 * IVF-PQ cosine index keyed by caller-assigned 64-bit ids.
 */
class IvfPqIndex final : public VectorIndex
{
  public:
    /** Rows-per-list factor that triggers initial training. */
    static constexpr std::size_t kTrainFactor = 4;
    /** Coarse-quantizer training-sample cap (stride sample above). */
    static constexpr std::size_t kMaxTrainRows = 16384;
    /** Codebook training-sample cap (k-means is ksub x this per sub). */
    static constexpr std::size_t kMaxCodebookRows = 2048;
    /** Lloyd iterations per (re)training. */
    static constexpr std::size_t kKmeansIters = 8;
    /** ADC shortlist re-ranked (exactly, when a RowSource is set). */
    static constexpr std::size_t kRerank = 128;
    /**
     * Scanned-rows-per-shortlist-slot: the shortlist widens to
     * scanned / kRerankWindow when that exceeds kRerank, so the
     * re-rank window tracks list growth instead of starving recall
     * at million-row scale (near-ties inside the quantization error
     * are ordered essentially at random by ADC alone).
     */
    static constexpr std::size_t kRerankWindow = 8;
    /** Growth factor past the last training size that retrains. */
    static constexpr std::size_t kRetrainGrowth = 4;

    /** Create an index for embeddings of the given dimensionality. */
    explicit IvfPqIndex(const RetrievalBackendConfig &config,
                        std::size_t dim = kEmbeddingDim);

    void reserve(std::size_t rows) override;
    void insert(std::uint64_t id, const Embedding &embedding) override;
    bool remove(std::uint64_t id) override;
    bool contains(std::uint64_t id) const override;
    std::size_t size() const override { return locator_.size(); }
    Match best(const Embedding &query) const override;
    std::vector<Match> topK(const Embedding &query,
                            std::size_t k) const override;
    void clear() override;

    /** Codes + ids + centroids + codebooks + locator payloads. */
    std::size_t memoryBytes() const override;

    /** Quantized once trained (ADC ordering, shortlist re-rank). */
    bool approximate() const override { return trained_; }

    /**
     * Exhaustive exact scan via the RowSource when attached (recall
     * accounting); reconstructed-row scan otherwise.
     */
    Match exactBest(const Embedding &query) const override;

    /** Serving load for the adaptive probe scheduler (as IvfIndex). */
    void setLoadSignal(double load) override;

    /** Exact-row oracle for re-ranking; nullptr detaches. */
    void setRowSource(const RowSource *source) override
    {
        source_ = source;
    }

    /** Runtime nprobe override (scenario knob); 0 ignored. */
    void setNprobe(std::size_t nprobe) override;

    /** Lists a query scans right now (see IvfIndex). */
    std::size_t effectiveNprobe() const;

    /** True once centroids and codebooks have been trained. */
    bool trained() const { return trained_; }

    /** Times the quantizers have (re)trained. */
    std::uint64_t trainings() const { return trainings_; }

    /** Rows needed before the quantizers train. */
    std::size_t trainFloor() const;

    /** Bytes of PQ code per stored row. */
    std::size_t codeBytes() const { return codeBytes_; }

  private:
    /** One inverted list: parallel packed codes + ids. */
    struct List
    {
        std::vector<std::uint8_t> codes; // ids.size() * codeBytes_
        std::vector<std::uint64_t> ids;
    };

    /** Where an id lives. */
    struct Location
    {
        std::size_t list;
        std::size_t pos;
    };

    /** Codeword `j` of subspace `m` (subDim_ floats). */
    const float *codeword(std::size_t m, std::size_t j) const
    {
        return &codebooks_[(m * ksub_ + j) * subDim_];
    }

    /** Read / write code `m` of a packed row. */
    std::size_t codeAt(const std::uint8_t *row, std::size_t m) const;
    void setCodeAt(std::uint8_t *row, std::size_t m,
                   std::size_t code) const;

    /** Nearest-centroid list for a row (ties: lowest index). */
    std::size_t assignList(const float *row) const;

    /** Encode a row's residual against its list centroid. */
    void encodeRow(std::size_t list, const float *row,
                   std::uint8_t *codes) const;

    /** Reconstruct a stored row (centroid + codewords). */
    void reconstructRow(std::size_t list, const std::uint8_t *codes,
                        float *out) const;

    /** Append an encoded row to a list and record its location. */
    void appendToList(std::size_t list, std::uint64_t id,
                      const std::uint8_t *codes);

    /** Seeded k-means over materialized rows; re-encodes everything. */
    void train(const std::vector<float> &rows,
               const std::vector<std::uint64_t> &ids);

    /** Materialize every stored row (staging or reconstruction). */
    void materializeAll(std::vector<float> &rows,
                        std::vector<std::uint64_t> &ids) const;

    /** Retrain on list skew or kRetrainGrowth-fold index growth. */
    void maybeRetrain();

    /** Indexes of the `nprobe` highest-scoring centroids. */
    std::vector<std::size_t> probeLists(const float *query) const;

    /** Top ADC candidates (score desc, id asc) over probed lists. */
    std::vector<Match> adcShortlist(const float *query,
                                    std::size_t keep) const;

    std::size_t dim_;
    RetrievalBackendConfig config_;
    std::size_t subDim_;    // dim_ / pqM
    std::size_t ksub_;      // 1 << pqBits
    std::size_t codeBytes_; // packed code bytes per row
    const RowSource *source_ = nullptr;
    /** Latest monitor load signal (adaptive probe scheduling). */
    double load_ = 0.0;
    bool trained_ = false;
    std::uint64_t trainings_ = 0;
    /** Inserts since the last training (bounds retrain frequency). */
    std::size_t insertsSinceTrain_ = 0;
    /** Rows present at the last training (growth-retrain baseline). */
    std::size_t trainedSize_ = 0;
    std::vector<float> centroids_; // nlist * dim_ when trained
    std::vector<float> codebooks_; // pqM * ksub * subDim_ when trained
    /** Raw rows staged before training (single exact list). */
    std::vector<float> staging_;
    std::vector<std::uint64_t> stagingIds_;
    std::vector<List> lists_; // empty until trained
    std::unordered_map<std::uint64_t, Location> locator_;
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_IVF_PQ_INDEX_HH

/**
 * @file
 * Synthetic CLIP encoders.
 *
 * The real system embeds prompts with the CLIP text tower and cached
 * images with the CLIP image tower. This substitute reproduces the two
 * properties MoDM depends on:
 *
 * 1. *Modality gap*: CLIP text and image embeddings live in two distinct
 *    cones, so cross-modal cosine similarity tops out well below 1 — real
 *    CLIPScores sit around 0.2-0.35, which is the scale the paper's cache
 *    thresholds (0.25-0.30) and Fig. 2 histograms are expressed in. We
 *    model the cones with fixed orthogonal anchor directions T0 (text)
 *    and I0 (image); same-modality similarity has a large constant floor
 *    (matching Nirvana's 0.65-0.95 text-to-text threshold range), while
 *    cross-modal similarity is proportional to visual-concept agreement.
 *
 * 2. *Lexical contamination* (paper §3.2): a text embedding mixes the
 *    underlying visual concept with the prompt's lexical style, while an
 *    image embedding reflects the visual content of the generated image
 *    almost directly. Text-to-image retrieval therefore tracks the user's
 *    visual intent better than text-to-text retrieval — the effect the
 *    paper's Fig. 2 and Fig. 3 demonstrate.
 *
 * Noise is derived deterministically from the prompt text / image id so
 * encoding is a pure function, exactly like running a frozen CLIP model.
 */

#ifndef MODM_EMBEDDING_ENCODER_HH
#define MODM_EMBEDDING_ENCODER_HH

#include <cstdint>
#include <string>

#include "src/common/vec.hh"
#include "src/embedding/embedding.hh"

namespace modm::embedding {

/** Tunables of the synthetic text tower. */
struct TextEncoderConfig
{
    /** Embedding dimensionality. */
    std::size_t dim = kEmbeddingDim;
    /** Weight of the content cone vs the text anchor (modality gap). */
    double coneWeight = 0.62;
    /** Weight of the lexical-style component relative to the concept. */
    double lexicalWeight = 0.55;
    /** Norm of the deterministic per-prompt encoder noise. */
    double noise = 0.12;
};

/** Tunables of the synthetic image tower. */
struct ImageEncoderConfig
{
    /** Embedding dimensionality. */
    std::size_t dim = kEmbeddingDim;
    /** Weight of the content cone vs the image anchor (modality gap). */
    double coneWeight = 0.62;
    /** Noise norm applied to a perfect-fidelity image. */
    double noiseBase = 0.08;
    /** Extra noise per unit of missing fidelity (image defects). */
    double noisePerDefect = 0.90;
};

/**
 * Text tower: embeds (visual concept, lexical style, surface text) into
 * the shared space.
 */
class TextEncoder
{
  public:
    /** Construct with config; defaults reproduce the paper's scales. */
    explicit TextEncoder(TextEncoderConfig config = {});

    /**
     * Encode a prompt.
     *
     * @param visual_concept Ground-truth visual concept (unit vector).
     * @param lexical_style Lexical-style component (unit vector).
     * @param text Surface text; seeds the deterministic encoder noise.
     */
    Embedding encode(const Vec &visual_concept, const Vec &lexical_style,
                     const std::string &text) const;

    /** Active configuration. */
    const TextEncoderConfig &config() const { return config_; }

  private:
    TextEncoderConfig config_;
    Vec anchor_;
};

/**
 * Image tower: embeds generated-image content into the shared space.
 * Lower-fidelity images (small-model defects) embed with more noise,
 * which slightly blurs retrieval and depresses CLIP-style scores.
 */
class ImageEncoder
{
  public:
    /** Construct with config. */
    explicit ImageEncoder(ImageEncoderConfig config = {});

    /**
     * Encode an image.
     *
     * @param content Visual content vector of the image (unit vector).
     * @param fidelity Image fidelity in [0, 1]; lower adds encoder noise.
     * @param image_id Seeds the deterministic noise.
     */
    Embedding encode(const Vec &content, double fidelity,
                     std::uint64_t image_id) const;

    /** Active configuration. */
    const ImageEncoderConfig &config() const { return config_; }

  private:
    ImageEncoderConfig config_;
    Vec anchor_;
};

/**
 * The fixed text-cone anchor direction for a dimensionality (unit
 * vector, deterministic).
 */
Vec textAnchor(std::size_t dim);

/** The fixed image-cone anchor, orthogonalised against the text anchor. */
Vec imageAnchor(std::size_t dim);

/**
 * Pure-text hashing encoder: feature-hashes tokens into the embedding
 * space. This is the no-ground-truth fallback used in tests and available
 * to applications that only have strings.
 */
class HashingTextEncoder
{
  public:
    /** Encode arbitrary text via token feature hashing. */
    Embedding encode(const std::string &text) const;
};

} // namespace modm::embedding

#endif // MODM_EMBEDDING_ENCODER_HH

/**
 * @file
 * Topic universe for the synthetic prompt workloads.
 *
 * Production text-to-image traffic clusters into topics of uneven
 * popularity (fan art, landscapes, portraits, ...). Each topic owns a
 * visual-concept center, a lexical-style center, and a word pool used to
 * realize surface text. Topic popularity follows a Zipf distribution, the
 * standard model for such skew.
 */

#ifndef MODM_WORKLOAD_TOPICS_HH
#define MODM_WORKLOAD_TOPICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/vec.hh"

namespace modm::workload {

/** Static description of one topic. */
struct Topic
{
    /** Center of the topic's visual concepts (unit vector). */
    Vec visualCenter;
    /** Center of the topic's lexical styles (unit vector). */
    Vec lexicalCenter;
    /** Words used to realize prompt text for this topic. */
    std::vector<std::string> words;
};

/** Configuration for the topic universe. */
struct TopicUniverseConfig
{
    /** Number of topics. */
    std::size_t numTopics = 400;
    /** Embedding-space dimensionality. */
    std::size_t dim = 64;
    /** Zipf exponent for topic popularity; higher = more skew. */
    double zipfExponent = 1.05;
    /** Words per topic pool. */
    std::size_t wordsPerTopic = 24;
};

/**
 * The set of all topics plus the popularity distribution over them.
 * Construction is deterministic in the seed.
 */
class TopicUniverse
{
  public:
    /** Build all topics. */
    TopicUniverse(const TopicUniverseConfig &config, std::uint64_t seed);

    /** Sample a topic id by Zipf popularity. */
    std::uint32_t sampleTopic(Rng &rng) const;

    /** Sample a topic id uniformly (used by the MJHQ-like model). */
    std::uint32_t sampleTopicUniform(Rng &rng) const;

    /** Access a topic. */
    const Topic &topic(std::uint32_t id) const;

    /** Number of topics. */
    std::size_t size() const { return topics_.size(); }

    /** Embedding dimensionality. */
    std::size_t dim() const { return config_.dim; }

    /**
     * Realize a surface text for a topic: a handful of topic words plus
     * style filler, deterministic in the rng stream.
     */
    std::string realizeText(std::uint32_t topic_id, Rng &rng) const;

  private:
    TopicUniverseConfig config_;
    std::vector<Topic> topics_;
    ZipfDistribution popularity_;
};

} // namespace modm::workload

#endif // MODM_WORKLOAD_TOPICS_HH

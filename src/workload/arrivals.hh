/**
 * @file
 * Request arrival processes.
 *
 * The paper models arrivals as a homogeneous Poisson process with varying
 * rates (§6), plus step-increasing (Fig. 10) and fluctuating (Fig. 17)
 * rate schedules for the adaptivity experiments.
 */

#ifndef MODM_WORKLOAD_ARRIVALS_HH
#define MODM_WORKLOAD_ARRIVALS_HH

#include <vector>

#include "src/common/rng.hh"

namespace modm::workload {

/** Interface: produces monotonically increasing arrival timestamps. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Timestamp (seconds) of the next arrival. */
    virtual double next(Rng &rng) = 0;
};

/** Homogeneous Poisson arrivals at a fixed rate. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    /** Rate in requests per minute. */
    explicit PoissonArrivals(double rate_per_min);

    double next(Rng &rng) override;

    /** Configured rate (requests/minute). */
    double ratePerMin() const { return ratePerMin_; }

  private:
    double ratePerMin_;
    double now_ = 0.0;
};

/** One segment of a piecewise-constant rate schedule. */
struct RateSegment
{
    /** Segment duration in seconds. */
    double duration;
    /** Poisson rate in requests per minute during the segment. */
    double ratePerMin;
};

/**
 * Piecewise-constant-rate Poisson arrivals; used for the increasing-rate
 * (Fig. 10) and fluctuating-rate (Fig. 17) experiments. After the last
 * segment the final rate holds forever.
 */
class PiecewiseArrivals : public ArrivalProcess
{
  public:
    /** Construct from segments; at least one is required. */
    explicit PiecewiseArrivals(std::vector<RateSegment> segments);

    double next(Rng &rng) override;

    /** Rate in effect at an absolute time. */
    double rateAt(double time) const;

    /** Total scheduled duration (sum of segment durations). */
    double totalDuration() const;

  private:
    std::vector<RateSegment> segments_;
    double now_ = 0.0;
};

} // namespace modm::workload

#endif // MODM_WORKLOAD_ARRIVALS_HH

#include "src/workload/scenario.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>

#include "src/common/log.hh"

namespace modm::workload {
namespace {

/** Regional generator indices live in [1, kMaxRegions]. */
constexpr std::size_t kMaxRegions = 8;

// ---------------------------------------------------------------------
// Enum <-> token tables. The token is the canonical spelling; parsing
// accepts exactly these spellings (strictness keeps the digest
// well-defined).
// ---------------------------------------------------------------------

template <typename E>
struct EnumTok
{
    E value;
    const char *token;
};

const EnumTok<ScenarioMode> kModes[] = {
    {ScenarioMode::Serving, "serving"},
    {ScenarioMode::CacheStream, "cache-stream"},
};

const EnumTok<ScenarioDataset> kDatasets[] = {
    {ScenarioDataset::DiffusionDB, "diffusiondb"},
    {ScenarioDataset::MJHQ, "mjhq"},
};

const EnumTok<ScenarioSystem> kSystems[] = {
    {ScenarioSystem::MoDM, "modm"},
    {ScenarioSystem::Vanilla, "vanilla"},
    {ScenarioSystem::Nirvana, "nirvana"},
    {ScenarioSystem::Pinecone, "pinecone"},
    {ScenarioSystem::StandaloneSmall, "standalone-small"},
};

const EnumTok<ScenarioModel> kModels[] = {
    {ScenarioModel::Sd35Large, "sd35-large"},
    {ScenarioModel::Flux1Dev, "flux1-dev"},
    {ScenarioModel::Sdxl, "sdxl"},
    {ScenarioModel::Sana, "sana"},
    {ScenarioModel::Sd35Turbo, "sd35-turbo"},
};

const EnumTok<ScenarioGpu> kGpus[] = {
    {ScenarioGpu::A40, "a40"},
    {ScenarioGpu::MI210, "mi210"},
};

const EnumTok<ScenarioEviction> kEvictions[] = {
    {ScenarioEviction::Fifo, "fifo"},
    {ScenarioEviction::Lru, "lru"},
    {ScenarioEviction::Utility, "utility"},
};

const EnumTok<ScenarioRouting> kRoutings[] = {
    {ScenarioRouting::RoundRobin, "round-robin"},
    {ScenarioRouting::ConsistentHash, "consistent-hash"},
    {ScenarioRouting::LeastOutstanding, "least-outstanding"},
    {ScenarioRouting::BoundedLoad, "bounded-load"},
};

const EnumTok<ScenarioPartitioning> kPartitionings[] = {
    {ScenarioPartitioning::Sharded, "sharded"},
    {ScenarioPartitioning::Replicated, "replicated"},
};

const EnumTok<ScenarioRetrieval> kRetrievals[] = {
    {ScenarioRetrieval::Flat, "flat"},
    {ScenarioRetrieval::Ivf, "ivf"},
    {ScenarioRetrieval::Hnsw, "hnsw"},
    {ScenarioRetrieval::IvfPq, "ivf-pq"},
};

const EnumTok<ScenarioReport> kReports[] = {
    {ScenarioReport::Table, "table"},
    {ScenarioReport::HitCurve, "hit-curve"},
    {ScenarioReport::Energy, "energy"},
};

const EnumTok<ScenarioFault> kFaultVerbs[] = {
    {ScenarioFault::Kill, "kill"},
    {ScenarioFault::Drain, "drain"},
    {ScenarioFault::Rejoin, "rejoin"},
};

/** Monitor-mode knob values (ScenarioOp::knobValue 0 / 1). */
const char *const kKnobModeTokens[] = {"throughput", "quality"};

template <typename E, std::size_t N>
bool
lookupEnum(const EnumTok<E> (&table)[N], const std::string &tok, E &out)
{
    for (const auto &entry : table) {
        if (tok == entry.token) {
            out = entry.value;
            return true;
        }
    }
    return false;
}

template <typename E, std::size_t N>
const char *
enumToken(const EnumTok<E> (&table)[N], E value)
{
    for (const auto &entry : table)
        if (entry.value == value)
            return entry.token;
    panic("unmapped scenario enum value");
}

template <typename E, std::size_t N>
std::string
enumChoices(const EnumTok<E> (&table)[N])
{
    std::string out;
    for (const auto &entry : table) {
        if (!out.empty())
            out += "|";
        out += entry.token;
    }
    return out;
}

// ---------------------------------------------------------------------
// Scalar formatting / parsing.
// ---------------------------------------------------------------------

/** Shortest %g form that parses back to the exact same double. */
std::string
fmtDouble(double value)
{
    char buf[64];
    // Integral values print as plain integers ("2500", never
    // "2.5e+03") — op times and rates are usually whole numbers and
    // the canonical text should read like the hand-written source.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

std::string
fmtU64(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool
parseSize(const std::string &tok, std::size_t &out)
{
    std::uint64_t v = 0;
    if (!parseU64(tok, v))
        return false;
    out = static_cast<std::size_t>(v);
    return static_cast<std::uint64_t>(out) == v;
}

bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0' &&
           std::isfinite(out);
}

// ---------------------------------------------------------------------
// Tokenizer: whitespace-separated, double quotes group one token,
// '#' starts a comment outside quotes.
// ---------------------------------------------------------------------

struct Tok
{
    std::string text;
    bool quoted = false;
};

bool
tokenizeLine(const std::string &line, std::vector<Tok> &out,
             std::string &err)
{
    out.clear();
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
        while (i < n && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= n || line[i] == '#')
            break;
        if (line[i] == '"') {
            const std::size_t close = line.find('"', i + 1);
            if (close == std::string::npos) {
                err = "unterminated quote";
                return false;
            }
            out.push_back({line.substr(i + 1, close - i - 1), true});
            i = close + 1;
        } else {
            std::size_t end = i;
            while (end < n &&
                   !std::isspace(static_cast<unsigned char>(line[end])))
                ++end;
            out.push_back({line.substr(i, end - i), false});
            i = end;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// Param fields (shared between header directives and cell overrides).
// ---------------------------------------------------------------------

/** Canonical order of the overridable param keys. */
const char *const kParamKeys[] = {
    "system", "large",        "small",    "workers",
    "gpu",    "cache",        "eviction", "nodes",
    "routing", "partitioning", "replicas", "retrieval",
};

std::string
smallListToken(const std::vector<ScenarioModel> &small)
{
    if (small.empty())
        return "none";
    std::string out;
    for (const auto model : small) {
        if (!out.empty())
            out += ",";
        out += enumToken(kModels, model);
    }
    return out;
}

bool
parseSmallList(const std::string &value, std::vector<ScenarioModel> &out,
               std::string &err)
{
    out.clear();
    if (value == "none")
        return true;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(start, comma - start);
        ScenarioModel model;
        if (!lookupEnum(kModels, item, model)) {
            err = "unknown model '" + item + "' (expected " +
                  enumChoices(kModels) + " or none)";
            return false;
        }
        out.push_back(model);
        if (comma == value.size())
            break;
        start = comma + 1;
    }
    return true;
}

/**
 * Parse a retrieval value: a backend token optionally followed by
 * comma-separated search-knob suffixes (`hnsw,ef=64`,
 * `ivf-pq,nprobe=16`). Selecting a backend resets both knobs to 0
 * (backend defaults) before applying suffixes, so a cell override
 * fully specifies its retrieval configuration.
 */
bool
parseRetrievalValue(ScenarioParams &params, const std::string &value,
                    std::string &err)
{
    std::size_t comma = value.find(',');
    const std::string backend = value.substr(0, comma);
    if (!lookupEnum(kRetrievals, backend, params.retrieval)) {
        err = "unknown retrieval backend '" + backend + "' (expected " +
              enumChoices(kRetrievals) + ")";
        return false;
    }
    params.retrievalEf = 0;
    params.retrievalNprobe = 0;
    while (comma != std::string::npos) {
        const std::size_t start = comma + 1;
        comma = value.find(',', start);
        const std::string knob = value.substr(
            start, comma == std::string::npos ? comma : comma - start);
        const std::size_t eq = knob.find('=');
        const std::string name = knob.substr(0, eq);
        std::size_t parsed = 0;
        if (eq == std::string::npos ||
            !parseSize(knob.substr(eq + 1), parsed) || parsed == 0) {
            err = "retrieval knob must look like ef=<n> or "
                  "nprobe=<n> with n >= 1, got '" +
                  knob + "'";
            return false;
        }
        if (name == "ef") {
            if (params.retrieval != ScenarioRetrieval::Hnsw) {
                err = "retrieval knob ef requires the hnsw backend "
                      "(got " +
                      std::string(enumToken(kRetrievals,
                                            params.retrieval)) +
                      ")";
                return false;
            }
            params.retrievalEf = parsed;
        } else if (name == "nprobe") {
            if (params.retrieval != ScenarioRetrieval::Ivf &&
                params.retrieval != ScenarioRetrieval::IvfPq) {
                err = "retrieval knob nprobe requires an ivf backend "
                      "(got " +
                      std::string(enumToken(kRetrievals,
                                            params.retrieval)) +
                      ")";
                return false;
            }
            params.retrievalNprobe = parsed;
        } else {
            err = "unknown retrieval knob '" + name +
                  "' (expected ef|nprobe)";
            return false;
        }
    }
    return true;
}

/**
 * Apply one `key value` pair to a param block. `known` reports whether
 * the key was a param key at all; the return value is false (with a
 * message in `err`) when the key was known but the value is bad.
 */
bool
applyParamField(ScenarioParams &params, const std::string &key,
                const std::string &value, bool &known, std::string &err)
{
    const auto badEnum = [&](const char *what,
                             const std::string &choices) {
        err = std::string("unknown ") + what + " '" + value +
              "' (expected " + choices + ")";
        return false;
    };
    const auto positive = [&](std::size_t &out) {
        if (!parseSize(value, out) || out == 0) {
            err = key + " must be a positive integer, got '" + value +
                  "'";
            return false;
        }
        return true;
    };

    known = true;
    if (key == "system")
        return lookupEnum(kSystems, value, params.system) ||
               badEnum("system", enumChoices(kSystems));
    if (key == "large")
        return lookupEnum(kModels, value, params.large) ||
               badEnum("model", enumChoices(kModels));
    if (key == "small")
        return parseSmallList(value, params.small, err);
    if (key == "workers")
        return positive(params.workers);
    if (key == "gpu")
        return lookupEnum(kGpus, value, params.gpu) ||
               badEnum("gpu", enumChoices(kGpus));
    if (key == "cache")
        return positive(params.cache);
    if (key == "eviction")
        return lookupEnum(kEvictions, value, params.eviction) ||
               badEnum("eviction policy", enumChoices(kEvictions));
    if (key == "nodes")
        return positive(params.nodes);
    if (key == "routing")
        return lookupEnum(kRoutings, value, params.routing) ||
               badEnum("routing policy", enumChoices(kRoutings));
    if (key == "partitioning")
        return lookupEnum(kPartitionings, value, params.partitioning) ||
               badEnum("partitioning", enumChoices(kPartitionings));
    if (key == "replicas")
        return positive(params.replicas);
    if (key == "retrieval")
        return parseRetrievalValue(params, value, err);
    known = false;
    return true;
}

std::string
paramValueToken(const ScenarioParams &params, const std::string &key)
{
    if (key == "system")
        return enumToken(kSystems, params.system);
    if (key == "large")
        return enumToken(kModels, params.large);
    if (key == "small")
        return smallListToken(params.small);
    if (key == "workers")
        return fmtU64(params.workers);
    if (key == "gpu")
        return enumToken(kGpus, params.gpu);
    if (key == "cache")
        return fmtU64(params.cache);
    if (key == "eviction")
        return enumToken(kEvictions, params.eviction);
    if (key == "nodes")
        return fmtU64(params.nodes);
    if (key == "routing")
        return enumToken(kRoutings, params.routing);
    if (key == "partitioning")
        return enumToken(kPartitionings, params.partitioning);
    if (key == "replicas")
        return fmtU64(params.replicas);
    if (key == "retrieval") {
        std::string out = enumToken(kRetrievals, params.retrieval);
        // Nonzero knobs only: defaults keep the bare backend token, so
        // scenarios written before the knobs existed digest unchanged.
        if (params.retrievalEf > 0)
            out += ",ef=" + fmtU64(params.retrievalEf);
        if (params.retrievalNprobe > 0)
            out += ",nprobe=" + fmtU64(params.retrievalNprobe);
        return out;
    }
    panic("unknown param key '%s'", key.c_str());
}

/** Canonical text of one op (no trailing newline). */
std::string
opLine(const ScenarioOp &op)
{
    std::string out = "at " + fmtDouble(op.time) + " ";
    switch (op.kind) {
      case ScenarioOp::Kind::Rate:
        return out + "rate " + fmtDouble(op.rate);
      case ScenarioOp::Kind::Ramp:
        return out + "ramp to " + fmtDouble(op.rate) + " over " +
               fmtDouble(op.duration) + " steps " + fmtU64(op.steps);
      case ScenarioOp::Kind::Flash:
        return out + "flash x" + fmtDouble(op.factor) + " for " +
               fmtDouble(op.duration);
      case ScenarioOp::Kind::Diurnal:
        return out + "diurnal base " + fmtDouble(op.base) + " amp " +
               fmtDouble(op.amplitude) + " period " +
               fmtDouble(op.period) + " for " + fmtDouble(op.duration) +
               " steps " + fmtU64(op.steps);
      case ScenarioOp::Kind::Drift:
        return out + "drift to seed " + fmtU64(op.driftSeed) + " over " +
               fmtDouble(op.duration);
      case ScenarioOp::Kind::Region:
        return out + "region " + fmtU64(op.region) + " weight " +
               fmtDouble(op.weight);
      case ScenarioOp::Kind::Fault:
        return out + enumToken(kFaultVerbs, op.fault) + " " +
               fmtU64(op.node);
      case ScenarioOp::Kind::Knob:
        switch (op.knob) {
          case ScenarioKnob::MonitorMode:
            return out + "set mode " +
                   kKnobModeTokens[op.knobValue != 0.0 ? 1 : 0];
          case ScenarioKnob::Cache:
            return out + "set cache " +
                   fmtU64(static_cast<std::uint64_t>(op.knobValue));
          case ScenarioKnob::Replicas:
            return out + "set replicas " +
                   fmtU64(static_cast<std::uint64_t>(op.knobValue));
          case ScenarioKnob::Ef:
            return out + "set ef " +
                   fmtU64(static_cast<std::uint64_t>(op.knobValue));
          case ScenarioKnob::Nprobe:
            return out + "set nprobe " +
                   fmtU64(static_cast<std::uint64_t>(op.knobValue));
        }
        panic("unmapped knob");
    }
    panic("unmapped op kind");
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

class Parser
{
  public:
    Parser(std::istream &in, const std::string &filename, Scenario &out)
        : in_(in), filename_(filename), out_(out)
    {
    }

    /** Empty string on success, "<file>:<line>: message" on failure. */
    std::string run();

  private:
    enum class Section
    {
        Header,
        Ops,
        Cells,
    };

    bool fail(const std::string &message)
    {
        return failAt(lineNo_, message);
    }

    bool failAt(int line, const std::string &message)
    {
        error_ =
            filename_ + ":" + std::to_string(line) + ": " + message;
        return false;
    }

    bool handleLine(const std::vector<Tok> &toks);
    bool handleHeader(const std::vector<Tok> &toks);
    bool handleOp(const std::vector<Tok> &toks);
    bool handleCell(const std::vector<Tok> &toks);
    bool validate();
    bool validateArrivalOps();
    bool validateMixOps();
    bool validateFaultOps();
    bool validateKnobOps();

    std::istream &in_;
    std::string filename_;
    Scenario &out_;
    int lineNo_ = 0;
    int scenarioLine_ = 1;
    Section section_ = Section::Header;
    std::set<std::string> seenKeys_;
    bool sawRequests_ = false;
    bool sawDuration_ = false;
    std::string error_;
};

std::string
Parser::run()
{
    out_ = Scenario{};
    std::string line;
    while (std::getline(in_, line)) {
        ++lineNo_;
        std::vector<Tok> toks;
        std::string tokErr;
        if (!tokenizeLine(line, toks, tokErr)) {
            fail(tokErr);
            return error_;
        }
        if (toks.empty())
            continue;
        if (!handleLine(toks))
            return error_;
    }
    if (out_.name.empty()) {
        failAt(1, "missing 'scenario <name>' directive");
        return error_;
    }
    if (!validate())
        return error_;
    return std::string();
}

bool
Parser::handleLine(const std::vector<Tok> &toks)
{
    const std::string &key = toks[0].text;
    if (out_.name.empty() && key != "scenario")
        return fail("first directive must be 'scenario <name>', got '" +
                    key + "'");
    if (key == "at") {
        if (section_ == Section::Cells)
            return fail("ops must precede cells");
        section_ = Section::Ops;
        return handleOp(toks);
    }
    if (key == "cell") {
        section_ = Section::Cells;
        return handleCell(toks);
    }
    if (section_ != Section::Header)
        return fail("header directive '" + key +
                    "' must precede ops and cells");
    return handleHeader(toks);
}

bool
Parser::handleHeader(const std::vector<Tok> &toks)
{
    const std::string &key = toks[0].text;
    if (!seenKeys_.insert(key).second)
        return fail("duplicate directive '" + key + "'");
    if (toks.size() != 2 && (key != "retrieval" || toks.size() < 2))
        return fail("directive '" + key + "' expects exactly one value");
    // `retrieval hnsw ef=64` is sugar for `retrieval hnsw,ef=64`; the
    // comma form is canonical (and the only form a cell override takes).
    std::string joined = toks[1].text;
    for (std::size_t i = 2; i < toks.size(); ++i) {
        if (toks[i].quoted)
            return fail("retrieval knobs must be bare key=value pairs");
        joined += "," + toks[i].text;
    }
    const std::string &value = joined;

    if (key == "scenario") {
        if (toks[1].quoted || value.empty())
            return fail("scenario name must be a bare identifier");
        for (const char c : value)
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_' && c != '-')
                return fail("scenario name may use [A-Za-z0-9_-] only, "
                            "got '" +
                            value + "'");
        out_.name = value;
        scenarioLine_ = lineNo_;
        return true;
    }
    if (key == "title") {
        if (!toks[1].quoted)
            return fail("title must be a quoted string");
        out_.title = value;
        return true;
    }
    if (key == "seed") {
        if (!parseU64(value, out_.seed))
            return fail("seed must be an unsigned integer, got '" +
                        value + "'");
        return true;
    }
    if (key == "mode") {
        if (!lookupEnum(kModes, value, out_.mode))
            return fail("unknown mode '" + value + "' (expected " +
                        enumChoices(kModes) + ")");
        return true;
    }
    if (key == "dataset") {
        if (!lookupEnum(kDatasets, value, out_.dataset))
            return fail("unknown dataset '" + value + "' (expected " +
                        enumChoices(kDatasets) + ")");
        return true;
    }
    if (key == "warm") {
        if (!parseSize(value, out_.warm))
            return fail("warm must be an unsigned integer, got '" +
                        value + "'");
        return true;
    }
    if (key == "requests") {
        if (!parseSize(value, out_.requests) || out_.requests == 0)
            return fail("requests must be a positive integer, got '" +
                        value + "'");
        if (sawDuration_)
            return fail("specify exactly one of requests/duration");
        sawRequests_ = true;
        return true;
    }
    if (key == "duration") {
        if (!parseDouble(value, out_.duration) || out_.duration <= 0.0)
            return fail("duration must be a positive number of "
                        "seconds, got '" +
                        value + "'");
        if (sawRequests_)
            return fail("specify exactly one of requests/duration");
        sawDuration_ = true;
        return true;
    }
    if (key == "rate") {
        if (!parseDouble(value, out_.rate) || out_.rate < 0.0)
            return fail("rate must be >= 0 requests/minute, got '" +
                        value + "'");
        return true;
    }
    if (key == "window") {
        if (!parseSize(value, out_.window) || out_.window == 0)
            return fail("window must be a positive request count, "
                        "got '" +
                        value + "'");
        return true;
    }
    if (key == "sampler-seed") {
        if (!parseU64(value, out_.samplerSeed))
            return fail("sampler-seed must be an unsigned integer, "
                        "got '" +
                        value + "'");
        return true;
    }
    if (key == "recovery-window") {
        if (!parseSize(value, out_.recoveryWindow) ||
            out_.recoveryWindow == 0)
            return fail("recovery-window must be a positive count, "
                        "got '" +
                        value + "'");
        return true;
    }
    if (key == "report") {
        if (!lookupEnum(kReports, value, out_.report))
            return fail("unknown report '" + value + "' (expected " +
                        enumChoices(kReports) + ")");
        return true;
    }

    bool known = false;
    std::string err;
    if (!applyParamField(out_.params, key, value, known, err))
        return fail(err);
    if (!known)
        return fail("unknown directive '" + key + "'");
    return true;
}

bool
Parser::handleOp(const std::vector<Tok> &toks)
{
    ScenarioOp op;
    op.line = lineNo_;
    if (toks.size() < 4)
        return fail("op needs at least 'at <time> <op> <arg>'");
    if (!parseDouble(toks[1].text, op.time) || op.time < 0.0)
        return fail("op time must be >= 0 seconds, got '" +
                    toks[1].text + "'");
    if (!out_.ops.empty() && op.time < out_.ops.back().time)
        return fail("op at t=" + fmtDouble(op.time) +
                    " precedes the previous op at t=" +
                    fmtDouble(out_.ops.back().time) +
                    " (ops must be time-ordered)");

    const std::string &verb = toks[2].text;
    const auto want = [&](std::size_t n, const char *usage) {
        if (toks.size() == n)
            return true;
        return fail(std::string("usage: at <time> ") + usage);
    };
    const auto keyword = [&](std::size_t i, const char *word) {
        if (toks[i].text == word)
            return true;
        return fail("expected '" + std::string(word) + "', got '" +
                    toks[i].text + "'");
    };
    const auto positiveDouble = [&](std::size_t i, const char *what,
                                    double &slot) {
        if (!parseDouble(toks[i].text, slot) || slot <= 0.0)
            return fail(std::string(what) + " must be > 0, got '" +
                        toks[i].text + "'");
        return true;
    };
    const auto positiveSize = [&](std::size_t i, const char *what,
                                  std::size_t &slot) {
        if (!parseSize(toks[i].text, slot) || slot == 0)
            return fail(std::string(what) +
                        " must be a positive integer, got '" +
                        toks[i].text + "'");
        return true;
    };

    if (verb == "rate") {
        op.kind = ScenarioOp::Kind::Rate;
        if (!want(4, "rate <requests/min>") ||
            !positiveDouble(3, "rate", op.rate))
            return false;
    } else if (verb == "ramp") {
        op.kind = ScenarioOp::Kind::Ramp;
        if (!want(9, "ramp to <rate> over <seconds> steps <n>") ||
            !keyword(3, "to") || !positiveDouble(4, "ramp rate", op.rate) ||
            !keyword(5, "over") ||
            !positiveDouble(6, "ramp window", op.duration) ||
            !keyword(7, "steps") || !positiveSize(8, "steps", op.steps))
            return false;
    } else if (verb == "flash") {
        op.kind = ScenarioOp::Kind::Flash;
        if (!want(6, "flash x<factor> for <seconds>"))
            return false;
        const std::string &xtok = toks[3].text;
        if (xtok.size() < 2 || xtok[0] != 'x' ||
            !parseDouble(xtok.substr(1), op.factor) || op.factor <= 0.0)
            return fail("flash factor must look like x<positive>, "
                        "got '" +
                        xtok + "'");
        if (!keyword(4, "for") ||
            !positiveDouble(5, "flash window", op.duration))
            return false;
    } else if (verb == "diurnal") {
        op.kind = ScenarioOp::Kind::Diurnal;
        if (!want(13, "diurnal base <rate> amp <rate> period <seconds> "
                      "for <seconds> steps <n>") ||
            !keyword(3, "base") ||
            !positiveDouble(4, "diurnal base", op.base) ||
            !keyword(5, "amp"))
            return false;
        if (!parseDouble(toks[6].text, op.amplitude) ||
            op.amplitude < 0.0)
            return fail("diurnal amp must be >= 0, got '" +
                        toks[6].text + "'");
        if (op.amplitude >= op.base)
            return fail("diurnal amp must stay below base (the rate "
                        "would reach zero)");
        if (!keyword(7, "period") ||
            !positiveDouble(8, "diurnal period", op.period) ||
            !keyword(9, "for") ||
            !positiveDouble(10, "diurnal window", op.duration) ||
            !keyword(11, "steps") ||
            !positiveSize(12, "steps", op.steps))
            return false;
    } else if (verb == "drift") {
        op.kind = ScenarioOp::Kind::Drift;
        if (!want(8, "drift to seed <seed> over <seconds>") ||
            !keyword(3, "to") || !keyword(4, "seed"))
            return false;
        if (!parseU64(toks[5].text, op.driftSeed))
            return fail("drift seed must be an unsigned integer, "
                        "got '" +
                        toks[5].text + "'");
        if (!keyword(6, "over") ||
            !positiveDouble(7, "drift window", op.duration))
            return false;
    } else if (verb == "region") {
        op.kind = ScenarioOp::Kind::Region;
        if (!want(6, "region <index> weight <w>") ||
            !positiveSize(3, "region index", op.region))
            return false;
        if (op.region > kMaxRegions)
            return fail("region index must be in [1, " +
                        fmtU64(kMaxRegions) + "], got " +
                        fmtU64(op.region));
        if (!keyword(4, "weight"))
            return false;
        if (!parseDouble(toks[5].text, op.weight) || op.weight < 0.0 ||
            op.weight > 1.0)
            return fail("region weight must be in [0, 1], got '" +
                        toks[5].text + "'");
    } else if (verb == "set") {
        op.kind = ScenarioOp::Kind::Knob;
        if (!want(5, "set mode|cache|replicas|ef|nprobe <value>"))
            return false;
        const std::string &target = toks[3].text;
        const std::string &value = toks[4].text;
        if (target == "mode") {
            op.knob = ScenarioKnob::MonitorMode;
            if (value == kKnobModeTokens[0])
                op.knobValue = 0.0;
            else if (value == kKnobModeTokens[1])
                op.knobValue = 1.0;
            else
                return fail("unknown monitor mode '" + value +
                            "' (expected throughput|quality)");
        } else if (target == "cache") {
            op.knob = ScenarioKnob::Cache;
            std::size_t capacity = 0;
            if (!positiveSize(4, "cache capacity", capacity))
                return false;
            op.knobValue = static_cast<double>(capacity);
        } else if (target == "replicas") {
            op.knob = ScenarioKnob::Replicas;
            std::size_t replicas = 0;
            if (!positiveSize(4, "replicas", replicas))
                return false;
            op.knobValue = static_cast<double>(replicas);
        } else if (target == "ef") {
            op.knob = ScenarioKnob::Ef;
            std::size_t ef = 0;
            if (!positiveSize(4, "ef", ef))
                return false;
            op.knobValue = static_cast<double>(ef);
        } else if (target == "nprobe") {
            op.knob = ScenarioKnob::Nprobe;
            std::size_t nprobe = 0;
            if (!positiveSize(4, "nprobe", nprobe))
                return false;
            op.knobValue = static_cast<double>(nprobe);
        } else {
            return fail("unknown knob '" + target +
                        "' (expected mode|cache|replicas|ef|nprobe)");
        }
    } else if (lookupEnum(kFaultVerbs, verb, op.fault)) {
        op.kind = ScenarioOp::Kind::Fault;
        if (!want(4, "kill|drain|rejoin <node>"))
            return false;
        if (!parseSize(toks[3].text, op.node))
            return fail("fault node must be an unsigned integer, "
                        "got '" +
                        toks[3].text + "'");
    } else {
        return fail("unknown op '" + verb + "'");
    }

    out_.ops.push_back(op);
    return true;
}

bool
Parser::handleCell(const std::vector<Tok> &toks)
{
    if (toks.size() < 2 || !toks[1].quoted)
        return fail("usage: cell \"<label>\" [key=value ...]");
    ScenarioCell cell;
    cell.label = toks[1].text;
    if (cell.label.empty())
        return fail("cell label must not be empty");
    for (const auto &existing : out_.cells)
        if (existing.label == cell.label)
            return fail("duplicate cell label \"" + cell.label + "\"");
    cell.params = out_.params;

    std::set<std::string> overridden;
    for (std::size_t i = 2; i < toks.size(); ++i) {
        if (toks[i].quoted)
            return fail("cell overrides must be bare key=value pairs");
        const std::string &pair = toks[i].text;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size())
            return fail("cell override must look like key=value, "
                        "got '" +
                        pair + "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "paper") {
            if (!cell.paper.empty())
                return fail("duplicate paper= annotation");
            cell.paper = value;
            continue;
        }
        if (!overridden.insert(key).second)
            return fail("duplicate cell override '" + key + "'");
        bool known = false;
        std::string err;
        if (!applyParamField(cell.params, key, value, known, err))
            return fail(err);
        if (!known)
            return fail("unknown cell override '" + key + "'");
    }
    // Canonical order for printing, regardless of source order.
    for (const char *key : kParamKeys)
        if (overridden.count(key))
            cell.overridden.push_back(key);
    out_.cells.push_back(std::move(cell));
    return true;
}

bool
Parser::validate()
{
    if (!sawRequests_ && !sawDuration_)
        return failAt(scenarioLine_,
                      "scenario needs a requests or duration directive");

    if (out_.mode == ScenarioMode::CacheStream) {
        if (!out_.ops.empty())
            return failAt(out_.ops.front().line,
                          "cache-stream scenarios take no ops");
        if (!sawRequests_)
            return failAt(scenarioLine_, "cache-stream scenarios are "
                                         "request-counted; use requests");
        if (out_.warm != 0)
            return failAt(scenarioLine_,
                          "cache-stream scenarios do not support warm");
        if (out_.report != ScenarioReport::HitCurve)
            return failAt(scenarioLine_, "cache-stream scenarios use "
                                         "report hit-curve");
    } else if (out_.report == ScenarioReport::HitCurve) {
        return failAt(scenarioLine_,
                      "report hit-curve requires mode cache-stream");
    }

    if (sawDuration_ && out_.rate <= 0.0)
        return failAt(scenarioLine_,
                      "duration-based scenarios need rate > 0");

    for (std::size_t i = 0; i < out_.cellCount(); ++i) {
        const auto cell = out_.cell(i);
        const bool needsSmall =
            cell.params.system == ScenarioSystem::MoDM ||
            cell.params.system == ScenarioSystem::StandaloneSmall;
        if (needsSmall && cell.params.small.empty())
            return failAt(scenarioLine_,
                          "cell \"" + cell.label + "\": system " +
                              enumToken(kSystems, cell.params.system) +
                              " needs a non-empty small list");
    }

    return validateArrivalOps() && validateMixOps() &&
           validateFaultOps() && validateKnobOps();
}

bool
Parser::validateArrivalOps()
{
    double shapedUntil = 0.0;
    for (const auto &op : out_.ops) {
        const bool arrival = op.kind == ScenarioOp::Kind::Rate ||
                             op.kind == ScenarioOp::Kind::Ramp ||
                             op.kind == ScenarioOp::Kind::Diurnal ||
                             op.kind == ScenarioOp::Kind::Flash;
        if (!arrival)
            continue;
        if (out_.rate <= 0.0)
            return failAt(op.line, "rate-shaping op in a batch "
                                   "(rate 0) scenario");
        if (op.kind == ScenarioOp::Kind::Flash)
            continue; // multiplicative; may overlap anything
        if (op.time < shapedUntil)
            return failAt(op.line,
                          "rate op inside the previous shaped window "
                          "(which ends at t=" +
                              fmtDouble(shapedUntil) + ")");
        if (op.kind != ScenarioOp::Kind::Rate)
            shapedUntil = op.time + op.duration;
    }
    return true;
}

bool
Parser::validateMixOps()
{
    bool sawDrift = false;
    for (const auto &op : out_.ops) {
        if (op.kind != ScenarioOp::Kind::Drift)
            continue;
        if (sawDrift)
            return failAt(op.line, "at most one drift op per scenario");
        sawDrift = true;
    }
    return true;
}

bool
Parser::validateFaultOps()
{
    if (!out_.hasFaults())
        return true;
    for (const auto &cell : out_.cells)
        for (const auto &key : cell.overridden)
            if (key == "nodes")
                return failAt(scenarioLine_,
                              "cell \"" + cell.label +
                                  "\" may not override nodes in a "
                                  "scenario with fault ops");
    // Mirror serving::validatePlan's liveness tracking so authoring
    // errors surface here as file:line diagnostics instead of panics
    // at run startup.
    const std::size_t nodes = out_.params.nodes;
    std::vector<bool> up(nodes, true);
    std::vector<bool> admitting(nodes, true);
    std::size_t admittingCount = nodes;
    for (const auto &op : out_.ops) {
        if (op.kind != ScenarioOp::Kind::Fault)
            continue;
        if (op.node >= nodes)
            return failAt(op.line, "fault targets node " +
                                       fmtU64(op.node) + " of " +
                                       fmtU64(nodes));
        switch (op.fault) {
          case ScenarioFault::Kill:
            if (!up[op.node])
                return failAt(op.line, "kill of node " +
                                           fmtU64(op.node) +
                                           " which is already down");
            if (admitting[op.node]) {
                if (admittingCount <= 1)
                    return failAt(op.line,
                                  "fault plan would leave no "
                                  "admitting node");
                admitting[op.node] = false;
                --admittingCount;
            }
            up[op.node] = false;
            break;
          case ScenarioFault::Drain:
            if (!up[op.node])
                return failAt(op.line, "drain of node " +
                                           fmtU64(op.node) +
                                           " which is down");
            if (!admitting[op.node])
                return failAt(op.line, "node " + fmtU64(op.node) +
                                           " is already draining");
            if (admittingCount <= 1)
                return failAt(op.line, "fault plan would leave no "
                                       "admitting node");
            admitting[op.node] = false;
            --admittingCount;
            break;
          case ScenarioFault::Rejoin:
            if (admitting[op.node])
                return failAt(op.line, "rejoin of node " +
                                           fmtU64(op.node) +
                                           " which is already up");
            up[op.node] = true;
            admitting[op.node] = true;
            ++admittingCount;
            break;
        }
    }
    return true;
}

bool
Parser::validateKnobOps()
{
    for (const auto &op : out_.ops) {
        if (op.kind != ScenarioOp::Kind::Knob)
            continue;
        for (std::size_t i = 0; i < out_.cellCount(); ++i) {
            const auto cell = out_.cell(i);
            if (op.knob == ScenarioKnob::Replicas) {
                if (cell.params.partitioning !=
                    ScenarioPartitioning::Replicated)
                    return failAt(op.line,
                                  "replicas knob requires partitioning "
                                  "replicated (cell \"" +
                                      cell.label + "\" is sharded)");
                if (op.knobValue >
                    static_cast<double>(cell.params.nodes))
                    return failAt(op.line,
                                  "replicas knob exceeds the " +
                                      fmtU64(cell.params.nodes) +
                                      " nodes of cell \"" + cell.label +
                                      "\"");
            } else if (op.knob == ScenarioKnob::Ef) {
                if (cell.params.retrieval != ScenarioRetrieval::Hnsw)
                    return failAt(
                        op.line,
                        "ef knob requires retrieval hnsw (cell \"" +
                            cell.label + "\" uses " +
                            enumToken(kRetrievals,
                                      cell.params.retrieval) +
                            ")");
            } else if (op.knob == ScenarioKnob::Nprobe) {
                if (cell.params.retrieval != ScenarioRetrieval::Ivf &&
                    cell.params.retrieval != ScenarioRetrieval::IvfPq)
                    return failAt(
                        op.line,
                        "nprobe knob requires an ivf retrieval "
                        "backend (cell \"" +
                            cell.label + "\" uses " +
                            enumToken(kRetrievals,
                                      cell.params.retrieval) +
                            ")");
            }
        }
    }
    return true;
}

std::unique_ptr<TraceGenerator>
makeGenerator(ScenarioDataset dataset, std::uint64_t seed)
{
    if (dataset == ScenarioDataset::DiffusionDB)
        return makeDiffusionDB(seed);
    return makeMJHQ(seed);
}

} // namespace

// ---------------------------------------------------------------------
// Scenario methods.
// ---------------------------------------------------------------------

ScenarioCell
Scenario::cell(std::size_t i) const
{
    if (cells.empty()) {
        MODM_ASSERT(i == 0, "scenario has one implicit cell");
        ScenarioCell implicit;
        implicit.label = name;
        implicit.params = params;
        return implicit;
    }
    MODM_ASSERT(i < cells.size(), "cell index %zu of %zu", i,
                cells.size());
    return cells[i];
}

bool
Scenario::mixesSources() const
{
    for (const auto &op : ops)
        if (op.kind == ScenarioOp::Kind::Drift ||
            op.kind == ScenarioOp::Kind::Region)
            return true;
    return false;
}

bool
Scenario::hasFaults() const
{
    for (const auto &op : ops)
        if (op.kind == ScenarioOp::Kind::Fault)
            return true;
    return false;
}

bool
Scenario::hasKnobs() const
{
    for (const auto &op : ops)
        if (op.kind == ScenarioOp::Kind::Knob)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Parse / print / digest.
// ---------------------------------------------------------------------

std::string
parseScenario(std::istream &in, const std::string &filename,
              Scenario &out)
{
    Parser parser(in, filename, out);
    return parser.run();
}

Scenario
parseScenarioOrDie(std::istream &in, const std::string &filename)
{
    Scenario scenario;
    const std::string error = parseScenario(in, filename, scenario);
    if (!error.empty())
        fatal("%s", error.c_str());
    return scenario;
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open scenario file '%s'", path.c_str());
    return parseScenarioOrDie(in, path);
}

void
printScenario(const Scenario &scenario, std::ostream &out)
{
    out << "scenario " << scenario.name << "\n";
    out << "seed " << fmtU64(scenario.seed) << "\n";
    out << "mode " << enumToken(kModes, scenario.mode) << "\n";
    out << "dataset " << enumToken(kDatasets, scenario.dataset) << "\n";
    for (const char *key : kParamKeys)
        out << key << " " << paramValueToken(scenario.params, key)
            << "\n";
    out << "warm " << fmtU64(scenario.warm) << "\n";
    if (scenario.requests > 0)
        out << "requests " << fmtU64(scenario.requests) << "\n";
    else
        out << "duration " << fmtDouble(scenario.duration) << "\n";
    out << "rate " << fmtDouble(scenario.rate) << "\n";
    out << "window " << fmtU64(scenario.window) << "\n";
    out << "sampler-seed " << fmtU64(scenario.samplerSeed) << "\n";
    out << "recovery-window " << fmtU64(scenario.recoveryWindow) << "\n";
    out << "report " << enumToken(kReports, scenario.report) << "\n";
    if (!scenario.title.empty())
        out << "title \"" << scenario.title << "\"\n";
    if (!scenario.ops.empty()) {
        out << "\n";
        for (const auto &op : scenario.ops)
            out << opLine(op) << "\n";
    }
    if (!scenario.cells.empty()) {
        out << "\n";
        for (const auto &cell : scenario.cells) {
            out << "cell \"" << cell.label << "\"";
            for (const auto &key : cell.overridden)
                out << " " << key << "="
                    << paramValueToken(cell.params, key);
            if (!cell.paper.empty())
                out << " paper=" << cell.paper;
            out << "\n";
        }
    }
}

std::string
canonicalScenario(const Scenario &scenario)
{
    std::ostringstream out;
    printScenario(scenario, out);
    return out.str();
}

std::uint64_t
fnv1a64(std::string_view data, std::uint64_t basis)
{
    std::uint64_t hash = basis;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
scenarioDigest(const Scenario &scenario)
{
    return fnv1a64(canonicalScenario(scenario));
}

std::vector<std::string>
scenarioOpLines(const Scenario &scenario)
{
    std::vector<std::string> lines;
    lines.reserve(scenario.ops.size());
    for (const auto &op : scenario.ops)
        lines.push_back(opLine(op));
    return lines;
}

// ---------------------------------------------------------------------
// Rate-schedule compilation.
// ---------------------------------------------------------------------

std::vector<RateSegment>
scenarioRateSchedule(const Scenario &scenario)
{
    MODM_ASSERT(scenario.rate > 0.0,
                "rate schedule needs a positive base rate");

    // The base-rate curve as (start, rate) pieces; later pieces win at
    // equal starts. Flash windows multiply on top.
    std::vector<std::pair<double, double>> pieces = {
        {0.0, scenario.rate}};
    struct FlashWindow
    {
        double start;
        double end;
        double factor;
    };
    std::vector<FlashWindow> flashes;
    double current = scenario.rate;
    constexpr double kTau = 6.283185307179586;

    for (const auto &op : scenario.ops) {
        switch (op.kind) {
          case ScenarioOp::Kind::Rate:
            pieces.emplace_back(op.time, op.rate);
            current = op.rate;
            break;
          case ScenarioOp::Kind::Ramp:
            for (std::size_t k = 0; k < op.steps; ++k) {
                const double start =
                    op.time + op.duration *
                                  static_cast<double>(k) /
                                  static_cast<double>(op.steps);
                const double frac = (static_cast<double>(k) + 0.5) /
                                    static_cast<double>(op.steps);
                pieces.emplace_back(start,
                                    current + (op.rate - current) * frac);
            }
            pieces.emplace_back(op.time + op.duration, op.rate);
            current = op.rate;
            break;
          case ScenarioOp::Kind::Diurnal:
            for (std::size_t k = 0; k < op.steps; ++k) {
                const double start =
                    op.time + op.duration *
                                  static_cast<double>(k) /
                                  static_cast<double>(op.steps);
                const double mid =
                    start + op.duration /
                                (2.0 * static_cast<double>(op.steps));
                pieces.emplace_back(
                    start, op.base + op.amplitude *
                                         std::sin(kTau * (mid - op.time) /
                                                  op.period));
            }
            pieces.emplace_back(op.time + op.duration, op.base);
            current = op.base;
            break;
          case ScenarioOp::Kind::Flash:
            flashes.push_back(
                {op.time, op.time + op.duration, op.factor});
            break;
          default:
            break;
        }
    }

    std::vector<double> bounds;
    for (const auto &piece : pieces)
        bounds.push_back(piece.first);
    for (const auto &flash : flashes) {
        bounds.push_back(flash.start);
        bounds.push_back(flash.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());

    const auto rateAt = [&](double t) {
        double rate = pieces.front().second;
        for (const auto &piece : pieces)
            if (piece.first <= t)
                rate = piece.second;
        for (const auto &flash : flashes)
            if (flash.start <= t && t < flash.end)
                rate *= flash.factor;
        return rate;
    };

    std::vector<RateSegment> segments;
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        const double duration = bounds[i + 1] - bounds[i];
        if (duration <= 0.0)
            continue;
        segments.push_back({duration, rateAt(bounds[i])});
    }
    // Terminal segment; PiecewiseArrivals holds the last rate forever,
    // so the duration is nominal.
    segments.push_back({60.0, rateAt(bounds.back())});
    return segments;
}

// ---------------------------------------------------------------------
// Workload building.
// ---------------------------------------------------------------------

ScenarioWorkload
buildScenarioWorkload(const Scenario &scenario)
{
    ScenarioWorkload workload;
    auto base = makeGenerator(scenario.dataset, scenario.seed);
    workload.warm.reserve(scenario.warm);
    for (std::size_t i = 0; i < scenario.warm; ++i)
        workload.warm.push_back(base->next());

    // Source 0 is the base generator; regional generators and the
    // drift target follow. Single-source scenarios never touch the
    // mixing rng, so their traces match the legacy bundle helpers
    // byte for byte.
    std::vector<std::unique_ptr<TraceGenerator>> sources;
    sources.push_back(std::move(base));
    std::vector<std::size_t> regionSource(kMaxRegions + 1, 0);
    std::size_t driftSource = 0;
    double driftStart = 0.0;
    double driftDuration = 0.0;
    const bool mixed = scenario.mixesSources();
    if (mixed) {
        for (const auto &op : scenario.ops) {
            if (op.kind == ScenarioOp::Kind::Region &&
                regionSource[op.region] == 0) {
                regionSource[op.region] = sources.size();
                sources.push_back(makeGenerator(
                    scenario.dataset,
                    mix64(scenario.seed ^
                          (0x7265676e5aULL + op.region))));
            } else if (op.kind == ScenarioOp::Kind::Drift) {
                driftSource = sources.size();
                sources.push_back(
                    makeGenerator(scenario.dataset, op.driftSeed));
                driftStart = op.time;
                driftDuration = op.duration;
            }
        }
    }

    Rng mixRng(mix64(scenario.seed ^ 0x6d69780aULL));
    std::vector<double> weights;
    const auto draw = [&](double t) {
        if (!mixed)
            return sources[0]->next();
        weights.assign(sources.size(), 0.0);
        weights[0] = 1.0; // the base stream keeps unit share
        for (const auto &op : scenario.ops) {
            if (op.time > t)
                break;
            if (op.kind == ScenarioOp::Kind::Region)
                weights[regionSource[op.region]] = op.weight;
        }
        if (driftSource != 0 && t >= driftStart) {
            const double p =
                std::min(1.0, (t - driftStart) / driftDuration);
            for (auto &w : weights)
                w *= 1.0 - p;
            weights[driftSource] = p;
        }
        double total = 0.0;
        for (const double w : weights)
            total += w;
        double u = mixRng.uniform() * total;
        std::size_t pick = 0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            u -= weights[i];
            if (u < 0.0) {
                pick = i;
                break;
            }
            if (weights[i] > 0.0)
                pick = i; // guards the u == total edge
        }
        return sources[pick]->next();
    };

    std::uint64_t nextId = scenario.warm;
    const auto append = [&](double t) {
        Request request;
        request.prompt = draw(t);
        request.prompt.id = nextId++;
        request.arrival = t;
        workload.trace.push_back(std::move(request));
    };

    if (scenario.rate <= 0.0) {
        workload.trace.reserve(scenario.requests);
        for (std::size_t i = 0; i < scenario.requests; ++i)
            append(0.0);
        return workload;
    }

    PiecewiseArrivals arrivals(scenarioRateSchedule(scenario));
    Rng arrivalRng(scenario.seed ^ 0xa441a15ULL);
    if (scenario.requests > 0) {
        workload.trace.reserve(scenario.requests);
        for (std::size_t i = 0; i < scenario.requests; ++i)
            append(arrivals.next(arrivalRng));
    } else {
        while (true) {
            const double t = arrivals.next(arrivalRng);
            if (t > scenario.duration)
                break;
            append(t);
        }
    }
    return workload;
}

} // namespace modm::workload

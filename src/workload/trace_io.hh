/**
 * @file
 * Trace serialization: save and load request traces as CSV so
 * experiments can be frozen, shared, and replayed exactly — the
 * equivalent of the paper's replaying DiffusionDB prompts "in their
 * original arrival order".
 *
 * Format: a header line, then one row per request with arrival time,
 * ids, surface text (quoted), and the latent ground-truth vectors
 * (semicolon-separated floats) that the synthetic substrate needs.
 */

#ifndef MODM_WORKLOAD_TRACE_IO_HH
#define MODM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "src/workload/trace.hh"

namespace modm::workload {

/** Write a trace as CSV. */
void saveTrace(const Trace &trace, std::ostream &out);

/** Write a trace to a file; fatal() on I/O failure. */
void saveTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace written by saveTrace; panics on malformed input from
 * this library, fatal() on files that are not trace CSVs.
 */
Trace loadTrace(std::istream &in);

/** Read a trace from a file; fatal() on I/O failure. */
Trace loadTraceFile(const std::string &path);

} // namespace modm::workload

#endif // MODM_WORKLOAD_TRACE_IO_HH

/**
 * @file
 * Trace serialization: save and load request traces as CSV so
 * experiments can be frozen, shared, and replayed exactly — the
 * equivalent of the paper's replaying DiffusionDB prompts "in their
 * original arrival order".
 *
 * Format: a header line, then one row per request with arrival time,
 * ids, surface text (quoted), and the latent ground-truth vectors
 * (semicolon-separated floats) that the synthetic substrate needs.
 *
 * Annotated traces additionally carry the scenario event timeline
 * (fault ops, mid-trace knob changes, rate shaping) as "#@ <op>" lines
 * between the header and the rows — each op in the scenario DSL's
 * canonical spelling, so a frozen trace records not just the requests
 * but the scripted experiment around them. loadTrace() skips the
 * annotation lines, so an annotated trace replays as a plain one.
 */

#ifndef MODM_WORKLOAD_TRACE_IO_HH
#define MODM_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "src/workload/trace.hh"

namespace modm::workload {

/** A trace plus the scripted event timeline it was built under. */
struct AnnotatedTrace
{
    Trace trace;
    /** Canonical scenario op lines ("at <t> kill 1", ...), in order. */
    std::vector<std::string> events;
};

/** Write a trace as CSV. */
void saveTrace(const Trace &trace, std::ostream &out);

/** Write a trace to a file; fatal() on I/O failure. */
void saveTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace written by saveTrace; panics on malformed input from
 * this library, fatal() on files that are not trace CSVs.
 */
Trace loadTrace(std::istream &in);

/** Read a trace from a file; fatal() on I/O failure. */
Trace loadTraceFile(const std::string &path);

/**
 * Write a trace with its event timeline: "#@ <op>" annotation lines
 * (one per event, in order) after the CSV header. Event strings must
 * be single lines; typically scenarioOpLines() output.
 */
void saveAnnotatedTrace(const AnnotatedTrace &annotated,
                        std::ostream &out);

/** Write an annotated trace to a file; fatal() on I/O failure. */
void saveAnnotatedTraceFile(const AnnotatedTrace &annotated,
                            const std::string &path);

/**
 * Parse a trace with its "#@" event annotations (an unannotated trace
 * loads with an empty event list). Same error discipline as
 * loadTrace().
 */
AnnotatedTrace loadAnnotatedTrace(std::istream &in);

/** Read an annotated trace from a file; fatal() on I/O failure. */
AnnotatedTrace loadAnnotatedTraceFile(const std::string &path);

} // namespace modm::workload

#endif // MODM_WORKLOAD_TRACE_IO_HH

/**
 * @file
 * Prompt and request records.
 *
 * A Prompt carries both a surface text (what a user typed) and the latent
 * ground truth the synthetic substrate is built on: the *visual concept*
 * the user wants to see and the *lexical style* of how they phrased it.
 * The serving system itself never reads the latents — it only sees
 * embeddings produced by the synthetic CLIP towers — but the evaluation
 * metrics use them as ground truth, the same way the paper uses held-out
 * reference generations.
 */

#ifndef MODM_WORKLOAD_PROMPT_HH
#define MODM_WORKLOAD_PROMPT_HH

#include <cstdint>
#include <string>

#include "src/common/vec.hh"

namespace modm::workload {

/** One user prompt. */
struct Prompt
{
    /** Unique id within a trace. */
    std::uint64_t id = 0;
    /** Surface text. */
    std::string text;
    /** Ground-truth visual concept (unit vector). */
    Vec visualConcept;
    /** Lexical-style component (unit vector). */
    Vec lexicalStyle;
    /** Topic the prompt was drawn from. */
    std::uint32_t topicId = 0;
    /** Synthetic user id. */
    std::uint32_t userId = 0;
    /** Session id; prompts in one session iterate on one concept. */
    std::uint64_t sessionId = 0;
};

/** A prompt with an arrival timestamp (seconds of simulated time). */
struct Request
{
    Prompt prompt;
    double arrival = 0.0;
};

} // namespace modm::workload

#endif // MODM_WORKLOAD_PROMPT_HH

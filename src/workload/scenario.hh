/**
 * @file
 * Scenario DSL: declarative, seeded workload + experiment scripts.
 *
 * Every workload we study used to be a hard-coded C++ grid in bench/;
 * scenario diversity cost a recompile. A Scenario is the data-file
 * equivalent: a line-oriented header (name, seed, traffic shape,
 * cluster/cache/retrieval knobs), an ordered op timeline (arrival
 * ramps, diurnal cycles, flash crowds, topic drift, regional skew,
 * scripted node faults, and knob changes at time t), and a cell list
 * (the sweep axis: per-cell overrides of the header knobs).
 *
 * Scenarios are *reviewable data*: parsing is strict (every error is
 * reported as "file:line: message", never an assert or a silent
 * default), re-serialization is canonical (parse -> print -> parse is
 * a fixpoint), and scenarioDigest() is an FNV-1a hash of the canonical
 * text, so two scenarios are semantically equal iff their digests
 * match. bench/run_scenario executes any scenario file through the
 * sweep engine; the scenario-goldens CI job pins every checked-in
 * scenario's digest and output.
 *
 * This module is pure workload: it owns the grammar and trace
 * construction. Mapping a scenario onto a ServingConfig (presets,
 * fault plans, knob plans) lives in src/serving/scenario_exec.hh so
 * the workload layer stays independent of the serving stack.
 */

#ifndef MODM_WORKLOAD_SCENARIO_HH
#define MODM_WORKLOAD_SCENARIO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/workload/trace.hh"

namespace modm::workload {

/** How a scenario executes (what run_scenario does with a cell). */
enum class ScenarioMode
{
    Serving,     ///< full ServingSystem run over the scenario trace
    CacheStream, ///< streamed cache simulation (Fig. 6 fidelity)
};

/** Which prompt-stream generator feeds the scenario. */
enum class ScenarioDataset
{
    DiffusionDB,
    MJHQ,
};

/** Serving policy of a cell (mirrors serving::SystemKind). */
enum class ScenarioSystem
{
    MoDM,
    Vanilla,
    Nirvana,
    Pinecone,
    StandaloneSmall,
};

/** Diffusion model selector (mirrors the diffusion::ModelSpec set). */
enum class ScenarioModel
{
    Sd35Large,
    Flux1Dev,
    Sdxl,
    Sana,
    Sd35Turbo,
};

/** GPU selector. */
enum class ScenarioGpu
{
    A40,
    MI210,
};

/** Cache eviction selector. */
enum class ScenarioEviction
{
    Fifo,
    Lru,
    Utility,
};

/** Request routing selector (mirrors serving::RoutingPolicy). */
enum class ScenarioRouting
{
    RoundRobin,
    ConsistentHash,
    LeastOutstanding,
    BoundedLoad,
};

/** Cache partitioning selector. */
enum class ScenarioPartitioning
{
    Sharded,
    Replicated,
};

/** Retrieval backend selector. */
enum class ScenarioRetrieval
{
    Flat,
    Ivf,
    Hnsw,
    IvfPq,
};

/** Which table run_scenario renders. */
enum class ScenarioReport
{
    Table,    ///< generic serving table, one row per cell
    HitCurve, ///< windowed hit-rate curve, one column per cell
    Energy,   ///< energy/request vs the first cell (Fig. 18 format)
};

/** Scripted node fault (mirrors serving::FaultKind). */
enum class ScenarioFault
{
    Kill,
    Drain,
    Rejoin,
};

/** Runtime-adjustable serving knob (mirrors serving::KnobTarget). */
enum class ScenarioKnob
{
    MonitorMode, ///< value: 0 = throughput, 1 = quality
    Cache,       ///< cluster-wide cache capacity (entries)
    Replicas,    ///< replication factor under replicated partitioning
    Ef,          ///< retrieval efSearch (hnsw backend only)
    Nprobe,      ///< retrieval nprobe (ivf / ivf-pq backends only)
};

/** One timeline entry; field meaning depends on kind. */
struct ScenarioOp
{
    enum class Kind
    {
        Rate,    ///< base rate becomes `rate` from `time` on
        Ramp,    ///< base rate ramps to `rate` over `duration`, `steps`
        Flash,   ///< rate multiplied by `factor` during [time, +dur)
        Diurnal, ///< base + amp * sin over [time, +dur), `steps` segs
        Drift,   ///< prompt stream crossfades to seed over [time, +dur)
        Region,  ///< regional generator `region` weight set to `weight`
        Fault,   ///< node fault at `time`
        Knob,    ///< serving knob change at `time`
    };

    Kind kind = Kind::Rate;
    /** Virtual time (seconds) the op starts. */
    double time = 0.0;
    /** Rate target (requests/minute): Rate, Ramp. */
    double rate = 0.0;
    /** Window length (seconds): Ramp, Flash, Diurnal, Drift. */
    double duration = 0.0;
    /** Discretization segments: Ramp, Diurnal. */
    std::size_t steps = 0;
    /** Rate multiplier: Flash. */
    double factor = 1.0;
    /** Sinusoid parameters: Diurnal. */
    double base = 0.0;
    double amplitude = 0.0;
    double period = 0.0;
    /** Target generator seed: Drift. */
    std::uint64_t driftSeed = 0;
    /** Regional generator index (>= 1): Region. */
    std::size_t region = 0;
    /** Mixture weight in [0, 1]: Region. */
    double weight = 0.0;
    /** Fault target and kind: Fault. */
    std::size_t node = 0;
    ScenarioFault fault = ScenarioFault::Kill;
    /** Knob target and value: Knob. */
    ScenarioKnob knob = ScenarioKnob::Cache;
    double knobValue = 0.0;
    /** 1-based source line (0 for programmatically built ops). */
    int line = 0;
};

/** The per-cell system knobs (header defaults, overridable per cell). */
struct ScenarioParams
{
    ScenarioSystem system = ScenarioSystem::MoDM;
    ScenarioModel large = ScenarioModel::Sd35Large;
    /** Small-model escalation list; empty for baselines without one. */
    std::vector<ScenarioModel> small = {ScenarioModel::Sdxl};
    std::size_t workers = 4;
    ScenarioGpu gpu = ScenarioGpu::A40;
    std::size_t cache = 10000;
    ScenarioEviction eviction = ScenarioEviction::Fifo;
    std::size_t nodes = 1;
    ScenarioRouting routing = ScenarioRouting::RoundRobin;
    ScenarioPartitioning partitioning = ScenarioPartitioning::Sharded;
    std::size_t replicas = 2;
    ScenarioRetrieval retrieval = ScenarioRetrieval::Flat;
    /**
     * Retrieval search knobs, attached to the retrieval key as
     * `retrieval hnsw,ef=64` (header) / `retrieval=ivf-pq,nprobe=16`
     * (cell override); the header also accepts the space-separated
     * sugar `retrieval hnsw ef=64`. 0 = backend default, printed
     * without a suffix so pre-existing scenarios keep their digests.
     * ef applies to hnsw only; nprobe to ivf / ivf-pq only.
     */
    std::size_t retrievalEf = 0;
    std::size_t retrievalNprobe = 0;
};

/** One sweep cell: a labeled override of the header params. */
struct ScenarioCell
{
    /** Row/column label in the rendered table. */
    std::string label;
    /** Reference annotation (the Energy report's "paper" column). */
    std::string paper;
    /** Fully resolved params (header + overrides). */
    ScenarioParams params;
    /** Which keys the cell overrode (canonical print emits only these). */
    std::vector<std::string> overridden;
};

/** A parsed scenario. */
struct Scenario
{
    /** Identifier ([A-Za-z0-9_-]+). */
    std::string name;
    /** Experiment seed (generators, arrivals, serving substrate). */
    std::uint64_t seed = 42;
    ScenarioMode mode = ScenarioMode::Serving;
    ScenarioDataset dataset = ScenarioDataset::DiffusionDB;
    /** Header defaults for every cell. */
    ScenarioParams params;
    /** Warm-up prompts admitted before the trace replays. */
    std::size_t warm = 0;
    /** Trace length; exactly one of requests/duration is set. */
    std::size_t requests = 0;
    /** Trace duration in seconds (alternative to requests). */
    double duration = 0.0;
    /** Base Poisson rate (requests/minute); 0 = batch (all at t=0). */
    double rate = 0.0;
    /** Hit-rate report window, in requests (CacheStream / HitCurve). */
    std::size_t window = 2000;
    /** Sampler seed of the CacheStream substrate (Fig. 6 uses 7). */
    std::uint64_t samplerSeed = 7;
    /** Failover-analysis trailing window (fault scenarios). */
    std::size_t recoveryWindow = 100;
    ScenarioReport report = ScenarioReport::Table;
    /** Rendered table title (empty = derived from the name). */
    std::string title;
    /** Ordered, time-sorted op timeline. */
    std::vector<ScenarioOp> ops;
    /** Sweep cells; empty = one implicit cell labeled `name`. */
    std::vector<ScenarioCell> cells;

    /** Cell count run_scenario executes (>= 1). */
    std::size_t cellCount() const
    {
        return cells.empty() ? 1 : cells.size();
    }

    /** Cell `i`, materializing the implicit cell when none declared. */
    ScenarioCell cell(std::size_t i) const;

    /** True when any op mixes prompt sources (drift / regions). */
    bool mixesSources() const;

    /** True when any op is a fault event. */
    bool hasFaults() const;

    /** True when any op is a knob change. */
    bool hasKnobs() const;
};

/**
 * Parse a scenario. On success returns an empty string and fills
 * `out`; on failure returns a "<filename>:<line>: message" diagnostic
 * and leaves `out` unspecified. Never asserts on malformed input.
 */
std::string parseScenario(std::istream &in, const std::string &filename,
                          Scenario &out);

/** Parse or fatal() with the file:line diagnostic. */
Scenario parseScenarioOrDie(std::istream &in,
                            const std::string &filename);

/** Load a scenario file; fatal() on I/O or parse errors. */
Scenario loadScenarioFile(const std::string &path);

/**
 * Canonical serialization: every header field (defaults included) in
 * fixed order, then ops, then cells. parse(print(s)) reproduces the
 * same canonical text (the fixpoint pinned by the test suite), so
 * canonical scenarios diff cleanly under review.
 */
std::string canonicalScenario(const Scenario &scenario);

/** Write the canonical serialization. */
void printScenario(const Scenario &scenario, std::ostream &out);

/** FNV-1a 64-bit hash (the digest primitive, exposed for reuse). */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t basis = 0xcbf29ce484222325ULL);

/**
 * Semantic digest: FNV-1a over the canonical serialization. Stable
 * across formatting, comments, and header-line order of the source
 * file; changes iff the scenario's meaning changes.
 */
std::uint64_t scenarioDigest(const Scenario &scenario);

/** Canonical op lines only (what trace_io event annotation stores). */
std::vector<std::string> scenarioOpLines(const Scenario &scenario);

/**
 * Compile the arrival ops (rate / ramp / flash / diurnal) into the
 * piecewise-constant schedule PiecewiseArrivals replays: base-rate
 * curve segments overlaid with multiplicative flash windows. The final
 * segment's rate holds forever. Only valid for rate > 0 scenarios.
 */
std::vector<RateSegment> scenarioRateSchedule(const Scenario &scenario);

/** Warm prompts plus the request trace one scenario replays. */
struct ScenarioWorkload
{
    std::vector<Prompt> warm;
    Trace trace;
};

/**
 * Build the scenario's workload: warm prompts come from the base
 * generator; trace prompts come from the (possibly drift/region-mixed)
 * generator set, timestamped by the compiled rate schedule (or all at
 * t=0 when rate is 0). Prompt ids are stamped sequentially across
 * warm + trace, which for a single-source scenario is exactly the
 * generator's own numbering — single-source workloads are
 * byte-identical to the legacy bench::batchBundle / poissonBundle
 * helpers (arrival rng seed = scenario seed ^ 0xa441a15).
 */
ScenarioWorkload buildScenarioWorkload(const Scenario &scenario);

} // namespace modm::workload

#endif // MODM_WORKLOAD_SCENARIO_HH

#include "src/workload/arrivals.hh"

#include "src/common/log.hh"

namespace modm::workload {

PoissonArrivals::PoissonArrivals(double rate_per_min)
    : ratePerMin_(rate_per_min)
{
    MODM_ASSERT(rate_per_min > 0.0, "arrival rate must be positive");
}

double
PoissonArrivals::next(Rng &rng)
{
    now_ += rng.exponential(ratePerMin_ / 60.0);
    return now_;
}

PiecewiseArrivals::PiecewiseArrivals(std::vector<RateSegment> segments)
    : segments_(std::move(segments))
{
    MODM_ASSERT(!segments_.empty(), "need at least one rate segment");
    for (const auto &seg : segments_) {
        MODM_ASSERT(seg.duration > 0.0, "segment duration must be positive");
        MODM_ASSERT(seg.ratePerMin > 0.0, "segment rate must be positive");
    }
}

double
PiecewiseArrivals::rateAt(double time) const
{
    double start = 0.0;
    for (const auto &seg : segments_) {
        if (time < start + seg.duration)
            return seg.ratePerMin;
        start += seg.duration;
    }
    return segments_.back().ratePerMin;
}

double
PiecewiseArrivals::totalDuration() const
{
    double total = 0.0;
    for (const auto &seg : segments_)
        total += seg.duration;
    return total;
}

double
PiecewiseArrivals::next(Rng &rng)
{
    // Thinning-free approach: advance with the rate in effect at the
    // current time. Exact at segment interiors; the boundary error is at
    // most one inter-arrival gap, negligible for minutes-long segments.
    const double rate = rateAt(now_);
    now_ += rng.exponential(rate / 60.0);
    return now_;
}

} // namespace modm::workload

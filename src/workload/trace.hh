/**
 * @file
 * Trace assembly: pairs a prompt stream with an arrival process to form
 * the request traces replayed by the serving experiments.
 */

#ifndef MODM_WORKLOAD_TRACE_HH
#define MODM_WORKLOAD_TRACE_HH

#include <cstddef>
#include <vector>

#include "src/common/rng.hh"
#include "src/workload/arrivals.hh"
#include "src/workload/generator.hh"
#include "src/workload/prompt.hh"

namespace modm::workload {

/** An ordered request trace. */
using Trace = std::vector<Request>;

/**
 * Build a trace of n requests: prompts from the generator, timestamps
 * from the arrival process.
 */
Trace buildTrace(TraceGenerator &generator, ArrivalProcess &arrivals,
                 std::size_t n, Rng &rng);

/**
 * Build a trace covering a fixed duration (seconds) instead of a fixed
 * request count; used by the rate-schedule experiments.
 */
Trace buildTraceForDuration(TraceGenerator &generator,
                            ArrivalProcess &arrivals, double duration,
                            Rng &rng);

/**
 * Build a zero-load trace: n prompts all arriving at time zero. The
 * throughput experiments (paper §6, "ignoring timestamps") use this to
 * measure maximum sustained throughput with the system always busy.
 */
Trace buildBatchTrace(TraceGenerator &generator, std::size_t n);

} // namespace modm::workload

#endif // MODM_WORKLOAD_TRACE_HH

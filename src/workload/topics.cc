#include "src/workload/topics.hh"

#include "src/common/log.hh"

namespace modm::workload {

namespace {

// Small built-in vocabulary used to synthesise plausible prompt text.
// The serving system never parses these words; they exist so the
// tokenizer / hashing-encoder paths operate on realistic strings.
const char *const kSubjects[] = {
    "dragon", "castle", "forest", "portrait", "cyberpunk", "city",
    "ocean", "mountain", "astronaut", "cat", "dog", "warrior", "robot",
    "garden", "sunset", "galaxy", "village", "knight", "temple", "river",
    "desert", "phoenix", "wizard", "samurai", "lighthouse", "waterfall",
    "island", "butterfly", "raven", "wolf", "tiger", "fox",
};

const char *const kModifiers[] = {
    "ancient", "glowing", "mystical", "futuristic", "ornate", "giant",
    "tiny", "ethereal", "dark", "golden", "crystal", "neon", "rustic",
    "majestic", "haunted", "serene", "vibrant", "stormy", "frozen",
    "emerald", "scarlet", "silver", "obsidian", "radiant",
};

const char *const kStyles[] = {
    "watercolor", "photorealistic", "oil painting", "concept art",
    "studio lighting", "cinematic", "8k", "highly detailed", "anime",
    "impressionist", "unreal engine", "trending on artstation",
    "volumetric lighting", "isometric", "pixel art", "baroque",
};

template <std::size_t N>
const char *
pick(const char *const (&pool)[N], Rng &rng)
{
    return pool[rng.uniformInt(N)];
}

} // namespace

TopicUniverse::TopicUniverse(const TopicUniverseConfig &config,
                             std::uint64_t seed)
    : config_(config),
      popularity_(config.numTopics, config.zipfExponent)
{
    MODM_ASSERT(config_.numTopics > 0, "topic universe must be non-empty");
    Rng rng(seed);
    topics_.reserve(config_.numTopics);
    for (std::size_t t = 0; t < config_.numTopics; ++t) {
        Topic topic;
        topic.visualCenter = randomUnitVec(config_.dim, rng);
        topic.lexicalCenter = randomUnitVec(config_.dim, rng);
        topic.words.reserve(config_.wordsPerTopic);
        for (std::size_t w = 0; w < config_.wordsPerTopic; ++w) {
            std::string word;
            switch (rng.uniformInt(3)) {
              case 0:
                word = pick(kSubjects, rng);
                break;
              case 1:
                word = pick(kModifiers, rng);
                break;
              default:
                word = pick(kStyles, rng);
                break;
            }
            topic.words.push_back(std::move(word));
        }
        topics_.push_back(std::move(topic));
    }
}

std::uint32_t
TopicUniverse::sampleTopic(Rng &rng) const
{
    return static_cast<std::uint32_t>(popularity_.sample(rng));
}

std::uint32_t
TopicUniverse::sampleTopicUniform(Rng &rng) const
{
    return static_cast<std::uint32_t>(rng.uniformInt(topics_.size()));
}

const Topic &
TopicUniverse::topic(std::uint32_t id) const
{
    MODM_ASSERT(id < topics_.size(), "topic id out of range: %u", id);
    return topics_[id];
}

std::string
TopicUniverse::realizeText(std::uint32_t topic_id, Rng &rng) const
{
    const Topic &t = topic(topic_id);
    const std::size_t count = 3 + rng.uniformInt(4);
    std::string text;
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            text += ' ';
        text += t.words[rng.uniformInt(t.words.size())];
    }
    return text;
}

} // namespace modm::workload

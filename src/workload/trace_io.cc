#include "src/workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "src/common/log.hh"

namespace modm::workload {

namespace {

constexpr char kHeader[] =
    "arrival,prompt_id,topic_id,user_id,session_id,text,visual,lexical";

std::string
encodeVec(const Vec &v)
{
    std::ostringstream out;
    out.precision(9);
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out << ';';
        out << v[i];
    }
    return out.str();
}

Vec
decodeVec(const std::string &field)
{
    Vec out;
    std::istringstream in(field);
    std::string token;
    while (std::getline(in, token, ';')) {
        if (!token.empty())
            out.push_back(std::stof(token));
    }
    return out;
}

std::string
quote(const std::string &text)
{
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

/** Split one CSV row respecting quoted fields. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool inQuotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (inQuotes) {
            if (ch == '"' && i + 1 < line.size() && line[i + 1] == '"') {
                current += '"';
                ++i;
            } else if (ch == '"') {
                inQuotes = false;
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            inQuotes = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

/** Annotation marker: event lines between the header and the rows. */
constexpr char kEventPrefix[] = "#@ ";

void
writeRows(const Trace &trace, std::ostream &out)
{
    for (const auto &request : trace) {
        const auto &p = request.prompt;
        out.precision(9);
        out << request.arrival << ',' << p.id << ',' << p.topicId << ','
            << p.userId << ',' << p.sessionId << ',' << quote(p.text)
            << ',' << encodeVec(p.visualConcept) << ','
            << encodeVec(p.lexicalStyle) << '\n';
    }
}

Request
parseRow(const std::string &line)
{
    const auto fields = splitRow(line);
    if (fields.size() != 8)
        fatal("malformed trace row with %zu fields", fields.size());
    Request request;
    request.arrival = std::stod(fields[0]);
    request.prompt.id = std::stoull(fields[1]);
    request.prompt.topicId =
        static_cast<std::uint32_t>(std::stoul(fields[2]));
    request.prompt.userId =
        static_cast<std::uint32_t>(std::stoul(fields[3]));
    request.prompt.sessionId = std::stoull(fields[4]);
    request.prompt.text = fields[5];
    request.prompt.visualConcept = decodeVec(fields[6]);
    request.prompt.lexicalStyle = decodeVec(fields[7]);
    return request;
}

bool
isEventLine(const std::string &line)
{
    return line.compare(0, 3, kEventPrefix) == 0;
}

} // namespace

void
saveTrace(const Trace &trace, std::ostream &out)
{
    out << kHeader << '\n';
    writeRows(trace, out);
}

void
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: %s", path.c_str());
    saveTrace(trace, out);
    if (!out)
        fatal("error while writing trace file: %s", path.c_str());
}

Trace
loadTrace(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        fatal("not a MoDM trace CSV (bad header)");

    Trace trace;
    while (std::getline(in, line)) {
        if (line.empty() || isEventLine(line))
            continue;
        trace.push_back(parseRow(line));
    }
    return trace;
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: %s", path.c_str());
    return loadTrace(in);
}

void
saveAnnotatedTrace(const AnnotatedTrace &annotated, std::ostream &out)
{
    out << kHeader << '\n';
    for (const auto &event : annotated.events) {
        MODM_ASSERT(event.find('\n') == std::string::npos,
                    "trace event annotations must be single lines");
        out << kEventPrefix << event << '\n';
    }
    writeRows(annotated.trace, out);
}

void
saveAnnotatedTraceFile(const AnnotatedTrace &annotated,
                       const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: %s", path.c_str());
    saveAnnotatedTrace(annotated, out);
    if (!out)
        fatal("error while writing trace file: %s", path.c_str());
}

AnnotatedTrace
loadAnnotatedTrace(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        fatal("not a MoDM trace CSV (bad header)");

    AnnotatedTrace annotated;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (isEventLine(line)) {
            if (!annotated.trace.empty())
                fatal("trace event annotation after the first row");
            annotated.events.push_back(line.substr(3));
            continue;
        }
        annotated.trace.push_back(parseRow(line));
    }
    return annotated;
}

AnnotatedTrace
loadAnnotatedTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: %s", path.c_str());
    return loadAnnotatedTrace(in);
}

} // namespace modm::workload

#include "src/workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "src/common/log.hh"

namespace modm::workload {

namespace {

constexpr char kHeader[] =
    "arrival,prompt_id,topic_id,user_id,session_id,text,visual,lexical";

std::string
encodeVec(const Vec &v)
{
    std::ostringstream out;
    out.precision(9);
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out << ';';
        out << v[i];
    }
    return out.str();
}

Vec
decodeVec(const std::string &field)
{
    Vec out;
    std::istringstream in(field);
    std::string token;
    while (std::getline(in, token, ';')) {
        if (!token.empty())
            out.push_back(std::stof(token));
    }
    return out;
}

std::string
quote(const std::string &text)
{
    std::string out = "\"";
    for (char ch : text) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

/** Split one CSV row respecting quoted fields. */
std::vector<std::string>
splitRow(const std::string &line)
{
    std::vector<std::string> fields;
    std::string current;
    bool inQuotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (inQuotes) {
            if (ch == '"' && i + 1 < line.size() && line[i + 1] == '"') {
                current += '"';
                ++i;
            } else if (ch == '"') {
                inQuotes = false;
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            inQuotes = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

} // namespace

void
saveTrace(const Trace &trace, std::ostream &out)
{
    out << kHeader << '\n';
    for (const auto &request : trace) {
        const auto &p = request.prompt;
        out.precision(9);
        out << request.arrival << ',' << p.id << ',' << p.topicId << ','
            << p.userId << ',' << p.sessionId << ',' << quote(p.text)
            << ',' << encodeVec(p.visualConcept) << ','
            << encodeVec(p.lexicalStyle) << '\n';
    }
}

void
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: %s", path.c_str());
    saveTrace(trace, out);
    if (!out)
        fatal("error while writing trace file: %s", path.c_str());
}

Trace
loadTrace(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        fatal("not a MoDM trace CSV (bad header)");

    Trace trace;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto fields = splitRow(line);
        if (fields.size() != 8)
            fatal("malformed trace row with %zu fields", fields.size());
        Request request;
        request.arrival = std::stod(fields[0]);
        request.prompt.id = std::stoull(fields[1]);
        request.prompt.topicId =
            static_cast<std::uint32_t>(std::stoul(fields[2]));
        request.prompt.userId =
            static_cast<std::uint32_t>(std::stoul(fields[3]));
        request.prompt.sessionId = std::stoull(fields[4]);
        request.prompt.text = fields[5];
        request.prompt.visualConcept = decodeVec(fields[6]);
        request.prompt.lexicalStyle = decodeVec(fields[7]);
        trace.push_back(std::move(request));
    }
    return trace;
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: %s", path.c_str());
    return loadTrace(in);
}

} // namespace modm::workload

#include "src/workload/generator.hh"

#include <algorithm>

#include "src/common/log.hh"

namespace modm::workload {

DiffusionDBModel::DiffusionDBModel(const DiffusionDBConfig &config,
                                   std::uint64_t seed)
    : config_(config),
      topics_(config.topics, mix64(seed ^ 0x1111aaaabbbbccccULL)),
      rng_(seed)
{
    MODM_ASSERT(config_.maxActiveSessions > 0,
                "need at least one active session slot");
}

DiffusionDBModel::Session
DiffusionDBModel::makeSession()
{
    Session s;
    s.id = nextSessionId_++;
    s.userId = static_cast<std::uint32_t>(
        rng_.uniformInt(config_.numUsers));
    s.topicId = topics_.sampleTopic(rng_);
    const Topic &topic = topics_.topic(s.topicId);
    s.conceptVec = jitterUnitVec(topic.visualCenter,
                              config_.sessionConceptSpread, rng_);
    s.lexical = jitterUnitVec(topic.lexicalCenter,
                              config_.lexicalSpread, rng_);
    // At least one prompt per session.
    const double p = 1.0 / std::max(config_.meanSessionLength, 1.0);
    s.remaining = 1 + rng_.geometric(p);
    return s;
}

Prompt
DiffusionDBModel::emitFromSession(Session &session)
{
    Prompt prompt;
    prompt.id = nextPromptId_++;
    prompt.topicId = session.topicId;
    prompt.userId = session.userId;
    prompt.sessionId = session.id;
    // Iterations drift the concept slightly: the user nudges wording and
    // details while keeping the visual intent.
    session.conceptVec =
        jitterUnitVec(session.conceptVec, config_.iterationJitter, rng_);
    prompt.visualConcept = session.conceptVec;
    prompt.lexicalStyle =
        jitterUnitVec(session.lexical, 0.05, rng_);
    prompt.text = topics_.realizeText(session.topicId, rng_);
    return prompt;
}

Prompt
DiffusionDBModel::next()
{
    const bool startNew = active_.empty() ||
        (active_.size() < config_.maxActiveSessions &&
         rng_.bernoulli(config_.newSessionProb));
    if (startNew)
        active_.push_back(makeSession());

    const std::size_t pick = rng_.uniformInt(active_.size());
    Session &session = active_[pick];
    Prompt prompt = emitFromSession(session);
    if (--session.remaining == 0) {
        active_[pick] = active_.back();
        active_.pop_back();
    }
    return prompt;
}

MJHQModel::MJHQModel(const MJHQConfig &config, std::uint64_t seed)
    : config_(config),
      topics_(config.topics, mix64(seed ^ 0x2222ddddeeeeffffULL)),
      rng_(seed)
{
}

Prompt
MJHQModel::next()
{
    Prompt prompt;
    prompt.id = nextPromptId_++;
    prompt.topicId = topics_.sampleTopicUniform(rng_);
    prompt.userId = 0;
    prompt.sessionId = prompt.id; // every prompt its own "session"
    const Topic &topic = topics_.topic(prompt.topicId);
    const double spread = rng_.bernoulli(config_.tightProb)
        ? config_.tightSpread
        : config_.wideSpread;
    prompt.visualConcept =
        jitterUnitVec(topic.visualCenter, spread, rng_);
    prompt.lexicalStyle =
        jitterUnitVec(topic.lexicalCenter, config_.lexicalSpread, rng_);
    prompt.text = topics_.realizeText(prompt.topicId, rng_);
    return prompt;
}

std::unique_ptr<TraceGenerator>
makeDiffusionDB(std::uint64_t seed)
{
    return std::make_unique<DiffusionDBModel>(DiffusionDBConfig{}, seed);
}

std::unique_ptr<TraceGenerator>
makeMJHQ(std::uint64_t seed)
{
    return std::make_unique<MJHQModel>(MJHQConfig{}, seed);
}

} // namespace modm::workload

/**
 * @file
 * Prompt-stream generators standing in for the paper's datasets.
 *
 * DiffusionDBModel reproduces the production-trace properties MoDM
 * exploits: user sessions iterating on a concept (users resubmit small
 * variations of a prompt until satisfied), Zipf-skewed topics, and strong
 * temporal locality (paper Fig. 15: >90 % of cache hits retrieve images
 * generated in the last four hours).
 *
 * MJHQModel reproduces the curated MJHQ-30k contrast: independent
 * prompts, no sessions, and therefore weaker cache behaviour (paper
 * Fig. 19 and the lower speedups in Fig. 7).
 */

#ifndef MODM_WORKLOAD_GENERATOR_HH
#define MODM_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "src/common/rng.hh"
#include "src/workload/prompt.hh"
#include "src/workload/topics.hh"

namespace modm::workload {

/** Interface for prompt-stream generators. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Produce the next prompt of the stream. */
    virtual Prompt next() = 0;

    /** Human-readable dataset name ("diffusiondb", "mjhq"). */
    virtual const char *name() const = 0;
};

/** Tunables of the DiffusionDB-like generator. */
struct DiffusionDBConfig
{
    TopicUniverseConfig topics;
    /** Probability a new request starts a session vs continues one. */
    double newSessionProb = 0.25;
    /** Mean prompts per session (geometric). */
    double meanSessionLength = 4.25;
    /** Max concurrently active sessions (bounds locality distance). */
    std::size_t maxActiveSessions = 64;
    /** Concept spread of a fresh session around its topic center. */
    double sessionConceptSpread = 0.50;
    /** Concept drift between iterations of one session. */
    double iterationJitter = 0.09;
    /** Lexical-style spread per user. */
    double lexicalSpread = 0.35;
    /** Number of synthetic users. */
    std::uint32_t numUsers = 4000;
};

/** Production-like generator with sessions and temporal locality. */
class DiffusionDBModel : public TraceGenerator
{
  public:
    /** Construct; deterministic in the seed. */
    DiffusionDBModel(const DiffusionDBConfig &config, std::uint64_t seed);

    Prompt next() override;
    const char *name() const override { return "diffusiondb"; }

    /** Topic universe (shared with evaluation code). */
    const TopicUniverse &topics() const { return topics_; }

  private:
    struct Session
    {
        std::uint64_t id;
        std::uint32_t userId;
        std::uint32_t topicId;
        Vec conceptVec;
        Vec lexical;
        std::uint64_t remaining;
    };

    Session makeSession();
    Prompt emitFromSession(Session &session);

    DiffusionDBConfig config_;
    TopicUniverse topics_;
    Rng rng_;
    std::deque<Session> active_;
    std::uint64_t nextPromptId_ = 0;
    std::uint64_t nextSessionId_ = 0;
};

/** Tunables of the MJHQ-like generator. */
struct MJHQConfig
{
    TopicUniverseConfig topics = {
        .numTopics = 1200,
        .dim = 64,
        .zipfExponent = 0.6,
        .wordsPerTopic = 24,
    };
    /**
     * MJHQ is a curated gallery: a share of prompts cluster tightly
     * around popular aesthetics (retrievable) while the rest spread
     * wide (novel one-offs). No session structure either way, so
     * temporal locality is absent — the property behind the paper's
     * smaller MJHQ speedups (Fig. 7) and flat cache-all gains
     * (Fig. 19).
     */
    double tightProb = 0.70;
    /** Concept spread of tightly clustered prompts. */
    double tightSpread = 0.18;
    /** Concept spread of one-off prompts. */
    double wideSpread = 0.95;
    /** Lexical spread. */
    double lexicalSpread = 0.45;
};

/** Curated-dataset generator: i.i.d. prompts, no sessions. */
class MJHQModel : public TraceGenerator
{
  public:
    /** Construct; deterministic in the seed. */
    MJHQModel(const MJHQConfig &config, std::uint64_t seed);

    Prompt next() override;
    const char *name() const override { return "mjhq"; }

    /** Topic universe. */
    const TopicUniverse &topics() const { return topics_; }

  private:
    MJHQConfig config_;
    TopicUniverse topics_;
    Rng rng_;
    std::uint64_t nextPromptId_ = 0;
};

/** Factory helpers with the default configurations used in the benches. */
std::unique_ptr<TraceGenerator> makeDiffusionDB(std::uint64_t seed);
std::unique_ptr<TraceGenerator> makeMJHQ(std::uint64_t seed);

} // namespace modm::workload

#endif // MODM_WORKLOAD_GENERATOR_HH

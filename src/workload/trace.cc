#include "src/workload/trace.hh"

namespace modm::workload {

Trace
buildTrace(TraceGenerator &generator, ArrivalProcess &arrivals,
           std::size_t n, Rng &rng)
{
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Request request;
        request.prompt = generator.next();
        request.arrival = arrivals.next(rng);
        trace.push_back(std::move(request));
    }
    return trace;
}

Trace
buildTraceForDuration(TraceGenerator &generator, ArrivalProcess &arrivals,
                      double duration, Rng &rng)
{
    Trace trace;
    while (true) {
        const double t = arrivals.next(rng);
        if (t > duration)
            break;
        Request request;
        request.prompt = generator.next();
        request.arrival = t;
        trace.push_back(std::move(request));
    }
    return trace;
}

Trace
buildBatchTrace(TraceGenerator &generator, std::size_t n)
{
    Trace trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Request request;
        request.prompt = generator.next();
        request.arrival = 0.0;
        trace.push_back(std::move(request));
    }
    return trace;
}

} // namespace modm::workload

/**
 * @file
 * Example: exploring the quality/throughput trade-off space.
 *
 * A provider choosing a deployment configuration wants the menu of
 * (throughput, quality) points reachable by pairing a large model with
 * different small models, admission policies, and hit thresholds —
 * the paper's Fig. 14 exercise, exposed as an API walkthrough. Every
 * configuration evaluates in its own concurrent sweep cell (serving
 * run + reference generations + FID/CLIP).
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

struct Point
{
    std::string name;
    double throughput = 0.0;
    double fid = 0.0;
    double clip = 0.0;
};

Point
evaluate(const std::string &name, serving::ServingConfig config)
{
    config.keepOutputs = true;
    auto gen = workload::makeDiffusionDB(99);
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 1500; ++i)
        warm.push_back(gen->next());
    const auto trace = workload::buildBatchTrace(*gen, 1500);

    serving::ServingSystem system(config);
    system.warmCache(warm);
    const auto result = system.run(trace);

    diffusion::Sampler refSampler(0x5eedULL);
    std::vector<diffusion::Image> reference;
    for (const auto &p : result.prompts)
        reference.push_back(
            refSampler.generate(config.largeModel, p, 0.0));
    eval::MetricSuite metrics;
    const auto q = metrics.report(result.prompts, result.images,
                                  reference);
    return {name, result.throughputPerMin, q.fid, q.clip};
}

} // namespace

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 1500;
    const auto large = diffusion::sd35Large();

    // Declare the configuration menu, then evaluate it as one sweep.
    std::vector<std::pair<std::string, serving::ServingConfig>> menu;
    menu.emplace_back("Vanilla", baselines::vanilla(large, params));
    for (const auto &small :
         {diffusion::sdxl(), diffusion::sana(),
          diffusion::sd35LargeTurbo()}) {
        menu.emplace_back("MoDM-" + small.name,
                          baselines::modm(large, small, params));
        auto strict = baselines::modm(large, small, params);
        for (auto &floor : strict.kDecision.floors)
            floor += 0.01;
        menu.emplace_back("MoDM-" + small.name + "-strict", strict);
    }

    std::vector<std::function<Point()>> cells;
    std::vector<std::string> labels;
    for (const auto &[name, config] : menu) {
        labels.push_back(name);
        cells.push_back([name = name, config = config] {
            return evaluate(name, config);
        });
    }
    bench::SweepOptions options;
    options.title = "Pareto explorer";
    const auto points =
        bench::runCells(std::move(cells), options, labels);

    Table t({"configuration", "throughput/min", "FID", "CLIP",
             "on frontier?"});
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &other : points) {
            if (other.throughput > p.throughput && other.fid < p.fid)
                dominated = true;
        }
        t.addRow({p.name, Table::fmt(p.throughput), Table::fmt(p.fid, 1),
                  Table::fmt(p.clip), dominated ? "" : "yes"});
    }
    t.print("Quality/throughput menu (SD3.5L large model, 1500 reqs)");
    std::printf("\n'strict' raises every cache-hit threshold by +0.01: "
                "fewer, closer hits -> higher quality, lower "
                "throughput.\n");
    return 0;
}

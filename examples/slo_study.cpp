/**
 * @file
 * Example: capacity planning against an SLO.
 *
 * A service owner wants to know the highest request rate a fixed
 * cluster can sustain while keeping p99 latency within 2x of a single
 * large-model inference. This example sweeps demand for Vanilla and
 * MoDM on the same hardware and reports the supported load — the
 * decision the paper's Figs. 12/16 inform.
 */

#include <cstdio>

#include "src/baselines/presets.hh"
#include "src/common/table.hh"
#include "src/serving/system.hh"
#include "src/workload/trace.hh"

using namespace modm;

namespace {

serving::ServingResult
serveAtRate(const serving::ServingConfig &config, double rate)
{
    auto gen = workload::makeDiffusionDB(2026);
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 2000; ++i)
        warm.push_back(gen->next());
    workload::PoissonArrivals arrivals(rate);
    Rng rng(7);
    const auto trace = workload::buildTrace(*gen, arrivals, 800, rng);

    serving::ServingSystem system(config);
    if (config.kind != serving::SystemKind::Vanilla)
        system.warmCache(warm);
    return system.run(trace);
}

} // namespace

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 2000;

    const double slo =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);
    std::printf("SLO: latency <= %.0f s (2x one SD3.5L inference)\n",
                slo);

    // Attainment criterion: at most 5 % of requests may exceed the
    // SLO latency (the paper's violation-rate measure, Figs. 12/13).
    constexpr double kBudget = 0.05;
    Table t({"rate/min", "Vanilla viol.", "Vanilla ok?", "MoDM viol.",
             "MoDM ok?"});
    // Largest rate with an unbroken compliant prefix from 1/min.
    double vanillaMax = 1.0, modmMax = 1.0;
    for (double rate = 2.0; rate <= 11.0; rate += 1.0) {
        const auto vanilla = serveAtRate(
            baselines::vanilla(diffusion::sd35Large(), params), rate);
        const auto modm = serveAtRate(
            baselines::modmMulti(diffusion::sd35Large(),
                                 {diffusion::sdxl(), diffusion::sana()},
                                 params),
            rate);
        const double vv = vanilla.metrics.sloViolationRate(slo);
        const double mv = modm.metrics.sloViolationRate(slo);
        if (vv <= kBudget && vanillaMax == rate - 1.0)
            vanillaMax = rate;
        if (mv <= kBudget && modmMax == rate - 1.0)
            modmMax = rate;
        t.addRow({Table::fmt(rate, 0), Table::fmt(vv),
                  vv <= kBudget ? "yes" : "NO", Table::fmt(mv),
                  mv <= kBudget ? "yes" : "NO"});
    }
    t.print("Capacity study on 4x A40");
    std::printf("\nMax sustainable load: Vanilla %.0f/min, MoDM %.0f/min "
                "(%.1fx more capacity from the same GPUs)\n",
                vanillaMax, modmMax,
                vanillaMax > 0 ? modmMax / vanillaMax : 0.0);
    return 0;
}

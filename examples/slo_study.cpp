/**
 * @file
 * Example: capacity planning against an SLO.
 *
 * A service owner wants to know the highest request rate a fixed
 * cluster can sustain while keeping p99 latency within 2x of a single
 * large-model inference. This example declares a rate × system sweep,
 * runs every point concurrently, and reports the supported load — the
 * decision the paper's Figs. 12/16 inform.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

/** Bundle at a given rate; Vanilla has no cache, so no warm prompts. */
std::function<bench::WorkloadBundle()>
bundleAt(double rate, bool warm)
{
    return [rate, warm] {
        bench::WorkloadBundle bundle;
        bundle.dataset = "DiffusionDB";
        auto gen = workload::makeDiffusionDB(2026);
        if (warm) {
            for (int i = 0; i < 2000; ++i)
                bundle.warm.push_back(gen->next());
        } else {
            for (int i = 0; i < 2000; ++i)
                gen->next(); // identical request stream either way
        }
        workload::PoissonArrivals arrivals(rate);
        Rng rng(7);
        bundle.trace = workload::buildTrace(*gen, arrivals, 800, rng);
        return bundle;
    };
}

} // namespace

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 2000;

    const double slo =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);
    std::printf("SLO: latency <= %.0f s (2x one SD3.5L inference)\n",
                slo);

    std::vector<double> rates;
    for (double rate = 2.0; rate <= 11.0; rate += 1.0)
        rates.push_back(rate);

    bench::SweepSpec spec;
    spec.options.title = "SLO study";
    for (const double rate : rates) {
        spec.add("Vanilla@" + Table::fmt(rate, 0),
                 baselines::vanilla(diffusion::sd35Large(), params),
                 bundleAt(rate, /*warm=*/false));
        spec.add("MoDM@" + Table::fmt(rate, 0),
                 baselines::modmMulti(
                     diffusion::sd35Large(),
                     {diffusion::sdxl(), diffusion::sana()}, params),
                 bundleAt(rate, /*warm=*/true));
    }
    const auto results = bench::runSweep(spec);

    // Attainment criterion: at most 5 % of requests may exceed the
    // SLO latency (the paper's violation-rate measure, Figs. 12/13).
    constexpr double kBudget = 0.05;
    Table t({"rate/min", "Vanilla viol.", "Vanilla ok?", "MoDM viol.",
             "MoDM ok?"});
    // Largest rate with an unbroken compliant prefix from 1/min.
    double vanillaMax = 1.0, modmMax = 1.0;
    for (std::size_t r = 0; r < rates.size(); ++r) {
        const double rate = rates[r];
        const double vv =
            results[r * 2].metrics.sloViolationRate(slo);
        const double mv =
            results[r * 2 + 1].metrics.sloViolationRate(slo);
        if (vv <= kBudget && vanillaMax == rate - 1.0)
            vanillaMax = rate;
        if (mv <= kBudget && modmMax == rate - 1.0)
            modmMax = rate;
        t.addRow({Table::fmt(rate, 0), Table::fmt(vv),
                  vv <= kBudget ? "yes" : "NO", Table::fmt(mv),
                  mv <= kBudget ? "yes" : "NO"});
    }
    t.print("Capacity study on 4x A40");
    std::printf("\nMax sustainable load: Vanilla %.0f/min, MoDM %.0f/min "
                "(%.1fx more capacity from the same GPUs)\n",
                vanillaMax, modmMax,
                vanillaMax > 0 ? modmMax / vanillaMax : 0.0);
    return 0;
}

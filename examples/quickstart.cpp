/**
 * @file
 * Quickstart: build a DiffusionDB-like workload, warm MoDM's image
 * cache, serve a trace with MoDM and with the Vanilla baseline, and
 * print the headline comparison (throughput, hit rate, p99 latency,
 * image quality). This is the 60-second tour of the public API.
 */

#include <cstdio>

#include "src/baselines/presets.hh"
#include "src/common/table.hh"
#include "src/eval/metrics.hh"
#include "src/serving/system.hh"
#include "src/workload/trace.hh"

int
main()
{
    using namespace modm;

    // 1. Workload: a production-like prompt stream with Poisson
    //    arrivals at 8 requests/minute.
    const std::uint64_t seed = 42;
    auto generator = workload::makeDiffusionDB(seed);
    workload::PoissonArrivals arrivals(8.0);
    Rng rng(seed);

    // Warm-up prompts populate the cache; the trace is then served.
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 2000; ++i)
        warm.push_back(generator->next());
    const auto trace = workload::buildTrace(*generator, arrivals, 2000,
                                            rng);

    // 2. Systems: MoDM (SD3.5L large + SDXL small) vs Vanilla (SD3.5L
    //    only) on four A40 GPUs.
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 2000;
    params.seed = seed;
    params.keepOutputs = true;

    auto modmConfig =
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(), params);
    // Shard cache-retrieval scans across every core; sharding is exact,
    // so results match the serial default bit-for-bit.
    modmConfig.retrievalParallelism = 0;
    serving::ServingSystem modmSystem(modmConfig);
    modmSystem.warmCache(warm);
    const auto modmResult = modmSystem.run(trace);

    serving::ServingSystem vanillaSystem(
        baselines::vanilla(diffusion::sd35Large(), params));
    const auto vanillaResult = vanillaSystem.run(trace);

    // 3. Quality: score both systems' outputs against reference
    //    generations from the large model.
    eval::MetricSuite metrics;
    diffusion::Sampler reference(seed ^ 0x5ef123ULL);
    std::vector<diffusion::Image> referenceImages;
    for (const auto &p : modmResult.prompts)
        referenceImages.push_back(
            reference.generate(diffusion::sd35Large(), p, 0.0));

    const auto modmQuality = metrics.report(
        modmResult.prompts, modmResult.images, referenceImages);
    const auto vanillaQuality = metrics.report(
        vanillaResult.prompts, vanillaResult.images, referenceImages);

    // 4. Report.
    const double sloThreshold =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);
    Table table({"system", "throughput/min", "hit rate", "mean k",
                 "p99 latency (s)", "SLO viol (2x)", "CLIP", "FID",
                 "energy (MJ)"});
    auto addRow = [&](const char *name,
                      const serving::ServingResult &r,
                      const eval::QualityReport &q) {
        table.addRow({name,
                      Table::fmt(r.throughputPerMin),
                      Table::fmt(r.hitRate),
                      Table::fmt(r.metrics.meanK(), 1),
                      Table::fmt(r.metrics.latencyPercentile(99.0), 0),
                      Table::fmt(r.metrics.sloViolationRate(sloThreshold)),
                      Table::fmt(q.clip),
                      Table::fmt(q.fid, 1),
                      Table::fmt(r.energyJ / 1e6, 1)});
    };
    addRow("MoDM-SDXL", modmResult, modmQuality);
    addRow("Vanilla", vanillaResult, vanillaQuality);
    table.print("MoDM quickstart: 2000 requests @ 8 req/min, 4x A40");

    std::printf("\nSpeedup over Vanilla: %.2fx\n",
                modmResult.throughputPerMin /
                    vanillaResult.throughputPerMin);
    return 0;
}

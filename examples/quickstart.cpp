/**
 * @file
 * Quickstart: declare a two-system sweep (MoDM vs the Vanilla
 * baseline) over a DiffusionDB-like workload, run both experiments
 * concurrently with runSweep, and print the headline comparison
 * (throughput, hit rate, p99 latency, image quality). This is the
 * 60-second tour of the public API.
 */

#include <cstdio>

#include "bench/sweep.hh"

int
main()
{
    using namespace modm;

    // 1. Systems: MoDM (SD3.5L large + SDXL small) vs Vanilla (SD3.5L
    //    only) on four A40 GPUs.
    const std::uint64_t seed = 42;
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 2000;
    params.seed = seed;
    params.keepOutputs = true;

    auto modmConfig =
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(), params);
    // Shard cache-retrieval scans across every core; sharding is exact,
    // so results match the serial default bit-for-bit.
    modmConfig.retrievalParallelism = 0;

    // 2. Workload: a production-like prompt stream with Poisson
    //    arrivals at 8 requests/minute. Each experiment builds its own
    //    bundle inside its sweep cell (share-nothing), and the seeded
    //    generators make every rebuild identical.
    const auto workloadAt = [seed](std::size_t warmCount) {
        return [seed, warmCount] {
            bench::WorkloadBundle bundle;
            bundle.dataset = "DiffusionDB";
            auto generator = workload::makeDiffusionDB(seed);
            for (std::size_t i = 0; i < warmCount; ++i)
                bundle.warm.push_back(generator->next());
            // The trace continues the stream after the 2000 warm
            // prompts so both systems serve the same 2000 requests.
            auto traceGen = workload::makeDiffusionDB(seed);
            for (int i = 0; i < 2000; ++i)
                traceGen->next();
            workload::PoissonArrivals arrivals(8.0);
            Rng rng(seed);
            bundle.trace = workload::buildTrace(*traceGen, arrivals,
                                                2000, rng);
            return bundle;
        };
    };

    // 3. Declare and run the sweep: two cells, executed concurrently.
    bench::SweepSpec spec;
    spec.options.title = "quickstart";
    spec.add("MoDM-SDXL", modmConfig, workloadAt(2000));
    spec.add("Vanilla",
             baselines::vanilla(diffusion::sd35Large(), params),
             workloadAt(0)); // no cache to warm
    const auto results = bench::runSweep(spec);
    const auto &modmResult = results[0];
    const auto &vanillaResult = results[1];

    // 4. Quality: score both systems' outputs against reference
    //    generations from the large model.
    eval::MetricSuite metrics;
    diffusion::Sampler reference(seed ^ 0x5ef123ULL);
    std::vector<diffusion::Image> referenceImages;
    for (const auto &p : modmResult.prompts)
        referenceImages.push_back(
            reference.generate(diffusion::sd35Large(), p, 0.0));

    const auto modmQuality = metrics.report(
        modmResult.prompts, modmResult.images, referenceImages);
    const auto vanillaQuality = metrics.report(
        vanillaResult.prompts, vanillaResult.images, referenceImages);

    // 5. Report.
    const double sloThreshold =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);
    Table table({"system", "throughput/min", "hit rate", "mean k",
                 "p99 latency (s)", "SLO viol (2x)", "CLIP", "FID",
                 "energy (MJ)"});
    auto addRow = [&](const char *name,
                      const serving::ServingResult &r,
                      const eval::QualityReport &q) {
        table.addRow({name,
                      Table::fmt(r.throughputPerMin),
                      Table::fmt(r.hitRate),
                      Table::fmt(r.metrics.meanK(), 1),
                      Table::fmt(r.metrics.latencyPercentile(99.0), 0),
                      Table::fmt(r.metrics.sloViolationRate(sloThreshold)),
                      Table::fmt(q.clip),
                      Table::fmt(q.fid, 1),
                      Table::fmt(r.energyJ / 1e6, 1)});
    };
    addRow("MoDM-SDXL", modmResult, modmQuality);
    addRow("Vanilla", vanillaResult, vanillaQuality);
    table.print("MoDM quickstart: 2000 requests @ 8 req/min, 4x A40");

    std::printf("\nSpeedup over Vanilla: %.2fx\n",
                modmResult.throughputPerMin /
                    vanillaResult.throughputPerMin);
    return 0;
}

/**
 * @file
 * Example: choosing cache maintenance and admission policies.
 *
 * Uses the library's cache substrate directly (no cluster) to compare
 * FIFO / LRU / Utility eviction and cache-all vs cache-large-only
 * admission on both workload families — the operational decisions
 * behind the paper's §5.4 and Fig. 9. The 12 dataset × policy ×
 * admission combinations run as one concurrent sweep.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/cache/image_cache.hh"
#include "src/serving/k_decision.hh"

using namespace modm;

namespace {

struct StudyResult
{
    double hitRate = 0.0;
    double meanK = 0.0;
};

StudyResult
study(bool diffusion_db, cache::EvictionPolicy policy, bool cache_all,
      std::size_t requests)
{
    auto gen = diffusion_db ? workload::makeDiffusionDB(3)
                            : workload::makeMJHQ(3);
    diffusion::Sampler sampler(7);
    cache::ImageCache cache(1500, policy);
    embedding::TextEncoder text;
    serving::KDecision kd;

    std::size_t hits = 0;
    double kSum = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        const double now = static_cast<double>(i);
        if (r.found && kd.isHit(r.similarity)) {
            ++hits;
            const int k = kd.decide(r.similarity);
            kSum += k;
            cache.recordHit(r.entryId, now);
            const auto img = sampler.refine(
                diffusion::sdxl(), p, cache.entry(r.entryId).image, k,
                now);
            if (cache_all)
                cache.insert(img, now);
        } else {
            cache.insert(
                sampler.generate(diffusion::sd35Large(), p, now), now);
        }
    }
    return {static_cast<double>(hits) / requests,
            hits ? kSum / hits : 0.0};
}

} // namespace

int
main()
{
    constexpr std::size_t kRequests = 8000;

    // Declare the dataset × policy × admission grid...
    struct Combo
    {
        bool diffusionDb;
        cache::EvictionPolicy policy;
        bool cacheAll;
    };
    std::vector<Combo> combos;
    for (const bool diffusionDb : {true, false})
        for (auto policy : {cache::EvictionPolicy::FIFO,
                            cache::EvictionPolicy::LRU,
                            cache::EvictionPolicy::Utility})
            for (const bool cacheAll : {true, false})
                combos.push_back({diffusionDb, policy, cacheAll});

    // ...and run every combination concurrently.
    std::vector<std::function<StudyResult()>> cells;
    std::vector<std::string> labels;
    for (const auto &combo : combos) {
        labels.push_back(
            std::string(combo.diffusionDb ? "DiffusionDB" : "MJHQ") +
            "/" + cache::policyName(combo.policy) +
            (combo.cacheAll ? "/cache-all" : "/cache-large"));
        cells.push_back([combo] {
            return study(combo.diffusionDb, combo.policy, combo.cacheAll,
                         kRequests);
        });
    }
    bench::SweepOptions options;
    options.title = "Cache policy study";
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    Table t({"dataset", "policy", "admission", "hit rate", "mean k"});
    for (std::size_t i = 0; i < combos.size(); ++i) {
        t.addRow({combos[i].diffusionDb ? "DiffusionDB" : "MJHQ",
                  cache::policyName(combos[i].policy),
                  combos[i].cacheAll ? "cache-all" : "cache-large",
                  Table::fmt(results[i].hitRate, 3),
                  Table::fmt(results[i].meanK, 1)});
    }
    t.print("Cache policy / admission study (capacity 1500, 8000 "
            "requests)");
    std::printf("\nTakeaways mirror the paper: FIFO is competitive with "
                "smarter policies on production traffic, and cache-all "
                "only helps when requests have temporal locality.\n");
    return 0;
}

/**
 * @file
 * Paper Fig. 7: maximum serving throughput of every baseline,
 * normalized to Vanilla (SD3.5L), on the DiffusionDB and MJHQ
 * workloads.
 *
 * Paper shape: DiffusionDB {1.0, 1.2, 1.8, 2.5, 3.2} and MJHQ
 * {1.0, 1.1, 1.4, 2.1, 2.4} for {Vanilla, NIRVANA, Pinecone,
 * MoDM-SDXL, MoDM-SANA}; MJHQ gains are smaller because the dataset
 * has no temporal locality.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    constexpr std::size_t kWarm = 3000;
    constexpr std::size_t kRequests = 3000;

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 3000;

    const auto lineup = bench::paperLineup(diffusion::sd35Large(), params);
    const std::vector<bench::Dataset> datasets = {
        bench::Dataset::DiffusionDB, bench::Dataset::MJHQ};

    bench::SweepSpec spec;
    spec.options.title = "Fig. 7";
    for (const auto dataset : datasets) {
        for (const auto &system : lineup) {
            spec.add(std::string(bench::datasetName(dataset)) + "/" +
                         system.name,
                     system.config, [dataset] {
                         return bench::batchBundle(dataset, kWarm,
                                                   kRequests);
                     });
        }
    }
    const auto results = bench::runSweep(spec);

    const std::vector<const char *> paperDdb = {"1.0", "1.2", "1.8",
                                                "2.5", "3.2"};
    const std::vector<const char *> paperMjhq = {"1.0", "1.1", "1.4",
                                                 "2.1", "2.4"};
    for (std::size_t d = 0; d < datasets.size(); ++d) {
        const auto &paper =
            datasets[d] == bench::Dataset::DiffusionDB ? paperDdb
                                                       : paperMjhq;
        const double vanilla =
            results[d * lineup.size()].throughputPerMin;
        Table t({"system", "throughput/min", "normalized", "paper",
                 "hit rate", "mean k"});
        for (std::size_t i = 0; i < lineup.size(); ++i) {
            const auto &r = results[d * lineup.size() + i];
            t.addRow({lineup[i].name, Table::fmt(r.throughputPerMin),
                      Table::fmt(r.throughputPerMin / vanilla, 2),
                      paper[i], Table::fmt(r.hitRate),
                      Table::fmt(r.metrics.meanK(), 1)});
        }
        t.print(std::string(
                    "Fig. 7 — max throughput, large model SD3.5L, ") +
                bench::datasetName(datasets[d]) +
                " (3000 reqs, warm cache 3000, 4x A40)");
    }
    return 0;
}

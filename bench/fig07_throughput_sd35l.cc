/**
 * @file
 * Paper Fig. 7: maximum serving throughput of every baseline,
 * normalized to Vanilla (SD3.5L), on the DiffusionDB and MJHQ
 * workloads.
 *
 * Paper shape: DiffusionDB {1.0, 1.2, 1.8, 2.5, 3.2} and MJHQ
 * {1.0, 1.1, 1.4, 2.1, 2.4} for {Vanilla, NIRVANA, Pinecone,
 * MoDM-SDXL, MoDM-SANA}; MJHQ gains are smaller because the dataset
 * has no temporal locality.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace modm;

namespace {

void
runDataset(bench::Dataset dataset)
{
    constexpr std::size_t kWarm = 3000;
    constexpr std::size_t kRequests = 3000;

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 3000;

    const auto bundle = bench::batchBundle(dataset, kWarm, kRequests);
    const auto lineup = bench::paperLineup(diffusion::sd35Large(), params);

    std::vector<serving::ServingResult> results;
    for (const auto &spec : lineup)
        results.push_back(bench::runSystem(spec.config, bundle));

    const double vanilla = results.front().throughputPerMin;
    const std::vector<const char *> paperDdb = {"1.0", "1.2", "1.8",
                                                "2.5", "3.2"};
    const std::vector<const char *> paperMjhq = {"1.0", "1.1", "1.4",
                                                 "2.1", "2.4"};
    const auto &paper =
        dataset == bench::Dataset::DiffusionDB ? paperDdb : paperMjhq;

    Table t({"system", "throughput/min", "normalized", "paper",
             "hit rate", "mean k"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        t.addRow({lineup[i].name,
                  Table::fmt(results[i].throughputPerMin),
                  Table::fmt(results[i].throughputPerMin / vanilla, 2),
                  paper[i],
                  Table::fmt(results[i].hitRate),
                  Table::fmt(results[i].metrics.meanK(), 1)});
    }
    t.print(std::string("Fig. 7 — max throughput, large model SD3.5L, ") +
            bundle.dataset + " (3000 reqs, warm cache 3000, 4x A40)");
}

} // namespace

int
main()
{
    runDataset(bench::Dataset::DiffusionDB);
    runDataset(bench::Dataset::MJHQ);
    return 0;
}

/**
 * @file
 * Paper Fig. 8: throughput normalized to a FLUX Vanilla baseline on
 * DiffusionDB — the cross-large-model generality check.
 *
 * Paper shape: {1.0, 1.2, 2.0, 2.4, 2.9} for {Vanilla(FLUX), NIRVANA,
 * Pinecone, MoDM-SDXL, MoDM-SANA}.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 3000;

    const auto lineup = bench::paperLineup(diffusion::flux1Dev(), params);

    bench::SweepSpec spec;
    spec.options.title = "Fig. 8";
    spec.addGrid(lineup, {{"", [] {
                               return bench::batchBundle(
                                   bench::Dataset::DiffusionDB, 3000,
                                   3000);
                           }}});
    const auto results = bench::runSweep(spec);

    const double vanilla = results.front().throughputPerMin;
    const std::vector<const char *> paper = {"1.0", "1.2", "2.0", "2.4",
                                             "2.9"};
    Table t({"system", "throughput/min", "normalized", "paper",
             "hit rate"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        t.addRow({lineup[i].name,
                  Table::fmt(results[i].throughputPerMin),
                  Table::fmt(results[i].throughputPerMin / vanilla, 2),
                  paper[i],
                  Table::fmt(results[i].hitRate)});
    }
    t.print("Fig. 8 — max throughput, large model FLUX, DiffusionDB "
            "(3000 reqs, warm cache 3000, 4x A40)");
    return 0;
}

/**
 * @file
 * Machine-readable perf snapshot: runs a pinned canonical sweep and
 * emits BENCH_serving.json, so CI archives one comparable artifact per
 * commit and the serving-performance trajectory is tracked across PRs
 * instead of living in scrollback.
 *
 * The sweep is deliberately frozen — paper line-up on a DiffusionDB
 * Poisson trace, one multi-node affinity cell, one failover cell (a
 * midpoint node kill under k=2 replication, tracking recovery time
 * and rerouted requests), plus a retrieval microbench per backend —
 * and versioned by the `schema` field; bump it when cells change so
 * downstream tooling never compares incompatible snapshots. Schema 2
 * added the failover cell and the per-cell `rerouted_requests` /
 * `recovery_time_s` resilience fields. Schema 3 added the memory
 * axis: per-cell `retrieval_backend` / `retrieval_bytes_per_entry`,
 * plus HNSW and IVF-PQ rows (with `bytes_per_entry`) in the
 * retrieval microbench. Schema 4 added kernel provenance: a top-level
 * `kernel` object (active dot-kernel dispatch tier + whether
 * MODM_KERNEL forced it) and a per-cell `kernel` field. Schema 5
 * turns the observability layer on for every cell: per-cell
 * `trace_events` / `trace_hash` (event count and final rolling hash
 * of the run's event log — the determinism fingerprint trace_diff
 * compares) and a top-level `timeseries` path naming the streaming-
 * metrics CSV artifact (<output-stem>_timeseries.csv, one row per
 * virtual-clock window per metric per cell) written alongside the
 * JSON. Tracing is observation-only, and like the kernel fields the
 * trace/metrics outputs are excluded from resultDigest, so serving
 * numbers are unchanged from schema 4. Serving metrics are
 * virtual-time and bit-deterministic across kernel tiers (kernels.hh
 * pins the summation order); the us/query retrieval column is wall
 * time and is the only machine-dependent number in the file.
 *
 * Usage: bench_serving_json [output-path]   (default BENCH_serving.json)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "src/common/kernels.hh"
#include "src/embedding/vector_index.hh"

using namespace modm;

namespace {

constexpr int kSchema = 5;
constexpr std::size_t kWarm = 800;
constexpr std::size_t kRequests = 2000;
constexpr double kRatePerMin = 12.0;
/** Streaming-metrics window (virtual seconds) for every cell. */
constexpr double kMetricsWindowS = 60.0;
constexpr std::size_t kRetrievalRows = 4000;
constexpr std::size_t kRetrievalQueries = 400;

/** One retrieval-microbench point. */
struct RetrievalPoint
{
    double usPerQuery = 0.0;
    double bytesPerEntry = 0.0;
};

/** Wall-clock latency + memory footprint at the pinned size. */
RetrievalPoint
measureBackend(const embedding::RetrievalBackendConfig &retrieval)
{
    auto gen = workload::makeDiffusionDB(7);
    diffusion::Sampler sampler(11);
    embedding::ImageEncoder image;
    embedding::TextEncoder text;
    auto index = embedding::makeVectorIndex(retrieval,
                                            embedding::kEmbeddingDim);
    index->reserve(kRetrievalRows);
    for (std::size_t i = 0; i < kRetrievalRows; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        index->insert(1 + i,
                      image.encode(img.content, img.fidelity, img.id));
    }
    std::vector<embedding::Embedding> queries;
    queries.reserve(kRetrievalQueries);
    for (std::size_t q = 0; q < kRetrievalQueries; ++q) {
        const auto p = gen->next();
        queries.push_back(
            text.encode(p.visualConcept, p.lexicalStyle, p.text));
    }
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &q : queries)
        sink += index->best(q).similarity;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (sink == -1e30)
        std::fprintf(stderr, "impossible\n");
    return {seconds * 1e6 / static_cast<double>(queries.size()),
            static_cast<double>(index->memoryBytes()) /
                static_cast<double>(kRetrievalRows)};
}

std::string
num(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "BENCH_serving.json";

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 1200;

    bench::SweepSpec spec;
    spec.options.title = "BENCH_serving";
    std::vector<double> cellRates; // parallel to spec.cells
    const auto bundle = [] {
        return bench::poissonBundle(bench::Dataset::DiffusionDB, kWarm,
                                    kRequests, kRatePerMin);
    };
    for (const auto &system :
         bench::paperLineup(diffusion::sd35Large(), params)) {
        spec.add(system.name, system.config, bundle);
        cellRates.push_back(kRatePerMin);
    }
    // One cluster cell so multi-node regressions show in the
    // trajectory; it gets a doubled worker budget and arrival rate.
    {
        baselines::PresetParams cluster = params;
        cluster.numWorkers = 8;
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), cluster);
        config.cluster.numNodes = 4;
        config.cluster.routing = serving::RoutingPolicy::ConsistentHash;
        spec.add("MoDM-SDXL/4node-affinity", config, [] {
            return bench::poissonBundle(bench::Dataset::DiffusionDB,
                                        kWarm, kRequests,
                                        2.0 * kRatePerMin);
        });
        cellRates.push_back(2.0 * kRatePerMin);
    }
    // One failover cell so the resilience trajectory is tracked per
    // commit: k=2 replicated affinity cluster, node 1 killed a third
    // of the way into the trace; recovery_time_s and
    // rerouted_requests below come from its FailoverReport.
    {
        baselines::PresetParams cluster = params;
        cluster.numWorkers = 8;
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), cluster);
        config.cluster.numNodes = 4;
        config.cluster.routing = serving::RoutingPolicy::ConsistentHash;
        config.cluster.cachePartitioning =
            serving::CachePartitioning::Replicated;
        config.cluster.replicationFactor = 2;
        const auto probe = bench::poissonBundle(
            bench::Dataset::DiffusionDB, kWarm, kRequests,
            2.0 * kRatePerMin);
        config.faults.add(probe.trace[kRequests / 3].arrival, 1,
                          serving::FaultKind::Kill);
        spec.add("MoDM-SDXL/4node-kill-replicated", config, [] {
            return bench::poissonBundle(bench::Dataset::DiffusionDB,
                                        kWarm, kRequests,
                                        2.0 * kRatePerMin);
        });
        cellRates.push_back(2.0 * kRatePerMin);
    }
    // Schema 5: every cell records its event trace and a streaming
    // metrics series. Observation-only — serving numbers and digests
    // are bit-identical to an untraced run.
    for (auto &cell : spec.cells) {
        cell.config.trace.events = true;
        cell.config.trace.metricsWindow = kMetricsWindowS;
    }
    const auto results = bench::runSweep(spec);

    embedding::RetrievalBackendConfig flat;
    embedding::RetrievalBackendConfig ivf;
    ivf.kind = embedding::RetrievalBackend::Ivf;
    embedding::RetrievalBackendConfig hnsw;
    hnsw.kind = embedding::RetrievalBackend::Hnsw;
    embedding::RetrievalBackendConfig pq;
    pq.kind = embedding::RetrievalBackend::IvfPq;
    struct NamedPoint
    {
        const char *name;
        RetrievalPoint point;
    };
    const NamedPoint retrievalPoints[] = {
        {"Flat", measureBackend(flat)},
        {"IVF", measureBackend(ivf)},
        {"HNSW", measureBackend(hnsw)},
        {"IVF-PQ", measureBackend(pq)},
    };
    constexpr std::size_t kNumRetrievalPoints =
        sizeof(retrievalPoints) / sizeof(retrievalPoints[0]);

    // The metrics time series lives next to the JSON as
    // <output-stem>_timeseries.csv; the JSON names it so downstream
    // tooling finds both from one artifact path.
    std::string csvPath = path;
    const std::string::size_type dot = csvPath.rfind(".json");
    if (dot != std::string::npos && dot + 5 == csvPath.size())
        csvPath.resize(dot);
    csvPath += "_timeseries.csv";
    {
        FILE *csv = std::fopen(csvPath.c_str(), "w");
        if (!csv) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         csvPath.c_str());
            return 1;
        }
        for (std::size_t i = 0; i < spec.cells.size(); ++i) {
            std::string text =
                results[i].series.csv(spec.cells[i].label);
            if (i > 0) {
                // Drop the repeated comment + header lines so the
                // concatenated file parses as one CSV; the cell
                // column distinguishes the series.
                std::string::size_type skip = text.find('\n');
                if (skip != std::string::npos)
                    skip = text.find('\n', skip + 1);
                text.erase(0, skip == std::string::npos
                                  ? text.size()
                                  : skip + 1);
            }
            std::fputs(text.c_str(), csv);
        }
        std::fclose(csv);
    }

    FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"schema\": %d,\n", kSchema);
    const kernels::KernelInfo kernel = kernels::active();
    std::fprintf(out,
                 "  \"kernel\": {\"name\": \"%s\", \"forced\": %s},\n",
                 kernel.name, kernel.fromEnv ? "true" : "false");
    std::fprintf(out, "  \"timeseries\": \"%s\",\n", csvPath.c_str());
    std::fprintf(out,
                 "  \"sweep\": {\"dataset\": \"DiffusionDB\", "
                 "\"warm\": %zu, \"requests\": %zu},\n",
                 kWarm, kRequests);
    std::fprintf(out, "  \"serving\": [\n");
    for (std::size_t i = 0; i < spec.cells.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"rate_per_min\": %s, "
            "\"throughput_per_min\": %s, "
            "\"hit_rate\": %s, \"p50_latency_s\": %s, "
            "\"p99_latency_s\": %s, \"recall_at1\": %s, "
            "\"load_imbalance\": %s, \"num_nodes\": %zu, "
            "\"rerouted_requests\": %llu, \"recovery_time_s\": %s, "
            "\"retrieval_backend\": \"%s\", "
            "\"retrieval_bytes_per_entry\": %s, "
            "\"kernel\": \"%s\", "
            "\"trace_events\": %llu, "
            "\"trace_hash\": \"%016llx\"}%s\n",
            spec.cells[i].label.c_str(), num(cellRates[i]).c_str(),
            num(r.throughputPerMin).c_str(), num(r.hitRate).c_str(),
            num(r.metrics.latencyPercentile(50.0)).c_str(),
            num(r.metrics.latencyPercentile(99.0)).c_str(),
            num(r.retrievalRecallAt1).c_str(),
            num(r.loadImbalance).c_str(), r.numNodes,
            static_cast<unsigned long long>(r.failover.rerouted),
            // -1 = no kill in this cell (or recovery never proven).
            num(r.failover.hitRateRecoveryS).c_str(),
            embedding::retrievalBackendName(r.retrievalBackend),
            // End-of-run footprint over end-of-run entries; 0 when
            // the final cache is empty.
            num(r.cacheSize > 0
                    ? static_cast<double>(r.retrievalMemoryBytes) /
                          static_cast<double>(r.cacheSize)
                    : 0.0)
                .c_str(),
            r.kernel.c_str(),
            static_cast<unsigned long long>(r.trace.events),
            static_cast<unsigned long long>(r.trace.hash),
            i + 1 < spec.cells.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"retrieval\": [\n");
    for (std::size_t i = 0; i < kNumRetrievalPoints; ++i) {
        const auto &p = retrievalPoints[i];
        std::fprintf(out,
                     "    {\"backend\": \"%s\", \"rows\": %zu, "
                     "\"us_per_query\": %s, "
                     "\"bytes_per_entry\": %s}%s\n",
                     p.name, kRetrievalRows,
                     num(p.point.usPerQuery).c_str(),
                     num(p.point.bytesPerEntry).c_str(),
                     i + 1 < kNumRetrievalPoints ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu serving cells, %zu retrieval points) "
                "and %s\n",
                path.c_str(), spec.cells.size(), kNumRetrievalPoints,
                csvPath.c_str());
    return 0;
}

/**
 * @file
 * Paper Fig. 18 (appendix A.4): energy savings relative to the Vanilla
 * SD3.5L baseline.
 *
 * Paper shape: Nirvana 23.9 %, MoDM-SDXL 46.7 %, MoDM-SANA 66.3 %.
 * Savings compound from (1) skipped de-noising steps and (2) running
 * the remaining steps on a lower-power small model.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.gpu = diffusion::GpuKind::A40;
    params.cacheCapacity = 3000;

    const std::vector<bench::SystemSpec> lineup = {
        {"Vanilla", baselines::vanilla(diffusion::sd35Large(), params)},
        {"NIRVANA", baselines::nirvana(diffusion::sd35Large(), params)},
        {"MoDM-SDXL", baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params)},
        {"MoDM-SANA", baselines::modm(diffusion::sd35Large(),
                                      diffusion::sana(), params)},
    };
    const std::vector<const char *> paper = {"0.0%", "23.9%", "46.7%",
                                             "66.3%"};

    bench::SweepSpec spec;
    spec.options.title = "Fig. 18";
    spec.addGrid(lineup, {{"", [] {
                               return bench::batchBundle(
                                   bench::Dataset::DiffusionDB, 3000,
                                   3000);
                           }}});
    const auto results = bench::runSweep(spec);

    // Compare energy per completed request over the same workload; the
    // batch runs have different durations, so the per-request compute
    // energy (excluding idle draw) is the apples-to-apples number Zeus
    // reports for busy clusters.
    std::vector<double> energyPerRequest;
    for (const auto &result : results)
        energyPerRequest.push_back(result.energyJ /
                                   result.metrics.count());

    Table t({"system", "energy/request (kJ)", "savings", "paper"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        const double savings =
            1.0 - energyPerRequest[i] / energyPerRequest.front();
        t.addRow({lineup[i].name,
                  Table::fmt(energyPerRequest[i] / 1e3, 1),
                  Table::fmt(100.0 * savings, 1) + "%", paper[i]});
    }
    t.print("Fig. 18 — energy savings vs Vanilla (3000 reqs, 4x A40)");
    return 0;
}

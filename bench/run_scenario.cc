/**
 * @file
 * Execute any scenario file (scenarios/<name>.scn) through the sweep
 * engine.
 *
 * stdout carries exactly the rendered report table — byte-identical
 * across sweep parallelism levels, and byte-identical to the legacy
 * hard-coded figure binary for the scenarios that port one (pinned by
 * the scenario-goldens CI job). Digests (the scenario's semantic digest
 * plus one result digest per cell) go to stderr and, with
 * --digest-out, to a file the CI job diffs against the checked-in
 * golden.
 *
 * Usage: run_scenario <file.scn> [--digest-out <path>] [--canonical]
 *                     [--trace-dir <dir>]
 *   --canonical  print the canonical serialization to stdout and exit
 *                (normalizes hand-written scenario files for review).
 *   --trace-dir  record an event trace per serving-mode cell and write
 *                it to <dir>/<scenario>-<cell>.mtrace (see
 *                bench/trace_diff for the record/replay loop). Results
 *                and digests are byte-identical with tracing on.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "src/serving/scenario_exec.hh"
#include "src/workload/scenario.hh"

using namespace modm;

namespace {

/**
 * Sweep banner: the title up to the first " — " separator (so the
 * Fig. 6 port shows "[Fig. 6]" progress lines exactly like the legacy
 * binary), the scenario name when there is no title.
 */
std::string
sweepTitle(const workload::Scenario &scenario)
{
    if (scenario.title.empty())
        return scenario.name;
    const auto cut = scenario.title.find(" — ");
    return cut == std::string::npos ? scenario.title
                                    : scenario.title.substr(0, cut);
}

/** Table banner: the title verbatim, the scenario name otherwise. */
std::string
tableTitle(const workload::Scenario &scenario)
{
    return scenario.title.empty() ? "scenario " + scenario.name
                                  : scenario.title;
}

/** Cell label as a filename component (non-alphanumerics to '-'). */
std::string
fileLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool keep = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '.' || c == '-' || c == '_';
        if (!keep)
            c = '-';
    }
    return out;
}

/** Hex-float digest of a hit-rate curve (resultDigest convention). */
std::uint64_t
curveDigest(const std::vector<double> &curve)
{
    std::string text;
    char buf[64];
    for (const double v : curve) {
        std::snprintf(buf, sizeof buf, "%a\n", v);
        text += buf;
    }
    return workload::fnv1a64(text);
}

/** One "key value" digest line in the canonical %016llx format. */
std::string
digestLine(const std::string &key, std::uint64_t digest)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest));
    return key + " " + buf + "\n";
}

void
renderHitCurve(const workload::Scenario &scenario,
               const std::vector<workload::ScenarioCell> &cells,
               const std::vector<std::vector<double>> &curves)
{
    std::vector<std::string> headers = {"requests"};
    for (const auto &cell : cells)
        headers.push_back("hit rate (" + cell.label + ")");
    Table t(headers);
    const std::size_t rows = curves.empty() ? 0 : curves.front().size();
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<std::string> row = {Table::fmt(
            static_cast<std::uint64_t>((i + 1) * scenario.window))};
        for (const auto &curve : curves)
            row.push_back(Table::fmt(curve[i], 3));
        t.addRow(row);
    }
    t.print(tableTitle(scenario));
}

void
renderEnergy(const workload::Scenario &scenario,
             const std::vector<workload::ScenarioCell> &cells,
             const std::vector<serving::ServingResult> &results)
{
    std::vector<double> energyPerRequest;
    for (const auto &result : results)
        energyPerRequest.push_back(result.energyJ /
                                   result.metrics.count());

    Table t({"system", "energy/request (kJ)", "savings", "paper"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const double savings =
            1.0 - energyPerRequest[i] / energyPerRequest.front();
        t.addRow({cells[i].label,
                  Table::fmt(energyPerRequest[i] / 1e3, 1),
                  Table::fmt(100.0 * savings, 1) + "%",
                  cells[i].paper});
    }
    t.print(tableTitle(scenario));
}

void
renderTable(const workload::Scenario &scenario,
            const std::vector<workload::ScenarioCell> &cells,
            const std::vector<serving::ServingResult> &results)
{
    Table t({"cell", "completed", "throughput/min", "hit rate",
             "mean latency (s)", "p99 (s)", "energy (kJ)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &r = results[i];
        t.addRow({cells[i].label,
                  Table::fmt(static_cast<std::uint64_t>(
                      r.metrics.count())),
                  Table::fmt(r.throughputPerMin, 1),
                  Table::fmt(r.hitRate, 3),
                  Table::fmt(r.metrics.meanLatency(), 2),
                  Table::fmt(r.metrics.latencyPercentile(99.0), 2),
                  Table::fmt(r.energyJ / 1e3, 1)});
    }
    t.print(tableTitle(scenario));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string digestOut;
    std::string traceDir;
    bool canonical = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--canonical") == 0) {
            canonical = true;
        } else if (std::strcmp(argv[i], "--digest-out") == 0) {
            if (++i >= argc)
                fatal("--digest-out needs a path");
            digestOut = argv[i];
        } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
            if (++i >= argc)
                fatal("--trace-dir needs a directory");
            traceDir = argv[i];
        } else if (path.empty()) {
            path = argv[i];
        } else {
            fatal("usage: run_scenario <file.scn> "
                  "[--digest-out <path>] [--canonical] "
                  "[--trace-dir <dir>]");
        }
    }
    if (path.empty())
        fatal("usage: run_scenario <file.scn> "
              "[--digest-out <path>] [--canonical] "
              "[--trace-dir <dir>]");

    const auto scenario = workload::loadScenarioFile(path);
    if (canonical) {
        std::fputs(workload::canonicalScenario(scenario).c_str(),
                   stdout);
        return 0;
    }

    std::vector<workload::ScenarioCell> cells;
    for (std::size_t i = 0; i < scenario.cellCount(); ++i)
        cells.push_back(scenario.cell(i));

    bench::SweepOptions options;
    options.title = sweepTitle(scenario);
    std::vector<std::string> labels;
    for (const auto &cell : cells)
        labels.push_back(cell.label);

    // Digest text: scenario digest first, then one line per cell, then
    // a combined digest folding the cell lines over the scenario's.
    std::string digests =
        digestLine("scenario " + scenario.name,
                   workload::scenarioDigest(scenario));
    std::uint64_t combined = workload::scenarioDigest(scenario);

    if (scenario.mode == workload::ScenarioMode::CacheStream) {
        if (!traceDir.empty())
            warn("--trace-dir ignored: cache-stream scenarios run no "
                 "event queue");
        std::vector<std::function<std::vector<double>()>> cellFns;
        for (const auto &cell : cells) {
            cellFns.push_back([&scenario, cell] {
                return serving::runScenarioCacheStream(scenario, cell);
            });
        }
        const auto curves = bench::runCells<std::vector<double>>(
            cellFns, options, labels);
        renderHitCurve(scenario, cells, curves);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto line =
                digestLine("cell " + cells[i].label,
                           curveDigest(curves[i]));
            digests += line;
            combined = workload::fnv1a64(line, combined);
        }
    } else {
        std::vector<std::function<serving::ServingResult()>> cellFns;
        for (const auto &cell : cells) {
            obs::TraceConfig trace;
            if (!traceDir.empty()) {
                trace.events = true;
                trace.path = traceDir + "/" + scenario.name + "-" +
                    fileLabel(cell.label) + ".mtrace";
            }
            cellFns.push_back([&scenario, cell, trace] {
                return serving::runScenarioCell(scenario, cell, trace);
            });
        }
        const auto results = bench::runCells<serving::ServingResult>(
            cellFns, options, labels);
        if (scenario.report == workload::ScenarioReport::Energy)
            renderEnergy(scenario, cells, results);
        else
            renderTable(scenario, cells, results);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto line = digestLine(
                "cell " + cells[i].label,
                workload::fnv1a64(serving::resultDigest(results[i])));
            digests += line;
            combined = workload::fnv1a64(line, combined);
        }
    }
    digests += digestLine("combined", combined);

    std::fputs(digests.c_str(), stderr);
    if (!digestOut.empty()) {
        FILE *f = std::fopen(digestOut.c_str(), "w");
        if (!f)
            fatal("cannot write %s", digestOut.c_str());
        std::fputs(digests.c_str(), f);
        std::fclose(f);
    }
    return 0;
}

/**
 * @file
 * Design-choice ablation (paper §5.3): the PID stabiliser on the
 * global monitor.
 *
 * Compares the paper's gains (0.6/0.05/0.05) against a proportional
 * jump controller (kp = 1, ki = kd = 0 — i.e. adopt the heuristic
 * immediately) on a noisy demand trace. The PID should cut allocation
 * flips and model reloads while keeping throughput.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

struct AblationRow
{
    double throughput = 0.0;
    std::uint64_t modelSwitches = 0;
    std::uint64_t allocationFlips = 0;
    double p99 = 0.0;
};

AblationRow
toRow(const serving::ServingResult &result)
{
    AblationRow row;
    row.throughput = result.throughputPerMin;
    row.modelSwitches = result.modelSwitches;
    row.p99 = result.metrics.latencyPercentile(99.0);
    for (std::size_t i = 1; i < result.allocations.size(); ++i) {
        row.allocationFlips += result.allocations[i].numLarge !=
            result.allocations[i - 1].numLarge;
    }
    return row;
}

} // namespace

int
main()
{
    // Fast alternation between light and heavy demand — the regime
    // where an undamped controller thrashes.
    std::vector<workload::RateSegment> segments;
    for (int i = 0; i < 10; ++i) {
        segments.push_back({240.0, 6.0});
        segments.push_back({240.0, 22.0});
    }
    const double duration = 240.0 * segments.size();

    const auto makeBundle = [segments, duration] {
        bench::WorkloadBundle bundle;
        auto gen = workload::makeDiffusionDB(42);
        for (int i = 0; i < 2500; ++i)
            bundle.warm.push_back(gen->next());
        workload::PiecewiseArrivals arrivals(segments);
        Rng rng(42);
        bundle.trace = workload::buildTraceForDuration(*gen, arrivals,
                                                       duration, rng);
        return bundle;
    };

    baselines::PresetParams params;
    params.numWorkers = 16;
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 4000;

    bench::SweepSpec spec;
    spec.options.title = "Ablation PID";
    for (const auto &[name, gains] :
         std::vector<std::pair<const char *, serving::PidGains>>{
             {"PID 0.6/0.05/0.05 (paper)",
              {.kp = 0.6, .ki = 0.05, .kd = 0.05}},
             {"proportional jump (kp=1)",
              {.kp = 1.0, .ki = 0.0, .kd = 0.0}}}) {
        auto config = baselines::modmMulti(
            diffusion::sd35Large(),
            {diffusion::sdxl(), diffusion::sana()}, params);
        config.pid = gains;
        spec.add(name, config, makeBundle);
    }
    const auto results = bench::runSweep(spec);
    const auto pid = toRow(results[0]);
    const auto jump = toRow(results[1]);

    Table t({"controller", "throughput/min", "allocation changes",
             "model reloads", "p99 (s)"});
    t.addRow({"PID 0.6/0.05/0.05 (paper)", Table::fmt(pid.throughput),
              Table::fmt(pid.allocationFlips),
              Table::fmt(pid.modelSwitches), Table::fmt(pid.p99, 0)});
    t.addRow({"proportional jump (kp=1)", Table::fmt(jump.throughput),
              Table::fmt(jump.allocationFlips),
              Table::fmt(jump.modelSwitches), Table::fmt(jump.p99, 0)});
    t.print("Ablation — PID damping of the global monitor "
            "(alternating 6/22 req/min demand, 16x MI210)");
    return 0;
}

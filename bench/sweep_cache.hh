/**
 * @file
 * Incremental sweep result cache: content-addressed persistence for
 * sweep cells, so re-running a figure/ablation binary with an
 * unchanged configuration recomputes nothing.
 *
 * Every cached cell is keyed by (code-version salt, semantic key):
 *
 *  - The semantic key is a single line the binary builds from every
 *    input that determines the cell's result — binary name, cell
 *    label, knob values, trace sizes, env switches that change what is
 *    computed. Two cells with equal keys MUST be byte-equal
 *    computations.
 *  - The salt defaults to an FNV-1a hash of the running executable's
 *    own image (/proc/self/exe), so ANY rebuild — a one-line change in
 *    a src/ library included via relink — invalidates the whole cache
 *    without tracking dependencies. MODM_SWEEP_CACHE_SALT overrides it
 *    (tests pin a fixed salt; power users can share caches across
 *    rebuilds they know are equivalent).
 *
 * Entries live one-per-file under MODM_SWEEP_CACHE_DIR (default
 * build/sweep-cache), named by the hash of (salt, key) with the full
 * key stored verbatim inside — a load re-checks salt and key
 * string-equality, so hash collisions and stale salts read as misses,
 * never as wrong data. Malformed or truncated files also read as
 * misses and are recomputed; the cache can be deleted at any time.
 *
 * Payloads are caller-encoded strings. For the common numeric-cell
 * case, encodeDoubles/decodeDoubles round-trip doubles through C99
 * hex-float (%a) formatting, so a warm table is byte-identical to the
 * cold run that populated it — including wall-clock columns, which
 * replay the measured (cold) values instead of re-measuring.
 *
 * The cache is OPT-IN via MODM_SWEEP_CACHE=1: determinism CI compares
 * parallelism levels by recomputation, which a silently-warm cache
 * would short-circuit.
 */

#ifndef MODM_BENCH_SWEEP_CACHE_HH
#define MODM_BENCH_SWEEP_CACHE_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/log.hh"

namespace modm::bench {

/** FNV-1a 64-bit over a byte range (stable across platforms). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t n,
        std::uint64_t h = 14695981039346656037ull)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** True when MODM_SWEEP_CACHE=1 enables the cell cache. */
inline bool
sweepCacheEnabled()
{
    const char *env = std::getenv("MODM_SWEEP_CACHE");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

/** Cache directory (MODM_SWEEP_CACHE_DIR, default build/sweep-cache). */
inline std::string
sweepCacheDir()
{
    if (const char *env = std::getenv("MODM_SWEEP_CACHE_DIR")) {
        if (env[0] != '\0')
            return env;
    }
    return "build/sweep-cache";
}

/**
 * Hash of the running binary's own image, computed once per process.
 * An unreadable image degrades to a constant — correctness then rests
 * on the verbatim key check alone.
 */
inline const std::string &
selfImageHash()
{
    static const std::string hash = [] {
        std::uint64_t h = 14695981039346656037ull;
        bool hashed = false;
        if (FILE *self = std::fopen("/proc/self/exe", "rb")) {
            char buf[1 << 16];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, self)) > 0) {
                h = fnv1a64(buf, n, h);
                hashed = true;
            }
            std::fclose(self);
        }
        if (!hashed)
            return std::string("unsalted");
        char out[24];
        std::snprintf(out, sizeof out, "%016llx",
                      static_cast<unsigned long long>(h));
        return std::string(out);
    }();
    return hash;
}

/**
 * Code-version salt: MODM_SWEEP_CACHE_SALT when set, else the hash of
 * the running binary. The env read is NOT memoized (only the image
 * hash is), so tests can flip the salt mid-process and watch entries
 * invalidate.
 */
inline std::string
sweepCacheSalt()
{
    if (const char *env = std::getenv("MODM_SWEEP_CACHE_SALT")) {
        if (env[0] != '\0')
            return env;
    }
    return selfImageHash();
}

/** Entry path for a key: hash(salt \n key) under the cache dir. */
inline std::string
sweepCachePath(const std::string &key)
{
    const std::string full = sweepCacheSalt() + "\n" + key;
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.cell",
                  static_cast<unsigned long long>(
                      fnv1a64(full.data(), full.size())));
    return sweepCacheDir() + "/" + name;
}

/**
 * Look up a cell payload. True only when the entry exists, carries
 * the current salt, and stores this exact key (collisions and stale
 * or corrupted entries read as misses).
 */
inline bool
sweepCacheLoad(const std::string &key, std::string &payload)
{
    if (!sweepCacheEnabled())
        return false;
    MODM_ASSERT(key.find('\n') == std::string::npos,
                "sweep-cache keys must be single-line");
    FILE *in = std::fopen(sweepCachePath(key).c_str(), "rb");
    if (in == nullptr)
        return false;
    std::string text;
    char buf[1 << 12];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0)
        text.append(buf, n);
    const bool readError = std::ferror(in) != 0;
    std::fclose(in);
    if (readError)
        return false;
    // Header: magic, salt, key — each its own line, matched verbatim.
    const std::string expect = "modm-sweep-cache v1\n" +
        sweepCacheSalt() + "\n" + key + "\n";
    if (text.size() < expect.size() ||
        text.compare(0, expect.size(), expect) != 0)
        return false;
    payload = text.substr(expect.size());
    return true;
}

/**
 * Persist a cell payload (no-op when the cache is off). Writes to a
 * temp file and renames, so a concurrent reader never sees a torn
 * entry; a failed write leaves at most a stray .tmp behind.
 */
inline void
sweepCacheStore(const std::string &key, const std::string &payload)
{
    if (!sweepCacheEnabled())
        return;
    MODM_ASSERT(key.find('\n') == std::string::npos,
                "sweep-cache keys must be single-line");
    std::error_code ec;
    std::filesystem::create_directories(sweepCacheDir(), ec);
    if (ec)
        return;
    const std::string path = sweepCachePath(key);
    const std::string tmp = path + ".tmp";
    FILE *out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr)
        return;
    const std::string text = "modm-sweep-cache v1\n" +
        sweepCacheSalt() + "\n" + key + "\n" + payload;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    std::fclose(out);
    if (ok)
        std::filesystem::rename(tmp, path, ec);
    else
        std::filesystem::remove(tmp, ec);
}

/**
 * Encode doubles as one hex-float (%a) line: exact round-trip, so a
 * warm cell replays bit-identical values.
 */
inline std::string
encodeDoubles(const std::vector<double> &values)
{
    std::string out;
    out.reserve(values.size() * 26 + 2);
    char buf[64];
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::snprintf(buf, sizeof buf, i == 0 ? "%a" : " %a",
                      values[i]);
        out += buf;
    }
    out += "\n";
    return out;
}

/** Decode an encodeDoubles payload; false on any malformed token. */
inline bool
decodeDoubles(const std::string &payload, std::vector<double> &values)
{
    values.clear();
    const char *p = payload.c_str();
    while (*p == ' ' || *p == '\n')
        ++p;
    while (*p != '\0') {
        char *end = nullptr;
        const double v = std::strtod(p, &end);
        if (end == p)
            return false; // trailing garbage: corrupted entry
        values.push_back(v);
        p = end;
        while (*p == ' ' || *p == '\n')
            ++p;
    }
    return !values.empty();
}

/**
 * The one-liner sweep binaries use: return the cached doubles for
 * `key` when present (and exactly `count` long), else compute, store,
 * and return them. The computed vector must always be `count` long —
 * the payload length doubles as a structural checksum.
 */
template <typename Compute>
std::vector<double>
cachedCell(const std::string &key, std::size_t count, Compute &&compute)
{
    std::string payload;
    std::vector<double> values;
    if (sweepCacheLoad(key, payload) &&
        decodeDoubles(payload, values) && values.size() == count)
        return values;
    values = compute();
    MODM_ASSERT(values.size() == count,
                "sweep-cache cell \"%s\" computed %zu values, "
                "expected %zu",
                key.c_str(), values.size(), count);
    sweepCacheStore(key, encodeDoubles(values));
    return values;
}

} // namespace modm::bench

#endif // MODM_BENCH_SWEEP_CACHE_HH

/**
 * @file
 * Declarative experiment sweeps for the figure/table binaries.
 *
 * Every bench binary used to hand-roll the same loop: build a
 * (system × dataset × knob) line-up, run one ServingSystem per cell on
 * one core, tabulate. runSweep()/runCells() replace that boilerplate
 * with a declarative cell list executed *concurrently* on the shared
 * task pool — experiments are share-nothing (each cell constructs its
 * own workload and system from its config seed), so a sweep at
 * parallelism N produces bit-identical results to parallelism 1, just
 * N-ish times faster. Results always come back in cell-declaration
 * order and tables are rendered only after every cell finished, which
 * keeps stdout byte-identical across parallelism levels (per-cell
 * progress goes to stderr).
 *
 * Cells can also persist across runs: sweep_cache.hh (included here)
 * gives binaries a content-addressed per-cell result cache keyed by a
 * semantic config digest plus a code-version salt, so re-running an
 * unchanged figure binary replays its cells instead of recomputing
 * them (see ablation_retrieval_backend for the wiring pattern).
 *
 * Environment knobs (so CI can pin determinism without rebuilding):
 *   MODM_SWEEP_PARALLELISM  0 = match the pool (default), 1 = serial,
 *                           N = at most N cells in flight.
 *   MODM_SWEEP_PROGRESS     0 silences the stderr progress lines.
 *   MODM_SWEEP_CACHE        1 enables the persistent cell cache
 *                           (default off: determinism CI must
 *                           recompute, not replay).
 *   MODM_SWEEP_CACHE_DIR    cache directory (build/sweep-cache).
 *   MODM_SWEEP_CACHE_SALT   overrides the code-version salt (defaults
 *                           to a hash of the running binary).
 *   MODM_SWEEP_VERIFY       1 re-runs every cell serially after the
 *                           sweep and cross-checks resultDigest; a
 *                           mismatch re-runs the offending cell with
 *                           event tracing and reports the first
 *                           divergent event (see obs/trace.hh) before
 *                           failing.
 */

#ifndef MODM_BENCH_SWEEP_HH
#define MODM_BENCH_SWEEP_HH

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hh"
#include "bench/sweep_cache.hh"
#include "src/common/log.hh"
#include "src/common/thread_pool.hh"
#include "src/obs/trace.hh"

namespace modm::bench {

/** Execution options for one sweep. */
struct SweepOptions
{
    /** Shown in progress lines, e.g. "Fig. 7". */
    std::string title;
    /**
     * Cells in flight at once: 0 = match the global pool's
     * concurrency, 1 = serial (reference ordering), N = cap at N.
     * MODM_SWEEP_PARALLELISM overrides when set.
     */
    std::size_t parallelism = 0;
    /** Per-cell progress lines on stderr (MODM_SWEEP_PROGRESS=0 off). */
    bool progress = true;
};

/** Effective cell concurrency after env override. */
inline std::size_t
resolveSweepParallelism(const SweepOptions &options)
{
    if (const char *env = std::getenv("MODM_SWEEP_PARALLELISM")) {
        const long v = std::atol(env);
        if (v == 0)
            return ThreadPool::global().concurrency();
        if (v >= 1)
            return static_cast<std::size_t>(v);
    }
    if (options.parallelism == 0)
        return ThreadPool::global().concurrency();
    return options.parallelism;
}

/** Effective progress flag after env override. */
inline bool
resolveSweepProgress(const SweepOptions &options)
{
    if (const char *env = std::getenv("MODM_SWEEP_PROGRESS")) {
        if (env[0] == '0' && env[1] == '\0')
            return false;
    }
    return options.progress;
}

/**
 * Run every cell function concurrently (capped per options) and return
 * their results in cell order. The engine is generic over the result
 * type so binaries with bespoke measurements (streamed cache
 * simulations, quality evaluations) use the same scheduler as full
 * serving runs.
 *
 * Cells must be share-nothing: no mutable state reachable from two
 * cells, results derived only from the cell's own inputs. Cells run on
 * the global task pool and may themselves use it (nested sharded
 * retrieval works).
 */
template <typename R>
std::vector<R>
runCells(std::vector<std::function<R()>> cells,
         const SweepOptions &options = {},
         const std::vector<std::string> &labels = {})
{
    MODM_ASSERT(labels.empty() || labels.size() == cells.size(),
                "sweep labels must align with cells");
    const std::size_t n = cells.size();
    std::vector<R> results(n);
    if (n == 0)
        return results;

    const bool progress = resolveSweepProgress(options);
    const std::size_t parallelism =
        std::min(resolveSweepParallelism(options), n);
    const auto started = std::chrono::steady_clock::now();

    std::mutex progressMutex;
    std::atomic<std::size_t> nextCell{0};
    std::atomic<std::size_t> doneCells{0};
    const auto runOne = [&](std::size_t i) {
        const auto cellStarted = std::chrono::steady_clock::now();
        results[i] = cells[i]();
        const std::size_t done = ++doneCells;
        if (progress) {
            // Per-cell wall time alongside the sweep total, so every
            // figure binary reports where time goes without a profiler.
            const auto now = std::chrono::steady_clock::now();
            const double cellElapsed =
                std::chrono::duration<double>(now - cellStarted)
                    .count();
            const double elapsed =
                std::chrono::duration<double>(now - started).count();
            std::lock_guard<std::mutex> lock(progressMutex);
            std::fprintf(stderr,
                         "[%s] %zu/%zu done%s%s (cell %.1fs, "
                         "total %.1fs)\n",
                         options.title.empty() ? "sweep"
                                               : options.title.c_str(),
                         done, n, labels.empty() ? "" : ": ",
                         labels.empty() ? "" : labels[i].c_str(),
                         cellElapsed, elapsed);
        }
    };

    if (parallelism <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            runOne(i);
        return results;
    }

    // Pullers claim cells from a shared counter: at most `parallelism`
    // cells in flight, no idle tail when cell costs are skewed.
    // parallelFor runs puller zero on the caller, so progress never
    // depends on free pool workers (sweeps themselves may run inside
    // pool tasks).
    ThreadPool::global().parallelFor(parallelism, [&](std::size_t) {
        for (;;) {
            const std::size_t i = nextCell.fetch_add(1);
            if (i >= n)
                return;
            runOne(i);
        }
    });
    return results;
}

/** One declarative serving experiment: label, config, workload. */
struct SweepCell
{
    /** Row label, e.g. "MoDM-SDXL" or "DiffusionDB/rate=6". */
    std::string label;
    /** Full system configuration (carries the experiment seed). */
    serving::ServingConfig config;
    /**
     * Builds the cell's workload *inside* the cell so concurrent
     * experiments share nothing; generators are seeded, so rebuilt
     * bundles are identical run to run.
     */
    std::function<WorkloadBundle()> bundle;
};

/**
 * A declarative sweep over serving experiments: the cartesian
 * system × dataset × knob grid a figure explores, flattened into
 * cells in row order.
 */
struct SweepSpec
{
    SweepOptions options;
    std::vector<SweepCell> cells;

    /** Append one cell; returns its index into runSweep()'s results. */
    std::size_t add(std::string label, serving::ServingConfig config,
                    std::function<WorkloadBundle()> bundle)
    {
        cells.push_back(
            {std::move(label), std::move(config), std::move(bundle)});
        return cells.size() - 1;
    }

    /**
     * Append the cartesian product systems × bundles (system-major),
     * labeled "system/bundle".
     */
    void addGrid(
        const std::vector<SystemSpec> &systems,
        const std::vector<
            std::pair<std::string, std::function<WorkloadBundle()>>>
            &bundles)
    {
        for (const auto &system : systems) {
            for (const auto &[name, factory] : bundles) {
                add(name.empty() ? system.name
                                 : system.name + "/" + name,
                    system.config, factory);
            }
        }
    }
};

/** True when MODM_SWEEP_VERIFY=1 requests the post-sweep cross-check. */
inline bool
resolveSweepVerify()
{
    const char *env = std::getenv("MODM_SWEEP_VERIFY");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
}

/**
 * Cross-check a finished sweep against serial reference runs: every
 * cell is recomputed on the calling thread and its resultDigest must
 * match the sweep's. On a mismatch the offending cell is re-run twice
 * with event tracing and the first divergent event is reported (the
 * exact clock/node/request where the runs parted ways), then the
 * process exits via fatal() — a digest mismatch means the share-
 * nothing contract was violated somewhere, and the trace names where.
 */
inline void
verifySweep(const SweepSpec &spec,
            const std::vector<serving::ServingResult> &results)
{
    for (std::size_t i = 0; i < spec.cells.size(); ++i) {
        const auto &cell = spec.cells[i];
        const serving::ServingResult serial =
            runSystem(cell.config, cell.bundle());
        if (serving::resultDigest(serial) ==
            serving::resultDigest(results[i]))
            continue;
        warn("sweep cell \"%s\" diverged from its serial reference; "
             "re-running with event tracing",
             cell.label.c_str());
        serving::ServingConfig traced = cell.config;
        traced.trace.events = true;
        const auto a = runSystem(traced, cell.bundle());
        const auto b = runSystem(traced, cell.bundle());
        std::fputs(
            obs::formatDivergence(
                obs::firstDivergence(*a.traceLog, *b.traceLog))
                .c_str(),
            stderr);
        fatal("sweep verification failed for cell \"%s\" "
              "(%zu of %zu)",
              cell.label.c_str(), i + 1, spec.cells.size());
    }
}

/**
 * Execute every cell of the spec (warm cache from the bundle, replay
 * its trace) and return the ServingResults in cell order. With
 * MODM_SWEEP_VERIFY=1 the sweep is cross-checked per verifySweep().
 */
inline std::vector<serving::ServingResult>
runSweep(const SweepSpec &spec)
{
    std::vector<std::function<serving::ServingResult()>> cells;
    std::vector<std::string> labels;
    cells.reserve(spec.cells.size());
    labels.reserve(spec.cells.size());
    for (const auto &cell : spec.cells) {
        labels.push_back(cell.label);
        cells.push_back([&cell] {
            return runSystem(cell.config, cell.bundle());
        });
    }
    auto results = runCells(std::move(cells), spec.options, labels);
    if (resolveSweepVerify())
        verifySweep(spec, results);
    return results;
}

/**
 * Split [0, total) into `parts` contiguous ranges (first..last), for
 * porting streamed measurements to cells. The split is a fixed
 * function of (total, parts) — never of the machine — so chunked
 * results are identical on any host at any parallelism.
 */
inline std::vector<std::pair<std::size_t, std::size_t>>
splitRange(std::size_t total, std::size_t parts)
{
    MODM_ASSERT(parts > 0, "splitRange needs at least one part");
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.reserve(parts);
    for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t lo = total * p / parts;
        const std::size_t hi = total * (p + 1) / parts;
        if (lo < hi)
            ranges.emplace_back(lo, hi);
    }
    return ranges;
}

} // namespace modm::bench

#endif // MODM_BENCH_SWEEP_HH

/**
 * @file
 * Calibration probe: prints the raw distributions the substrate models
 * are calibrated against — similarity scales of the synthetic CLIP
 * space, per-model quality metrics, and the refinement quality response.
 * Not a paper figure; kept as a diagnostic so recalibration after any
 * substrate change is a one-command check.
 *
 * Each probe section is independent, so the four run as concurrent
 * sweep cells; sections render their tables to strings and main prints
 * them in declaration order.
 */

#include <cstdio>
#include <map>

#include "bench/sweep.hh"
#include "src/common/stats.hh"

using namespace modm;

namespace {

std::string
similarityScales()
{
    workload::DiffusionDBModel gen({}, 7);
    embedding::TextEncoder text;
    embedding::ImageEncoder image;
    diffusion::Sampler sampler(99);

    // Generate a few thousand prompts; for prompts in the same session,
    // measure text-to-image similarity vs the session's first image.
    RunningStat sessionSim, sameTopicSim, crossSim, t2tSession, t2tCross;
    std::map<std::uint64_t, std::pair<workload::Prompt,
                                      embedding::Embedding>> firstOfSession;
    std::vector<std::pair<workload::Prompt, embedding::Embedding>> all;

    for (int i = 0; i < 4000; ++i) {
        const auto p = gen.next();
        const auto img =
            sampler.generate(diffusion::sd35Large(), p, 0.0);
        const auto ie = image.encode(img.content, img.fidelity, img.id);
        const auto te = text.encode(p.visualConcept, p.lexicalStyle,
                                    p.text);
        const auto it = firstOfSession.find(p.sessionId);
        if (it == firstOfSession.end()) {
            firstOfSession.emplace(p.sessionId, std::make_pair(p, ie));
        } else {
            sessionSim.add(te.similarity(it->second.second));
            const auto tePrev = text.encode(
                it->second.first.visualConcept,
                it->second.first.lexicalStyle, it->second.first.text);
            t2tSession.add(te.similarity(tePrev));
        }
        for (int probe = 0; probe < 2 && !all.empty(); ++probe) {
            const auto &other =
                all[static_cast<std::size_t>(i * 31 + probe * 17) %
                    all.size()];
            if (other.first.sessionId == p.sessionId)
                continue;
            if (other.first.topicId == p.topicId)
                sameTopicSim.add(te.similarity(other.second));
            else
                crossSim.add(te.similarity(other.second));
            const auto teOther = text.encode(other.first.visualConcept,
                                             other.first.lexicalStyle,
                                             other.first.text);
            t2tCross.add(te.similarity(teOther));
        }
        all.emplace_back(p, ie);
    }

    Table t({"pair type", "mean", "std", "min", "max", "n"});
    auto row = [&](const char *name, const RunningStat &s) {
        t.addRow({name, Table::fmt(s.mean(), 3), Table::fmt(s.stddev(), 3),
                  Table::fmt(s.min(), 3), Table::fmt(s.max(), 3),
                  Table::fmt(s.count())});
    };
    row("text->image, same session", sessionSim);
    row("text->image, same topic", sameTopicSim);
    row("text->image, cross topic", crossSim);
    row("text->text, same session", t2tSession);
    row("text->text, other", t2tCross);
    return t.render("Similarity scales (paper: hits at 0.25-0.30, "
                    "Nirvana t2t 0.65-0.95)");
}

std::string
modelQuality()
{
    workload::DiffusionDBModel gen({}, 11);
    diffusion::Sampler sampler(3);
    diffusion::Sampler refSampler(4);
    eval::MetricSuite metrics;

    std::vector<workload::Prompt> prompts;
    std::vector<diffusion::Image> reference;
    for (int i = 0; i < 1500; ++i) {
        prompts.push_back(gen.next());
        reference.push_back(refSampler.generate(diffusion::sd35Large(),
                                                prompts.back(), 0.0));
    }

    Table t({"model", "CLIP", "FID", "IS", "Pick"});
    for (const auto &model : diffusion::allModels()) {
        std::vector<diffusion::Image> images;
        for (const auto &p : prompts)
            images.push_back(sampler.generate(model, p, 0.0));
        const auto q = metrics.report(prompts, images, reference);
        t.addRow({model.name, Table::fmt(q.clip), Table::fmt(q.fid, 1),
                  Table::fmt(q.is, 1), Table::fmt(q.pick)});
    }
    return t.render("Standalone model quality (paper Table 2 left "
                    "block)");
}

std::string
refinementResponse()
{
    // Quality factor vs (k, similarity): refine SDXL over a cached
    // large-model image of a *related* prompt, sweeping concept drift.
    workload::DiffusionDBModel gen({}, 13);
    diffusion::Sampler sampler(5);
    eval::MetricSuite metrics;
    embedding::TextEncoder text;
    embedding::ImageEncoder image;
    Rng rng(17);

    Table t({"k", "sim bucket", "mean Q", "n"});
    std::map<int, std::map<int, RunningStat>> cells;
    for (int i = 0; i < 4000; ++i) {
        auto base = gen.next();
        const auto baseImg =
            sampler.generate(diffusion::sd35Large(), base, 0.0);
        // A related prompt: drift the concept by a random amount.
        workload::Prompt query = base;
        query.id = base.id + 1000000;
        query.visualConcept = jitterUnitVec(
            base.visualConcept, rng.uniform(0.0, 0.8), rng);
        const auto te = text.encode(query.visualConcept,
                                    query.lexicalStyle, query.text);
        const auto ie =
            image.encode(baseImg.content, baseImg.fidelity, baseImg.id);
        const double sim = te.similarity(ie);

        const auto fullGen =
            sampler.generate(diffusion::sd35Large(), query, 0.0);
        const double fullClip = metrics.clipScore(query, fullGen);
        for (int k : {5, 10, 15, 20, 25, 30}) {
            const auto refined = sampler.refine(diffusion::sdxl(), query,
                                                baseImg, k, 0.0);
            const double q = metrics.clipScore(query, refined) / fullClip;
            const int bucket = static_cast<int>(sim * 100.0);
            cells[k][bucket].add(q);
        }
    }
    for (const auto &[k, buckets] : cells) {
        for (const auto &[bucket, stat] : buckets) {
            if (stat.count() < 30 || bucket < 22 || bucket > 32)
                continue;
            t.addRow({Table::fmt(static_cast<std::uint64_t>(k)),
                      Table::fmt(bucket / 100.0, 2),
                      Table::fmt(stat.mean(), 3),
                      Table::fmt(stat.count())});
        }
    }
    return t.render("Refinement quality factor vs (k, text-image "
                    "similarity) (paper Fig. 5a; alpha = 0.95 "
                    "thresholds)");
}

std::string
servingDecomposition()
{
    // Decompose MoDM's end-to-end quality: where do FID/CLIP move vs
    // the Vanilla reference — fidelity loss, alignment loss, or
    // content-diversity shrinkage from cache reuse?
    auto gen = workload::makeDiffusionDB(21);
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 1500; ++i)
        warm.push_back(gen->next());
    const auto trace = workload::buildBatchTrace(*gen, 1500);

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 1500;
    params.keepOutputs = true;
    serving::ServingSystem system(
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                        params));
    system.warmCache(warm);
    const auto result = system.run(trace);

    eval::MetricSuite metrics;
    diffusion::Sampler ref(77);
    std::vector<diffusion::Image> reference;
    for (const auto &p : result.prompts)
        reference.push_back(ref.generate(diffusion::sd35Large(), p, 0.0));

    RunningStat fidRefined, fidMiss, alignRefined, alignMiss;
    std::vector<diffusion::Image> refined, missed, refRefined, refMissed;
    std::vector<workload::Prompt> promptsRefined, promptsMissed;
    for (std::size_t i = 0; i < result.images.size(); ++i) {
        const auto &img = result.images[i];
        const double align =
            cosine(result.prompts[i].visualConcept, img.content);
        if (img.refined) {
            fidRefined.add(img.fidelity);
            alignRefined.add(align);
            refined.push_back(img);
            refRefined.push_back(reference[i]);
            promptsRefined.push_back(result.prompts[i]);
        } else {
            fidMiss.add(img.fidelity);
            alignMiss.add(align);
            missed.push_back(img);
            refMissed.push_back(reference[i]);
            promptsMissed.push_back(result.prompts[i]);
        }
    }
    Table t({"population", "n", "mean fid", "mean align",
             "FID vs ref", "CLIP"});
    auto addRow = [&](const char *name, const RunningStat &fid,
                      const RunningStat &align,
                      const std::vector<workload::Prompt> &prompts,
                      const std::vector<diffusion::Image> &imgs,
                      const std::vector<diffusion::Image> &refs) {
        double clip = 0.0;
        for (std::size_t i = 0; i < imgs.size(); ++i)
            clip += metrics.clipScore(prompts[i], imgs[i]);
        t.addRow({name, Table::fmt(fid.count()),
                  Table::fmt(fid.mean(), 3), Table::fmt(align.mean(), 3),
                  imgs.size() > 10
                      ? Table::fmt(metrics.fid(imgs, refs), 1)
                      : "-",
                  imgs.empty()
                      ? "-"
                      : Table::fmt(clip / imgs.size())});
    };
    addRow("refined (hits)", fidRefined, alignRefined, promptsRefined,
           refined, refRefined);
    addRow("full-gen (misses)", fidMiss, alignMiss, promptsMissed,
           missed, refMissed);
    return t.render("MoDM serving decomposition (batch, cache-all)");
}

} // namespace

int
main()
{
    bench::SweepOptions options;
    options.title = "Calibration probe";
    const auto sections = bench::runCells<std::string>(
        {similarityScales, modelQuality, refinementResponse,
         servingDecomposition},
        options,
        {"similarity scales", "model quality", "refinement response",
         "serving decomposition"});
    for (const auto &section : sections)
        std::fputs(section.c_str(), stdout);
    return 0;
}

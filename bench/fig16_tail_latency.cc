/**
 * @file
 * Paper Fig. 16 (appendix A.2): p99 tail latency vs request rate on
 * 4x A40 and 16x MI210.
 *
 * Paper shape: Vanilla and Nirvana blow past 1000 s once overloaded;
 * MoDM stays low up to ~10 req/min (A40) and 20+ req/min (MI210).
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

void
addCluster(bench::SweepSpec &spec, std::size_t gpus,
           diffusion::GpuKind kind, const std::vector<double> &rates)
{
    baselines::PresetParams params;
    params.numWorkers = gpus;
    params.gpu = kind;
    params.cacheCapacity = 3000;
    const std::vector<bench::SystemSpec> lineup = {
        {"Vanilla", baselines::vanilla(diffusion::sd35Large(), params)},
        {"NIRVANA", baselines::nirvana(diffusion::sd35Large(), params)},
        {"MoDM", baselines::modmMulti(diffusion::sd35Large(),
                                      {diffusion::sdxl(),
                                       diffusion::sana()},
                                      params)},
    };
    for (const double rate : rates) {
        for (const auto &system : lineup) {
            spec.add(system.name + "@" + Table::fmt(rate, 0),
                     system.config, [rate] {
                         return bench::poissonBundle(
                             bench::Dataset::DiffusionDB, 2500, 1200,
                             rate);
                     });
        }
    }
}

void
printCluster(const std::vector<serving::ServingResult> &results,
             std::size_t offset, const std::vector<double> &rates,
             const char *label)
{
    Table t({"rate/min", "Vanilla p99 (s)", "NIRVANA p99 (s)",
             "MoDM p99 (s)"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::vector<std::string> row = {Table::fmt(rates[r], 0)};
        for (std::size_t s = 0; s < 3; ++s) {
            row.push_back(Table::fmt(
                results[offset + r * 3 + s].metrics.latencyPercentile(
                    99.0),
                0));
        }
        t.addRow(row);
    }
    t.print(std::string("Fig. 16 — p99 tail latency, ") + label);
}

} // namespace

int
main()
{
    const std::vector<double> a40Rates = {3.0, 4.0, 5.0, 6.0, 7.0,
                                          8.0, 9.0, 10.0};
    const std::vector<double> mi210Rates = {6.0, 10.0, 14.0, 18.0, 22.0,
                                            26.0};

    bench::SweepSpec spec;
    spec.options.title = "Fig. 16";
    addCluster(spec, 4, diffusion::GpuKind::A40, a40Rates);
    addCluster(spec, 16, diffusion::GpuKind::MI210, mi210Rates);
    const auto results = bench::runSweep(spec);

    printCluster(results, 0, a40Rates, "4x NVIDIA A40");
    printCluster(results, a40Rates.size() * 3, mi210Rates,
                 "16x AMD MI210");
    return 0;
}

/**
 * @file
 * Paper Fig. 16 (appendix A.2): p99 tail latency vs request rate on
 * 4x A40 and 16x MI210.
 *
 * Paper shape: Vanilla and Nirvana blow past 1000 s once overloaded;
 * MoDM stays low up to ~10 req/min (A40) and 20+ req/min (MI210).
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace modm;

namespace {

void
runCluster(std::size_t gpus, diffusion::GpuKind kind,
           const std::vector<double> &rates, const char *label)
{
    baselines::PresetParams params;
    params.numWorkers = gpus;
    params.gpu = kind;
    params.cacheCapacity = 3000;

    Table t({"rate/min", "Vanilla p99 (s)", "NIRVANA p99 (s)",
             "MoDM p99 (s)"});
    for (double rate : rates) {
        std::vector<std::string> row = {Table::fmt(rate, 0)};
        const std::vector<serving::ServingConfig> configs = {
            baselines::vanilla(diffusion::sd35Large(), params),
            baselines::nirvana(diffusion::sd35Large(), params),
            baselines::modmMulti(diffusion::sd35Large(),
                                 {diffusion::sdxl(), diffusion::sana()},
                                 params),
        };
        for (const auto &config : configs) {
            const auto bundle = bench::poissonBundle(
                bench::Dataset::DiffusionDB, 2500, 1200, rate);
            const auto result = bench::runSystem(config, bundle);
            row.push_back(
                Table::fmt(result.metrics.latencyPercentile(99.0), 0));
        }
        t.addRow(row);
    }
    t.print(std::string("Fig. 16 — p99 tail latency, ") + label);
}

} // namespace

int
main()
{
    runCluster(4, diffusion::GpuKind::A40,
               {3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}, "4x NVIDIA A40");
    runCluster(16, diffusion::GpuKind::MI210,
               {6.0, 10.0, 14.0, 18.0, 22.0, 26.0}, "16x AMD MI210");
    return 0;
}

/**
 * @file
 * Paper Fig. 17 (appendix A.3): throughput over time under a
 * fluctuating request rate.
 *
 * Paper shape: MoDM tracks the demand curve through peaks and troughs;
 * Vanilla and Nirvana lag during peaks and keep draining queued
 * backlog during the following troughs.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    // An up-down-up-down demand curve (requests/min), 16 min segments.
    const std::vector<workload::RateSegment> segments = {
        {960.0, 6.0},  {960.0, 18.0}, {960.0, 10.0}, {960.0, 24.0},
        {960.0, 8.0},  {960.0, 20.0}, {960.0, 6.0},
    };
    const double duration = 960.0 * segments.size();

    const auto makeBundle = [segments, duration] {
        bench::WorkloadBundle bundle;
        bundle.dataset = "DiffusionDB";
        auto gen = workload::makeDiffusionDB(42);
        for (int i = 0; i < 3000; ++i)
            bundle.warm.push_back(gen->next());
        workload::PiecewiseArrivals arrivals(segments);
        Rng rng(42);
        bundle.trace = workload::buildTraceForDuration(*gen, arrivals,
                                                       duration, rng);
        return bundle;
    };

    baselines::PresetParams params;
    params.numWorkers = 16;
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 4000;

    bench::SweepSpec spec;
    spec.options.title = "Fig. 17";
    spec.addGrid(
        {
            {"Vanilla",
             baselines::vanilla(diffusion::sd35Large(), params)},
            {"NIRVANA",
             baselines::nirvana(diffusion::sd35Large(), params)},
            {"MoDM", baselines::modmMulti(
                         diffusion::sd35Large(),
                         {diffusion::sdxl(), diffusion::sana()},
                         params)},
        },
        {{"", makeBundle}});
    const auto results = bench::runSweep(spec);

    std::vector<std::vector<double>> perMin;
    for (const auto &result : results)
        perMin.push_back(
            result.metrics.completionsPerMinute(result.duration));

    Table t({"time (min)", "demand", "Vanilla", "NIRVANA", "MoDM"});
    const std::size_t windows =
        static_cast<std::size_t>(duration / 240.0);
    for (std::size_t win = 0; win < windows; ++win) {
        std::vector<std::string> row;
        row.push_back(Table::fmt(static_cast<std::uint64_t>(win * 4)));
        const double mid = win * 240.0 + 120.0;
        row.push_back(Table::fmt(
            segments[std::min<std::size_t>(mid / 960.0,
                                           segments.size() - 1)]
                .ratePerMin,
            0));
        for (const auto &series : perMin) {
            double acc = 0.0;
            for (std::size_t m = win * 4;
                 m < std::min<std::size_t>((win + 1) * 4, series.size());
                 ++m)
                acc += series[m];
            row.push_back(Table::fmt(acc / 4.0, 1));
        }
        t.addRow(row);
    }
    t.print("Fig. 17 — throughput under fluctuating request rates "
            "(16x MI210)");
    return 0;
}

/**
 * @file
 * Fault-tolerance ablation: routing policy x cache partitioning x
 * replication factor x fault plan, on one 4-node cluster budget.
 *
 * Every cell replays the same DiffusionDB Poisson trace against a
 * scripted fault plan (ServingConfig::faults) and reports the failover
 * telemetry the subsystem computes: requests re-routed off killed
 * nodes, the hit-rate recovery window (time after the first kill for
 * the trailing-window hit rate to return to 95% of its pre-fault
 * level), and the lost-capacity window (time until cumulative
 * completions catch back up with 95% of the work that arrived since
 * the kill).
 *
 * The headline figure: hit-rate recovery after a midpoint node kill,
 * Replicated(k=2)+ConsistentHash vs Sharded+RoundRobin on the same
 * cache budget. Replication admits every generation to its topic's
 * two ring owners, so when the ring heals onto the surviving replica
 * the content is already there; round-robin-over-shards must
 * regenerate everything the dead shard held. The acceptance bar is a
 * >= 20% shorter recovery window for the replicated cluster.
 *
 * Plans:
 *  - none:         fault-free reference row per config.
 *  - kill-mid:     node 1 dies a third of the way into the trace.
 *  - rolling-drain: nodes 1 then 2 drain and rejoin back-to-back (a
 *                  rolling restart; graceful, nothing re-routed).
 *  - kill+rejoin:  node 1 dies and returns cold one phase later.
 *
 * Every column is virtual-time simulation output (no wall-clock), so
 * the emitted table is bit-identical at any sweep parallelism — the
 * CI determinism job diffs it at 1 vs 4 threads.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/sweep.hh"

using namespace modm;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kWarm = 1000;
constexpr std::size_t kRequests = 3600;
constexpr double kRatePerMin = 12.0;
constexpr std::size_t kTotalWorkers = 8;
constexpr std::size_t kTotalCache = 1000;
constexpr std::size_t kRecoveryWindow = 100;

struct PlanSpec
{
    const char *name;
    serving::FaultPlan plan;
};

struct ConfigSpec
{
    const char *name;
    serving::RoutingPolicy routing;
    serving::CachePartitioning partitioning;
    std::size_t replicas;
};

serving::ServingConfig
makeConfig(const ConfigSpec &spec, const serving::FaultPlan &plan)
{
    baselines::PresetParams params;
    params.numWorkers = kTotalWorkers;
    params.cacheCapacity = kTotalCache;
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), params);
    config.cluster.numNodes = kNodes;
    config.cluster.routing = spec.routing;
    config.cluster.cachePartitioning = spec.partitioning;
    config.cluster.replicationFactor = spec.replicas;
    config.faults = plan;
    config.faults.recoveryWindow = kRecoveryWindow;
    return config;
}

std::string
fmtSeconds(double value)
{
    if (value < 0.0)
        return "-";
    return Table::fmt(value, 0);
}

} // namespace

int
main()
{
    // Fault times anchor to trace arrivals so plans scale with the
    // workload; the bundle builder is seeded, so this probe bundle is
    // identical to the one every cell rebuilds.
    const auto probe = bench::poissonBundle(
        bench::Dataset::DiffusionDB, kWarm, kRequests, kRatePerMin);
    const double tThird = probe.trace[kRequests / 3].arrival;
    const double tHalf = probe.trace[kRequests / 2].arrival;
    const double tTwoThirds =
        probe.trace[2 * kRequests / 3].arrival;

    std::vector<PlanSpec> plans;
    plans.push_back({"none", {}});
    {
        serving::FaultPlan plan;
        plan.add(tThird, 1, serving::FaultKind::Kill);
        plans.push_back({"kill-mid", plan});
    }
    {
        serving::FaultPlan plan;
        plan.add(tThird, 1, serving::FaultKind::Drain)
            .add(tHalf, 1, serving::FaultKind::Rejoin)
            .add(tHalf, 2, serving::FaultKind::Drain)
            .add(tTwoThirds, 2, serving::FaultKind::Rejoin);
        plans.push_back({"rolling-drain", plan});
    }
    {
        serving::FaultPlan plan;
        plan.add(tThird, 1, serving::FaultKind::Kill)
            .add(tTwoThirds, 1, serving::FaultKind::Rejoin);
        plans.push_back({"kill+rejoin", plan});
    }

    const std::vector<ConfigSpec> configs = {
        {"sharded/round-robin", serving::RoutingPolicy::RoundRobin,
         serving::CachePartitioning::Sharded, 2},
        {"sharded/least-outstanding",
         serving::RoutingPolicy::LeastOutstanding,
         serving::CachePartitioning::Sharded, 2},
        {"sharded/consistent-hash",
         serving::RoutingPolicy::ConsistentHash,
         serving::CachePartitioning::Sharded, 2},
        {"sharded/bounded-load",
         serving::RoutingPolicy::BoundedLoadConsistentHash,
         serving::CachePartitioning::Sharded, 2},
        {"replicated2/consistent-hash",
         serving::RoutingPolicy::ConsistentHash,
         serving::CachePartitioning::Replicated, 2},
        {"replicated2/bounded-load",
         serving::RoutingPolicy::BoundedLoadConsistentHash,
         serving::CachePartitioning::Replicated, 2},
        {"replicated3/consistent-hash",
         serving::RoutingPolicy::ConsistentHash,
         serving::CachePartitioning::Replicated, 3},
    };

    bench::SweepSpec spec;
    spec.options.title = "Ablation failover";
    for (const auto &plan : plans) {
        for (const auto &config : configs) {
            spec.add(std::string(plan.name) + "/" + config.name,
                     makeConfig(config, plan.plan), [] {
                         return bench::poissonBundle(
                             bench::Dataset::DiffusionDB, kWarm,
                             kRequests, kRatePerMin);
                     });
        }
    }
    const auto results = bench::runSweep(spec);

    Table t({"plan", "routing", "cache", "pre-fault hit", "hit rate",
             "tput/min", "rerouted", "recovery s", "lost-capacity s",
             "downtime s"});
    for (std::size_t i = 0; i < spec.cells.size(); ++i) {
        const auto &plan = plans[i / configs.size()];
        const auto &config = configs[i % configs.size()];
        const auto &r = results[i];
        double downtime = 0.0;
        for (const auto &nf : r.failover.nodes)
            downtime += nf.downtimeS;
        const bool faulted = r.failover.active;
        const bool killed = r.failover.firstKillTime >= 0.0;
        std::string cache =
            serving::cachePartitioningName(config.partitioning);
        if (config.partitioning ==
            serving::CachePartitioning::Replicated)
            cache += "(k=" + std::to_string(config.replicas) + ")";
        t.addRow({plan.name,
                  serving::routingPolicyName(config.routing), cache,
                  killed ? Table::fmt(r.failover.preFaultHitRate, 3)
                         : "-",
                  Table::fmt(r.hitRate, 3),
                  Table::fmt(r.throughputPerMin, 1),
                  faulted ? Table::fmt(r.failover.rerouted) : "-",
                  killed ? fmtSeconds(r.failover.hitRateRecoveryS)
                         : "-",
                  killed ? fmtSeconds(r.failover.lostCapacityS) : "-",
                  faulted ? Table::fmt(downtime, 0) : "-"});
    }
    t.print("Ablation — failover (MoDM-SDXL, DiffusionDB Poisson " +
            std::to_string(kRequests) + " requests at " +
            Table::fmt(kRatePerMin, 0) + "/min, " + std::to_string(kNodes) +
            " nodes, " + std::to_string(kTotalWorkers) +
            " workers and " + std::to_string(kTotalCache) +
            "-entry cache budget; recovery = trailing-" +
            std::to_string(kRecoveryWindow) +
            "-request hit rate back at 95% of pre-fault)");

    // The headline: recovery after a midpoint kill, k=2 write-through
    // replication + affinity routing vs hash-partitioned round-robin
    // on the same cache budget.
    const std::size_t killBase = 1 * configs.size(); // "kill-mid" block
    const auto &rr = results[killBase + 0];
    const auto &repl = results[killBase + 4];
    const double rrRec = rr.failover.hitRateRecoveryS;
    const double replRec = repl.failover.hitRateRecoveryS;
    std::printf("\nAfter a midpoint node kill: Replicated(k=2)+"
                "consistent-hash recovers to 95%% of its pre-fault hit "
                "rate in %.0f s vs Sharded+round-robin in %.0f s",
                replRec, rrRec);
    if (replRec >= 0.0 && rrRec > 0.0)
        std::printf(" (%.0f%% shorter recovery window)",
                    100.0 * (1.0 - replRec / rrRec));
    std::printf("\n");
    return 0;
}

/**
 * @file
 * Paper Fig. 10: throughput under a step-increasing request rate
 * (6 -> 26 req/min) on 16 MI210s.
 *
 * Paper shape: Vanilla saturates near 10/min; Nirvana ~20 % above it;
 * MoDM follows demand, serving with SDXL up to ~22/min and then
 * switching the small model to SANA to keep up.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/obs/metrics.hh"

using namespace modm;

int
main()
{
    // 6..26 req/min in +4 steps, 20 simulated minutes per step.
    std::vector<workload::RateSegment> segments;
    for (double rate = 6.0; rate <= 26.0; rate += 4.0)
        segments.push_back({1200.0, rate});
    const double duration = 1200.0 * segments.size();

    const auto makeBundle = [segments, duration] {
        bench::WorkloadBundle bundle;
        bundle.dataset = "DiffusionDB";
        auto gen = workload::makeDiffusionDB(42);
        for (int i = 0; i < 3000; ++i)
            bundle.warm.push_back(gen->next());
        workload::PiecewiseArrivals arrivals(segments);
        Rng rng(42);
        bundle.trace = workload::buildTraceForDuration(*gen, arrivals,
                                                       duration, rng);
        return bundle;
    };

    baselines::PresetParams params;
    params.numWorkers = 16;
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 4000;

    bench::SweepSpec spec;
    spec.options.title = "Fig. 10";
    spec.addGrid(
        {
            {"Vanilla",
             baselines::vanilla(diffusion::sd35Large(), params)},
            {"NIRVANA",
             baselines::nirvana(diffusion::sd35Large(), params)},
            {"MoDM", baselines::modmMulti(
                         diffusion::sd35Large(),
                         {diffusion::sdxl(), diffusion::sana()},
                         params)},
        },
        {{"", makeBundle}});
    const auto results = bench::runSweep(spec);

    // Throughput per 4-minute window over the schedule: the per-minute
    // completion buckets re-bucketed by the standardized grouping in
    // obs (byte-identical to the hand-rolled accumulation it replaced).
    Table t({"time (min)", "demand", "Vanilla", "NIRVANA", "MoDM"});
    std::vector<std::vector<double>> perWindow;
    for (const auto &r : results) {
        perWindow.push_back(obs::groupMeans(
            r.metrics.completionsPerMinute(duration), 4));
    }
    const std::size_t windows =
        static_cast<std::size_t>(duration / 240.0);
    for (std::size_t win = 0; win < windows; ++win) {
        std::vector<std::string> row;
        row.push_back(Table::fmt(static_cast<std::uint64_t>(win * 4)));
        const double mid = win * 240.0 + 120.0;
        row.push_back(Table::fmt(
            segments[std::min<std::size_t>(mid / 1200.0,
                                           segments.size() - 1)]
                .ratePerMin,
            0));
        for (const auto &series : perWindow)
            row.push_back(Table::fmt(series[win], 1));
        t.addRow(row);
    }
    t.print("Fig. 10 — throughput under increasing request rate "
            "(16x MI210, demand 6->26/min)");

    // MoDM's small-model switch (the SDXL -> SANA escalation).
    Table alloc({"time (min)", "num large", "small model"});
    const auto &modm = results.back();
    for (std::size_t i = 0; i < modm.allocations.size(); ++i) {
        const auto &snap = modm.allocations[i];
        if (i % 5 == 0 || i + 1 == modm.allocations.size()) {
            alloc.addRow({Table::fmt(snap.time / 60.0, 0),
                          Table::fmt(static_cast<std::uint64_t>(
                              snap.numLarge)),
                          snap.smallModelIndex == 0 ? "SDXL" : "SANA"});
        }
    }
    alloc.print("Fig. 10 — MoDM allocation timeline (paper: switches "
                "SDXL -> SANA beyond ~22 req/min)");
    return 0;
}

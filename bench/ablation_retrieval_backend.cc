/**
 * @file
 * Retrieval-backend ablation: exact flat scan vs IVF, HNSW, and IVF-PQ,
 * swept over the search knobs (nprobe / efSearch) and cache size, with
 * a scale pass at 100k and 1M rows x 512 dims.
 *
 * The paper never explored approximate retrieval — its 100k-entry flat
 * scan is already negligible against 10+ s of denoising. At production
 * scale (1M+ entries, sub-millisecond budgets) the backend becomes a
 * real trade-off surface, so this ablation measures all five axes at
 * once: serving hit rate, CLIP-score quality of the served images,
 * recall@1 vs the exact scan (an approximate hit may refine from a
 * different cached image), raw retrieval latency per query, and bytes
 * per entry (the memory-budget axis — IVF-PQ's whole reason to exist).
 *
 * The scale pass also pins the acceptance floor of the backend work as
 * hard assertions: at 1M x 512, HNSW must beat the serial flat scan by
 * >= 5x at recall@1 >= 0.95, and IVF-PQ must be >= 8x smaller per
 * entry than flat rows at recall@1 >= 0.9.
 *
 * Environment knobs (both for the CI determinism diff):
 *  - MODM_RETRIEVAL_NOTIME=1  print "-" for the wall-clock columns and
 *    skip the timing-dependent assertions; every remaining byte of
 *    stdout is then a pure function of the configuration, so the
 *    output diffs clean across runs and sweep-parallelism levels.
 *  - MODM_RETRIEVAL_SCALE=N[,N...]  override the scale-pass row counts
 *    (default "100000,1000000"); 0 skips the scale pass entirely.
 *  - MODM_SWEEP_CACHE=1  persist per-cell results (sweep_cache.hh):
 *    a re-run with unchanged code and config replays every cell —
 *    including the measured wall-clock columns — so warm output is
 *    byte-identical to the cold run at a fraction of the cost.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "bench/sweep.hh"
#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/common/vec.hh"
#include "src/embedding/vector_index.hh"
#include "src/eval/metrics.hh"

using namespace modm;

namespace {

constexpr std::size_t kTraceRequests = 4000;
constexpr std::size_t kLatencyQueries = 400;
constexpr std::size_t kScaleDim = 512;
constexpr std::size_t kScaleQueries = 100;
constexpr std::size_t kScaleClusters = 128;

bool
noTime()
{
    const char *env = std::getenv("MODM_RETRIEVAL_NOTIME");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

std::vector<std::size_t>
scaleSizes()
{
    std::vector<std::size_t> sizes;
    const char *env = std::getenv("MODM_RETRIEVAL_SCALE");
    const std::string spec =
        env != nullptr ? env : "100000,1000000";
    std::size_t start = 0;
    while (start < spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::size_t rows = static_cast<std::size_t>(
            std::strtoull(spec.substr(start, comma - start).c_str(),
                          nullptr, 10));
        if (rows > 0)
            sizes.push_back(rows);
        start = comma + 1;
    }
    return sizes;
}

/** Wall-clock column, or "-" under MODM_RETRIEVAL_NOTIME. */
std::string
timeCol(double value, int digits)
{
    return noTime() ? "-" : Table::fmt(value, digits);
}

/**
 * Cache-key prefix shared by every cell: binary + pass name, the
 * pinned workload constants, and the run modes that change what a
 * cell computes (no-timing zeroes the latency columns; the kernel
 * tier changes the measured wall times).
 */
std::string
cacheKey(const std::string &pass, const std::string &cell)
{
    return "ablation_retrieval_backend/" + pass + " v1 " + cell +
        " requests=" + std::to_string(kTraceRequests) +
        " latencyQueries=" + std::to_string(kLatencyQueries) +
        " notime=" + (noTime() ? "1" : "0") +
        " kernel=" + kernels::active().name;
}

/** Exact-row oracle over an embedding vector; ids are 1 + position. */
class EmbeddingRowSource final : public embedding::RowSource
{
  public:
    explicit EmbeddingRowSource(
        const std::vector<embedding::Embedding> &rows)
        : rows_(rows)
    {
    }

    const float *row(std::uint64_t id) const override
    {
        return id >= 1 && id <= rows_.size()
            ? rows_[id - 1].vec().data()
            : nullptr;
    }

  private:
    const std::vector<embedding::Embedding> &rows_;
};

/**
 * Immutable embedding rows + queries for the latency pass, built once
 * per cache size and shared read-only across that size's cells (the
 * rows are identical for every backend; only the index differs).
 */
struct LatencyData
{
    std::vector<embedding::Embedding> rows;
    std::vector<embedding::Embedding> queries;
};

std::shared_ptr<const LatencyData>
makeLatencyData(std::size_t cacheSize)
{
    auto data = std::make_shared<LatencyData>();
    auto gen = workload::makeDiffusionDB(7);
    diffusion::Sampler sampler(11);
    embedding::ImageEncoder image;
    embedding::TextEncoder text;
    data->rows.reserve(cacheSize);
    for (std::size_t i = 0; i < cacheSize; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        data->rows.push_back(
            image.encode(img.content, img.fidelity, img.id));
    }
    data->queries.reserve(kLatencyQueries);
    for (std::size_t q = 0; q < kLatencyQueries; ++q) {
        const auto p = gen->next();
        data->queries.push_back(
            text.encode(p.visualConcept, p.lexicalStyle, p.text));
    }
    return data;
}

/** One (backend, cache size) configuration under ablation. */
struct BackendPoint
{
    std::string name;
    embedding::RetrievalBackendConfig retrieval;
    std::size_t cacheSize;
    std::shared_ptr<const LatencyData> latencyData;
};

/** Everything one cell measures. */
struct CellResult
{
    double hitRate = 0.0;
    double clip = 0.0;
    double recall = 1.0;
    double usPerQuery = 0.0;
    double bytesPerEntry = 0.0;
};

serving::ServingConfig
makeConfig(const BackendPoint &point)
{
    serving::ServingConfig config;
    config.kind = serving::SystemKind::MoDM;
    config.cacheCapacity = point.cacheSize;
    config.retrieval = point.retrieval;
    config.keepOutputs = true;
    return config;
}

/**
 * Index footprint and mean retrieval latency of the backend over the
 * cell's shared embedding set (the same image-embedding distribution
 * the serving run caches). The bytes column is deterministic; the
 * latency column is wall time and is skipped under no-timing mode.
 */
void
measureIndex(const BackendPoint &point, CellResult &out)
{
    const LatencyData &data = *point.latencyData;
    auto index =
        embedding::makeVectorIndex(point.retrieval,
                                   embedding::kEmbeddingDim);
    const EmbeddingRowSource source(data.rows);
    index->setRowSource(&source);
    index->reserve(data.rows.size());
    for (std::size_t i = 0; i < data.rows.size(); ++i)
        index->insert(1 + i, data.rows[i]);
    out.bytesPerEntry = static_cast<double>(index->memoryBytes()) /
        static_cast<double>(data.rows.size());
    if (noTime())
        return;
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &q : data.queries)
        sink += index->best(q).similarity;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // Keep the scans observable so the loop cannot be elided.
    if (sink == -1e30)
        std::fprintf(stderr, "impossible\n");
    out.usPerQuery =
        seconds * 1e6 / static_cast<double>(data.queries.size());
}

CellResult
runCell(const BackendPoint &point)
{
    const auto config = makeConfig(point);
    const auto bundle = bench::batchBundle(
        bench::Dataset::DiffusionDB, point.cacheSize, kTraceRequests);
    const auto result = bench::runSystem(config, bundle);

    CellResult out;
    out.hitRate = result.hitRate;
    out.recall = result.retrievalRecallAt1;
    eval::MetricSuite metrics;
    double clipSum = 0.0;
    for (std::size_t i = 0; i < result.images.size(); ++i)
        clipSum += metrics.clipScore(result.prompts[i],
                                     result.images[i]);
    out.clip = result.images.empty()
        ? 0.0
        : clipSum / static_cast<double>(result.images.size());
    measureIndex(point, out);
    return out;
}

// ---------------------------------------------------------------------
// Scale pass: the backends against a 512-dim clustered row set at
// 100k / 1M rows — the regime the serving grid cannot reach (its rows
// come from full generation runs). Build, measure, destroy, one
// backend at a time, against one shared row buffer.
// ---------------------------------------------------------------------

/** Exact-row oracle over the shared scale buffer; ids are positions. */
class BufferRowSource final : public embedding::RowSource
{
  public:
    BufferRowSource(const std::vector<float> &buffer, std::size_t dim)
        : buffer_(buffer), dim_(dim)
    {
    }

    const float *row(std::uint64_t id) const override
    {
        const std::size_t offset = id * dim_;
        return offset + dim_ <= buffer_.size() ? &buffer_[offset]
                                               : nullptr;
    }

  private:
    const std::vector<float> &buffer_;
    std::size_t dim_;
};

struct ScaleData
{
    std::vector<float> rows; // rowCount x kScaleDim, row-major
    std::size_t rowCount = 0;
    std::vector<embedding::Embedding> queries;
};

ScaleData
makeScaleData(std::size_t rows)
{
    // Clustered rows (jittered cluster centers): the regime CLIP
    // embeddings of production traffic live in, and the one where a
    // coarse quantizer or a navigable graph pays off.
    Rng centerRng(3);
    std::vector<Vec> centers;
    centers.reserve(kScaleClusters);
    for (std::size_t c = 0; c < kScaleClusters; ++c)
        centers.push_back(randomUnitVec(kScaleDim, centerRng));

    ScaleData data;
    data.rowCount = rows;
    data.rows.resize(rows * kScaleDim);
    Rng rowRng(7);
    for (std::size_t i = 0; i < rows; ++i) {
        const auto &center = centers[rowRng.uniformInt(centers.size())];
        const Vec v = jitterUnitVec(center, 0.45, rowRng);
        std::memcpy(&data.rows[i * kScaleDim], v.data(),
                    kScaleDim * sizeof(float));
    }
    Rng queryRng(11);
    data.queries.reserve(kScaleQueries);
    for (std::size_t q = 0; q < kScaleQueries; ++q) {
        const auto &center =
            centers[queryRng.uniformInt(centers.size())];
        data.queries.push_back(
            embedding::Embedding(jitterUnitVec(center, 0.45, queryRng)));
    }
    return data;
}

struct ScaleResult
{
    double recall = 1.0;
    double usPerQuery = 0.0;
    double bytesPerEntry = 0.0;
};

/**
 * Build the configured backend over the shared buffer, then measure
 * recall@1 against `truth` (exact best ids, recorded by the flat pass
 * when `truthOut` is set) and mean query latency. The buffer doubles
 * as the exact re-rank oracle for IVF-PQ.
 */
ScaleResult
runScaleCell(const embedding::RetrievalBackendConfig &config,
             const ScaleData &data,
             const std::vector<std::uint64_t> &truth,
             std::vector<std::uint64_t> *truthOut = nullptr)
{
    auto index = embedding::makeVectorIndex(config, kScaleDim);
    const BufferRowSource source(data.rows, kScaleDim);
    index->setRowSource(&source);
    index->setParallelism(1); // serial everywhere: one fair core
    index->reserve(data.rowCount);
    for (std::size_t i = 0; i < data.rowCount; ++i) {
        embedding::Embedding row(
            Vec(&data.rows[i * kScaleDim],
                &data.rows[(i + 1) * kScaleDim]));
        index->insert(i, row);
    }

    ScaleResult out;
    out.bytesPerEntry = static_cast<double>(index->memoryBytes()) /
        static_cast<double>(data.rowCount);
    std::size_t correct = 0;
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t q = 0; q < data.queries.size(); ++q) {
        const auto match = index->best(data.queries[q]);
        sink += match.similarity;
        if (truthOut != nullptr)
            truthOut->push_back(match.id);
        if (!truth.empty() && match.id == truth[q])
            ++correct;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (sink == -1e30)
        std::fprintf(stderr, "impossible\n");
    out.usPerQuery =
        seconds * 1e6 / static_cast<double>(data.queries.size());
    out.recall = truth.empty()
        ? 1.0
        : static_cast<double>(correct) /
            static_cast<double>(data.queries.size());
    return out;
}

void
runScalePass()
{
    const auto sizes = scaleSizes();
    if (sizes.empty())
        return;

    Table t({"backend", "rows", "recall@1", "retrieval us/query",
             "bytes/entry", "speedup vs flat"});
    struct PinnedCell
    {
        std::size_t rows;
        ScaleResult flat, hnsw, pq;
    };
    std::vector<PinnedCell> pinned;
    for (const std::size_t rows : sizes) {
        // Lazy: a fully-warm size replays all three cells from the
        // sweep cache without ever generating the row set.
        std::optional<ScaleData> lazyData;
        const auto data = [&]() -> const ScaleData & {
            if (!lazyData)
                lazyData = makeScaleData(rows);
            return *lazyData;
        };
        const auto cellOf = [&](const char *backend) {
            return cacheKey("scale",
                            std::string("backend=") + backend +
                                " rows=" + std::to_string(rows) +
                                " dim=" + std::to_string(kScaleDim) +
                                " queries=" +
                                std::to_string(kScaleQueries));
        };

        embedding::RetrievalBackendConfig flat;
        // Exact ground-truth ids come from the flat pass itself; they
        // travel in the cached payload behind the three measurements
        // so warm approximate cells score against the same truth.
        std::vector<std::uint64_t> truth;
        truth.reserve(kScaleQueries);
        const auto flatVals = bench::cachedCell(
            cellOf("Flat"), 3 + kScaleQueries, [&] {
                std::vector<std::uint64_t> ids;
                ids.reserve(kScaleQueries);
                const auto r = runScaleCell(flat, data(), {}, &ids);
                std::vector<double> v{r.recall, r.usPerQuery,
                                      r.bytesPerEntry};
                for (const std::uint64_t id : ids)
                    v.push_back(static_cast<double>(id));
                return v;
            });
        const ScaleResult flatResult{flatVals[0], flatVals[1],
                                     flatVals[2]};
        for (std::size_t q = 0; q < kScaleQueries; ++q)
            truth.push_back(
                static_cast<std::uint64_t>(flatVals[3 + q]));

        const auto approxCell =
            [&](const embedding::RetrievalBackendConfig &config,
                const char *name) {
                const auto vals = bench::cachedCell(
                    cellOf(name), 3, [&] {
                        const auto r =
                            runScaleCell(config, data(), truth);
                        return std::vector<double>{r.recall,
                                                   r.usPerQuery,
                                                   r.bytesPerEntry};
                    });
                return ScaleResult{vals[0], vals[1], vals[2]};
            };

        embedding::RetrievalBackendConfig hnsw;
        hnsw.kind = embedding::RetrievalBackend::Hnsw;
        hnsw.hnswM = 16;
        hnsw.efConstruction = 96;
        // The query beam must track rows-per-cluster, not row count:
        // at 1M rows the ~7.8k-row near-tie clusters need ef in the
        // hundreds before the beam reliably reaches the argmax (96
        // recalls only ~0.74 there; 768 measures 1.000 at the same
        // density). Still ~50x faster than the serial flat scan.
        hnsw.efSearch = 768;
        const auto hnswResult = approxCell(hnsw, "HNSW/M=16/ef=768");

        embedding::RetrievalBackendConfig pq;
        pq.kind = embedding::RetrievalBackend::IvfPq;
        pq.nlist = 256; // ~sqrt-scale list count at 1M rows
        pq.nprobe = 32;
        pq.pqM = 16; // 32-dim subspaces: 16 B codes, 128x under flat
        const auto pqResult =
            approxCell(pq, "IVF-PQ/m=16/nprobe=32");

        const auto addRow = [&](const std::string &name,
                                const ScaleResult &r) {
            t.addRow({name, Table::fmt(rows), Table::fmt(r.recall, 3),
                      timeCol(r.usPerQuery, 1),
                      Table::fmt(r.bytesPerEntry, 1),
                      noTime() || r.usPerQuery <= 0.0
                          ? std::string("-")
                          : Table::fmt(flatResult.usPerQuery /
                                           r.usPerQuery,
                                       2)});
        };
        addRow("Flat", flatResult);
        addRow("HNSW/M=16/ef=768", hnswResult);
        addRow("IVF-PQ/m=16/nprobe=32", pqResult);

        if (rows >= 1000000)
            pinned.push_back({rows, flatResult, hnswResult, pqResult});
    }
    t.print("Scale pass — backends at " +
            std::to_string(kScaleDim) +
            "-dim production width (serial scans, clustered rows; "
            "recall@1 vs exhaustive scan over " +
            std::to_string(kScaleQueries) + " queries)");

    // The acceptance floor of the backend work, pinned as hard
    // assertions at million-row scale — after the table prints, so a
    // failing run still shows its numbers.
    for (const auto &p : pinned) {
        MODM_ASSERT(p.hnsw.recall >= 0.95,
                    "HNSW recall@1 %.3f < 0.95 at %zu rows",
                    p.hnsw.recall, p.rows);
        MODM_ASSERT(p.pq.recall >= 0.9,
                    "IVF-PQ recall@1 %.3f < 0.9 at %zu rows",
                    p.pq.recall, p.rows);
        MODM_ASSERT(p.flat.bytesPerEntry >= 8.0 * p.pq.bytesPerEntry,
                    "IVF-PQ bytes/entry %.1f not >= 8x smaller "
                    "than flat's %.1f",
                    p.pq.bytesPerEntry, p.flat.bytesPerEntry);
        if (!noTime())
            MODM_ASSERT(p.flat.usPerQuery >= 5.0 * p.hnsw.usPerQuery,
                        "HNSW %.1f us/query not >= 5x faster than "
                        "serial flat's %.1f",
                        p.hnsw.usPerQuery, p.flat.usPerQuery);
    }
}

} // namespace

int
main()
{
    std::vector<BackendPoint> points;
    for (const std::size_t cacheSize :
         {std::size_t{1000}, std::size_t{4000}}) {
        const auto latencyData = makeLatencyData(cacheSize);
        const auto add = [&](const std::string &name,
                             const embedding::RetrievalBackendConfig
                                 &retrieval) {
            points.push_back({name, retrieval, cacheSize, latencyData});
        };
        embedding::RetrievalBackendConfig flat;
        add("Flat", flat);
        for (const std::size_t nprobe :
             {std::size_t{4}, std::size_t{16}}) {
            embedding::RetrievalBackendConfig ivf;
            ivf.kind = embedding::RetrievalBackend::Ivf;
            ivf.nprobe = nprobe;
            add("IVF/nprobe=" + std::to_string(nprobe), ivf);
        }
        for (const std::size_t ef :
             {std::size_t{16}, std::size_t{64}}) {
            embedding::RetrievalBackendConfig hnsw;
            hnsw.kind = embedding::RetrievalBackend::Hnsw;
            hnsw.efSearch = ef;
            add("HNSW/ef=" + std::to_string(ef), hnsw);
        }
        for (const std::size_t nprobe :
             {std::size_t{8}, std::size_t{16}}) {
            embedding::RetrievalBackendConfig pq;
            pq.kind = embedding::RetrievalBackend::IvfPq;
            pq.nprobe = nprobe;
            add("IVF-PQ/nprobe=" + std::to_string(nprobe), pq);
        }
    }

    std::vector<std::function<CellResult()>> cells;
    std::vector<std::string> labels;
    for (const auto &point : points) {
        labels.push_back(point.name + "/cache=" +
                         std::to_string(point.cacheSize));
        const std::string key = cacheKey("grid", labels.back());
        cells.push_back([point, key] {
            const auto vals =
                bench::cachedCell(key, 5, [&point] {
                    const auto r = runCell(point);
                    return std::vector<double>{r.hitRate, r.clip,
                                               r.recall, r.usPerQuery,
                                               r.bytesPerEntry};
                });
            CellResult out;
            out.hitRate = vals[0];
            out.clip = vals[1];
            out.recall = vals[2];
            out.usPerQuery = vals[3];
            out.bytesPerEntry = vals[4];
            return out;
        });
    }
    bench::SweepOptions options;
    options.title = "Ablation retrieval backend";
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    // Flat latency per cache size, for the speedup column.
    std::vector<double> flatUs(points.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].name == "Flat") {
            for (std::size_t j = 0; j < points.size(); ++j)
                if (points[j].cacheSize == points[i].cacheSize)
                    flatUs[j] = results[i].usPerQuery;
        }
    }

    Table t({"backend", "cache size", "hit rate", "mean CLIP",
             "recall@1", "retrieval us/query", "bytes/entry",
             "speedup vs flat"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &r = results[i];
        t.addRow({points[i].name, Table::fmt(points[i].cacheSize),
                  Table::fmt(r.hitRate, 3), Table::fmt(r.clip, 4),
                  Table::fmt(r.recall, 3), timeCol(r.usPerQuery, 1),
                  Table::fmt(r.bytesPerEntry, 1),
                  noTime() || r.usPerQuery <= 0.0
                      ? std::string("-")
                      : Table::fmt(flatUs[i] / r.usPerQuery, 2)});
    }
    t.print("Ablation — retrieval backend (MoDM, DiffusionDB batch, " +
            std::to_string(kTraceRequests) +
            " requests; recall@1 vs exhaustive scan; latency is wall "
            "time and varies by machine)");
    std::printf(
        "\nNote: IVF and IVF-PQ train their quantizers once enough "
        "entries accumulate (IVF at %zu = 4 x nlist); below that they "
        "scan exactly like Flat.\n",
        embedding::RetrievalBackendConfig{}.nlist * 4);

    runScalePass();
    return 0;
}

/**
 * @file
 * Retrieval-backend ablation: exact flat scan vs IVF approximate
 * search, swept over the nprobe knob and cache size.
 *
 * The paper never explored approximate retrieval — its 100k-entry flat
 * scan is already negligible against 10+ s of denoising. At production
 * scale (1M+ entries, sub-millisecond budgets) the backend becomes a
 * real knob, so this ablation measures what the approximation costs
 * end to end: serving hit rate, CLIP-score quality of the served
 * images, recall@1 vs the exact scan (an approximate hit may refine
 * from a different cached image), and raw retrieval latency per query.
 *
 * Every serving cell runs through the sweep engine on the shared task
 * pool; the latency column is a bespoke timing pass over an index
 * built from the same embedding distribution the serving run caches.
 */

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/sweep.hh"
#include "src/embedding/vector_index.hh"
#include "src/eval/metrics.hh"

using namespace modm;

namespace {

constexpr std::size_t kTraceRequests = 4000;
constexpr std::size_t kLatencyQueries = 400;

/**
 * Immutable embedding rows + queries for the latency pass, built once
 * per cache size and shared read-only across that size's cells (the
 * rows are identical for every backend; only the index differs).
 */
struct LatencyData
{
    std::vector<embedding::Embedding> rows;
    std::vector<embedding::Embedding> queries;
};

std::shared_ptr<const LatencyData>
makeLatencyData(std::size_t cacheSize)
{
    auto data = std::make_shared<LatencyData>();
    auto gen = workload::makeDiffusionDB(7);
    diffusion::Sampler sampler(11);
    embedding::ImageEncoder image;
    embedding::TextEncoder text;
    data->rows.reserve(cacheSize);
    for (std::size_t i = 0; i < cacheSize; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        data->rows.push_back(
            image.encode(img.content, img.fidelity, img.id));
    }
    data->queries.reserve(kLatencyQueries);
    for (std::size_t q = 0; q < kLatencyQueries; ++q) {
        const auto p = gen->next();
        data->queries.push_back(
            text.encode(p.visualConcept, p.lexicalStyle, p.text));
    }
    return data;
}

/** One (backend, cache size) configuration under ablation. */
struct BackendPoint
{
    std::string name;
    embedding::RetrievalBackendConfig retrieval;
    std::size_t cacheSize;
    std::shared_ptr<const LatencyData> latencyData;
};

/** Everything one cell measures. */
struct CellResult
{
    double hitRate = 0.0;
    double clip = 0.0;
    double recall = 1.0;
    std::uint64_t recallChecked = 0;
    double usPerQuery = 0.0;
};

serving::ServingConfig
makeConfig(const BackendPoint &point)
{
    serving::ServingConfig config;
    config.kind = serving::SystemKind::MoDM;
    config.cacheCapacity = point.cacheSize;
    config.retrieval = point.retrieval;
    config.keepOutputs = true;
    return config;
}

/**
 * Mean retrieval latency of the backend over the cell's shared
 * embedding set (the same image-embedding distribution the serving
 * run caches). Wall time, so this column (alone) varies run to run.
 */
double
measureLatencyUs(const BackendPoint &point)
{
    const LatencyData &data = *point.latencyData;
    auto index =
        embedding::makeVectorIndex(point.retrieval,
                                   embedding::kEmbeddingDim);
    index->reserve(data.rows.size());
    for (std::size_t i = 0; i < data.rows.size(); ++i)
        index->insert(1 + i, data.rows[i]);
    double sink = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &q : data.queries)
        sink += index->best(q).similarity;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // Keep the scans observable so the loop cannot be elided.
    if (sink == -1e30)
        std::fprintf(stderr, "impossible\n");
    return seconds * 1e6 / static_cast<double>(data.queries.size());
}

CellResult
runCell(const BackendPoint &point)
{
    const auto config = makeConfig(point);
    const auto bundle = bench::batchBundle(
        bench::Dataset::DiffusionDB, point.cacheSize, kTraceRequests);
    const auto result = bench::runSystem(config, bundle);

    CellResult out;
    out.hitRate = result.hitRate;
    out.recall = result.retrievalRecallAt1;
    out.recallChecked = result.retrievalChecked;
    eval::MetricSuite metrics;
    double clipSum = 0.0;
    for (std::size_t i = 0; i < result.images.size(); ++i)
        clipSum += metrics.clipScore(result.prompts[i],
                                     result.images[i]);
    out.clip = result.images.empty()
        ? 0.0
        : clipSum / static_cast<double>(result.images.size());
    out.usPerQuery = measureLatencyUs(point);
    return out;
}

} // namespace

int
main()
{
    std::vector<BackendPoint> points;
    for (const std::size_t cacheSize :
         {std::size_t{1000}, std::size_t{4000}}) {
        const auto latencyData = makeLatencyData(cacheSize);
        embedding::RetrievalBackendConfig flat;
        points.push_back({"Flat", flat, cacheSize, latencyData});
        for (const std::size_t nprobe :
             {std::size_t{1}, std::size_t{4}, std::size_t{8},
              std::size_t{16}}) {
            embedding::RetrievalBackendConfig ivf;
            ivf.kind = embedding::RetrievalBackend::Ivf;
            ivf.nprobe = nprobe;
            points.push_back({"IVF/nprobe=" + std::to_string(nprobe),
                              ivf, cacheSize, latencyData});
        }
    }

    std::vector<std::function<CellResult()>> cells;
    std::vector<std::string> labels;
    for (const auto &point : points) {
        labels.push_back(point.name + "/cache=" +
                         std::to_string(point.cacheSize));
        cells.push_back([point] { return runCell(point); });
    }
    bench::SweepOptions options;
    options.title = "Ablation retrieval backend";
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    // Flat latency per cache size, for the speedup column.
    std::vector<double> flatUs(points.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].name == "Flat") {
            for (std::size_t j = 0; j < points.size(); ++j)
                if (points[j].cacheSize == points[i].cacheSize)
                    flatUs[j] = results[i].usPerQuery;
        }
    }

    Table t({"backend", "cache size", "hit rate", "mean CLIP",
             "recall@1", "retrieval us/query", "speedup vs flat"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &r = results[i];
        t.addRow({points[i].name, Table::fmt(points[i].cacheSize),
                  Table::fmt(r.hitRate, 3), Table::fmt(r.clip, 4),
                  Table::fmt(r.recall, 3), Table::fmt(r.usPerQuery, 1),
                  Table::fmt(r.usPerQuery > 0.0
                                 ? flatUs[i] / r.usPerQuery
                                 : 0.0,
                             2)});
    }
    t.print("Ablation — retrieval backend (MoDM, DiffusionDB batch, " +
            std::to_string(kTraceRequests) +
            " requests; recall@1 vs exhaustive scan; latency is wall "
            "time and varies by machine)");
    std::printf(
        "\nNote: IVF trains its coarse quantizer at %zu entries "
        "(4 x nlist); below that it scans exactly like Flat.\n",
        embedding::RetrievalBackendConfig{}.nlist * 4);
    return 0;
}

/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: workload
 * bundles (warm-up prompts + request trace), standard system line-ups,
 * and quality evaluation against reference generations.
 *
 * Experiments are scaled down from the paper's 10k-request / 16-GPU
 * runs so the full bench suite completes in minutes on one CPU core;
 * every binary prints the scale it used. Normalized results (speedups,
 * hit rates, violation rates) are scale-robust, which is what the
 * paper's figures report.
 */

#ifndef MODM_BENCH_HARNESS_HH
#define MODM_BENCH_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/presets.hh"
#include "src/common/table.hh"
#include "src/eval/metrics.hh"
#include "src/serving/system.hh"
#include "src/workload/trace.hh"

namespace modm::bench {

/** Warm-up prompts plus a request trace from one dataset. */
struct WorkloadBundle
{
    std::string dataset;
    std::vector<workload::Prompt> warm;
    workload::Trace trace;
};

/** Dataset selector. */
enum class Dataset
{
    DiffusionDB,
    MJHQ,
};

inline const char *
datasetName(Dataset dataset)
{
    return dataset == Dataset::DiffusionDB ? "DiffusionDB" : "MJHQ";
}

inline std::unique_ptr<workload::TraceGenerator>
makeGenerator(Dataset dataset, std::uint64_t seed)
{
    if (dataset == Dataset::DiffusionDB)
        return workload::makeDiffusionDB(seed);
    return workload::makeMJHQ(seed);
}

/** Batch bundle (all arrivals at t=0) for max-throughput experiments. */
inline WorkloadBundle
batchBundle(Dataset dataset, std::size_t warm_count,
            std::size_t trace_count, std::uint64_t seed = 42)
{
    WorkloadBundle bundle;
    bundle.dataset = datasetName(dataset);
    auto gen = makeGenerator(dataset, seed);
    for (std::size_t i = 0; i < warm_count; ++i)
        bundle.warm.push_back(gen->next());
    bundle.trace = workload::buildBatchTrace(*gen, trace_count);
    return bundle;
}

/** Poisson bundle for latency/SLO experiments. */
inline WorkloadBundle
poissonBundle(Dataset dataset, std::size_t warm_count,
              std::size_t trace_count, double rate_per_min,
              std::uint64_t seed = 42)
{
    WorkloadBundle bundle;
    bundle.dataset = datasetName(dataset);
    auto gen = makeGenerator(dataset, seed);
    for (std::size_t i = 0; i < warm_count; ++i)
        bundle.warm.push_back(gen->next());
    workload::PoissonArrivals arrivals(rate_per_min);
    Rng rng(seed ^ 0xa441a15ULL);
    bundle.trace =
        workload::buildTrace(*gen, arrivals, trace_count, rng);
    return bundle;
}

/** A named system configuration for a comparison line-up. */
struct SystemSpec
{
    std::string name;
    serving::ServingConfig config;
};

/**
 * The paper's §6 line-up against a given large model: Vanilla,
 * Nirvana, Pinecone, MoDM-SDXL, MoDM-SANA.
 */
inline std::vector<SystemSpec>
paperLineup(const diffusion::ModelSpec &large,
            const baselines::PresetParams &params)
{
    return {
        {"Vanilla", baselines::vanilla(large, params)},
        {"NIRVANA", baselines::nirvana(large, params)},
        {"Pinecone", baselines::pinecone(large, params)},
        {"MoDM-SDXL", baselines::modm(large, diffusion::sdxl(), params)},
        {"MoDM-SANA", baselines::modm(large, diffusion::sana(), params)},
    };
}

/** Run one system over a bundle (fresh system per call). */
inline serving::ServingResult
runSystem(const serving::ServingConfig &config,
          const WorkloadBundle &bundle)
{
    serving::ServingSystem system(config);
    if (!bundle.warm.empty())
        system.warmCache(bundle.warm);
    return system.run(bundle.trace);
}

/** Reference generations (large model, independent seed) for FID. */
inline std::vector<diffusion::Image>
referenceImages(const std::vector<workload::Prompt> &prompts,
                const diffusion::ModelSpec &large,
                std::uint64_t seed = 0x4ef5eedULL)
{
    diffusion::Sampler sampler(seed);
    std::vector<diffusion::Image> out;
    out.reserve(prompts.size());
    for (const auto &p : prompts)
        out.push_back(sampler.generate(large, p, 0.0));
    return out;
}

} // namespace modm::bench

#endif // MODM_BENCH_HARNESS_HH

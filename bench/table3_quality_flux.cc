/**
 * @file
 * Paper Table 3: image quality on DiffusionDB with FLUX as the vanilla
 * large model — the cross-backbone generality check for the quality
 * results.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    constexpr std::size_t kWarm = 2500;
    constexpr std::size_t kRequests = 2500;

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 2500;
    params.keepOutputs = true;

    const std::vector<bench::SystemSpec> lineup = {
        {"Vanilla (FLUX)",
         baselines::vanilla(diffusion::flux1Dev(), params)},
        {"SDXL", baselines::standalone(diffusion::sdxl(), params)},
        {"SD3.5L-Turbo",
         baselines::standalone(diffusion::sd35LargeTurbo(), params)},
        {"SANA", baselines::standalone(diffusion::sana(), params)},
        {"NIRVANA", baselines::nirvana(diffusion::flux1Dev(), params)},
        {"Pinecone", baselines::pinecone(diffusion::flux1Dev(), params)},
        {"MoDM-SDXL", baselines::modm(diffusion::flux1Dev(),
                                      diffusion::sdxl(), params)},
        {"MoDM-SANA", baselines::modm(diffusion::flux1Dev(),
                                      diffusion::sana(), params)},
    };
    const std::vector<std::vector<const char *>> paper = {
        {"26.82", "6.02"}, {"29.30", "17.60"}, {"27.23", "15.11"},
        {"28.08", "24.37"}, {"26.01", "9.07"}, {"24.37", "19.41"},
        {"28.41", "10.74"}, {"27.59", "16.84"}};

    std::vector<std::function<eval::QualityReport()>> cells;
    std::vector<std::string> labels;
    for (const auto &spec : lineup) {
        labels.push_back(spec.name);
        cells.push_back([config = spec.config] {
            const auto bundle = bench::batchBundle(
                bench::Dataset::DiffusionDB, kWarm, kRequests);
            const auto result = bench::runSystem(config, bundle);
            const auto reference = bench::referenceImages(
                result.prompts, diffusion::flux1Dev());
            eval::MetricSuite metrics;
            return metrics.report(result.prompts, result.images,
                                  reference);
        });
    }
    bench::SweepOptions options;
    options.title = "Table 3";
    const auto reports =
        bench::runCells(std::move(cells), options, labels);

    Table t({"baseline", "CLIP", "FID", "IS", "Pick", "paper CLIP",
             "paper FID"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        const auto &q = reports[i];
        t.addRow({lineup[i].name, Table::fmt(q.clip), Table::fmt(q.fid),
                  Table::fmt(q.is), Table::fmt(q.pick), paper[i][0],
                  paper[i][1]});
    }
    t.print("Table 3 — image quality on DiffusionDB (vanilla FLUX, "
            "2500 requests, throughput-optimized)");
    return 0;
}

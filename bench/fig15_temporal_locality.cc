/**
 * @file
 * Paper Fig. 15 (appendix A.1): distribution of the time elapsed
 * between a cache-hit request and the creation of the image it
 * retrieves.
 *
 * Paper shape: >90 % of hits retrieve images generated within the last
 * four hours — the observation justifying FIFO cache maintenance.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/common/stats.hh"

using namespace modm;

int
main()
{
    // Serve ten simulated hours at 20 req/min so multi-hour retrieval
    // gaps are observable.
    constexpr double kDuration = 10.0 * 3600.0;
    constexpr double kRate = 20.0;

    baselines::PresetParams params;
    params.numWorkers = 24; // enough capacity to stay unqueued
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 20000;

    bench::SweepSpec spec;
    spec.options.title = "Fig. 15";
    spec.add("MoDM-SDXL",
             baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                             params),
             [] {
                 bench::WorkloadBundle bundle;
                 auto gen = workload::makeDiffusionDB(42);
                 workload::PoissonArrivals arrivals(kRate);
                 Rng rng(42);
                 bundle.trace = workload::buildTraceForDuration(
                     *gen, arrivals, kDuration, rng);
                 return bundle;
             });
    const auto result = bench::runSweep(spec).front();

    Histogram ages(0.0, 10.0 * 3600.0, 20); // 30-minute bins
    std::size_t withinFourHours = 0;
    for (double age : result.hitAges) {
        ages.add(age);
        withinFourHours += age <= 4.0 * 3600.0 ? 1 : 0;
    }

    Table t({"age bucket (h)", "fraction of hits"});
    for (std::size_t b = 0; b < ages.bins(); ++b) {
        t.addRow({Table::fmt(ages.binCenter(b) / 3600.0, 2),
                  Table::fmt(ages.binFraction(b), 3)});
    }
    t.print("Fig. 15 — age of retrieved cache entries (10 h trace @ "
            "20 req/min)");
    std::printf("hits within 4 hours: %.1f%% (paper: > 90%%)\n",
                100.0 * static_cast<double>(withinFourHours) /
                    static_cast<double>(result.hitAges.size()));
    return 0;
}

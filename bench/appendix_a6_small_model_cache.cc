/**
 * @file
 * Paper §A.6: does caching images refined by the *small* model degrade
 * the quality of future generations that reuse them?
 *
 * Method (the paper's three-phase experiment): (1) warm the cache with
 * SD3.5L generations; (2) serve a second wave, producing three cache
 * variants for the hit images — full SD3.5L regeneration, SD3.5L
 * refinement, SDXL refinement; (3) serve a third wave of requests with
 * SDXL refinements against each cache variant and compare CLIP.
 *
 * Paper numbers: 29.63 / 28.58 / 28.32 — a minimal drop, justifying
 * the cache-all admission policy.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/cache/image_cache.hh"
#include "src/serving/k_decision.hh"

using namespace modm;

namespace {

enum class Phase2Strategy
{
    FullLarge,
    RefineLarge,
    RefineSmall,
};

double
runStrategy(Phase2Strategy strategy)
{
    constexpr std::size_t kWave = 3000;
    auto gen = workload::makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    embedding::TextEncoder text;
    eval::MetricSuite metrics;
    serving::KDecision kd;

    cache::ImageCache cache(2 * kWave, cache::EvictionPolicy::FIFO);
    cache.reserve(2 * kWave);

    // Phase 1: warm with large-model generations.
    for (std::size_t i = 0; i < kWave; ++i) {
        const auto p = gen->next();
        cache.insert(sampler.generate(diffusion::sd35Large(), p, 0.0),
                     0.0);
    }

    // Phase 2: serve a wave; hit images are regenerated per strategy
    // and added to the cache.
    for (std::size_t i = 0; i < kWave; ++i) {
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        if (!r.found || !kd.isHit(r.similarity))
            continue;
        const auto &base = cache.entry(r.entryId).image;
        diffusion::Image img;
        switch (strategy) {
          case Phase2Strategy::FullLarge:
            img = sampler.generate(diffusion::sd35Large(), p, 1.0);
            break;
          case Phase2Strategy::RefineLarge:
            img = sampler.refine(diffusion::sd35Large(), p, base,
                                 kd.decide(r.similarity), 1.0);
            break;
          case Phase2Strategy::RefineSmall:
            img = sampler.refine(diffusion::sdxl(), p, base,
                                 kd.decide(r.similarity), 1.0);
            break;
        }
        cache.insert(img, 1.0);
    }

    // Phase 3: serve a third wave with SDXL refinements; score hits.
    double clip = 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < kWave; ++i) {
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        if (!r.found || !kd.isHit(r.similarity))
            continue;
        const auto img = sampler.refine(diffusion::sdxl(), p,
                                        cache.entry(r.entryId).image,
                                        kd.decide(r.similarity), 2.0);
        clip += metrics.clipScore(p, img);
        ++hits;
    }
    return hits ? clip / static_cast<double>(hits) : 0.0;
}

} // namespace

int
main()
{
    const std::vector<std::pair<const char *, Phase2Strategy>> cases = {
        {"fresh SD3.5L generations", Phase2Strategy::FullLarge},
        {"SD3.5L refinements", Phase2Strategy::RefineLarge},
        {"SDXL refinements", Phase2Strategy::RefineSmall},
    };
    const std::vector<const char *> paper = {"29.63", "28.58", "28.32"};

    std::vector<std::function<double()>> cells;
    std::vector<std::string> labels;
    for (const auto &[name, strategy] : cases) {
        labels.push_back(name);
        cells.push_back(
            [strategy = strategy] { return runStrategy(strategy); });
    }
    bench::SweepOptions options;
    options.title = "Appendix A.6";
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    Table t({"phase-2 cache contents", "phase-3 CLIP", "paper"});
    for (std::size_t i = 0; i < cases.size(); ++i)
        t.addRow({cases[i].first, Table::fmt(results[i]), paper[i]});
    t.print("Appendix A.6 — effect of caching small-model refinements "
            "on future generation quality");
    return 0;
}

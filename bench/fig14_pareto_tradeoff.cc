/**
 * @file
 * Paper Fig. 14: the quality-performance trade-off space — FID vs
 * 1/throughput for the serving strategies and several MoDM runtime
 * configurations (small-model choice, admission policy, cache size,
 * threshold shift). The large model is FLUX, dataset DiffusionDB.
 *
 * Paper shape: MoDM configurations populate the Pareto frontier
 * between the fast/low-quality standalone small models and the
 * slow/high-quality FLUX baseline.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

struct ParetoPoint
{
    double throughput = 0.0;
    double fid = 0.0;
    double clip = 0.0;
};

} // namespace

int
main()
{
    constexpr std::size_t kWarm = 2000;
    constexpr std::size_t kRequests = 2000;

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 2000;
    params.keepOutputs = true;

    const auto large = diffusion::flux1Dev();

    std::vector<bench::SystemSpec> lineup = {
        {"FLUX", baselines::vanilla(large, params)},
        {"NIRVANA", baselines::nirvana(large, params)},
        {"Pinecone", baselines::pinecone(large, params)},
        {"SDXL", baselines::standalone(diffusion::sdxl(), params)},
        {"SD3.5L-Turbo",
         baselines::standalone(diffusion::sd35LargeTurbo(), params)},
        {"MoDM-SDXL-cachelarge",
         baselines::modm(large, diffusion::sdxl(), params)},
        {"MoDM-SANA-cachelarge",
         baselines::modm(large, diffusion::sana(), params)},
        {"MoDM-Turbo-cachelarge",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cacheall",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cachelarge-5k",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cachelarge-thr+0.01",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
    };
    // Configure the MoDM variants (paper's runtime parameters).
    for (auto &spec : lineup) {
        if (spec.name.find("cachelarge") != std::string::npos)
            spec.config.admission =
                serving::AdmissionPolicy::CacheLargeOnly;
    }
    lineup[9].config.cacheCapacity = 1000;   // "5k" scaled like others
    for (auto &floor : lineup[10].config.kDecision.floors)
        floor += 0.01;                       // threshold +0.01

    // Each cell runs serving *and* quality evaluation (reference
    // generations + FID/CLIP), so the expensive metric passes fan out
    // with the experiments.
    std::vector<std::function<ParetoPoint()>> cells;
    std::vector<std::string> labels;
    for (const auto &spec : lineup) {
        labels.push_back(spec.name);
        cells.push_back([config = spec.config, large] {
            const auto bundle = bench::batchBundle(
                bench::Dataset::DiffusionDB, kWarm, kRequests);
            const auto result = bench::runSystem(config, bundle);
            const auto reference =
                bench::referenceImages(result.prompts, large);
            eval::MetricSuite metrics;
            const auto q = metrics.report(result.prompts, result.images,
                                          reference);
            return ParetoPoint{result.throughputPerMin, q.fid, q.clip};
        });
    }
    bench::SweepOptions options;
    options.title = "Fig. 14";
    const auto points =
        bench::runCells(std::move(cells), options, labels);

    Table t({"strategy", "throughput/min", "1/throughput", "FID",
             "CLIP"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        t.addRow({lineup[i].name, Table::fmt(points[i].throughput),
                  Table::fmt(1.0 / points[i].throughput, 3),
                  Table::fmt(points[i].fid, 1),
                  Table::fmt(points[i].clip)});
    }
    t.print("Fig. 14 — quality/performance trade-off space (FLUX "
            "large model, DiffusionDB; lower-left is better)");
    return 0;
}

/**
 * @file
 * Paper Fig. 14: the quality-performance trade-off space — FID vs
 * 1/throughput for the serving strategies and several MoDM runtime
 * configurations (small-model choice, admission policy, cache size,
 * threshold shift). The large model is FLUX, dataset DiffusionDB.
 *
 * Paper shape: MoDM configurations populate the Pareto frontier
 * between the fast/low-quality standalone small models and the
 * slow/high-quality FLUX baseline.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace modm;

int
main()
{
    constexpr std::size_t kWarm = 2000;
    constexpr std::size_t kRequests = 2000;

    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 2000;
    params.keepOutputs = true;

    const auto large = diffusion::flux1Dev();

    std::vector<bench::SystemSpec> lineup = {
        {"FLUX", baselines::vanilla(large, params)},
        {"NIRVANA", baselines::nirvana(large, params)},
        {"Pinecone", baselines::pinecone(large, params)},
        {"SDXL", baselines::standalone(diffusion::sdxl(), params)},
        {"SD3.5L-Turbo",
         baselines::standalone(diffusion::sd35LargeTurbo(), params)},
        {"MoDM-SDXL-cachelarge",
         baselines::modm(large, diffusion::sdxl(), params)},
        {"MoDM-SANA-cachelarge",
         baselines::modm(large, diffusion::sana(), params)},
        {"MoDM-Turbo-cachelarge",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cacheall",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cachelarge-5k",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
        {"MoDM-Turbo-cachelarge-thr+0.01",
         baselines::modm(large, diffusion::sd35LargeTurbo(), params)},
    };
    // Configure the MoDM variants (paper's runtime parameters).
    for (auto &spec : lineup) {
        if (spec.name.find("cachelarge") != std::string::npos)
            spec.config.admission =
                serving::AdmissionPolicy::CacheLargeOnly;
    }
    lineup[9].config.cacheCapacity = 1000;   // "5k" scaled like others
    for (auto &floor : lineup[10].config.kDecision.floors)
        floor += 0.01;                       // threshold +0.01

    eval::MetricSuite metrics;
    Table t({"strategy", "throughput/min", "1/throughput", "FID",
             "CLIP"});
    for (const auto &spec : lineup) {
        const auto bundle = bench::batchBundle(
            bench::Dataset::DiffusionDB, kWarm, kRequests);
        const auto result = bench::runSystem(spec.config, bundle);
        const auto reference =
            bench::referenceImages(result.prompts, large);
        const auto q =
            metrics.report(result.prompts, result.images, reference);
        t.addRow({spec.name, Table::fmt(result.throughputPerMin),
                  Table::fmt(1.0 / result.throughputPerMin, 3),
                  Table::fmt(q.fid, 1), Table::fmt(q.clip)});
    }
    t.print("Fig. 14 — quality/performance trade-off space (FLUX "
            "large model, DiffusionDB; lower-left is better)");
    return 0;
}

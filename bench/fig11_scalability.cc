/**
 * @file
 * Paper Fig. 11: MoDM throughput vs GPU count (4 -> 32 MI210s),
 * normalized to 4 GPUs.
 *
 * Paper shape: super-linear scaling {1.0, 2.3, 3.3, 4.2, 5.7, 7.2,
 * 8.1, 9.3} — faster processing fills the cache faster within the same
 * wall-clock window, raising the hit rate and compounding throughput.
 * The experiment therefore runs a fixed-duration overloaded window
 * from a small warm cache and counts completions.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    constexpr double kDuration = 3600.0; // one simulated hour
    constexpr double kDemand = 64.0;     // req/min, above all capacities

    const std::vector<std::size_t> gpuCounts = {4, 8, 12, 16, 20, 24,
                                                28, 32};
    const std::vector<const char *> paper = {"1.0", "2.3", "3.3", "4.2",
                                             "5.7", "7.2", "8.1", "9.3"};

    bench::SweepSpec spec;
    spec.options.title = "Fig. 11";
    for (const std::size_t gpus : gpuCounts) {
        baselines::PresetParams params;
        params.numWorkers = gpus;
        params.gpu = diffusion::GpuKind::MI210;
        params.cacheCapacity = 6000;
        spec.add("gpus=" + std::to_string(gpus),
                 baselines::modm(diffusion::sd35Large(),
                                 diffusion::sdxl(), params),
                 [] {
                     bench::WorkloadBundle bundle;
                     auto gen = workload::makeDiffusionDB(42);
                     for (int i = 0; i < 300; ++i)
                         bundle.warm.push_back(gen->next());
                     workload::PoissonArrivals arrivals(kDemand);
                     Rng rng(42);
                     bundle.trace = workload::buildTraceForDuration(
                         *gen, arrivals, kDuration, rng);
                     return bundle;
                 });
    }
    const auto results = bench::runSweep(spec);

    std::vector<double> throughput;
    std::vector<double> hitRates;
    for (const auto &result : results) {
        // Completions inside the demand window (the run drains the
        // remaining queue afterwards; that tail is excluded).
        const auto perMin = result.metrics.completionsPerMinute(
            result.duration);
        double within = 0.0;
        for (std::size_t m = 0; m < std::min<std::size_t>(
                 perMin.size(), kDuration / 60.0); ++m)
            within += perMin[m];
        throughput.push_back(within / (kDuration / 60.0));
        hitRates.push_back(result.hitRate);
    }

    Table t({"GPUs", "throughput/min", "normalized", "paper",
             "hit rate"});
    for (std::size_t i = 0; i < gpuCounts.size(); ++i) {
        t.addRow({Table::fmt(static_cast<std::uint64_t>(gpuCounts[i])),
                  Table::fmt(throughput[i], 1),
                  Table::fmt(throughput[i] / throughput.front(), 2),
                  paper[i], Table::fmt(hitRates[i])});
    }
    t.print("Fig. 11 — MoDM-SDXL scalability on MI210s (1h window, "
            "overloaded demand, cold-ish cache)");
    return 0;
}

/**
 * @file
 * Paper Figs. 12 & 13: SLO violation rates vs request rate, for SLO
 * thresholds of 2x and 4x the large model's inference latency, on
 * 4x A40 and 16x MI210 clusters.
 *
 * Paper shape: Vanilla and Nirvana collapse past ~5 req/min (A40) /
 * ~14 req/min (MI210); MoDM stays compliant up to ~10 (A40) and
 * ~22-26 (MI210).
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace modm;

namespace {

void
runCluster(std::size_t gpus, diffusion::GpuKind kind,
           const std::vector<double> &rates, const char *label)
{
    constexpr std::size_t kRequests = 1200;

    baselines::PresetParams params;
    params.numWorkers = gpus;
    params.gpu = kind;
    params.cacheCapacity = 3000;

    const double largeLatency =
        diffusion::sd35Large().fullLatency(kind);

    Table t({"rate/min", "Vanilla 2x", "NIRVANA 2x", "MoDM 2x",
             "Vanilla 4x", "NIRVANA 4x", "MoDM 4x"});
    for (double rate : rates) {
        std::vector<std::string> row = {Table::fmt(rate, 0)};
        std::vector<double> at2x, at4x;
        const std::vector<serving::ServingConfig> configs = {
            baselines::vanilla(diffusion::sd35Large(), params),
            baselines::nirvana(diffusion::sd35Large(), params),
            baselines::modmMulti(diffusion::sd35Large(),
                                 {diffusion::sdxl(), diffusion::sana()},
                                 params),
        };
        for (const auto &config : configs) {
            const auto bundle = bench::poissonBundle(
                bench::Dataset::DiffusionDB, 2500, kRequests, rate);
            const auto result = bench::runSystem(config, bundle);
            at2x.push_back(
                result.metrics.sloViolationRate(2.0 * largeLatency));
            at4x.push_back(
                result.metrics.sloViolationRate(4.0 * largeLatency));
        }
        for (double v : at2x)
            row.push_back(Table::fmt(v));
        for (double v : at4x)
            row.push_back(Table::fmt(v));
        t.addRow(row);
    }
    t.print(std::string("Figs. 12/13 — SLO violation rate, ") + label +
            " (1200 requests per point)");
}

} // namespace

int
main()
{
    runCluster(4, diffusion::GpuKind::A40,
               {3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}, "4x NVIDIA A40");
    runCluster(16, diffusion::GpuKind::MI210,
               {6.0, 10.0, 14.0, 18.0, 22.0, 26.0}, "16x AMD MI210");
    return 0;
}

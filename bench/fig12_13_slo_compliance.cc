/**
 * @file
 * Paper Figs. 12 & 13: SLO violation rates vs request rate, for SLO
 * thresholds of 2x and 4x the large model's inference latency, on
 * 4x A40 and 16x MI210 clusters.
 *
 * Paper shape: Vanilla and Nirvana collapse past ~5 req/min (A40) /
 * ~14 req/min (MI210); MoDM stays compliant up to ~10 (A40) and
 * ~22-26 (MI210).
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

constexpr std::size_t kRequests = 1200;

/** Vanilla / NIRVANA / MoDM at the given cluster shape. */
std::vector<bench::SystemSpec>
lineupFor(std::size_t gpus, diffusion::GpuKind kind)
{
    baselines::PresetParams params;
    params.numWorkers = gpus;
    params.gpu = kind;
    params.cacheCapacity = 3000;
    return {
        {"Vanilla", baselines::vanilla(diffusion::sd35Large(), params)},
        {"NIRVANA", baselines::nirvana(diffusion::sd35Large(), params)},
        {"MoDM", baselines::modmMulti(diffusion::sd35Large(),
                                      {diffusion::sdxl(),
                                       diffusion::sana()},
                                      params)},
    };
}

void
addCluster(bench::SweepSpec &spec, std::size_t gpus,
           diffusion::GpuKind kind, const std::vector<double> &rates)
{
    const auto lineup = lineupFor(gpus, kind);
    for (const double rate : rates) {
        for (const auto &system : lineup) {
            spec.add(system.name + "@" + Table::fmt(rate, 0),
                     system.config, [rate] {
                         return bench::poissonBundle(
                             bench::Dataset::DiffusionDB, 2500,
                             kRequests, rate);
                     });
        }
    }
}

void
printCluster(const std::vector<serving::ServingResult> &results,
             std::size_t offset, diffusion::GpuKind kind,
             const std::vector<double> &rates, const char *label)
{
    const double largeLatency = diffusion::sd35Large().fullLatency(kind);
    Table t({"rate/min", "Vanilla 2x", "NIRVANA 2x", "MoDM 2x",
             "Vanilla 4x", "NIRVANA 4x", "MoDM 4x"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
        std::vector<std::string> row = {Table::fmt(rates[r], 0)};
        for (const double slo : {2.0, 4.0}) {
            for (std::size_t s = 0; s < 3; ++s) {
                row.push_back(Table::fmt(
                    results[offset + r * 3 + s]
                        .metrics.sloViolationRate(slo * largeLatency)));
            }
        }
        t.addRow(row);
    }
    t.print(std::string("Figs. 12/13 — SLO violation rate, ") + label +
            " (1200 requests per point)");
}

} // namespace

int
main()
{
    const std::vector<double> a40Rates = {3.0, 4.0, 5.0, 6.0, 7.0,
                                          8.0, 9.0, 10.0};
    const std::vector<double> mi210Rates = {6.0, 10.0, 14.0, 18.0, 22.0,
                                            26.0};

    bench::SweepSpec spec;
    spec.options.title = "Figs. 12/13";
    addCluster(spec, 4, diffusion::GpuKind::A40, a40Rates);
    addCluster(spec, 16, diffusion::GpuKind::MI210, mi210Rates);
    const auto results = bench::runSweep(spec);

    printCluster(results, 0, diffusion::GpuKind::A40, a40Rates,
                 "4x NVIDIA A40");
    printCluster(results, a40Rates.size() * 3, diffusion::GpuKind::MI210,
                 mi210Rates, "16x AMD MI210");
    return 0;
}

/**
 * @file
 * Paper Fig. 2: CLIPScore and PickScore distributions of images
 * retrieved by text-to-text vs text-to-image similarity.
 *
 * Method (mirrors §3.2): build a cache of large-model images; for each
 * new prompt retrieve the best match twice — once by text-to-text
 * similarity over the cached prompts' text embeddings, once by
 * text-to-image similarity over the cached images' CLIP embeddings —
 * and score the *retrieved image* against the *new prompt*.
 * Expected shape: text-to-image retrieval dominates on both metrics
 * (paper: CLIP means 0.28 vs 0.22; Pick means 20.33 vs 19.52).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "src/common/stats.hh"
#include "src/embedding/index.hh"

using namespace modm;

int
main()
{
    constexpr std::size_t kCacheSize = 4000;
    constexpr std::size_t kQueries = 3000;

    auto gen = workload::makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    eval::MetricSuite metrics;
    embedding::TextEncoder text;
    embedding::ImageEncoder image;

    // Build the cache: images plus both kinds of retrieval keys.
    std::vector<workload::Prompt> cachedPrompts;
    std::vector<diffusion::Image> cachedImages;
    embedding::CosineIndex textIndex;
    embedding::CosineIndex imageIndex;
    for (std::size_t i = 0; i < kCacheSize; ++i) {
        const auto p = gen->next();
        const auto img = sampler.generate(diffusion::sd35Large(), p, 0.0);
        textIndex.insert(i, text.encode(p.visualConcept, p.lexicalStyle,
                                        p.text));
        imageIndex.insert(
            i, image.encode(img.content, img.fidelity, img.id));
        cachedPrompts.push_back(p);
        cachedImages.push_back(img);
    }

    RunningStat t2tClip, t2iClip, t2tPick, t2iPick;
    Histogram t2tHist(0.0, 0.45, 18), t2iHist(0.0, 0.45, 18);
    for (std::size_t q = 0; q < kQueries; ++q) {
        const auto p = gen->next();
        const auto queryText =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto byText = textIndex.best(queryText);
        const auto byImage = imageIndex.best(queryText);

        const auto &textPick = cachedImages[byText.id];
        const auto &imagePick = cachedImages[byImage.id];
        const double ct = metrics.clipScore(p, textPick) / 100.0;
        const double ci = metrics.clipScore(p, imagePick) / 100.0;
        t2tClip.add(ct);
        t2iClip.add(ci);
        t2tHist.add(ct);
        t2iHist.add(ci);
        t2tPick.add(metrics.pickScore(p, textPick));
        t2iPick.add(metrics.pickScore(p, imagePick));
    }

    Table summary({"retrieval", "CLIPScore mean", "PickScore mean",
                   "paper CLIP", "paper Pick"});
    summary.addRow({"text-to-text", Table::fmt(t2tClip.mean(), 3),
                    Table::fmt(t2tPick.mean(), 2), "0.22", "19.52"});
    summary.addRow({"text-to-image", Table::fmt(t2iClip.mean(), 3),
                    Table::fmt(t2iPick.mean(), 2), "0.28", "20.33"});
    summary.print("Fig. 2 — retrieval quality by similarity modality "
                  "(cache 4000, 3000 queries)");

    Table hist({"CLIP bucket", "text-to-text freq", "text-to-image freq"});
    for (std::size_t b = 0; b < t2tHist.bins(); ++b) {
        hist.addRow({Table::fmt(t2tHist.binCenter(b), 3),
                     Table::fmt(t2tHist.binFraction(b), 3),
                     Table::fmt(t2iHist.binFraction(b), 3)});
    }
    hist.print("Fig. 2 — CLIPScore distribution");
    return 0;
}

/**
 * @file
 * Paper Fig. 2: CLIPScore and PickScore distributions of images
 * retrieved by text-to-text vs text-to-image similarity.
 *
 * Method (mirrors §3.2): build a cache of large-model images; for each
 * new prompt retrieve the best match twice — once by text-to-text
 * similarity over the cached prompts' text embeddings, once by
 * text-to-image similarity over the cached images' CLIP embeddings —
 * and score the *retrieved image* against the *new prompt*.
 * Expected shape: text-to-image retrieval dominates on both metrics
 * (paper: CLIP means 0.28 vs 0.22; Pick means 20.33 vs 19.52).
 *
 * Sweep structure: the cache (and both retrieval indexes) is built
 * once, serially, from the seeded prompt stream; the 3000 queries then
 * score in fixed chunks fanned out as sweep cells. The chunking is a
 * fixed function of the query count, so the merged statistics are
 * identical at any parallelism on any machine.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/common/stats.hh"
#include "src/embedding/index.hh"

using namespace modm;

namespace {

/** Mergeable per-chunk accumulators (sums, not means). */
struct ChunkScores
{
    double t2tClipSum = 0.0, t2iClipSum = 0.0;
    double t2tPickSum = 0.0, t2iPickSum = 0.0;
    std::size_t count = 0;
    std::vector<std::uint64_t> t2tHist, t2iHist;
};

} // namespace

int
main()
{
    constexpr std::size_t kCacheSize = 4000;
    constexpr std::size_t kQueries = 3000;
    constexpr std::size_t kBins = 18;
    constexpr double kHistLo = 0.0, kHistHi = 0.45;

    auto gen = workload::makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    embedding::TextEncoder text;
    embedding::ImageEncoder image;

    // Build the cache: images plus both kinds of retrieval keys.
    std::vector<workload::Prompt> cachedPrompts;
    std::vector<diffusion::Image> cachedImages;
    embedding::CosineIndex textIndex;
    embedding::CosineIndex imageIndex;
    textIndex.reserve(kCacheSize);
    imageIndex.reserve(kCacheSize);
    for (std::size_t i = 0; i < kCacheSize; ++i) {
        const auto p = gen->next();
        const auto img = sampler.generate(diffusion::sd35Large(), p, 0.0);
        textIndex.insert(i, text.encode(p.visualConcept, p.lexicalStyle,
                                        p.text));
        imageIndex.insert(
            i, image.encode(img.content, img.fidelity, img.id));
        cachedPrompts.push_back(p);
        cachedImages.push_back(img);
    }

    // The query prompts continue the same stream; generating them is
    // cheap, so they are materialized up front and scored in chunks.
    std::vector<workload::Prompt> queries;
    queries.reserve(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q)
        queries.push_back(gen->next());

    const auto ranges = bench::splitRange(kQueries, 12);
    std::vector<std::function<ChunkScores()>> cells;
    std::vector<std::string> labels;
    for (const auto &[lo, hi] : ranges) {
        labels.push_back("queries " + std::to_string(lo) + ".." +
                         std::to_string(hi));
        cells.push_back([lo = lo, hi = hi, &queries, &cachedImages,
                         &textIndex, &imageIndex] {
            // Cells read the shared cache/indexes (const) and keep
            // their own encoder + metric suite.
            embedding::TextEncoder queryText;
            eval::MetricSuite metrics;
            Histogram t2tHist(kHistLo, kHistHi, kBins);
            Histogram t2iHist(kHistLo, kHistHi, kBins);
            ChunkScores out;
            for (std::size_t q = lo; q < hi; ++q) {
                const auto &p = queries[q];
                const auto queryEmb = queryText.encode(
                    p.visualConcept, p.lexicalStyle, p.text);
                const auto byText = textIndex.best(queryEmb);
                const auto byImage = imageIndex.best(queryEmb);

                const auto &textPick = cachedImages[byText.id];
                const auto &imagePick = cachedImages[byImage.id];
                const double ct =
                    metrics.clipScore(p, textPick) / 100.0;
                const double ci =
                    metrics.clipScore(p, imagePick) / 100.0;
                out.t2tClipSum += ct;
                out.t2iClipSum += ci;
                t2tHist.add(ct);
                t2iHist.add(ci);
                out.t2tPickSum += metrics.pickScore(p, textPick);
                out.t2iPickSum += metrics.pickScore(p, imagePick);
                ++out.count;
            }
            for (std::size_t b = 0; b < kBins; ++b) {
                out.t2tHist.push_back(t2tHist.binCount(b));
                out.t2iHist.push_back(t2iHist.binCount(b));
            }
            return out;
        });
    }
    bench::SweepOptions options;
    options.title = "Fig. 2";
    const auto chunks = bench::runCells(std::move(cells), options, labels);

    ChunkScores total;
    total.t2tHist.assign(kBins, 0);
    total.t2iHist.assign(kBins, 0);
    for (const auto &c : chunks) {
        total.t2tClipSum += c.t2tClipSum;
        total.t2iClipSum += c.t2iClipSum;
        total.t2tPickSum += c.t2tPickSum;
        total.t2iPickSum += c.t2iPickSum;
        total.count += c.count;
        for (std::size_t b = 0; b < kBins; ++b) {
            total.t2tHist[b] += c.t2tHist[b];
            total.t2iHist[b] += c.t2iHist[b];
        }
    }
    const double n = static_cast<double>(total.count);

    Table summary({"retrieval", "CLIPScore mean", "PickScore mean",
                   "paper CLIP", "paper Pick"});
    summary.addRow({"text-to-text", Table::fmt(total.t2tClipSum / n, 3),
                    Table::fmt(total.t2tPickSum / n, 2), "0.22",
                    "19.52"});
    summary.addRow({"text-to-image", Table::fmt(total.t2iClipSum / n, 3),
                    Table::fmt(total.t2iPickSum / n, 2), "0.28",
                    "20.33"});
    summary.print("Fig. 2 — retrieval quality by similarity modality "
                  "(cache 4000, 3000 queries)");

    Table hist({"CLIP bucket", "text-to-text freq", "text-to-image freq"});
    const double binWidth = (kHistHi - kHistLo) / kBins;
    for (std::size_t b = 0; b < kBins; ++b) {
        hist.addRow({Table::fmt(kHistLo + (b + 0.5) * binWidth, 3),
                     Table::fmt(total.t2tHist[b] / n, 3),
                     Table::fmt(total.t2iHist[b] / n, 3)});
    }
    hist.print("Fig. 2 — CLIPScore distribution");
    return 0;
}

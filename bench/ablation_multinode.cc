/**
 * @file
 * Cluster-scale ablation: node count x routing policy x cache
 * partitioning, the design-space study the single-process design
 * could not express.
 *
 * The cluster serves a fixed total worker budget and a fixed total
 * cache budget; scaling the node count shards both. The question the
 * grid answers is where the hit rate goes: with Sharded caches and
 * affinity-free routing (round-robin, least-outstanding) a topic's
 * requests scatter across nodes, so the cached images they could have
 * hit sit on the wrong shard — hit rate degrades as nodes grow. The
 * consistent-hash router pins each topic to one node, recovering most
 * of the single-node hit rate at the cost of load imbalance (popular
 * topics overload their node); the bounded-load variant keeps the
 * affinity but spills an overloaded owner's traffic to the next ring
 * node. Replicated partitioning spends the same budget on k=2 copies
 * per entry placed on the topic's ring owners — lower unique capacity,
 * but content that survives node failures (see ablation_failover).
 *
 * Every column is virtual-time simulation output (no wall-clock), so
 * the emitted table is bit-identical at any sweep parallelism — the
 * CI determinism job diffs it at 1 vs 4 threads.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/sweep.hh"

using namespace modm;

namespace {

constexpr std::size_t kWarm = 800;
constexpr std::size_t kRequests = 2000;
constexpr double kRatePerMin = 20.0;
constexpr std::size_t kTotalWorkers = 8;
constexpr std::size_t kTotalCache = 1200;

struct GridPoint
{
    std::size_t numNodes;
    serving::RoutingPolicy routing;
    serving::CachePartitioning partitioning;
};

serving::ServingConfig
makeConfig(const GridPoint &point)
{
    baselines::PresetParams params;
    params.numWorkers = kTotalWorkers;
    params.cacheCapacity = kTotalCache;
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), params);
    config.cluster.numNodes = point.numNodes;
    config.cluster.routing = point.routing;
    config.cluster.cachePartitioning = point.partitioning;
    return config;
}

std::string
label(const GridPoint &point)
{
    return "nodes=" + std::to_string(point.numNodes) + "/" +
        serving::routingPolicyName(point.routing) + "/" +
        serving::cachePartitioningName(point.partitioning);
}

} // namespace

int
main()
{
    // One single-node baseline (routing is vacuous there), then the
    // full routing x partitioning cross at every multi-node scale.
    std::vector<GridPoint> grid;
    grid.push_back({1, serving::RoutingPolicy::RoundRobin,
                    serving::CachePartitioning::Sharded});
    for (const std::size_t nodes : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
        for (const auto routing :
             {serving::RoutingPolicy::RoundRobin,
              serving::RoutingPolicy::ConsistentHash,
              serving::RoutingPolicy::LeastOutstanding,
              serving::RoutingPolicy::BoundedLoadConsistentHash}) {
            grid.push_back({nodes, routing,
                            serving::CachePartitioning::Sharded});
        }
        // k-replica write-through on the same budget: what affinity
        // routing keeps hitting after a node failure (see
        // ablation_failover for the recovery story).
        grid.push_back({nodes, serving::RoutingPolicy::ConsistentHash,
                        serving::CachePartitioning::Replicated});
    }

    bench::SweepSpec spec;
    spec.options.title = "Ablation multinode";
    for (const auto &point : grid) {
        spec.add(label(point), makeConfig(point), [] {
            return bench::poissonBundle(bench::Dataset::DiffusionDB,
                                        kWarm, kRequests, kRatePerMin);
        });
    }
    const auto results = bench::runSweep(spec);

    Table t({"nodes", "routing", "cache", "hit rate", "throughput/min",
             "p99 latency s", "load imbalance", "hit-rate spread"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &r = results[i];
        t.addRow({Table::fmt(grid[i].numNodes),
                  serving::routingPolicyName(grid[i].routing),
                  serving::cachePartitioningName(grid[i].partitioning),
                  Table::fmt(r.hitRate, 3),
                  Table::fmt(r.throughputPerMin, 1),
                  Table::fmt(r.metrics.latencyPercentile(99.0), 1),
                  Table::fmt(r.loadImbalance, 2),
                  Table::fmt(r.hitRateSpread, 3)});
    }
    t.print("Ablation — multi-node serving (MoDM-SDXL, DiffusionDB "
            "Poisson " +
            std::to_string(kRequests) + " requests at " +
            Table::fmt(kRatePerMin, 0) + "/min, " +
            std::to_string(kTotalWorkers) + " workers and " +
            std::to_string(kTotalCache) +
            "-entry cache budget split across nodes)");

    // The headline delta: what affinity routing recovers of the hit
    // rate that hash-partitioned (round-robin over shards) serving
    // loses at the widest sharded scale.
    std::size_t rr = 0;
    std::size_t affinity = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].numNodes != 8 ||
            grid[i].partitioning !=
                serving::CachePartitioning::Sharded)
            continue;
        if (grid[i].routing == serving::RoutingPolicy::RoundRobin)
            rr = i;
        if (grid[i].routing == serving::RoutingPolicy::ConsistentHash)
            affinity = i;
    }
    std::printf("\nAt 8 sharded nodes: affinity routing hit rate %.3f "
                "vs round-robin %.3f (+%.3f recovered)\n",
                results[affinity].hitRate, results[rr].hitRate,
                results[affinity].hitRate - results[rr].hitRate);
    return 0;
}

/**
 * @file
 * Paper Fig. 5a/5b: quality factor vs text-image similarity per k, and
 * the derived cache-hit thresholds at alpha = 0.95.
 *
 * Method (mirrors §5.2): generate large-model images; form related
 * queries by drifting the concept; for each (query, cached image) pair
 * refine with the small model at every k in K = {5,...,30} and compute
 * the quality factor Q = CLIP(refined) / CLIP(full large generation).
 * Calibrate thresholds with KDecision::calibrate and compare them with
 * the paper's Fig. 5b table {0.25, 0.27, 0.28, 0.29, 0.30}.
 *
 * Sweep structure: the 6000 probe pairs split into twelve fixed chunks,
 * each with its own seeded generator/sampler/rng stream, fanned out as
 * sweep cells and merged in chunk order — the same statistics at any
 * parallelism on any machine.
 */

#include <cstdio>
#include <map>

#include "bench/sweep.hh"
#include "src/common/stats.hh"
#include "src/serving/k_decision.hh"

using namespace modm;

namespace {

const std::vector<int> kSet = {5, 10, 15, 20, 25, 30};

/** One chunk of probe pairs; self-contained seeded streams. */
std::vector<serving::CalibrationPoint>
probeChunk(std::size_t chunk, std::size_t pairs)
{
    workload::DiffusionDBModel gen({}, 13 + 101 * chunk);
    diffusion::Sampler sampler(5 + 1000 * chunk);
    eval::MetricSuite metrics;
    embedding::TextEncoder text;
    embedding::ImageEncoder image;
    Rng rng(17 + 31 * chunk);

    std::vector<serving::CalibrationPoint> points;
    for (std::size_t i = 0; i < pairs; ++i) {
        auto base = gen.next();
        const auto baseImg =
            sampler.generate(diffusion::sd35Large(), base, 0.0);
        workload::Prompt query = base;
        query.id = base.id + 1000000;
        query.visualConcept = jitterUnitVec(
            base.visualConcept, rng.uniform(0.0, 0.8), rng);
        const auto te = text.encode(query.visualConcept,
                                    query.lexicalStyle, query.text);
        const auto ie =
            image.encode(baseImg.content, baseImg.fidelity, baseImg.id);
        const double sim = te.similarity(ie);
        if (sim < 0.20 || sim > 0.34)
            continue;

        const auto fullGen =
            sampler.generate(diffusion::sd35Large(), query, 0.0);
        const double fullClip = metrics.clipScore(query, fullGen);
        for (int k : kSet) {
            const auto refined = sampler.refine(diffusion::sdxl(), query,
                                                baseImg, k, 0.0);
            const double q = metrics.clipScore(query, refined) / fullClip;
            points.push_back({k, sim, q});
        }
    }
    return points;
}

} // namespace

int
main()
{
    constexpr std::size_t kPairs = 6000;
    constexpr std::size_t kChunks = 12;
    const double alpha = 0.95;

    std::vector<std::function<std::vector<serving::CalibrationPoint>()>>
        cells;
    std::vector<std::string> labels;
    for (std::size_t c = 0; c < kChunks; ++c) {
        labels.push_back("chunk " + std::to_string(c));
        cells.push_back([c] { return probeChunk(c, kPairs / kChunks); });
    }
    bench::SweepOptions options;
    options.title = "Fig. 5";
    const auto chunks = bench::runCells(std::move(cells), options, labels);

    std::vector<serving::CalibrationPoint> points;
    std::map<int, std::map<int, RunningStat>> cellStats;
    for (const auto &chunk : chunks) {
        for (const auto &p : chunk) {
            points.push_back(p);
            cellStats[p.k][static_cast<int>(p.similarity * 100.0)].add(
                p.qualityFactor);
        }
    }

    // Fig. 5a: the quality response surface.
    Table surface({"similarity", "k=5", "k=10", "k=15", "k=20", "k=25",
                   "k=30"});
    for (int bucket = 21; bucket <= 33; ++bucket) {
        std::vector<std::string> row = {Table::fmt(bucket / 100.0, 2)};
        bool any = false;
        for (int k : kSet) {
            const auto it = cellStats[k].find(bucket);
            if (it != cellStats[k].end() && it->second.count() >= 20) {
                row.push_back(Table::fmt(it->second.mean(), 3));
                any = true;
            } else {
                row.push_back("-");
            }
        }
        if (any)
            surface.addRow(row);
    }
    surface.print("Fig. 5a — quality factor vs text-image similarity "
                  "(SDXL refinement of SD3.5L cache)");

    // Fig. 5b: derived thresholds at alpha = 0.95.
    const auto derived = serving::KDecision::calibrate(points, alpha);
    const std::map<int, double> paper = {
        {5, 0.25}, {10, 0.27}, {15, 0.28}, {25, 0.29}, {30, 0.30}};
    Table thresholds({"k", "derived threshold", "paper Fig. 5b"});
    for (std::size_t i = 0; i < derived.ks.size(); ++i) {
        const int k = derived.ks[i];
        const auto it = paper.find(k);
        thresholds.addRow({Table::fmt(static_cast<std::uint64_t>(k)),
                           Table::fmt(derived.floors[i], 3),
                           it == paper.end() ? "-"
                                             : Table::fmt(it->second, 2)});
    }
    thresholds.print("Fig. 5b — cache-hit thresholds at alpha = 0.95");
    return 0;
}

/**
 * @file
 * Diff, verify, and perturb .mtrace event logs.
 *
 *   trace_diff A.mtrace B.mtrace     first-divergence report; exits 0
 *                                    when identical, 1 when diverged
 *   trace_diff --verify A.mtrace     recompute the rolling hash chain
 *                                    and print a summary (the loader
 *                                    already rejects corrupt logs)
 *   trace_diff --spans A.mtrace      per-request span report derived
 *                                    from the log (arrival -> route ->
 *                                    classify -> dispatch -> serve)
 *   trace_diff --flip I A.mtrace OUT copy A with record I's kind
 *                                    perturbed and the chain rehashed
 *                                    (test fixture for divergence
 *                                    localization)
 *
 * The divergence report is the record/replay debugging loop: record
 * two runs that should be identical (MODM_TRACE=path), then this tool
 * names the exact first event — virtual clock, queue sequence, node,
 * request, both kinds — where they parted ways.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/log.hh"
#include "src/obs/span.hh"
#include "src/obs/trace.hh"

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_diff A.mtrace B.mtrace\n"
        "       trace_diff --verify A.mtrace\n"
        "       trace_diff --spans A.mtrace\n"
        "       trace_diff --flip INDEX A.mtrace OUT.mtrace\n");
    std::exit(2);
}

int
diffLogs(const char *path_a, const char *path_b)
{
    const auto a = modm::obs::loadTrace(path_a);
    const auto b = modm::obs::loadTrace(path_b);
    const auto d = modm::obs::firstDivergence(a, b);
    std::fputs(modm::obs::formatDivergence(d).c_str(), stdout);
    return d.diverged ? 1 : 0;
}

int
verifyLog(const char *path)
{
    // loadTrace already recomputes the chain and fatals on a footer
    // mismatch, so reaching here means the log is self-consistent.
    const auto log = modm::obs::loadTrace(path);
    std::printf("%s: %zu events, final hash %016llx\n", path,
                log.size(),
                static_cast<unsigned long long>(log.finalHash()));
    return 0;
}

int
spanReport(const char *path)
{
    const auto log = modm::obs::loadTrace(path);
    const auto spans = modm::obs::deriveSpans(log);
    for (const auto &span : spans)
        std::fputs(modm::obs::formatSpan(span).c_str(), stdout);
    std::printf("%zu requests, %zu events\n", spans.size(),
                log.size());
    return 0;
}

int
flipRecord(const char *index_text, const char *path, const char *out)
{
    auto log = modm::obs::loadTrace(path);
    const auto index =
        static_cast<std::size_t>(std::strtoull(index_text, nullptr, 10));
    if (index >= log.size())
        modm::fatal("--flip index %zu out of range (%zu events)",
                    index, log.size());
    // XOR keeps the perturbation self-inverse: flipping twice restores
    // the original log bit-for-bit.
    log.mutableRecords()[index].kind ^= 1u;
    log.rechain();
    modm::obs::saveTrace(log, out);
    std::printf("flipped event %zu of %s -> %s\n", index, path, out);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--verify") == 0)
        return verifyLog(argv[2]);
    if (argc == 3 && std::strcmp(argv[1], "--spans") == 0)
        return spanReport(argv[2]);
    if (argc == 5 && std::strcmp(argv[1], "--flip") == 0)
        return flipRecord(argv[2], argv[3], argv[4]);
    if (argc == 3)
        return diffLogs(argv[1], argv[2]);
    usage();
}

/**
 * @file
 * Paper Table 2: image quality (CLIP / FID / IS / Pick) of every
 * baseline on DiffusionDB and MJHQ, with SD3.5L as the vanilla large
 * model. Runs in throughput-optimized mode — the paper's worst-case
 * quality configuration.
 *
 * Paper shape (DiffusionDB): Vanilla FID ~6.3 best; small/distilled
 * models 14-20; Nirvana ~9; MoDM-SDXL ~11.9 and MoDM-SANA ~17.0 —
 * i.e. MoDM sits between the large model and its small model, with
 * CLIP/Pick close to Vanilla.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

namespace {

constexpr std::size_t kWarm = 2500;
constexpr std::size_t kRequests = 2500;

std::vector<bench::SystemSpec>
lineupFor(const baselines::PresetParams &params)
{
    return {
        {"Vanilla (SD3.5L)",
         baselines::vanilla(diffusion::sd35Large(), params)},
        {"SDXL", baselines::standalone(diffusion::sdxl(), params)},
        {"SD3.5L-Turbo",
         baselines::standalone(diffusion::sd35LargeTurbo(), params)},
        {"SANA", baselines::standalone(diffusion::sana(), params)},
        {"NIRVANA", baselines::nirvana(diffusion::sd35Large(), params)},
        {"Pinecone", baselines::pinecone(diffusion::sd35Large(), params)},
        {"MoDM-SDXL", baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params)},
        {"MoDM-SANA", baselines::modm(diffusion::sd35Large(),
                                      diffusion::sana(), params)},
    };
}

void
runDataset(bench::Dataset dataset,
           const std::vector<std::vector<const char *>> &paper)
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 2500;
    params.keepOutputs = true;

    const auto lineup = lineupFor(params);
    std::vector<std::function<eval::QualityReport()>> cells;
    std::vector<std::string> labels;
    for (const auto &spec : lineup) {
        labels.push_back(spec.name);
        cells.push_back([config = spec.config, dataset] {
            const auto bundle =
                bench::batchBundle(dataset, kWarm, kRequests);
            const auto result = bench::runSystem(config, bundle);
            const auto reference = bench::referenceImages(
                result.prompts, diffusion::sd35Large());
            eval::MetricSuite metrics;
            return metrics.report(result.prompts, result.images,
                                  reference);
        });
    }
    bench::SweepOptions options;
    options.title = std::string("Table 2 ") + bench::datasetName(dataset);
    const auto reports =
        bench::runCells(std::move(cells), options, labels);

    Table t({"baseline", "CLIP", "FID", "IS", "Pick", "paper CLIP",
             "paper FID"});
    for (std::size_t i = 0; i < lineup.size(); ++i) {
        const auto &q = reports[i];
        t.addRow({lineup[i].name, Table::fmt(q.clip), Table::fmt(q.fid),
                  Table::fmt(q.is), Table::fmt(q.pick), paper[i][0],
                  paper[i][1]});
    }
    t.print(std::string("Table 2 — image quality on ") +
            bench::datasetName(dataset) +
            " (vanilla SD3.5L, 2500 requests, throughput-optimized)");
}

} // namespace

int
main()
{
    runDataset(bench::Dataset::DiffusionDB,
               {{"28.55", "6.29"},
                {"29.30", "16.29"},
                {"27.23", "14.63"},
                {"28.08", "19.96"},
                {"28.02", "9.01"},
                {"25.98", "14.18"},
                {"28.70", "11.85"},
                {"28.01", "16.96"}});
    runDataset(bench::Dataset::MJHQ,
               {{"28.77", "5.16"},
                {"29.66", "12.67"},
                {"27.84", "10.68"},
                {"28.83", "16.31"},
                {"28.57", "5.37"},
                {"27.20", "6.80"},
                {"28.79", "6.87"},
                {"28.82", "9.96"}});
    return 0;
}

/**
 * @file
 * Paper Fig. 9 (DiffusionDB) and Fig. 19 (MJHQ): cache hit rates and
 * skipped-step (k) distributions for Nirvana vs MoDM under the
 * cache-large-only and cache-all admission policies, across cache
 * sizes.
 *
 * Paper shape: MoDM > Nirvana everywhere; cache-all > cache-large on
 * DiffusionDB (temporal locality) but not on MJHQ; larger caches help;
 * MoDM's text-to-image retrieval assigns larger k.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/serving/scheduler.hh"

using namespace modm;

namespace {

constexpr std::size_t kRequests = 8000;

struct CellResult
{
    double hitRate = 0.0;
    std::map<int, double> kDist;
};

/**
 * Streamed classification over `requests` prompts with runtime
 * admission — the cache-path-only equivalent of a serving run.
 */
CellResult
streamOne(const serving::ServingConfig &config, bench::Dataset dataset,
          std::size_t warm, std::size_t requests)
{
    auto gen = bench::makeGenerator(dataset, 42);
    serving::RequestScheduler scheduler(config);
    scheduler.reserveCache(warm);
    diffusion::Sampler sampler(config.seed ^ 0x5a3b1e9cULL);

    for (std::size_t i = 0; i < warm; ++i) {
        const auto p = gen->next();
        const auto img = sampler.generate(config.largeModel, p, 0.0);
        const auto te = scheduler.textEncoder().encode(
            p.visualConcept, p.lexicalStyle, p.text);
        scheduler.admitGenerated(img, te, true, 0.0);
    }

    const auto small = config.smallModels.empty()
        ? config.largeModel
        : config.smallModels.front();
    for (std::size_t i = 0; i < requests; ++i) {
        workload::Request request;
        request.prompt = gen->next();
        request.arrival = static_cast<double>(i);
        const auto job = scheduler.classify(request, request.arrival);
        diffusion::Image img;
        if (job.hit && !job.direct) {
            const auto &model = config.kind == serving::SystemKind::MoDM
                ? small
                : config.largeModel;
            img = sampler.refine(model, request.prompt, job.base, job.k,
                                 request.arrival);
        } else if (!job.hit) {
            img = sampler.generate(config.largeModel, request.prompt,
                                   request.arrival);
        } else {
            continue; // direct return: nothing new to admit
        }
        scheduler.admitGenerated(img, job.textEmbedding, !job.hit,
                                 request.arrival);
    }

    CellResult out;
    const auto &stats = scheduler.stats();
    out.hitRate = static_cast<double>(stats.hits) /
        static_cast<double>(stats.classified);
    double hits = static_cast<double>(stats.hits);
    for (const auto &[k, count] : stats.kCounts)
        out.kDist[k] = hits > 0 ? count / hits : 0.0;
    return out;
}

/** The three systems compared at one cache size. */
std::vector<std::pair<std::string, serving::ServingConfig>>
lineupFor(std::size_t size)
{
    baselines::PresetParams params;
    params.cacheCapacity = size;

    std::vector<std::pair<std::string, serving::ServingConfig>> row;
    row.emplace_back("NIRVANA",
                     baselines::nirvana(diffusion::sd35Large(), params));
    auto cacheLarge = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params);
    cacheLarge.admission = serving::AdmissionPolicy::CacheLargeOnly;
    row.emplace_back("MoDM cache-large", cacheLarge);
    row.emplace_back("MoDM cache-all",
                     baselines::modm(diffusion::sd35Large(),
                                     diffusion::sdxl(), params));
    return row;
}

void
runDataset(bench::Dataset dataset, const std::vector<std::size_t> &sizes,
           const char *figure)
{
    std::vector<std::function<CellResult()>> cells;
    std::vector<std::string> labels;
    std::vector<std::pair<std::size_t, std::string>> grid;
    for (const std::size_t size : sizes) {
        for (const auto &[name, config] : lineupFor(size)) {
            grid.emplace_back(size, name);
            labels.push_back(name + "/size=" + std::to_string(size));
            cells.push_back([config = config, dataset, size] {
                return streamOne(config, dataset,
                                 std::min(size, kRequests / 2),
                                 kRequests);
            });
        }
    }
    bench::SweepOptions options;
    options.title = figure;
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    Table t({"cache size", "system", "hit rate", "k=5", "k=10", "k=15",
             "k=20", "k=25", "k=30"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &result = results[i];
        std::vector<std::string> cellsRow = {
            Table::fmt(static_cast<std::uint64_t>(grid[i].first)),
            grid[i].second, Table::fmt(result.hitRate, 3)};
        for (int k : {5, 10, 15, 20, 25, 30}) {
            const auto it = result.kDist.find(k);
            cellsRow.push_back(it == result.kDist.end()
                                   ? "-"
                                   : Table::fmt(it->second, 2));
        }
        t.addRow(cellsRow);
    }
    t.print(std::string(figure) + " — hit rates and k distribution, " +
            bench::datasetName(dataset) + " (8000 requests)");
}

} // namespace

int
main()
{
    // Paper sizes {1k, 10k, 100k} scaled to the 8k-request stream.
    runDataset(bench::Dataset::DiffusionDB, {500, 2000, 8000}, "Fig. 9");
    // Fig. 19 uses only the two smaller sizes (MJHQ has 30k prompts).
    runDataset(bench::Dataset::MJHQ, {500, 2000}, "Fig. 19");
    return 0;
}

/**
 * @file
 * Paper Fig. 6: MoDM's cache hit rate as the request stream progresses,
 * for two cache sizes. The paper's point: hit rate stabilises quickly
 * and is nearly identical across cache sizes, so sub-sampled
 * experiments generalise.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/cache/image_cache.hh"
#include "src/obs/metrics.hh"
#include "src/serving/k_decision.hh"

using namespace modm;

namespace {

/**
 * Streamed cache simulation (no cluster): classify each prompt against
 * the cache, then admit the (simulated) generation — full fidelity to
 * the scheduler's cache path at a fraction of the cost, which is what
 * lets us stream tens of thousands of requests. The windowed hit
 * accounting runs on the streaming metrics registry (windows of
 * `window` requests, with the request index as the clock), replacing
 * the hand-rolled counter this figure used to carry; the curve over
 * complete windows is byte-identical.
 */
std::vector<double>
hitRateCurve(std::size_t cache_capacity, std::size_t requests,
             std::size_t window)
{
    auto gen = workload::makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    cache::ImageCache cache(cache_capacity, cache::EvictionPolicy::FIFO);
    embedding::TextEncoder text;
    serving::KDecision kd;

    obs::MetricsRegistry registry(static_cast<double>(window));
    const auto requestsId = registry.counter("requests");
    const auto hitsId = registry.counter("hits");
    for (std::size_t i = 0; i < requests; ++i) {
        const double t = static_cast<double>(i);
        registry.add(requestsId, t);
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        diffusion::Image img;
        if (r.found && kd.isHit(r.similarity)) {
            registry.add(hitsId, t);
            cache.recordHit(r.entryId, static_cast<double>(i));
            img = sampler.refine(diffusion::sdxl(), p,
                                 cache.entry(r.entryId).image,
                                 kd.decide(r.similarity),
                                 static_cast<double>(i));
        } else {
            img = sampler.generate(diffusion::sd35Large(), p,
                                   static_cast<double>(i));
        }
        cache.insert(img, static_cast<double>(i));
    }

    // Complete windows only: the historical curve dropped the trailing
    // partial window, while take() flushes it as a final row.
    const auto series = registry.take();
    std::vector<double> curve;
    const std::size_t complete = requests / window;
    for (std::size_t w = 0;
         w < complete && w < series.rows.size(); ++w) {
        curve.push_back(series.rows[w].values[hitsId].sum /
                        static_cast<double>(window));
    }
    return curve;
}

} // namespace

int
main()
{
    constexpr std::size_t kRequests = 30000;
    constexpr std::size_t kWindow = 2000;

    // Paper cache sizes 10k / 100k scaled to the request volume; the
    // two curves are independent streams, so they run as two cells.
    bench::SweepOptions options;
    options.title = "Fig. 6";
    const auto curves = bench::runCells<std::vector<double>>(
        {[] { return hitRateCurve(2000, kRequests, kWindow); },
         [] { return hitRateCurve(20000, kRequests, kWindow); }},
        options, {"cache 2k", "cache 20k"});
    const auto &smallCurve = curves[0];
    const auto &largeCurve = curves[1];

    Table t({"requests", "hit rate (cache 2k)", "hit rate (cache 20k)"});
    for (std::size_t i = 0; i < smallCurve.size(); ++i) {
        t.addRow({Table::fmt(static_cast<std::uint64_t>((i + 1) *
                                                        kWindow)),
                  Table::fmt(smallCurve[i], 3),
                  Table::fmt(largeCurve[i], 3)});
    }
    t.print("Fig. 6 — hit rate over the request stream (paper: stable "
            "~0.9, consistent across cache sizes)");
    return 0;
}

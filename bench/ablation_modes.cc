/**
 * @file
 * Design-choice ablation (paper §5.3, Q.9): Quality-Optimized vs
 * Throughput-Optimized monitor modes.
 *
 * At low request rates the quality-optimized mode serves cache hits
 * with the *large* model when capacity allows, recovering quality; the
 * throughput-optimized mode always refines with the small model. This
 * ablation sweeps the request rate and reports, per mode, the SLO
 * compliance and the fraction of hits refined by the large model plus
 * end-to-end CLIP.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace modm;

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 16;
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 2500;
    params.keepOutputs = true;

    const std::vector<double> rates = {6.0, 12.0, 20.0};
    const std::vector<serving::MonitorMode> modes = {
        serving::MonitorMode::QualityOptimized,
        serving::MonitorMode::ThroughputOptimized};

    bench::SweepSpec spec;
    spec.options.title = "Ablation modes";
    for (const double rate : rates) {
        for (const auto mode : modes) {
            auto config = baselines::modm(diffusion::sd35Large(),
                                          diffusion::sdxl(), params);
            config.mode = mode;
            spec.add(std::string(serving::monitorModeName(mode)) + "@" +
                         Table::fmt(rate, 0),
                     config, [rate] {
                         return bench::poissonBundle(
                             bench::Dataset::DiffusionDB, 2500, 1200,
                             rate);
                     });
        }
    }
    const auto results = bench::runSweep(spec);

    eval::MetricSuite metrics;
    const double slo =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);
    Table t({"rate/min", "mode", "hits on large", "CLIP",
             "SLO viol (2x)", "throughput/min"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const auto &result = results[r * modes.size() + m];
            std::size_t hits = 0, hitsOnLarge = 0;
            for (const auto &rec : result.metrics.records()) {
                if (!rec.cacheHit)
                    continue;
                ++hits;
                hitsOnLarge += rec.servedBy == "SD3.5L";
            }
            double clip = 0.0;
            for (std::size_t i = 0; i < result.images.size(); ++i)
                clip += metrics.clipScore(result.prompts[i],
                                          result.images[i]);
            clip /= static_cast<double>(result.images.size());

            t.addRow({Table::fmt(rates[r], 0),
                      serving::monitorModeName(modes[m]),
                      hits ? Table::fmt(static_cast<double>(hitsOnLarge) /
                                        hits, 2)
                           : "-",
                      Table::fmt(clip),
                      Table::fmt(result.metrics.sloViolationRate(slo)),
                      Table::fmt(result.throughputPerMin)});
        }
    }
    t.print("Ablation — monitor operating modes (16x MI210; paper Q.9: "
            "quality mode serves hits with the large model when load "
            "allows)");
    return 0;
}

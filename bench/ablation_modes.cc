/**
 * @file
 * Design-choice ablation (paper §5.3, Q.9): Quality-Optimized vs
 * Throughput-Optimized monitor modes.
 *
 * At low request rates the quality-optimized mode serves cache hits
 * with the *large* model when capacity allows, recovering quality; the
 * throughput-optimized mode always refines with the small model. This
 * ablation sweeps the request rate and reports, per mode, the SLO
 * compliance and the fraction of hits refined by the large model plus
 * end-to-end CLIP.
 */

#include <cstdio>

#include "bench/harness.hh"

using namespace modm;

int
main()
{
    baselines::PresetParams params;
    params.numWorkers = 16;
    params.gpu = diffusion::GpuKind::MI210;
    params.cacheCapacity = 2500;
    params.keepOutputs = true;

    eval::MetricSuite metrics;
    const double slo =
        2.0 * diffusion::sd35Large().fullLatency(params.gpu);

    Table t({"rate/min", "mode", "hits on large", "CLIP",
             "SLO viol (2x)", "throughput/min"});
    for (double rate : {6.0, 12.0, 20.0}) {
        for (const auto mode : {serving::MonitorMode::QualityOptimized,
                                serving::MonitorMode::ThroughputOptimized}) {
            auto config = baselines::modm(diffusion::sd35Large(),
                                          diffusion::sdxl(), params);
            config.mode = mode;
            const auto bundle = bench::poissonBundle(
                bench::Dataset::DiffusionDB, 2500, 1200, rate);
            const auto result = bench::runSystem(config, bundle);

            std::size_t hits = 0, hitsOnLarge = 0;
            for (const auto &r : result.metrics.records()) {
                if (!r.cacheHit)
                    continue;
                ++hits;
                hitsOnLarge += r.servedBy == "SD3.5L";
            }
            double clip = 0.0;
            for (std::size_t i = 0; i < result.images.size(); ++i)
                clip += metrics.clipScore(result.prompts[i],
                                          result.images[i]);
            clip /= static_cast<double>(result.images.size());

            t.addRow({Table::fmt(rate, 0),
                      serving::monitorModeName(mode),
                      hits ? Table::fmt(static_cast<double>(hitsOnLarge) /
                                        hits, 2)
                           : "-",
                      Table::fmt(clip),
                      Table::fmt(result.metrics.sloViolationRate(slo)),
                      Table::fmt(result.throughputPerMin)});
        }
    }
    t.print("Ablation — monitor operating modes (16x MI210; paper Q.9: "
            "quality mode serves hits with the large model when load "
            "allows)");
    return 0;
}

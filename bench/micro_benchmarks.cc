/**
 * @file
 * Wall-clock micro benchmarks (google-benchmark) for the substrate hot
 * paths. The headline number reproduces the paper's §5.2 claim:
 * retrieval over a 100k-entry cache is negligible (~0.05 s) against
 * 10+ s of de-noising — here the brute-force cosine scan over 100k
 * 64-dim embeddings should land well under a millisecond-to-tens-of-ms
 * budget on one core.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/cache/image_cache.hh"
#include "src/common/kernels.hh"
#include "src/common/log.hh"
#include "src/common/rng.hh"
#include "src/common/row_store.hh"
#include "src/common/thread_pool.hh"
#include "src/diffusion/sampler.hh"
#include "src/embedding/encoder.hh"
#include "src/embedding/hnsw_index.hh"
#include "src/embedding/index.hh"
#include "src/embedding/ivf_index.hh"
#include "src/embedding/ivf_pq_index.hh"
#include "src/eval/metrics.hh"
#include "src/serving/k_decision.hh"
#include "src/sim/event_queue.hh"
#include "src/workload/generator.hh"

using namespace modm;

namespace {

void
BM_IndexRetrieval(benchmark::State &state)
{
    const std::size_t entries = state.range(0);
    Rng rng(7);
    embedding::CosineIndex index;
    for (std::size_t i = 0; i < entries; ++i)
        index.insert(i, embedding::Embedding(
                            randomUnitVec(embedding::kEmbeddingDim, rng)));
    const embedding::Embedding query(
        randomUnitVec(embedding::kEmbeddingDim, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_IndexRetrieval)->Arg(1000)->Arg(10000)->Arg(100000);

/**
 * Serial vs sharded retrieval at the paper's cache scale, but with
 * production-size 512-dim CLIP vectors (the in-repo synthetic space is
 * 64-dim; real CLIP ViT-L/14 emits 512/768). Run both and compare:
 * the sharded scan returns bit-identical results and should be >= 3x
 * faster on a multi-core runner. On a single-core machine the index
 * degrades to one shard and the two numbers converge.
 */
constexpr std::size_t kBigDim = 512;
constexpr std::size_t kBigEntries = 100000;

embedding::CosineIndex &
bigIndex()
{
    static embedding::CosineIndex index = [] {
        Rng rng(7);
        embedding::CosineIndex idx(kBigDim);
        for (std::size_t i = 0; i < kBigEntries; ++i)
            idx.insert(i, embedding::Embedding(randomUnitVec(kBigDim, rng)));
        return idx;
    }();
    return index;
}

void
BM_IndexTopKSerial(benchmark::State &state)
{
    auto &index = bigIndex();
    index.setParallelism(1);
    Rng rng(11);
    const embedding::Embedding query(randomUnitVec(kBigDim, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexTopKSerial)->Unit(benchmark::kMillisecond);

void
BM_IndexTopKParallel(benchmark::State &state)
{
    auto &index = bigIndex();
    index.setParallelism(0); // auto: shard across every core
    Rng rng(11);
    const embedding::Embedding query(randomUnitVec(kBigDim, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexTopKParallel)->Unit(benchmark::kMillisecond);

void
BM_IndexBestSerial(benchmark::State &state)
{
    auto &index = bigIndex();
    index.setParallelism(1);
    Rng rng(11);
    const embedding::Embedding query(randomUnitVec(kBigDim, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexBestSerial)->Unit(benchmark::kMillisecond);

void
BM_IndexBestParallel(benchmark::State &state)
{
    auto &index = bigIndex();
    index.setParallelism(0);
    Rng rng(11);
    const embedding::Embedding query(randomUnitVec(kBigDim, rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexBestParallel)->Unit(benchmark::kMillisecond);

/**
 * IVF vs the flat scan at cache scale. Rows are drawn from a clustered
 * distribution (jittered cluster centers), the regime CLIP embeddings
 * of production traffic live in and the one where a coarse quantizer
 * pays off. The acceptance bar for the backend refactor: IvfIndex topK
 * at 100k x 512 beats BM_IndexTopKSerial by >= 3x at the default
 * nprobe. The 1M variants demonstrate the sub-linear scaling headroom
 * (~10x the rows, far from 10x the latency) — they allocate multi-GB
 * indexes and take tens of seconds to build, so CI's smoke filter
 * skips them.
 */
embedding::Embedding
clusteredRow(const std::vector<Vec> &centers, Rng &rng)
{
    const auto &center = centers[rng.uniformInt(centers.size())];
    return embedding::Embedding(jitterUnitVec(center, 0.45, rng));
}

std::vector<Vec>
clusterCenters(std::size_t dim, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec> centers;
    centers.reserve(count);
    for (std::size_t c = 0; c < count; ++c)
        centers.push_back(randomUnitVec(dim, rng));
    return centers;
}

embedding::IvfIndex &
bigIvfIndex()
{
    static embedding::IvfIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::Ivf;
        embedding::IvfIndex idx(config, kBigDim);
        idx.reserve(kBigEntries);
        for (std::size_t i = 0; i < kBigEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

void
BM_IndexTopKIvf(benchmark::State &state)
{
    auto &index = bigIvfIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexTopKIvf)->Unit(benchmark::kMillisecond);

void
BM_IndexBestIvf(benchmark::State &state)
{
    auto &index = bigIvfIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexBestIvf)->Unit(benchmark::kMillisecond);

/**
 * The approximate backends at the same 100k x 512 clustered scale.
 * HNSW trades build time (graph construction) for logarithmic-ish
 * query cost; IVF-PQ trades a quantize+re-rank pipeline for a ~32x
 * smaller resident index. Both share bigIvfIndex()'s row stream so
 * the four backends are directly comparable.
 */
embedding::HnswIndex &
bigHnswIndex()
{
    static embedding::HnswIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::Hnsw;
        embedding::HnswIndex idx(config, kBigDim);
        idx.reserve(kBigEntries);
        for (std::size_t i = 0; i < kBigEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

embedding::IvfPqIndex &
bigPqIndex()
{
    static embedding::IvfPqIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::IvfPq;
        config.pqM = 16; // 32-dim subspaces at the production width
        embedding::IvfPqIndex idx(config, kBigDim);
        idx.reserve(kBigEntries);
        for (std::size_t i = 0; i < kBigEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

void
BM_IndexTopKHnsw(benchmark::State &state)
{
    auto &index = bigHnswIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexTopKHnsw)->Unit(benchmark::kMillisecond);

void
BM_IndexBestHnsw(benchmark::State &state)
{
    auto &index = bigHnswIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexBestHnsw)->Unit(benchmark::kMillisecond);

void
BM_IndexTopKIvfPq(benchmark::State &state)
{
    auto &index = bigPqIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexTopKIvfPq)->Unit(benchmark::kMillisecond);

void
BM_IndexBestIvfPq(benchmark::State &state)
{
    auto &index = bigPqIndex();
    Rng rng(11);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    const auto query = clusteredRow(centers, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.best(query));
    state.SetItemsProcessed(state.iterations() * kBigEntries);
}
BENCHMARK(BM_IndexBestIvfPq)->Unit(benchmark::kMillisecond);

constexpr std::size_t kHugeEntries = 1000000;

// Like bigIndex()/bigIvfIndex(): built once and shared across the
// benchmark's invocations (estimation + measurement passes), since one
// 1M x 512 build costs gigabytes and tens of seconds.
embedding::FlatIndex &
hugeFlatIndex()
{
    static embedding::FlatIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::FlatIndex idx(kBigDim);
        idx.reserve(kHugeEntries);
        for (std::size_t i = 0; i < kHugeEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

embedding::IvfIndex &
hugeIvfIndex()
{
    static embedding::IvfIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::Ivf;
        config.nlist = 256; // ~sqrt-scale list count for 1M rows
        embedding::IvfIndex idx(config, kBigDim);
        idx.reserve(kHugeEntries);
        for (std::size_t i = 0; i < kHugeEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

void
BM_IndexTopKSerial1M(benchmark::State &state)
{
    auto &index = hugeFlatIndex();
    index.setParallelism(1);
    const auto centers = clusterCenters(kBigDim, 128, 3);
    Rng qrng(11);
    const auto query = clusteredRow(centers, qrng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kHugeEntries);
}
BENCHMARK(BM_IndexTopKSerial1M)->Unit(benchmark::kMillisecond);

void
BM_IndexTopKIvf1M(benchmark::State &state)
{
    auto &index = hugeIvfIndex();
    const auto centers = clusterCenters(kBigDim, 128, 3);
    Rng qrng(11);
    const auto query = clusteredRow(centers, qrng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kHugeEntries);
}
BENCHMARK(BM_IndexTopKIvf1M)->Unit(benchmark::kMillisecond);

// The 1M approximate-backend builds run minutes on one core (HNSW
// graph construction; PQ training + encode), so they use leaner build
// knobs than the recall-pinned scale pass in
// ablation_retrieval_backend — these cells track query latency only.
embedding::HnswIndex &
hugeHnswIndex()
{
    static embedding::HnswIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::Hnsw;
        config.hnswM = 12;
        config.efConstruction = 48;
        embedding::HnswIndex idx(config, kBigDim);
        idx.reserve(kHugeEntries);
        for (std::size_t i = 0; i < kHugeEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

embedding::IvfPqIndex &
hugePqIndex()
{
    static embedding::IvfPqIndex index = [] {
        const auto centers = clusterCenters(kBigDim, 128, 3);
        Rng rng(7);
        embedding::RetrievalBackendConfig config;
        config.kind = embedding::RetrievalBackend::IvfPq;
        config.nlist = 256; // ~sqrt-scale list count for 1M rows
        config.pqM = 16;
        embedding::IvfPqIndex idx(config, kBigDim);
        idx.reserve(kHugeEntries);
        for (std::size_t i = 0; i < kHugeEntries; ++i)
            idx.insert(i, clusteredRow(centers, rng));
        return idx;
    }();
    return index;
}

void
BM_IndexTopKHnsw1M(benchmark::State &state)
{
    auto &index = hugeHnswIndex();
    const auto centers = clusterCenters(kBigDim, 128, 3);
    Rng qrng(11);
    const auto query = clusteredRow(centers, qrng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kHugeEntries);
}
BENCHMARK(BM_IndexTopKHnsw1M)->Unit(benchmark::kMillisecond);

void
BM_IndexTopKIvfPq1M(benchmark::State &state)
{
    auto &index = hugePqIndex();
    const auto centers = clusterCenters(kBigDim, 128, 3);
    Rng qrng(11);
    const auto query = clusteredRow(centers, qrng);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.topK(query, 10));
    state.SetItemsProcessed(state.iterations() * kHugeEntries);
}
BENCHMARK(BM_IndexTopKIvfPq1M)->Unit(benchmark::kMillisecond);

/**
 * The retrieval inner loop itself: modm::dot's 4-way unrolled
 * multi-accumulator against the single-accumulator chain it replaced.
 * The chain serializes on FP-add latency (the compiler must preserve
 * the summation order), so the unrolled version should win by the
 * add-latency x SIMD-width product on a vectorizing build. Args are
 * the row dimension: 64 is the in-repo synthetic embedding space, 512
 * a production CLIP width.
 */
double
dotScalarChain(const float *a, const float *b, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

void
BM_DotScalarChain(benchmark::State &state)
{
    const std::size_t dim = state.range(0);
    Rng rng(7);
    const Vec a = randomUnitVec(dim, rng);
    const Vec b = randomUnitVec(dim, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dotScalarChain(a.data(), b.data(), dim));
    state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DotScalarChain)->Arg(64)->Arg(512);

void
BM_DotUnrolled(benchmark::State &state)
{
    const std::size_t dim = state.range(0);
    Rng rng(7);
    const Vec a = randomUnitVec(dim, rng);
    const Vec b = randomUnitVec(dim, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(dot(a.data(), b.data(), dim));
    state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DotUnrolled)->Arg(64)->Arg(512);

/**
 * The dispatched batch kernels the index scans actually call
 * (kernels.hh), streamed over an aligned slab at the production 512-dim
 * width. These are memory-bandwidth-bound at the 1M scale, so bytes/s
 * (reported via SetBytesProcessed) is the number to compare against the
 * machine's DRAM bandwidth. Arg is the row count; the 1M cells allocate
 * a ~2 GB slab, so CI's smoke filter runs only the 100k cells.
 */
AlignedRows
makeBatchSlab(std::size_t rows)
{
    const auto centers = clusterCenters(kBigDim, 128, 3);
    Rng rng(7);
    AlignedRows slab(kBigDim);
    slab.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i)
        slab.pushBack(clusteredRow(centers, rng).vec().data());
    return slab;
}

// Separate per-size singletons (not one keyed function) so a filtered
// run touching only the 100k cells never pays the 1M build.
const AlignedRows &
batchSlab100k()
{
    static const AlignedRows slab = makeBatchSlab(kBigEntries);
    return slab;
}

const AlignedRows &
batchSlab1M()
{
    static const AlignedRows slab = makeBatchSlab(kHugeEntries);
    return slab;
}

const AlignedRows &
batchSlab(std::size_t rows)
{
    return rows == kHugeEntries ? batchSlab1M() : batchSlab100k();
}

void
BM_DotBatch(benchmark::State &state)
{
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    const auto &slab = batchSlab(rows);
    Rng rng(11);
    const Vec query = randomUnitVec(kBigDim, rng);
    std::vector<double> scores(rows);
    for (auto _ : state) {
        kernels::dotBatch(query.data(), slab.data(), slab.stride(),
                          rows, kBigDim, scores.data());
        benchmark::DoNotOptimize(scores.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * rows);
    state.SetBytesProcessed(state.iterations() * rows * kBigDim *
                            sizeof(float));
}
BENCHMARK(BM_DotBatch)
    ->Arg(kBigEntries)
    ->Arg(kHugeEntries)
    ->Unit(benchmark::kMillisecond);

void
BM_TopKBatch(benchmark::State &state)
{
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    const auto &slab = batchSlab(rows);
    Rng rng(11);
    const Vec query = randomUnitVec(kBigDim, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::topKBatch(query.data(), slab.data(), slab.stride(),
                               rows, kBigDim, 10));
    state.SetItemsProcessed(state.iterations() * rows);
    state.SetBytesProcessed(state.iterations() * rows * kBigDim *
                            sizeof(float));
}
BENCHMARK(BM_TopKBatch)
    ->Arg(kBigEntries)
    ->Arg(kHugeEntries)
    ->Unit(benchmark::kMillisecond);

void
BM_TextEncode(benchmark::State &state)
{
    workload::DiffusionDBModel gen({}, 3);
    const auto p = gen.next();
    embedding::TextEncoder text;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            text.encode(p.visualConcept, p.lexicalStyle, p.text));
}
BENCHMARK(BM_TextEncode);

void
BM_SamplerGenerate(benchmark::State &state)
{
    workload::DiffusionDBModel gen({}, 3);
    const auto p = gen.next();
    diffusion::Sampler sampler(5);
    const auto model = diffusion::sd35Large();
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.generate(model, p, 0.0));
}
BENCHMARK(BM_SamplerGenerate);

void
BM_SamplerRefine(benchmark::State &state)
{
    workload::DiffusionDBModel gen({}, 3);
    const auto p = gen.next();
    diffusion::Sampler sampler(5);
    const auto base = sampler.generate(diffusion::sd35Large(), p, 0.0);
    const auto model = diffusion::sdxl();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sampler.refine(model, p, base, 20, 0.0));
}
BENCHMARK(BM_SamplerRefine);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    Rng rng(7);
    workload::DiffusionDBModel gen({}, 3);
    diffusion::Sampler sampler(5);
    cache::ImageCache cache(1000, cache::EvictionPolicy::FIFO);
    std::vector<diffusion::Image> images;
    for (int i = 0; i < 2000; ++i)
        images.push_back(
            sampler.generate(diffusion::sd35Large(), gen.next(), 0.0));
    std::size_t i = 0;
    double now = 0.0;
    for (auto _ : state) {
        auto img = images[i % images.size()];
        img.id = 1000000 + i; // fresh id per insert
        cache.insert(img, now);
        ++i;
        now += 1.0;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_KDecision(benchmark::State &state)
{
    serving::KDecision kd;
    double sim = 0.25;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kd.decide(sim));
        sim = sim >= 0.33 ? 0.25 : sim + 0.001;
    }
}
BENCHMARK(BM_KDecision);

void
BM_FidComputation(benchmark::State &state)
{
    workload::DiffusionDBModel gen({}, 3);
    diffusion::Sampler a(5), b(6);
    eval::MetricSuite metrics;
    std::vector<diffusion::Image> x, y;
    for (int i = 0; i < 500; ++i) {
        const auto p = gen.next();
        x.push_back(a.generate(diffusion::sd35Large(), p, 0.0));
        y.push_back(b.generate(diffusion::sd35Large(), p, 0.0));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(metrics.fid(x, y));
}
BENCHMARK(BM_FidComputation);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int acc = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<double>(i % 97), [&acc] { ++acc; });
        q.runAll();
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * Task submission + completion round-trip of the shared pool: the
 * fixed cost every sweep cell and every sharded scan pays. Arg is the
 * batch size submitted per wait.
 */
void
BM_ThreadPoolTaskBatch(benchmark::State &state)
{
    const std::size_t batch = state.range(0);
    ThreadPool pool(3);
    for (auto _ : state) {
        std::atomic<std::size_t> ran{0};
        ThreadPool::TaskGroup group(pool);
        for (std::size_t i = 0; i < batch; ++i)
            group.submit([&ran] { ++ran; });
        group.wait();
        benchmark::DoNotOptimize(ran.load());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThreadPoolTaskBatch)->Arg(8)->Arg(64)->Arg(512);

/**
 * Nested fan-out: every outer task runs its own parallelFor on the
 * same pool — the shape of a concurrent experiment that shards its
 * retrieval scans. Measures that nesting stays cheap, not just
 * deadlock-free.
 */
void
BM_ThreadPoolNestedParallelFor(benchmark::State &state)
{
    ThreadPool pool(3);
    for (auto _ : state) {
        std::atomic<std::size_t> ran{0};
        pool.parallelFor(8, [&](std::size_t) {
            pool.parallelFor(8, [&](std::size_t) { ++ran; });
        });
        benchmark::DoNotOptimize(ran.load());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolNestedParallelFor);

/**
 * Acceptance gate for the kernel overhaul, run after the benchmarks
 * when MODM_SCALE_ASSERT=1 (the scale pass; filtered smoke runs skip
 * it): the dispatched batch kernel must beat a per-row modm::dot loop
 * by >= 2x on the serial 1M x 512 flat scan, AND agree with it bit for
 * bit (same argmax slot, same double score — the kernels.hh summation
 * contract). Skipped with a notice when the active tier is below avx2:
 * the bar measures dispatch headroom over the old inner loop, which a
 * forced MODM_KERNEL=scalar/unrolled run deliberately gives up.
 */
int
runScaleAssert()
{
    const char *env = std::getenv("MODM_SCALE_ASSERT");
    if (env == nullptr || std::strcmp(env, "1") != 0)
        return 0;
    const kernels::KernelInfo kernel = kernels::active();
    if (static_cast<int>(kernel.tier) <
        static_cast<int>(kernels::Tier::Avx2)) {
        std::fprintf(stderr,
                     "MODM_SCALE_ASSERT: active kernel \"%s\" is below "
                     "avx2; skipping the >=2x scan assert\n",
                     kernel.name);
        return 0;
    }

    const auto &slab = batchSlab(kHugeEntries);
    Rng rng(11);
    const Vec query = randomUnitVec(kBigDim, rng);
    using Best = std::pair<std::size_t, double>;
    const auto baseline = [&] {
        std::size_t slot = 0;
        double best = -1e300;
        for (std::size_t r = 0; r < kHugeEntries; ++r) {
            const double s = dot(query.data(), slab.row(r), kBigDim);
            if (s > best) {
                best = s;
                slot = r;
            }
        }
        return Best{slot, best};
    };
    const auto batched = [&] {
        std::size_t slot = 0;
        double score = 0.0;
        kernels::bestBatch(query.data(), slab.data(), slab.stride(),
                           kHugeEntries, kBigDim, &slot, &score);
        return Best{slot, score};
    };
    // Best-of-3 per side: scans are long enough (hundreds of ms) that
    // the minimum is a stable bandwidth measurement, not a lucky run.
    const auto timeBest = [](const auto &fn, Best &result) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            result = fn();
            best = std::min(
                best,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        }
        return best;
    };
    Best base, fast;
    const double baseS = timeBest(baseline, base);
    const double fastS = timeBest(batched, fast);
    MODM_ASSERT(base.first == fast.first && base.second == fast.second,
                "kernel scan disagrees with the modm::dot baseline: "
                "slot %zu score %.17g vs slot %zu score %.17g",
                base.first, base.second, fast.first, fast.second);
    const double speedup = baseS / fastS;
    std::fprintf(stderr,
                 "MODM_SCALE_ASSERT: 1M x 512 serial scan: modm::dot "
                 "%.1f ms, %s kernel %.1f ms (%.2fx)\n",
                 baseS * 1e3, kernel.name, fastS * 1e3, speedup);
    MODM_ASSERT(speedup >= 2.0,
                "kernel scan speedup %.2fx is below the 2x acceptance "
                "bar (modm::dot %.1f ms vs %s %.1f ms)",
                speedup, baseS * 1e3, kernel.name, fastS * 1e3);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return runScaleAssert();
}

/**
 * @file
 * Design-choice ablation (paper §5.4): FIFO vs LRU vs utility-based
 * cache maintenance.
 *
 * The paper argues FIFO matches production temporal locality and keeps
 * the cache diverse (utility caches over-concentrate on popular
 * items). This ablation measures hit rate, mean retrieval similarity,
 * and reuse concentration (max hits on a single entry) per policy.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "src/cache/image_cache.hh"
#include "src/serving/k_decision.hh"

using namespace modm;

namespace {

struct PolicyResult
{
    double hitRate = 0.0;
    double meanSim = 0.0;
    std::uint64_t maxReuse = 0;
};

PolicyResult
runPolicy(cache::EvictionPolicy policy)
{
    constexpr std::size_t kRequests = 12000;
    constexpr std::size_t kCapacity = 1500;
    auto gen = workload::makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    cache::ImageCache cache(kCapacity, policy);
    embedding::TextEncoder text;
    serving::KDecision kd;

    PolicyResult out;
    std::size_t hits = 0;
    double simSum = 0.0;
    std::map<std::uint64_t, std::uint64_t> reuse;
    for (std::size_t i = 0; i < kRequests; ++i) {
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        diffusion::Image img;
        if (r.found && kd.isHit(r.similarity)) {
            ++hits;
            simSum += r.similarity;
            ++reuse[r.entryId];
            cache.recordHit(r.entryId, static_cast<double>(i));
            img = sampler.refine(diffusion::sdxl(), p,
                                 cache.entry(r.entryId).image,
                                 kd.decide(r.similarity),
                                 static_cast<double>(i));
        } else {
            img = sampler.generate(diffusion::sd35Large(), p,
                                   static_cast<double>(i));
        }
        cache.insert(img, static_cast<double>(i));
    }
    out.hitRate = static_cast<double>(hits) / kRequests;
    out.meanSim = hits ? simSum / hits : 0.0;
    for (const auto &[id, count] : reuse)
        out.maxReuse = std::max(out.maxReuse, count);
    return out;
}

} // namespace

int
main()
{
    const std::vector<cache::EvictionPolicy> policies = {
        cache::EvictionPolicy::FIFO, cache::EvictionPolicy::LRU,
        cache::EvictionPolicy::Utility};

    std::vector<std::function<PolicyResult()>> cells;
    std::vector<std::string> labels;
    for (const auto policy : policies) {
        labels.push_back(cache::policyName(policy));
        cells.push_back([policy] { return runPolicy(policy); });
    }
    bench::SweepOptions options;
    options.title = "Ablation cache policy";
    const auto results =
        bench::runCells(std::move(cells), options, labels);

    Table t({"policy", "hit rate", "mean similarity",
             "max reuse of one entry"});
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto &r = results[i];
        t.addRow({cache::policyName(policies[i]),
                  Table::fmt(r.hitRate, 3), Table::fmt(r.meanSim, 3),
                  Table::fmt(r.maxReuse)});
    }
    t.print("Ablation — cache maintenance policy (12000 requests, "
            "capacity 1500; paper §5.4 adopts FIFO)");
    return 0;
}

/**
 * @file
 * Property tests for the pluggable retrieval-backend seam
 * (vector_index.hh):
 *
 *  - FlatIndex must be bit-identical with the pre-refactor CosineIndex
 *    scan: an in-test reference reimplements the original semantics
 *    (double-accumulated dots, swap-with-last removal, results ordered
 *    by similarity desc then insertion slot asc) and every FlatIndex
 *    result — serial and sharded — must match it exactly.
 *  - IvfIndex must be fully deterministic (equal build sequences give
 *    equal centroids and equal query results) and must hold
 *    recall@1 >= 0.95 at the default nprobe on clustered synthetic
 *    embeddings, including under interleaved insert/evict churn.
 *  - HnswIndex and IvfPqIndex must be deterministic across rebuilds,
 *    hold recall@1 >= 0.9 on clustered embeddings under FIFO
 *    insert/evict churn, stay correct after heavy removal (tombstone
 *    repair / swap-remove), and account their memory exactly.
 *  - makeVectorIndex must reject malformed configs with a thrown
 *    diagnostic naming the knob (never a silent clamp), and the
 *    direct constructors must assert-abort as a backstop.
 *  - The backend seam itself: caches build the configured backend and
 *    surface recall accounting; serving runs complete on any backend
 *    with recall wired through to the result.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/cache/image_cache.hh"
#include "src/common/rng.hh"
#include "src/diffusion/sampler.hh"
#include "src/embedding/hnsw_index.hh"
#include "src/embedding/index.hh"
#include "src/embedding/ivf_index.hh"
#include "src/embedding/ivf_pq_index.hh"
#include "src/embedding/vector_index.hh"
#include "src/serving/system.hh"
#include "src/workload/generator.hh"

namespace modm::embedding {
namespace {

// The historical name must keep compiling against the flat backend.
static_assert(std::is_same_v<CosineIndex, FlatIndex>,
              "CosineIndex must alias FlatIndex");

/**
 * Reference reimplementation of the pre-refactor CosineIndex: flat row
 * storage, swap-with-last removal, serial scan accumulating each dot
 * in double, results ordered by (similarity desc, slot asc). FlatIndex
 * results must match this bit for bit.
 */
class ReferenceIndex
{
  public:
    explicit ReferenceIndex(std::size_t dim) : dim_(dim) {}

    void insert(std::uint64_t id, const Embedding &embedding)
    {
        slotOf_[id] = ids_.size();
        ids_.push_back(id);
        rows_.insert(rows_.end(), embedding.vec().begin(),
                     embedding.vec().end());
    }

    void remove(std::uint64_t id)
    {
        const std::size_t slot = slotOf_.at(id);
        const std::size_t last = ids_.size() - 1;
        if (slot != last) {
            std::memcpy(&rows_[slot * dim_], &rows_[last * dim_],
                        dim_ * sizeof(float));
            ids_[slot] = ids_[last];
            slotOf_[ids_[slot]] = slot;
        }
        rows_.resize(last * dim_);
        ids_.pop_back();
        slotOf_.erase(id);
    }

    std::vector<Match> topK(const Embedding &query, std::size_t k) const
    {
        struct SlotScore
        {
            std::size_t slot;
            double score;
        };
        std::vector<SlotScore> scored;
        scored.reserve(ids_.size());
        const float *q = query.vec().data();
        for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
            // Score through the shared modm::dot so the seam this
            // reference pins is the index bookkeeping (insert /
            // remove / slot tie-break / merge), not the dot's
            // floating-point association order — the multi-
            // accumulator unroll legitimately rounds differently in
            // the last ulp than a naive sequential chain would.
            const float *row = &rows_[slot * dim_];
            scored.push_back({slot, dot(q, row, dim_)});
        }
        std::sort(scored.begin(), scored.end(),
                  [](const SlotScore &a, const SlotScore &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      return a.slot < b.slot;
                  });
        std::vector<Match> out;
        for (std::size_t i = 0; i < std::min(k, scored.size()); ++i)
            out.push_back({ids_[scored[i].slot], scored[i].score});
        return out;
    }

    Match best(const Embedding &query) const
    {
        const auto top = topK(query, 1);
        return top.empty() ? Match{} : top.front();
    }

    std::size_t size() const { return ids_.size(); }

  private:
    std::size_t dim_;
    std::vector<float> rows_;
    std::vector<std::uint64_t> ids_;
    std::unordered_map<std::uint64_t, std::size_t> slotOf_;
};

void
expectSameMatches(const std::vector<Match> &expected,
                  const std::vector<Match> &actual, const char *what)
{
    ASSERT_EQ(expected.size(), actual.size()) << what;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].id, actual[i].id) << what << " rank " << i;
        EXPECT_EQ(expected[i].similarity, actual[i].similarity)
            << what << " rank " << i;
    }
}

TEST(FlatIndexSeam, BitIdenticalWithPreRefactorReference)
{
    constexpr std::size_t kDim = kEmbeddingDim;
    constexpr std::size_t kK = 9;
    Rng rng(2026);
    ReferenceIndex reference(kDim);
    FlatIndex flat(kDim);

    // Interleave inserts and removals so swap-with-last permutes slots
    // the same way in both; then every scan mode must agree exactly.
    std::vector<std::uint64_t> live;
    std::uint64_t nextId = 0;
    for (std::size_t step = 0; step < 4000; ++step) {
        if (live.size() > 64 && rng.bernoulli(0.35)) {
            const std::size_t pick = rng.uniformInt(live.size());
            const std::uint64_t id = live[pick];
            live[pick] = live.back();
            live.pop_back();
            reference.remove(id);
            ASSERT_TRUE(flat.remove(id));
        } else {
            const Embedding e(randomUnitVec(kDim, rng));
            reference.insert(nextId, e);
            flat.insert(nextId, e);
            live.push_back(nextId);
            ++nextId;
        }
    }
    ASSERT_EQ(reference.size(), flat.size());

    for (std::size_t q = 0; q < 40; ++q) {
        const Embedding query(randomUnitVec(kDim, rng));
        const auto expected = reference.topK(query, kK);
        const auto expectedBest = reference.best(query);

        flat.setParallelism(1);
        expectSameMatches(expected, flat.topK(query, kK), "serial topK");
        EXPECT_EQ(expectedBest.id, flat.best(query).id);
        EXPECT_EQ(expectedBest.similarity, flat.best(query).similarity);

        flat.setParallelThreshold(0);
        for (const std::size_t shards :
             {std::size_t{0}, std::size_t{3}, std::size_t{11}}) {
            flat.setParallelism(shards);
            expectSameMatches(expected, flat.topK(query, kK),
                              "sharded topK");
            const auto best = flat.best(query);
            EXPECT_EQ(expectedBest.id, best.id) << shards;
            EXPECT_EQ(expectedBest.similarity, best.similarity) << shards;
        }
        flat.setParallelism(1);
        flat.setParallelThreshold(FlatIndex::kDefaultParallelThreshold);
    }
}

/** Clustered synthetic embeddings: the regime CLIP vectors live in. */
std::vector<Vec>
makeCenters(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec> centers;
    for (std::size_t c = 0; c < count; ++c)
        centers.push_back(randomUnitVec(kEmbeddingDim, rng));
    return centers;
}

Embedding
clusteredEmbedding(const std::vector<Vec> &centers, Rng &rng)
{
    const auto &center = centers[rng.uniformInt(centers.size())];
    return Embedding(jitterUnitVec(center, 0.35, rng));
}

TEST(IvfIndexSeam, FullyDeterministicAcrossRebuilds)
{
    const auto centers = makeCenters(48, 5);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Ivf;

    // Two indexes fed the identical insert/remove sequence must agree
    // exactly on every query — centroids, list layout, tiebreaks, all
    // of it a pure function of (sequence, seed).
    IvfIndex a(config), b(config);
    Rng rngA(77), rngB(77);
    const auto feed = [&centers](IvfIndex &index, Rng &rng) {
        std::uint64_t nextId = 0;
        for (std::size_t step = 0; step < 3000; ++step) {
            if (nextId > 400 && rng.bernoulli(0.3)) {
                // Remove a pseudo-random live id (FIFO-ish window).
                const std::uint64_t id = rng.uniformInt(nextId);
                index.remove(id); // may be absent; both feeds agree
            } else {
                index.insert(nextId++, clusteredEmbedding(centers, rng));
            }
        }
    };
    feed(a, rngA);
    feed(b, rngB);

    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.trainings(), b.trainings());
    EXPECT_TRUE(a.trained());

    Rng qrng(123);
    for (std::size_t q = 0; q < 60; ++q) {
        const auto query = clusteredEmbedding(centers, qrng);
        const auto bestA = a.best(query);
        const auto bestB = b.best(query);
        EXPECT_EQ(bestA.id, bestB.id);
        EXPECT_EQ(bestA.similarity, bestB.similarity);
        expectSameMatches(a.topK(query, 7), b.topK(query, 7),
                          "ivf determinism topK");
    }
}

TEST(IvfIndexSeam, RecallAtLeast95OnClusteredEmbeddings)
{
    const auto centers = makeCenters(64, 9);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Ivf; // default nlist/nprobe

    IvfIndex ivf(config);
    FlatIndex exact;
    Rng rng(31);
    for (std::uint64_t id = 0; id < 20000; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        ivf.insert(id, e);
        exact.insert(id, e);
    }
    ASSERT_TRUE(ivf.trained());
    ASSERT_TRUE(ivf.approximate());

    std::size_t agreed = 0;
    constexpr std::size_t kQueries = 500;
    Rng qrng(47);
    for (std::size_t q = 0; q < kQueries; ++q) {
        const auto query = clusteredEmbedding(centers, qrng);
        if (ivf.best(query).id == exact.best(query).id)
            ++agreed;
        // exactBest must agree with the flat truth on every query.
        EXPECT_EQ(ivf.exactBest(query).id, exact.best(query).id);
    }
    const double recall =
        static_cast<double>(agreed) / static_cast<double>(kQueries);
    EXPECT_GE(recall, 0.95) << "recall@1 at default nprobe";
}

TEST(IvfIndexSeam, AdaptiveNprobeDegradesRecallMonotonically)
{
    // The adaptive probe scheduler (RetrievalBackendConfig::
    // adaptiveNprobe) sheds probed lists as the monitor's load signal
    // rises. Because probed lists at a higher load are always a prefix
    // of those at a lower load, per-query results can only get worse:
    // recall@1 must degrade monotonically — and deterministically,
    // since the signal feeds a pure function of (config, load).
    const auto centers = makeCenters(64, 9);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Ivf;
    config.nprobe = 16;
    config.adaptiveNprobe = true;
    config.minNprobe = 1;

    IvfIndex ivf(config);
    FlatIndex exact;
    Rng rng(31);
    for (std::uint64_t id = 0; id < 12000; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        ivf.insert(id, e);
        exact.insert(id, e);
    }
    ASSERT_TRUE(ivf.trained());

    const std::vector<double> loads = {0.0, 0.25, 0.5, 0.75, 1.0};
    const auto measure = [&](double load) {
        ivf.setLoadSignal(load);
        std::size_t agreed = 0;
        constexpr std::size_t kQueries = 300;
        Rng qrng(47);
        for (std::size_t q = 0; q < kQueries; ++q) {
            const auto query = clusteredEmbedding(centers, qrng);
            if (ivf.best(query).id == exact.best(query).id)
                ++agreed;
        }
        return static_cast<double>(agreed) /
            static_cast<double>(kQueries);
    };

    std::vector<std::size_t> nprobes;
    std::vector<double> recalls;
    for (const double load : loads) {
        ivf.setLoadSignal(load);
        nprobes.push_back(ivf.effectiveNprobe());
        recalls.push_back(measure(load));
    }
    EXPECT_EQ(nprobes.front(), 16u);
    EXPECT_EQ(nprobes.back(), 1u);
    for (std::size_t i = 1; i < loads.size(); ++i) {
        EXPECT_LE(nprobes[i], nprobes[i - 1]) << "load " << loads[i];
        EXPECT_LE(recalls[i], recalls[i - 1]) << "load " << loads[i];
    }
    // The full idle-to-saturated span must show a real degradation
    // (otherwise the knob is dead) ...
    EXPECT_LT(recalls.back(), recalls.front());
    EXPECT_GE(recalls.front(), 0.95);
    // ... and replaying any load level must reproduce it exactly.
    for (std::size_t i = 0; i < loads.size(); ++i)
        EXPECT_EQ(measure(loads[i]), recalls[i]);
    // Off by default: an index without the knob ignores the signal.
    RetrievalBackendConfig fixed;
    fixed.kind = RetrievalBackend::Ivf;
    fixed.nprobe = 16;
    IvfIndex plain(fixed);
    plain.setLoadSignal(1.0);
    EXPECT_EQ(plain.effectiveNprobe(), 16u);
}

TEST(IvfIndexSeam, RecallHoldsUnderInsertEvictChurn)
{
    const auto centers = makeCenters(64, 13);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Ivf;

    IvfIndex ivf(config);
    FlatIndex exact;
    Rng rng(91);
    constexpr std::size_t kWindow = 6000;
    constexpr std::size_t kOps = 20000;
    std::size_t agreed = 0, checked = 0;
    Rng qrng(17);
    // FIFO eviction: the oldest id leaves as each new one arrives —
    // exactly the churn MoDM's sliding-window cache applies.
    for (std::uint64_t id = 0; id < kOps; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        ivf.insert(id, e);
        exact.insert(id, e);
        if (id >= kWindow) {
            ASSERT_TRUE(ivf.remove(id - kWindow));
            ASSERT_TRUE(exact.remove(id - kWindow));
        }
        if (id > kWindow && id % 40 == 0) {
            const auto query = clusteredEmbedding(centers, qrng);
            if (ivf.best(query).id == exact.best(query).id)
                ++agreed;
            ++checked;
        }
    }
    ASSERT_EQ(ivf.size(), exact.size());
    ASSERT_GT(checked, std::size_t{300});
    const double recall =
        static_cast<double>(agreed) / static_cast<double>(checked);
    EXPECT_GE(recall, 0.95) << "recall@1 under churn, " << checked
                            << " checks";
}

TEST(IvfIndexSeam, EmptyProbedListsWidenToExhaustiveScan)
{
    // Two far-apart clusters, every row of one of them evicted: a
    // query near the drained cluster probes (mostly) empty lists, and
    // a non-empty index must still return a live entry, never the
    // Match{0, -1} sentinel.
    const auto centers = makeCenters(2, 3);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Ivf;
    config.nlist = 4;
    config.nprobe = 1;
    config.retrainThreshold = 0.0; // churn must not retrain it away

    IvfIndex ivf(config);
    Rng rng(7);
    for (std::uint64_t id = 0; id < 40; ++id) {
        const auto &center = centers[id % 2];
        ivf.insert(id, Embedding(jitterUnitVec(center, 0.1, rng)));
    }
    ASSERT_TRUE(ivf.trained());
    // Evict cluster 0 entirely (even ids).
    for (std::uint64_t id = 0; id < 40; id += 2)
        ASSERT_TRUE(ivf.remove(id));
    ASSERT_EQ(ivf.size(), std::size_t{20});

    Rng qrng(9);
    const Embedding query(jitterUnitVec(centers[0], 0.05, qrng));
    const auto best = ivf.best(query);
    EXPECT_GT(best.similarity, -1.0);
    EXPECT_TRUE(ivf.contains(best.id));
    const auto top = ivf.topK(query, 5);
    ASSERT_FALSE(top.empty());
    for (const auto &m : top)
        EXPECT_TRUE(ivf.contains(m.id));
}

/** Exact-row oracle over a side map (what the caches provide). */
class MapRowSource final : public RowSource
{
  public:
    void put(std::uint64_t id, const Embedding &e) { rows_[id] = e; }
    void drop(std::uint64_t id) { rows_.erase(id); }

    const float *row(std::uint64_t id) const override
    {
        const auto it = rows_.find(id);
        return it == rows_.end() ? nullptr : it->second.vec().data();
    }

  private:
    std::unordered_map<std::uint64_t, Embedding> rows_;
};

TEST(HnswIndexSeam, FullyDeterministicAcrossRebuilds)
{
    const auto centers = makeCenters(48, 5);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Hnsw;

    // Two graphs fed the identical insert/remove sequence must agree
    // exactly on every query — layers, links, tiebreaks, compactions,
    // all of it a pure function of (sequence, seed).
    HnswIndex a(config), b(config);
    Rng rngA(77), rngB(77);
    const auto feed = [&centers](HnswIndex &index, Rng &rng) {
        std::uint64_t nextId = 0;
        for (std::size_t step = 0; step < 3000; ++step) {
            if (nextId > 400 && rng.bernoulli(0.3)) {
                const std::uint64_t id = rng.uniformInt(nextId);
                index.remove(id); // may be absent; both feeds agree
            } else {
                index.insert(nextId++, clusteredEmbedding(centers, rng));
            }
        }
    };
    feed(a, rngA);
    feed(b, rngB);

    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.slots(), b.slots());
    EXPECT_EQ(a.compactions(), b.compactions());
    EXPECT_EQ(a.memoryBytes(), b.memoryBytes());

    Rng qrng(123);
    for (std::size_t q = 0; q < 60; ++q) {
        const auto query = clusteredEmbedding(centers, qrng);
        const auto bestA = a.best(query);
        const auto bestB = b.best(query);
        EXPECT_EQ(bestA.id, bestB.id);
        EXPECT_EQ(bestA.similarity, bestB.similarity);
        expectSameMatches(a.topK(query, 7), b.topK(query, 7),
                          "hnsw determinism topK");
    }
}

TEST(HnswIndexSeam, RecallAtLeast90UnderInsertEvictChurn)
{
    const auto centers = makeCenters(64, 13);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Hnsw;

    HnswIndex hnsw(config);
    FlatIndex exact;
    Rng rng(91);
    constexpr std::size_t kWindow = 4000;
    constexpr std::size_t kOps = 12000;
    std::size_t agreed = 0, checked = 0;
    Rng qrng(17);
    // FIFO eviction: the oldest id leaves as each new one arrives —
    // exactly the churn MoDM's sliding-window cache applies.
    for (std::uint64_t id = 0; id < kOps; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        hnsw.insert(id, e);
        exact.insert(id, e);
        if (id >= kWindow) {
            ASSERT_TRUE(hnsw.remove(id - kWindow));
            ASSERT_TRUE(exact.remove(id - kWindow));
        }
        if (id > kWindow && id % 40 == 0) {
            const auto query = clusteredEmbedding(centers, qrng);
            const auto got = hnsw.best(query);
            EXPECT_TRUE(hnsw.contains(got.id)); // never a tombstone
            if (got.id == exact.best(query).id)
                ++agreed;
            ++checked;
        }
    }
    ASSERT_EQ(hnsw.size(), exact.size());
    ASSERT_GT(checked, std::size_t{150});
    const double recall =
        static_cast<double>(agreed) / static_cast<double>(checked);
    EXPECT_GE(recall, 0.9) << "hnsw recall@1 under churn, " << checked
                           << " checks";
    // exactBest must agree with the flat truth (recall accounting).
    Rng vrng(29);
    for (std::size_t q = 0; q < 20; ++q) {
        const auto query = clusteredEmbedding(centers, vrng);
        EXPECT_EQ(hnsw.exactBest(query).id, exact.best(query).id);
    }
}

TEST(HnswIndexSeam, TombstoneRepairSurvivesHeavyRemoval)
{
    const auto centers = makeCenters(32, 21);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Hnsw;

    HnswIndex hnsw(config);
    FlatIndex exact;
    Rng rng(3);
    constexpr std::uint64_t kRows = 2000;
    for (std::uint64_t id = 0; id < kRows; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        hnsw.insert(id, e);
        exact.insert(id, e);
    }
    // Remove 85% in a pseudo-random order: every entry point
    // replacement, neighbor repair, and the compaction threshold get
    // exercised; the survivors must all stay reachable.
    std::vector<std::uint64_t> ids(kRows);
    for (std::uint64_t id = 0; id < kRows; ++id)
        ids[id] = id;
    Rng shuffle(55);
    for (std::size_t i = ids.size(); i > 1; --i)
        std::swap(ids[i - 1], ids[shuffle.uniformInt(i)]);
    const std::size_t keep = kRows / 100 * 15;
    for (std::size_t i = keep; i < ids.size(); ++i) {
        ASSERT_TRUE(hnsw.remove(ids[i]));
        ASSERT_TRUE(exact.remove(ids[i]));
    }
    ASSERT_EQ(hnsw.size(), keep);
    EXPECT_GE(hnsw.compactions(), std::uint64_t{1});

    std::size_t agreed = 0;
    constexpr std::size_t kQueries = 200;
    Rng qrng(47);
    for (std::size_t q = 0; q < kQueries; ++q) {
        const auto query = clusteredEmbedding(centers, qrng);
        const auto got = hnsw.best(query);
        EXPECT_TRUE(hnsw.contains(got.id));
        if (got.id == exact.best(query).id)
            ++agreed;
        for (const auto &m : hnsw.topK(query, 5))
            EXPECT_TRUE(hnsw.contains(m.id));
    }
    EXPECT_GE(static_cast<double>(agreed) /
                  static_cast<double>(kQueries),
              0.9);

    // Down to one, to zero, and back up again.
    std::vector<std::uint64_t> rest(ids.begin(), ids.begin() + keep);
    for (const std::uint64_t id : rest)
        ASSERT_TRUE(hnsw.remove(id));
    EXPECT_EQ(hnsw.size(), std::size_t{0});
    EXPECT_EQ(hnsw.best(Embedding(centers[0])).similarity, -1.0);
    Rng rng2(9);
    for (std::uint64_t id = 0; id < 50; ++id)
        hnsw.insert(100000 + id, clusteredEmbedding(centers, rng2));
    EXPECT_EQ(hnsw.size(), std::size_t{50});
    EXPECT_TRUE(hnsw.contains(hnsw.best(Embedding(centers[0])).id));
}

TEST(HnswIndexSeam, AdaptiveEfSearchShedsMonotonically)
{
    const auto centers = makeCenters(64, 9);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::Hnsw;
    config.efSearch = 48;
    config.adaptiveEfSearch = true;
    config.minEfSearch = 2;

    HnswIndex hnsw(config);
    Rng rng(31);
    for (std::uint64_t id = 0; id < 6000; ++id)
        hnsw.insert(id, clusteredEmbedding(centers, rng));

    std::size_t prev = 0;
    for (const double load : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        hnsw.setLoadSignal(load);
        const std::size_t ef = hnsw.effectiveEfSearch();
        if (load > 0.0) {
            EXPECT_LE(ef, prev) << "load " << load;
        }
        prev = ef;
    }
    EXPECT_EQ(prev, std::size_t{2});
    hnsw.setLoadSignal(0.0);
    EXPECT_EQ(hnsw.effectiveEfSearch(), std::size_t{48});
    // Off by default: an index without the knob ignores the signal.
    RetrievalBackendConfig fixed;
    fixed.kind = RetrievalBackend::Hnsw;
    HnswIndex plain(fixed);
    plain.setLoadSignal(1.0);
    EXPECT_EQ(plain.effectiveEfSearch(), fixed.efSearch);
    // The scenario knob overrides the configured beam at runtime.
    plain.setEfSearch(96);
    EXPECT_EQ(plain.effectiveEfSearch(), std::size_t{96});
}

TEST(IvfPqIndexSeam, FullyDeterministicAcrossRebuilds)
{
    const auto centers = makeCenters(48, 5);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::IvfPq;

    IvfPqIndex a(config), b(config);
    Rng rngA(77), rngB(77);
    const auto feed = [&centers](IvfPqIndex &index, Rng &rng) {
        std::uint64_t nextId = 0;
        for (std::size_t step = 0; step < 3000; ++step) {
            if (nextId > 400 && rng.bernoulli(0.3)) {
                const std::uint64_t id = rng.uniformInt(nextId);
                index.remove(id);
            } else {
                index.insert(nextId++, clusteredEmbedding(centers, rng));
            }
        }
    };
    feed(a, rngA);
    feed(b, rngB);

    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.trainings(), b.trainings());
    EXPECT_TRUE(a.trained());
    EXPECT_EQ(a.memoryBytes(), b.memoryBytes());

    Rng qrng(123);
    for (std::size_t q = 0; q < 60; ++q) {
        const auto query = clusteredEmbedding(centers, qrng);
        const auto bestA = a.best(query);
        const auto bestB = b.best(query);
        EXPECT_EQ(bestA.id, bestB.id);
        EXPECT_EQ(bestA.similarity, bestB.similarity);
        expectSameMatches(a.topK(query, 7), b.topK(query, 7),
                          "ivfpq determinism topK");
    }
}

TEST(IvfPqIndexSeam, RerankedRecallAtLeast90UnderChurn)
{
    const auto centers = makeCenters(64, 13);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::IvfPq;

    IvfPqIndex pq(config);
    FlatIndex exact;
    MapRowSource source;
    pq.setRowSource(&source);
    Rng rng(91);
    constexpr std::size_t kWindow = 6000;
    constexpr std::size_t kOps = 20000;
    std::size_t agreed = 0, checked = 0;
    Rng qrng(17);
    for (std::uint64_t id = 0; id < kOps; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        pq.insert(id, e);
        exact.insert(id, e);
        source.put(id, e);
        if (id >= kWindow) {
            ASSERT_TRUE(pq.remove(id - kWindow));
            ASSERT_TRUE(exact.remove(id - kWindow));
            source.drop(id - kWindow);
        }
        if (id > kWindow && id % 40 == 0) {
            const auto query = clusteredEmbedding(centers, qrng);
            if (pq.best(query).id == exact.best(query).id)
                ++agreed;
            ++checked;
        }
    }
    ASSERT_EQ(pq.size(), exact.size());
    ASSERT_TRUE(pq.trained());
    ASSERT_TRUE(pq.approximate());
    ASSERT_GT(checked, std::size_t{300});
    const double recall =
        static_cast<double>(agreed) / static_cast<double>(checked);
    EXPECT_GE(recall, 0.9) << "ivfpq recall@1 under churn, " << checked
                           << " checks";
    // With the source attached exactBest is the flat truth itself.
    Rng vrng(29);
    for (std::size_t q = 0; q < 20; ++q) {
        const auto query = clusteredEmbedding(centers, vrng);
        EXPECT_EQ(pq.exactBest(query).id, exact.best(query).id);
    }
}

TEST(IvfPqIndexSeam, CodesAreAFractionOfFlatRows)
{
    const auto centers = makeCenters(32, 7);
    RetrievalBackendConfig config;
    config.kind = RetrievalBackend::IvfPq;

    IvfPqIndex pq(config);
    FlatIndex flat;
    Rng rng(5);
    constexpr std::size_t kRows = 20000;
    for (std::uint64_t id = 0; id < kRows; ++id) {
        const auto e = clusteredEmbedding(centers, rng);
        pq.insert(id, e);
        flat.insert(id, e);
    }
    ASSERT_TRUE(pq.trained());
    EXPECT_EQ(pq.codeBytes(), config.pqM * config.pqBits / 8);
    // dim 64 flat rows cost 256 B against 8 B of codes; even with ids,
    // locators, centroids, and codebooks amortized the index must
    // shrink by a wide margin (the 1M x 512 bench pins >= 8x).
    const double ratio = static_cast<double>(flat.memoryBytes()) /
        static_cast<double>(pq.memoryBytes());
    EXPECT_GE(ratio, 4.0) << flat.memoryBytes() << " vs "
                          << pq.memoryBytes();
    // Accounting follows removals down.
    const std::size_t before = pq.memoryBytes();
    for (std::uint64_t id = 0; id < kRows / 2; ++id)
        ASSERT_TRUE(pq.remove(id));
    EXPECT_LT(pq.memoryBytes(), before);
}

TEST(VectorIndexMemory, FlatAndIvfAccountExactly)
{
    FlatIndex flat(kEmbeddingDim);
    EXPECT_EQ(flat.memoryBytes(), std::size_t{0});
    Rng rng(1);
    flat.insert(1, Embedding(randomUnitVec(kEmbeddingDim, rng)));
    // One row + one id + one locator entry, nothing else.
    const std::size_t perEntry = kEmbeddingDim * sizeof(float) +
        sizeof(std::uint64_t) +
        locatorBytes(1, sizeof(std::size_t));
    EXPECT_EQ(flat.memoryBytes(), perEntry);
    flat.insert(2, Embedding(randomUnitVec(kEmbeddingDim, rng)));
    EXPECT_EQ(flat.memoryBytes(), 2 * perEntry);
    flat.remove(1);
    EXPECT_EQ(flat.memoryBytes(), perEntry);

    RetrievalBackendConfig ivfConfig;
    ivfConfig.kind = RetrievalBackend::Ivf;
    IvfIndex ivf(ivfConfig);
    const auto centers = makeCenters(8, 3);
    for (std::uint64_t id = 0; id < 1000; ++id)
        ivf.insert(id, clusteredEmbedding(centers, rng));
    ASSERT_TRUE(ivf.trained());
    // Rows + ids + locator + nlist centroids, byte for byte.
    const std::size_t expected = 1000 *
            (kEmbeddingDim * sizeof(float) + sizeof(std::uint64_t)) +
        ivf.nlist() * kEmbeddingDim * sizeof(float) +
        locatorBytes(1000, 2 * sizeof(std::size_t));
    EXPECT_EQ(ivf.memoryBytes(), expected);
}

TEST(VectorIndexFactory, BuildsConfiguredBackend)
{
    RetrievalBackendConfig flat;
    auto f = makeVectorIndex(flat, kEmbeddingDim);
    EXPECT_NE(dynamic_cast<FlatIndex *>(f.get()), nullptr);
    EXPECT_FALSE(f->approximate());

    RetrievalBackendConfig ivf;
    ivf.kind = RetrievalBackend::Ivf;
    auto i = makeVectorIndex(ivf, kEmbeddingDim);
    EXPECT_NE(dynamic_cast<IvfIndex *>(i.get()), nullptr);
    EXPECT_STREQ(retrievalBackendName(ivf.kind), "IVF");

    RetrievalBackendConfig hnsw;
    hnsw.kind = RetrievalBackend::Hnsw;
    auto h = makeVectorIndex(hnsw, kEmbeddingDim);
    EXPECT_NE(dynamic_cast<HnswIndex *>(h.get()), nullptr);
    EXPECT_STREQ(retrievalBackendName(hnsw.kind), "HNSW");

    RetrievalBackendConfig pq;
    pq.kind = RetrievalBackend::IvfPq;
    auto p = makeVectorIndex(pq, kEmbeddingDim);
    EXPECT_NE(dynamic_cast<IvfPqIndex *>(p.get()), nullptr);
    EXPECT_STREQ(retrievalBackendName(pq.kind), "IVF-PQ");
}

/** The thrown diagnostic for a malformed config, or "" when valid. */
std::string
factoryError(const RetrievalBackendConfig &config,
             std::size_t dim = kEmbeddingDim)
{
    try {
        makeVectorIndex(config, dim);
        return "";
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
}

/** The diagnostic must mention the knob and its offending value. */
void expectErrorContains(const std::string &error,
                         const std::string &needle)
{
    EXPECT_NE(error.find(needle), std::string::npos)
        << "diagnostic \"" << error << "\" lacks \"" << needle << "\"";
}

TEST(VectorIndexFactory, RejectsMalformedConfigsWithNamedKnobs)
{
    RetrievalBackendConfig nprobe;
    nprobe.kind = RetrievalBackend::Ivf;
    nprobe.nprobe = 128;
    nprobe.nlist = 64;
    expectErrorContains(factoryError(nprobe),
                        "nprobe (128) must be <= nlist (64)");
    nprobe.nprobe = 0;
    expectErrorContains(factoryError(nprobe),
                        "nprobe (0) must be >= 1");

    RetrievalBackendConfig m;
    m.kind = RetrievalBackend::Hnsw;
    m.hnswM = 1;
    expectErrorContains(factoryError(m), "hnswM (1) must be >= 2");
    m.hnswM = 16;
    m.efConstruction = 4;
    expectErrorContains(factoryError(m),
                        "efConstruction (4) must be >= hnswM (16)");
    m.efConstruction = 128;
    m.efSearch = 0;
    expectErrorContains(factoryError(m), "efSearch (0) must be >= 1");
    m.efSearch = 64;
    m.adaptiveEfSearch = true;
    m.minEfSearch = 100;
    expectErrorContains(factoryError(m), "minEfSearch (100)");

    RetrievalBackendConfig pq;
    pq.kind = RetrievalBackend::IvfPq;
    pq.pqM = 5;
    expectErrorContains(
        factoryError(pq),
        "pqM (5) must divide the embedding dimension (64)");
    pq.pqM = 8;
    pq.pqBits = 3;
    expectErrorContains(factoryError(pq), "pqBits (3) must be 4 or 8");
    pq.pqBits = 8;
    pq.nlist = 0;
    expectErrorContains(factoryError(pq), "nlist (0) must be >= 1");

    // Valid configs return no diagnostic.
    EXPECT_EQ(factoryError(RetrievalBackendConfig{}), "");
    EXPECT_EQ(validateRetrievalConfig(RetrievalBackendConfig{},
                                      kEmbeddingDim),
              "");
}

TEST(VectorIndexFactoryDeathTest, DirectConstructionAssertsAsBackstop)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RetrievalBackendConfig bad;
    bad.kind = RetrievalBackend::Ivf;
    bad.nprobe = 0;
    EXPECT_DEATH((IvfIndex(bad, kEmbeddingDim)), "nprobe");
    RetrievalBackendConfig badM;
    badM.kind = RetrievalBackend::Hnsw;
    badM.hnswM = 1;
    EXPECT_DEATH((HnswIndex(badM, kEmbeddingDim)), "M");
    RetrievalBackendConfig badPq;
    badPq.kind = RetrievalBackend::IvfPq;
    badPq.pqM = 5;
    EXPECT_DEATH((IvfPqIndex(badPq, kEmbeddingDim)), "pqM");
}

} // namespace
} // namespace modm::embedding

namespace modm {
namespace {

/** The seam end to end: cache and serving layers honour the config. */
TEST(RetrievalBackendSeam, ImageCacheTracksRecallOnIvfOnly)
{
    embedding::RetrievalBackendConfig ivf;
    ivf.kind = embedding::RetrievalBackend::Ivf;
    cache::ImageCache approx(4000, cache::EvictionPolicy::FIFO, {}, 1,
                             ivf);
    cache::ImageCache flat(4000, cache::EvictionPolicy::FIFO);

    auto gen = workload::makeDiffusionDB(3);
    diffusion::Sampler sampler(5);
    embedding::TextEncoder text;
    for (std::size_t i = 0; i < 2000; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        approx.insert(img, 0.0);
        flat.insert(img, 0.0);
    }
    std::uint64_t checked = 0;
    for (std::size_t q = 0; q < 50; ++q) {
        const auto p = gen->next();
        const auto e =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto ra = approx.retrieve(e);
        EXPECT_TRUE(ra.found);
        if (ra.exactChecked)
            ++checked;
        const auto rf = flat.retrieve(e);
        EXPECT_TRUE(rf.found);
        EXPECT_FALSE(rf.exactChecked);
    }
    EXPECT_EQ(approx.stats().recallChecked, checked);
    EXPECT_GT(checked, std::uint64_t{0});
    EXPECT_EQ(flat.stats().recallChecked, std::uint64_t{0});
}

TEST(RetrievalBackendSeam, IvfPqRerankReadsCacheRowsZeroCopy)
{
    // The cache hands the IVF-PQ re-rank its slab rows in place; the
    // rowAccesses() counter pins that path so a regression back to
    // copying (or to skipping the exact re-rank) fails loudly.
    embedding::RetrievalBackendConfig pq;
    pq.kind = embedding::RetrievalBackend::IvfPq;
    cache::ImageCache cache(4000, cache::EvictionPolicy::FIFO, {}, 1,
                            pq);

    auto gen = workload::makeDiffusionDB(3);
    diffusion::Sampler sampler(5);
    embedding::TextEncoder text;
    std::uint64_t someId = 0;
    for (std::size_t i = 0; i < 2000; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        cache.insert(img, 0.0);
        someId = img.id;
    }
    // Building and training never read back through the RowSource.
    const std::uint64_t baseline = cache.rowAccesses();

    for (std::size_t q = 0; q < 50; ++q) {
        const auto p = gen->next();
        const auto e =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        EXPECT_TRUE(cache.retrieve(e).found);
    }
    EXPECT_GT(cache.rowAccesses(), baseline)
        << "IVF-PQ retrieval never touched the exact-row re-rank";

    // Zero-copy means the SAME slab pointer every time, stable across
    // unrelated inserts (RowStore chunks never move).
    const float *first = cache.row(someId);
    ASSERT_NE(first, nullptr);
    for (std::size_t i = 0; i < 100; ++i) {
        const auto img =
            sampler.generate(diffusion::sd35Large(), gen->next(), 0.0);
        cache.insert(img, 1.0);
    }
    ASSERT_TRUE(cache.contains(someId));
    EXPECT_EQ(cache.row(someId), first);
    EXPECT_EQ(cache.row(1u << 30), nullptr); // absent id
}

TEST(RetrievalBackendSeam, ServingRunsOnBothBackends)
{
    auto gen = workload::makeDiffusionDB(21);
    std::vector<workload::Prompt> warm;
    for (std::size_t i = 0; i < 600; ++i)
        warm.push_back(gen->next());
    const auto trace = workload::buildBatchTrace(*gen, 150);

    const auto runWith = [&](embedding::RetrievalBackend kind) {
        serving::ServingConfig config;
        config.kind = serving::SystemKind::MoDM;
        config.numWorkers = 2;
        config.cacheCapacity = 600;
        config.retrieval.kind = kind;
        serving::ServingSystem system(config);
        system.warmCache(warm);
        return system.run(trace);
    };

    const auto flat = runWith(embedding::RetrievalBackend::Flat);
    EXPECT_EQ(flat.retrievalChecked, std::uint64_t{0});
    EXPECT_EQ(flat.retrievalRecallAt1, 1.0);

    const auto ivf = runWith(embedding::RetrievalBackend::Ivf);
    EXPECT_GT(ivf.retrievalChecked, std::uint64_t{0});
    EXPECT_GE(ivf.retrievalRecallAt1, 0.0);
    EXPECT_LE(ivf.retrievalRecallAt1, 1.0);
    EXPECT_EQ(ivf.metrics.count(), flat.metrics.count());
}

} // namespace
} // namespace modm

/**
 * @file
 * Unit tests for the cache substrate: the image cache (insert, retrieve,
 * eviction policies, storage accounting) and the Nirvana latent cache
 * (text-to-text retrieval, model dependence, threshold-mapped k).
 */

#include <gtest/gtest.h>

#include "src/cache/image_cache.hh"
#include "src/cache/latent_cache.hh"
#include "src/common/rng.hh"
#include "src/diffusion/sampler.hh"
#include "src/embedding/encoder.hh"

namespace modm::cache {
namespace {

diffusion::Image
makeImage(std::uint64_t id, Rng &rng, double fidelity = 0.95,
          const std::string &model = "SD3.5L")
{
    diffusion::Image img;
    img.id = id;
    img.content = randomUnitVec(embedding::kEmbeddingDim, rng);
    img.fidelity = fidelity;
    img.modelName = model;
    img.byteSize = 1.4e6;
    return img;
}

TEST(ImageCache, InsertAndRetrieve)
{
    Rng rng(3);
    ImageCache cache(10, EvictionPolicy::FIFO);
    const auto img = makeImage(1, rng);
    cache.insert(img, 0.0);
    EXPECT_EQ(cache.size(), 1u);

    embedding::ImageEncoder enc;
    const auto query = enc.encode(img.content, img.fidelity, img.id);
    const auto result = cache.retrieve(query);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.entryId, 1u);
    EXPECT_GT(result.similarity, 0.95);
}

TEST(ImageCache, EmptyRetrieveFindsNothing)
{
    ImageCache cache(10, EvictionPolicy::FIFO);
    Rng rng(5);
    embedding::ImageEncoder enc;
    const auto query =
        enc.encode(randomUnitVec(embedding::kEmbeddingDim, rng), 1.0, 9);
    EXPECT_FALSE(cache.retrieve(query).found);
}

TEST(ImageCache, FifoEvictsOldest)
{
    Rng rng(7);
    ImageCache cache(3, EvictionPolicy::FIFO);
    for (std::uint64_t i = 1; i <= 5; ++i)
        cache.insert(makeImage(i, rng), static_cast<double>(i));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_TRUE(cache.contains(5));
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ImageCache, LruKeepsHotEntries)
{
    Rng rng(9);
    ImageCache cache(3, EvictionPolicy::LRU);
    cache.insert(makeImage(1, rng), 1.0);
    cache.insert(makeImage(2, rng), 2.0);
    cache.insert(makeImage(3, rng), 3.0);
    cache.recordHit(1, 4.0); // 1 is now most recent; 2 is LRU
    cache.insert(makeImage(4, rng), 5.0);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(ImageCache, UtilityKeepsFrequentlyHitEntries)
{
    Rng rng(11);
    ImageCache cache(20, EvictionPolicy::Utility);
    for (std::uint64_t i = 1; i <= 20; ++i)
        cache.insert(makeImage(i, rng), static_cast<double>(i));
    // Entry 5 is hit many times; sampled eviction should spare it.
    for (int hit = 0; hit < 50; ++hit)
        cache.recordHit(5, 100.0 + hit);
    for (std::uint64_t i = 21; i <= 35; ++i)
        cache.insert(makeImage(i, rng), 100.0 + i);
    EXPECT_TRUE(cache.contains(5));
}

TEST(ImageCache, StorageAccounting)
{
    Rng rng(13);
    ImageCache cache(2, EvictionPolicy::FIFO);
    cache.insert(makeImage(1, rng), 0.0);
    cache.insert(makeImage(2, rng), 0.0);
    EXPECT_DOUBLE_EQ(cache.storedBytes(), 2.8e6);
    cache.insert(makeImage(3, rng), 0.0); // evicts one
    EXPECT_DOUBLE_EQ(cache.storedBytes(), 2.8e6);
    cache.clear();
    EXPECT_DOUBLE_EQ(cache.storedBytes(), 0.0);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ImageCache, RetrievalReturnsBestOfMany)
{
    Rng rng(17);
    ImageCache cache(100, EvictionPolicy::FIFO);
    std::vector<diffusion::Image> images;
    for (std::uint64_t i = 1; i <= 50; ++i) {
        images.push_back(makeImage(i, rng));
        cache.insert(images.back(), 0.0);
    }
    embedding::ImageEncoder enc;
    // Query very close to image 25's content.
    const Vec q = jitterUnitVec(images[24].content, 0.05, rng);
    const auto result = cache.retrieve(enc.encode(q, 1.0, 999999));
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.entryId, 25u);
}

TEST(ImageCache, HitBookkeeping)
{
    Rng rng(19);
    ImageCache cache(10, EvictionPolicy::FIFO);
    cache.insert(makeImage(1, rng), 0.0);
    cache.recordHit(1, 5.0);
    cache.recordHit(1, 6.0);
    EXPECT_EQ(cache.entry(1).hits, 2u);
    EXPECT_DOUBLE_EQ(cache.entry(1).lastHitTime, 6.0);
    EXPECT_EQ(cache.stats().hitsRecorded, 2u);
}

TEST(LatentCache, RejectsOtherModels)
{
    Rng rng(23);
    LatentCache cache(10, "SD3.5L");
    embedding::TextEncoder text;
    const auto emb = text.encode(randomUnitVec(64, rng),
                                 randomUnitVec(64, rng), "p");
    cache.insert(makeImage(1, rng, 0.95, "SD3.5L"), emb, 0.0);
    cache.insert(makeImage(2, rng, 0.85, "SDXL"), emb, 0.0);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.rejectedInserts(), 1u);
}

TEST(LatentCache, TextToTextRetrievalAndThresholds)
{
    Rng rng(29);
    LatentCache cache(10, "SD3.5L");
    embedding::TextEncoder text;

    const Vec v = randomUnitVec(64, rng);
    const Vec l = randomUnitVec(64, rng);
    const auto stored = text.encode(v, l, "prompt one");
    cache.insert(makeImage(1, rng), stored, 0.0);

    // Nearly identical prompt: very high t2t similarity -> largest k.
    const auto sameQuery =
        text.encode(jitterUnitVec(v, 0.02, rng), l, "prompt one b");
    const auto hit = cache.retrieve(sameQuery);
    ASSERT_TRUE(hit.found);
    EXPECT_GE(hit.similarity, 0.96);
    EXPECT_EQ(hit.k, 15);

    // Unrelated prompt: below the 0.82 gate -> miss.
    const auto farQuery = text.encode(randomUnitVec(64, rng),
                                      randomUnitVec(64, rng), "other");
    EXPECT_FALSE(cache.retrieve(farQuery).found);
}

TEST(LatentCache, StorageUsesLatentSetSize)
{
    // 2.5 MB per entry vs 1.4 MB per final image (paper §3.1).
    Rng rng(31);
    LatentCache cache(10, "SD3.5L");
    embedding::TextEncoder text;
    const auto emb = text.encode(randomUnitVec(64, rng),
                                 randomUnitVec(64, rng), "p");
    cache.insert(makeImage(1, rng), emb, 0.0);
    EXPECT_DOUBLE_EQ(cache.storedBytes(), kLatentSetBytes);
    EXPECT_GT(kLatentSetBytes, 1.4e6);
}

TEST(LatentCache, UtilityEvictionSparesHotEntries)
{
    Rng rng(37);
    LatentCache cache(20, "SD3.5L");
    embedding::TextEncoder text;
    for (std::uint64_t i = 1; i <= 20; ++i) {
        const auto emb = text.encode(randomUnitVec(64, rng),
                                     randomUnitVec(64, rng), "p");
        cache.insert(makeImage(i, rng), emb, 0.0);
    }
    for (int hit = 0; hit < 50; ++hit)
        cache.recordHit(3);
    for (std::uint64_t i = 21; i <= 32; ++i) {
        const auto emb = text.encode(randomUnitVec(64, rng),
                                     randomUnitVec(64, rng), "p");
        cache.insert(makeImage(i, rng), emb, 0.0);
    }
    EXPECT_EQ(cache.size(), 20u);
    EXPECT_NO_FATAL_FAILURE(cache.entry(3));
}

/**
 * Parameterized eviction-policy sweep: every policy must respect
 * capacity, keep retrieval consistent, and account storage exactly.
 */
class PolicySweepTest
    : public ::testing::TestWithParam<EvictionPolicy>
{
};

TEST_P(PolicySweepTest, CapacityAndConsistencyUnderChurn)
{
    Rng rng(41);
    ImageCache cache(50, GetParam());
    embedding::ImageEncoder enc;
    for (std::uint64_t i = 1; i <= 500; ++i) {
        cache.insert(makeImage(i, rng), static_cast<double>(i));
        EXPECT_LE(cache.size(), 50u);
        if (i % 7 == 0) {
            const auto q = enc.encode(
                randomUnitVec(embedding::kEmbeddingDim, rng), 1.0,
                1000000 + i);
            const auto r = cache.retrieve(q);
            if (r.found) {
                EXPECT_TRUE(cache.contains(r.entryId));
                cache.recordHit(r.entryId, static_cast<double>(i));
            }
        }
    }
    EXPECT_EQ(cache.size(), 50u);
    EXPECT_DOUBLE_EQ(cache.storedBytes(), 50 * 1.4e6);
    EXPECT_EQ(cache.stats().insertions, 500u);
    EXPECT_EQ(cache.stats().evictions, 450u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweepTest,
    ::testing::Values(EvictionPolicy::FIFO, EvictionPolicy::LRU,
                      EvictionPolicy::Utility),
    [](const auto &info) { return policyName(info.param); });

/**
 * Regression for the Utility-policy fifo leak: mid-deque evictions
 * used to leave stale ids in the FIFO deque forever, so long traces
 * grew it without bound. Opportunistic compaction must keep the slot
 * count within ~2x of the live entries at every step.
 */
TEST(ImageCache, UtilityFifoSlotsStayBounded)
{
    Rng rng(17);
    constexpr std::size_t kCapacity = 100;
    ImageCache cache(kCapacity, EvictionPolicy::Utility);
    embedding::ImageEncoder enc;
    for (std::uint64_t i = 1; i <= 5000; ++i) {
        cache.insert(makeImage(i, rng), static_cast<double>(i));
        if (i % 3 == 0) {
            const auto q = enc.encode(
                randomUnitVec(embedding::kEmbeddingDim, rng), 1.0,
                2000000 + i);
            const auto r = cache.retrieve(q);
            if (r.found)
                cache.recordHit(r.entryId, static_cast<double>(i));
        }
        ASSERT_LE(cache.fifoSlots(), 2 * kCapacity + 1)
            << "stale fifo slots accumulating at insert " << i;
    }
    EXPECT_EQ(cache.size(), kCapacity);
    EXPECT_GT(cache.stats().fifoCompactions, 0u);
}

/** LRU evicts mid-deque too; the same bound must hold. */
TEST(ImageCache, LruFifoSlotsStayBounded)
{
    Rng rng(19);
    constexpr std::size_t kCapacity = 64;
    ImageCache cache(kCapacity, EvictionPolicy::LRU);
    embedding::ImageEncoder enc;
    for (std::uint64_t i = 1; i <= 3000; ++i) {
        cache.insert(makeImage(i, rng), static_cast<double>(i));
        // Hits shuffle LRU order so victims are rarely the fifo front.
        const auto q = enc.encode(
            randomUnitVec(embedding::kEmbeddingDim, rng), 1.0,
            3000000 + i);
        const auto r = cache.retrieve(q);
        if (r.found)
            cache.recordHit(r.entryId, static_cast<double>(i));
        ASSERT_LE(cache.fifoSlots(), 2 * kCapacity + 1);
    }
    EXPECT_EQ(cache.size(), kCapacity);
}

/**
 * Eviction on a drained cache is a library bug the guards must catch
 * loudly rather than corrupt bookkeeping.
 */
TEST(ImageCacheDeathTest, ZeroCapacityIsRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(ImageCache(0, EvictionPolicy::FIFO),
                 "capacity must be positive");
}

/** recordHit on an evicted (absent) entry must panic, not corrupt. */
TEST(ImageCacheDeathTest, RecordHitOnAbsentEntryPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rng rng(23);
    ImageCache cache(2, EvictionPolicy::LRU);
    cache.insert(makeImage(1, rng), 0.0);
    EXPECT_DEATH(cache.recordHit(999, 1.0), "absent entry");
}

/**
 * Utility eviction must keep working when the sampled candidates are
 * dominated by stale fifo slots: a churn-heavy, hit-heavy trace where
 * victims are mostly mid-deque. After churn the cache must still be
 * exactly at capacity with consistent retrieval.
 */
TEST(ImageCache, UtilityEvictionSkipsStaleSlots)
{
    Rng rng(29);
    ImageCache cache(16, EvictionPolicy::Utility);
    embedding::ImageEncoder enc;
    for (std::uint64_t i = 1; i <= 800; ++i) {
        cache.insert(makeImage(i, rng), static_cast<double>(i));
        for (int probe = 0; probe < 2; ++probe) {
            const auto q = enc.encode(
                randomUnitVec(embedding::kEmbeddingDim, rng), 1.0,
                4000000 + i * 2 + probe);
            const auto r = cache.retrieve(q);
            if (r.found) {
                ASSERT_TRUE(cache.contains(r.entryId));
                cache.recordHit(r.entryId, static_cast<double>(i));
            }
        }
    }
    EXPECT_EQ(cache.size(), 16u);
    EXPECT_EQ(cache.stats().evictions, 800u - 16u);
}

/**
 * The latent cache's insertion-order deque has the same lazy-deletion
 * design as the image cache's FIFO: utility eviction from the middle
 * leaves stale ids behind, and compaction must bound them at ~2x the
 * live entries on long churn-heavy traces.
 */
TEST(LatentCache, OrderSlotsStayBoundedUnderUtilityChurn)
{
    Rng rng(43);
    constexpr std::size_t kCapacity = 40;
    LatentCache cache(kCapacity, "SD3.5L");
    embedding::TextEncoder text;
    for (std::uint64_t i = 1; i <= 2000; ++i) {
        const auto emb = text.encode(randomUnitVec(64, rng),
                                     randomUnitVec(64, rng), "p");
        cache.insert(makeImage(i, rng), emb, static_cast<double>(i));
        // Hit the fresh entry so utilities tie and sampled eviction
        // picks mid-deque victims, not the front.
        cache.recordHit(i);
        ASSERT_LE(cache.orderSlots(), 2 * kCapacity + 1)
            << "stale order slots accumulating at insert " << i;
    }
    EXPECT_EQ(cache.size(), kCapacity);
    EXPECT_GT(cache.orderCompactions(), 0u);
}

/**
 * Eviction interleaved with *parallel* top-k retrieval: a cache using
 * sharded scans must return bit-identical results to a serial twin fed
 * the exact same insert/hit/evict sequence, across heavy churn.
 */
TEST(ImageCache, EvictionInterleavedWithParallelTopK)
{
    constexpr std::size_t kCapacity = 48;
    Rng rngA(31), rngB(31);
    ImageCache parallel(kCapacity, EvictionPolicy::Utility);
    ImageCache serial(kCapacity, EvictionPolicy::Utility);
    parallel.setRetrievalParallelism(4);
    parallel.setRetrievalParallelThreshold(0);
    embedding::ImageEncoder enc;
    for (std::uint64_t i = 1; i <= 600; ++i) {
        parallel.insert(makeImage(i, rngA), static_cast<double>(i));
        serial.insert(makeImage(i, rngB), static_cast<double>(i));
        const auto q = enc.encode(
            randomUnitVec(embedding::kEmbeddingDim, rngA), 1.0,
            5000000 + i);
        // Advance the twin's rng identically.
        randomUnitVec(embedding::kEmbeddingDim, rngB);
        const auto rp = parallel.retrieve(q);
        const auto rs = serial.retrieve(q);
        ASSERT_EQ(rp.found, rs.found);
        if (rp.found) {
            ASSERT_EQ(rp.entryId, rs.entryId);
            // Bit-identical: the sharded merge is exact.
            ASSERT_EQ(rp.similarity, rs.similarity);
            parallel.recordHit(rp.entryId, static_cast<double>(i));
            serial.recordHit(rs.entryId, static_cast<double>(i));
        }
    }
    EXPECT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.fifoSlots(), serial.fifoSlots());
}

} // namespace
} // namespace modm::cache

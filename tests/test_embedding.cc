/**
 * @file
 * Unit tests for the synthetic CLIP substrate: tokenizer, encoders
 * (determinism, modality-gap structure, lexical contamination), and the
 * cosine index (insert/remove/top-k correctness).
 */

#include <gtest/gtest.h>

#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/embedding/encoder.hh"
#include "src/embedding/index.hh"
#include "src/embedding/tokenizer.hh"

namespace modm::embedding {
namespace {

TEST(Tokenizer, LowercasesAndStripsPunctuation)
{
    const auto tokens = tokenize("A Castle, at NIGHT! 8k");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0], "a");
    EXPECT_EQ(tokens[1], "castle");
    EXPECT_EQ(tokens[2], "at");
    EXPECT_EQ(tokens[3], "night");
    EXPECT_EQ(tokens[4], "8k");
}

TEST(Tokenizer, EmptyAndWhitespaceOnly)
{
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("  ,.!  ").empty());
}

TEST(Tokenizer, HashIsStable)
{
    EXPECT_EQ(tokenHash("castle"), tokenHash("castle"));
    EXPECT_NE(tokenHash("castle"), tokenHash("castles"));
}

TEST(Embedding, ConstructionNormalizes)
{
    Embedding e(Vec{3.0f, 4.0f});
    EXPECT_NEAR(norm(e.vec()), 1.0, 1e-6);
    EXPECT_NEAR(e.similarity(e), 1.0, 1e-6);
}

class EncoderTest : public ::testing::Test
{
  protected:
    TextEncoder text_;
    ImageEncoder image_;
    Rng rng_{12345};
};

TEST_F(EncoderTest, TextEncodingIsDeterministic)
{
    const Vec v = randomUnitVec(kEmbeddingDim, rng_);
    const Vec l = randomUnitVec(kEmbeddingDim, rng_);
    const auto a = text_.encode(v, l, "a castle at night");
    const auto b = text_.encode(v, l, "a castle at night");
    EXPECT_NEAR(a.similarity(b), 1.0, 1e-6);
}

TEST_F(EncoderTest, ImageEncodingIsDeterministic)
{
    const Vec c = randomUnitVec(kEmbeddingDim, rng_);
    const auto a = image_.encode(c, 0.95, 42);
    const auto b = image_.encode(c, 0.95, 42);
    EXPECT_NEAR(a.similarity(b), 1.0, 1e-6);
}

TEST_F(EncoderTest, ModalityGapCapsCrossModalSimilarity)
{
    // Even a perfect visual match scores well below 1 across modalities
    // (real CLIPScores live around 0.2-0.35).
    RunningStat sims;
    for (int i = 0; i < 200; ++i) {
        const Vec v = randomUnitVec(kEmbeddingDim, rng_);
        const Vec l = randomUnitVec(kEmbeddingDim, rng_);
        const auto t = text_.encode(v, l, "prompt");
        const auto e = image_.encode(v, 1.0, i);
        sims.add(t.similarity(e));
    }
    EXPECT_GT(sims.mean(), 0.25);
    EXPECT_LT(sims.mean(), 0.45);
}

TEST_F(EncoderTest, SameModalitySimilarityHasHighFloor)
{
    // Unrelated prompts still share the text cone: Nirvana's
    // text-to-text thresholds (0.65-0.95) assume this floor.
    RunningStat sims;
    for (int i = 0; i < 200; ++i) {
        const auto a = text_.encode(randomUnitVec(kEmbeddingDim, rng_),
                                    randomUnitVec(kEmbeddingDim, rng_),
                                    "one");
        const auto b = text_.encode(randomUnitVec(kEmbeddingDim, rng_),
                                    randomUnitVec(kEmbeddingDim, rng_),
                                    "two");
        sims.add(a.similarity(b));
    }
    EXPECT_GT(sims.mean(), 0.45);
    EXPECT_LT(sims.mean(), 0.80);
}

TEST_F(EncoderTest, CrossModalTracksVisualAgreement)
{
    // Similarity must increase monotonically (on average) with the
    // cosine between query concept and image content.
    RunningStat close, medium, far;
    for (int i = 0; i < 200; ++i) {
        const Vec v = randomUnitVec(kEmbeddingDim, rng_);
        const Vec l = randomUnitVec(kEmbeddingDim, rng_);
        const auto t = text_.encode(v, l, "q");
        close.add(t.similarity(
            image_.encode(jitterUnitVec(v, 0.2, rng_), 1.0, i)));
        medium.add(t.similarity(
            image_.encode(jitterUnitVec(v, 0.8, rng_), 1.0, 1000 + i)));
        far.add(t.similarity(image_.encode(
            randomUnitVec(kEmbeddingDim, rng_), 1.0, 2000 + i)));
    }
    EXPECT_GT(close.mean(), medium.mean());
    EXPECT_GT(medium.mean(), far.mean());
    EXPECT_NEAR(far.mean(), 0.0, 0.05);
}

TEST_F(EncoderTest, LexicalContaminationHurtsTextToText)
{
    // Same visual intent, different lexical style: text-to-text drops
    // while text-to-image does not — the paper's §3.2 argument for
    // image caching.
    RunningStat t2tSameStyle, t2tDiffStyle;
    for (int i = 0; i < 200; ++i) {
        const Vec v = randomUnitVec(kEmbeddingDim, rng_);
        const Vec style1 = randomUnitVec(kEmbeddingDim, rng_);
        const Vec style2 = randomUnitVec(kEmbeddingDim, rng_);
        const auto a = text_.encode(v, style1, "a");
        const auto same = text_.encode(jitterUnitVec(v, 0.1, rng_),
                                       style1, "b");
        const auto diff = text_.encode(jitterUnitVec(v, 0.1, rng_),
                                       style2, "c");
        t2tSameStyle.add(a.similarity(same));
        t2tDiffStyle.add(a.similarity(diff));
    }
    EXPECT_GT(t2tSameStyle.mean(), t2tDiffStyle.mean() + 0.05);
}

TEST_F(EncoderTest, LowFidelityImagesEmbedNoisier)
{
    RunningStat highFid, lowFid;
    for (int i = 0; i < 200; ++i) {
        const Vec v = randomUnitVec(kEmbeddingDim, rng_);
        const Vec l = randomUnitVec(kEmbeddingDim, rng_);
        const auto t = text_.encode(v, l, "q");
        highFid.add(t.similarity(image_.encode(v, 0.97, i)));
        lowFid.add(t.similarity(image_.encode(v, 0.55, 5000 + i)));
    }
    EXPECT_GT(highFid.mean(), lowFid.mean());
}

TEST_F(EncoderTest, AnchorsAreOrthonormal)
{
    const Vec t = textAnchor(kEmbeddingDim);
    const Vec i = imageAnchor(kEmbeddingDim);
    EXPECT_NEAR(norm(t), 1.0, 1e-6);
    EXPECT_NEAR(norm(i), 1.0, 1e-6);
    EXPECT_NEAR(dot(t, i), 0.0, 1e-6);
}

TEST(HashingEncoder, SharedTokensRaiseSimilarity)
{
    HashingTextEncoder enc;
    const auto a = enc.encode("red dragon castle");
    const auto b = enc.encode("red dragon tower");
    const auto c = enc.encode("quiet ocean sunrise");
    EXPECT_GT(a.similarity(b), a.similarity(c));
}

TEST(CosineIndex, InsertRemoveContains)
{
    Rng rng(7);
    CosineIndex index(8);
    const Embedding e1(randomUnitVec(8, rng));
    const Embedding e2(randomUnitVec(8, rng));
    index.insert(1, e1);
    index.insert(2, e2);
    EXPECT_EQ(index.size(), 2u);
    EXPECT_TRUE(index.contains(1));
    EXPECT_TRUE(index.remove(1));
    EXPECT_FALSE(index.contains(1));
    EXPECT_FALSE(index.remove(1));
    EXPECT_EQ(index.size(), 1u);
}

TEST(CosineIndex, BestFindsNearestNeighbour)
{
    Rng rng(11);
    CosineIndex index(16);
    std::vector<Embedding> stored;
    for (std::uint64_t i = 0; i < 50; ++i) {
        stored.emplace_back(randomUnitVec(16, rng));
        index.insert(i, stored.back());
    }
    // Query close to item 17.
    Vec q = stored[17].vec();
    q = jitterUnitVec(q, 0.1, rng);
    const auto match = index.best(Embedding(q));
    EXPECT_EQ(match.id, 17u);
    EXPECT_GT(match.similarity, 0.9);
}

TEST(CosineIndex, BestAfterSwapRemoval)
{
    // Removal swaps the last row into the vacated slot; retrieval must
    // stay correct afterwards.
    Rng rng(13);
    CosineIndex index(16);
    std::vector<Embedding> stored;
    for (std::uint64_t i = 0; i < 20; ++i) {
        stored.emplace_back(randomUnitVec(16, rng));
        index.insert(i, stored.back());
    }
    index.remove(0);
    index.remove(7);
    const auto match = index.best(stored[19]);
    EXPECT_EQ(match.id, 19u);
    EXPECT_NEAR(match.similarity, 1.0, 1e-6);
}

TEST(CosineIndex, TopKOrdering)
{
    Rng rng(17);
    CosineIndex index(16);
    for (std::uint64_t i = 0; i < 100; ++i)
        index.insert(i, Embedding(randomUnitVec(16, rng)));
    const Embedding q(randomUnitVec(16, rng));
    const auto top = index.topK(q, 5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].similarity, top[i].similarity);
    EXPECT_EQ(top.front().id, index.best(q).id);
}

TEST(CosineIndex, EmptyIndexReturnsNoMatch)
{
    CosineIndex index(8);
    Rng rng(19);
    const auto match = index.best(Embedding(randomUnitVec(8, rng)));
    EXPECT_LT(match.similarity, 0.0);
    EXPECT_TRUE(index.topK(Embedding(randomUnitVec(8, rng)), 3).empty());
}

} // namespace
} // namespace modm::embedding

/**
 * @file
 * Property-based tests on cross-module invariants:
 *
 *  - every SystemKind conserves requests, respects causality, and never
 *    serves a hit below the configured threshold;
 *  - the paper's quality constraint (Eq. 5): hits admitted by the
 *    Fig. 5b thresholds keep quality factor near alpha or better;
 *  - the monitor's allocation always covers the miss workload it was
 *    shown;
 *  - the DES never loses or duplicates completions under random load.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/presets.hh"
#include "src/common/stats.hh"
#include "src/eval/metrics.hh"
#include "src/serving/system.hh"
#include "src/workload/trace.hh"

namespace modm::serving {
namespace {

/** Sweep every system kind through the same workload. */
class SystemKindProperty : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(SystemKindProperty, ConservationCausalityThresholds)
{
    const SystemKind kind = GetParam();
    baselines::PresetParams params;
    params.numWorkers = 3;
    params.cacheCapacity = 400;

    serving::ServingConfig config;
    switch (kind) {
      case SystemKind::MoDM:
        config = baselines::modm(diffusion::sd35Large(),
                                 diffusion::sdxl(), params);
        break;
      case SystemKind::Vanilla:
        config = baselines::vanilla(diffusion::sd35Large(), params);
        break;
      case SystemKind::Nirvana:
        config = baselines::nirvana(diffusion::sd35Large(), params);
        break;
      case SystemKind::Pinecone:
        config = baselines::pinecone(diffusion::sd35Large(), params);
        break;
      case SystemKind::StandaloneSmall:
        config = baselines::standalone(diffusion::sana(), params);
        break;
    }

    auto gen = workload::makeDiffusionDB(1234);
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 300; ++i)
        warm.push_back(gen->next());
    workload::PoissonArrivals arrivals(5.0);
    Rng rng(5);
    const auto trace = workload::buildTrace(*gen, arrivals, 250, rng);

    ServingSystem system(config);
    system.warmCache(warm);
    const auto result = system.run(trace);

    // Conservation: every request served exactly once.
    ASSERT_EQ(result.metrics.count(), trace.size());
    std::set<std::uint64_t> ids;
    for (const auto &r : result.metrics.records())
        ids.insert(r.promptId);
    EXPECT_EQ(ids.size(), trace.size());

    const KDecision kd(config.kDecision);
    for (const auto &r : result.metrics.records()) {
        // Causality.
        EXPECT_LE(r.arrival, r.start + 1e-9);
        EXPECT_LE(r.start, r.finish + 1e-9);
        // Threshold discipline per kind.
        if (!r.cacheHit)
            continue;
        switch (kind) {
          case SystemKind::MoDM:
            EXPECT_GE(r.similarity, config.kDecision.floors.front());
            EXPECT_EQ(r.k, kd.decide(r.similarity));
            break;
          case SystemKind::Pinecone:
            EXPECT_GE(r.similarity, config.pineconeThreshold);
            break;
          case SystemKind::Nirvana:
            EXPECT_GE(r.similarity, config.nirvana.hitThreshold);
            break;
          default:
            FAIL() << "kind cannot produce cache hits";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SystemKindProperty,
    ::testing::Values(SystemKind::MoDM, SystemKind::Vanilla,
                      SystemKind::Nirvana, SystemKind::Pinecone,
                      SystemKind::StandaloneSmall),
    [](const auto &info) { return systemKindName(info.param); });

/**
 * Eq. 5 quality constraint: refinements admitted at the Fig. 5b
 * threshold for k keep mean quality factor >= ~alpha. (alpha = 0.95;
 * a small tolerance absorbs calibration residue.)
 */
class QualityConstraintProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(QualityConstraintProperty, AdmittedHitsMeetAlpha)
{
    const int k = GetParam();
    const KDecision kd;
    // The lowest similarity at which this k is selected.
    double floor = 0.0;
    const auto &config = kd.config();
    for (std::size_t i = 0; i < config.ks.size(); ++i)
        if (config.ks[i] == k)
            floor = config.floors[i];
    ASSERT_GT(floor, 0.0);

    workload::DiffusionDBModel gen({}, 777);
    diffusion::Sampler sampler(5);
    eval::MetricSuite metrics;
    embedding::TextEncoder text;
    embedding::ImageEncoder image;
    Rng rng(k);

    RunningStat quality;
    for (int i = 0; i < 4000 && quality.count() < 150; ++i) {
        auto base = gen.next();
        const auto baseImg =
            sampler.generate(diffusion::sd35Large(), base, 0.0);
        workload::Prompt query = base;
        query.id = base.id + 500000;
        query.visualConcept = jitterUnitVec(base.visualConcept,
                                            rng.uniform(0.0, 0.6), rng);
        const auto te = text.encode(query.visualConcept,
                                    query.lexicalStyle, query.text);
        const auto ie = image.encode(baseImg.content, baseImg.fidelity,
                                     baseImg.id);
        const double sim = te.similarity(ie);
        // Only pairs that the k-decision would map to exactly this k.
        if (!kd.isHit(sim) || kd.decide(sim) != k)
            continue;
        const auto refined =
            sampler.refine(diffusion::sdxl(), query, baseImg, k, 0.0);
        const auto full =
            sampler.generate(diffusion::sd35Large(), query, 0.0);
        quality.add(metrics.clipScore(query, refined) /
                    metrics.clipScore(query, full));
    }
    ASSERT_GE(quality.count(), 50u);
    EXPECT_GE(quality.mean(), 0.93);
}

INSTANTIATE_TEST_SUITE_P(PaperKSet, QualityConstraintProperty,
                         ::testing::Values(5, 10, 15, 25, 30));

/**
 * Monitor safety: across random inputs, the returned allocation covers
 * the miss workload whenever coverage is possible at all.
 */
TEST(MonitorProperty, AllocationEventuallyCoversMisses)
{
    MonitorConfig config;
    config.numWorkers = 16;
    config.pLarge = 0.625;
    config.pSmall = {1.5};
    config.mode = MonitorMode::ThroughputOptimized;
    GlobalMonitor monitor(config);

    Rng rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        MonitorInputs inputs;
        inputs.requestRate = rng.uniform(1.0, 9.5);
        inputs.hitRate = rng.uniform(0.0, 1.0);
        inputs.kRates = {{5, 0.3}, {15, 0.4}, {30, 0.3}};
        // Let the PID settle on fixed inputs.
        Allocation alloc;
        for (int step = 0; step < 60; ++step)
            alloc = monitor.update(inputs);
        const double missWl = monitor.missWorkload(inputs);
        if (missWl <= config.numWorkers * config.pLarge) {
            EXPECT_GE(alloc.numLarge * config.pLarge + 0.625,
                      missWl * 0.9)
                << "rate " << inputs.requestRate << " hit "
                << inputs.hitRate;
        }
    }
}

/**
 * DES stress: random arrival bursts never lose completions, and the
 * virtual clock never goes backwards.
 */
TEST(DesProperty, RandomBurstsConserveRequests)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto gen = workload::makeDiffusionDB(seed);
        Rng rng(seed);
        workload::Trace trace;
        double t = 0.0;
        for (int i = 0; i < 200; ++i) {
            // Bursty: clustered arrivals with occasional long gaps.
            t += rng.bernoulli(0.2) ? rng.exponential(0.01)
                                    : rng.exponential(2.0);
            workload::Request r;
            r.prompt = gen->next();
            r.arrival = t;
            trace.push_back(r);
        }
        baselines::PresetParams params;
        params.numWorkers = 2;
        params.cacheCapacity = 200;
        ServingSystem system(baselines::modm(
            diffusion::sd35Large(), diffusion::sdxl(), params));
        const auto result = system.run(trace);
        ASSERT_EQ(result.metrics.count(), trace.size());
        double prev = 0.0;
        for (const auto &r : result.metrics.records()) {
            EXPECT_GE(r.finish, prev - 1e-9); // completion order
            prev = r.finish;
        }
    }
}

} // namespace
} // namespace modm::serving

/**
 * @file
 * Multi-node serving tests: the router/node refactor's determinism
 * contract and its cluster-scale behaviour.
 *
 *  - Frozen-digest regression: at numNodes=1 every system kind must
 *    reproduce the pre-refactor monolithic ServingSystem byte for byte.
 *    The FNV-64 hashes below were computed from resultDigest() on the
 *    tree *before* the node extraction (PR 3 head); digests are
 *    hex-float renderings of virtual-time state, so they are
 *    machine-independent and any drift is a real behaviour change.
 *  - Router properties: policy semantics, affinity, determinism.
 *  - Sweep determinism: N-node experiments are share-nothing cells,
 *    bit-identical at sweep parallelism 1 vs 4.
 *  - The cluster story: with sharded caches at >= 4 nodes, affinity
 *    routing recovers hit rate that round-robin loses.
 *  - Bounded telemetry: maxTelemetrySamples caps hitAges/allocations
 *    deterministically.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "src/baselines/presets.hh"
#include "src/cache/shard.hh"
#include "src/common/sampled_vector.hh"
#include "src/serving/router.hh"
#include "src/serving/system.hh"

namespace modm::serving {
namespace {

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

bench::WorkloadBundle
ddbBundle(std::size_t warm, std::size_t count, double rate,
          std::uint64_t seed = 42)
{
    return bench::poissonBundle(bench::Dataset::DiffusionDB, warm,
                                count, rate, seed);
}

baselines::PresetParams
smallParams()
{
    baselines::PresetParams params;
    params.numWorkers = 2;
    params.cacheCapacity = 150;
    return params;
}

workload::Prompt
topicPrompt(std::uint32_t topic)
{
    workload::Prompt prompt;
    prompt.topicId = topic;
    return prompt;
}

/** Scoped MODM_SWEEP_* override (same shape as test_sweep.cc). */
class ScopedSweepEnv
{
  public:
    explicit ScopedSweepEnv(const char *parallelism)
    {
        save("MODM_SWEEP_PARALLELISM", parallelism);
        save("MODM_SWEEP_PROGRESS", "0");
    }
    ~ScopedSweepEnv()
    {
        for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
            if (it->second.second)
                setenv(it->first.c_str(), it->second.first.c_str(), 1);
            else
                unsetenv(it->first.c_str());
        }
    }

  private:
    void save(const char *name, const char *value)
    {
        const char *prev = std::getenv(name);
        saved_.emplace_back(
            name, std::make_pair(prev ? prev : "", prev != nullptr));
        setenv(name, value, 1);
    }

    std::vector<std::pair<std::string, std::pair<std::string, bool>>>
        saved_;
};

TEST(MultiNode, SingleNodeDigestsMatchPreRefactorBaseline)
{
    // Hashes frozen from the pre-node-extraction monolith. Every
    // system kind (and the quality/admission variants the sweep
    // property test exercises) must keep reproducing them at the
    // default numNodes=1.
    //
    // Re-pinned once (PR 5) for the 4-way multi-accumulator
    // modm::dot: blocked summation rounds differently in the last
    // ulp than the sequential chain, which shifts the hex-float
    // similarity bits these digests capture. Every figure/table
    // binary (rounded output) was verified byte-identical across the
    // change; vanilla/standalone digests (no retrieval path) kept
    // their original hashes untouched.
    const auto params = smallParams();
    const auto ddb = [] { return ddbBundle(120, 150, 12.0); };
    const auto mjhq = [] {
        return bench::batchBundle(bench::Dataset::MJHQ, 120, 150);
    };

    struct Pinned
    {
        const char *name;
        ServingConfig config;
        std::function<bench::WorkloadBundle()> bundle;
        std::uint64_t digestHash;
    };
    std::vector<Pinned> pinned;
    pinned.push_back({"vanilla",
                      baselines::vanilla(diffusion::sd35Large(), params),
                      ddb, 0x0eaa3a454f9e8ceeULL});
    pinned.push_back({"nirvana",
                      baselines::nirvana(diffusion::sd35Large(), params),
                      ddb, 0x3809c9689bb64dc6ULL});
    pinned.push_back({"pinecone",
                      baselines::pinecone(diffusion::sd35Large(), params),
                      mjhq, 0xc1289beb17ee0c2dULL});
    pinned.push_back({"modm",
                      baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params),
                      ddb, 0x6e46720f878f8cc1ULL});
    auto quality = baselines::modmMulti(
        diffusion::sd35Large(), {diffusion::sdxl(), diffusion::sana()},
        params);
    quality.mode = MonitorMode::QualityOptimized;
    quality.keepOutputs = true;
    pinned.push_back({"modm-quality", quality, mjhq,
                      0xf57e50ba5aa86871ULL});
    pinned.push_back({"standalone",
                      baselines::standalone(diffusion::sana(), params),
                      ddb, 0xae340955efc7bca8ULL});
    auto cacheLarge = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sana(), params);
    cacheLarge.admission = AdmissionPolicy::CacheLargeOnly;
    pinned.push_back({"modm-cachelarge", cacheLarge, ddb,
                      0xdfa510ae757fbd09ULL});

    for (const auto &cell : pinned) {
        const auto result = bench::runSystem(cell.config, cell.bundle());
        EXPECT_EQ(result.numNodes, 1u);
        EXPECT_EQ(fnv1a(resultDigest(result)), cell.digestHash)
            << cell.name
            << " diverged from the pre-refactor monolith";
    }
}

TEST(Router, RoundRobinCycles)
{
    auto router = makeRouter(RoutingPolicy::RoundRobin, 3, 42);
    const std::vector<std::size_t> outstanding(3, 0);
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(router->route(topicPrompt(7), outstanding), i % 3);
}

TEST(Router, ConsistentHashIsAffineAndDeterministic)
{
    auto a = makeRouter(RoutingPolicy::ConsistentHash, 4, 42);
    auto b = makeRouter(RoutingPolicy::ConsistentHash, 4, 42);
    const std::vector<std::size_t> outstanding(4, 0);
    std::set<std::size_t> used;
    for (std::uint32_t topic = 0; topic < 200; ++topic) {
        const auto node = a->route(topicPrompt(topic), outstanding);
        // Same topic, same node — on every call, on every instance,
        // and for warm routing too (cache affinity).
        EXPECT_EQ(a->route(topicPrompt(topic), outstanding), node);
        EXPECT_EQ(b->route(topicPrompt(topic), outstanding), node);
        EXPECT_EQ(a->routeWarm(topicPrompt(topic)), node);
        used.insert(node);
    }
    // Virtual nodes spread 200 topics over every physical node.
    EXPECT_EQ(used.size(), 4u);
}

TEST(Router, LeastOutstandingPicksMinWithLowestIndexTie)
{
    auto router = makeRouter(RoutingPolicy::LeastOutstanding, 4, 42);
    EXPECT_EQ(router->route(topicPrompt(0), {3, 1, 2, 1}), 1u);
    EXPECT_EQ(router->route(topicPrompt(0), {0, 0, 0, 0}), 0u);
    EXPECT_EQ(router->route(topicPrompt(0), {5, 4, 3, 2}), 3u);
    // Warm routing spreads round-robin (no load exists yet).
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(router->routeWarm(topicPrompt(9)), i % 4);
}

TEST(ShardCapacity, SplitsExactlyAndClampsToOne)
{
    for (const std::size_t total : {std::size_t{8}, std::size_t{1201},
                                    std::size_t{10000}}) {
        for (const std::size_t shards :
             {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
            std::size_t sum = 0;
            std::size_t prev = cache::shardCapacity(total, shards, 0);
            for (std::size_t s = 0; s < shards; ++s) {
                const std::size_t share =
                    cache::shardCapacity(total, shards, s);
                EXPECT_LE(share, prev); // earlier shards take the rest
                sum += share;
                prev = share;
            }
            EXPECT_EQ(sum, total);
        }
    }
    // Over-sharded budgets clamp each share to a viable minimum.
    EXPECT_EQ(cache::shardCapacity(2, 4, 3), 1u);
}

TEST(SampledVector, UnboundedKeepsEverySample)
{
    SampledVector<int> samples(0);
    for (int i = 0; i < 1000; ++i)
        samples.push(i);
    ASSERT_EQ(samples.items().size(), 1000u);
    EXPECT_EQ(samples.stride(), 1u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(samples.items()[i], i);
}

TEST(SampledVector, CapOfOneDegradesToFirstSample)
{
    SampledVector<int> samples(1);
    for (int i = 0; i < 5000; ++i)
        samples.push(i);
    ASSERT_EQ(samples.items().size(), 1u);
    EXPECT_EQ(samples.items()[0], 0);
    EXPECT_EQ(samples.seen(), 5000u);
}

TEST(SampledVector, CapBindsWithStrideDownsampling)
{
    SampledVector<int> samples(64);
    for (int i = 0; i < 100000; ++i)
        samples.push(i);
    EXPECT_LE(samples.items().size(), 64u);
    EXPECT_GE(samples.items().size(), 32u); // thinning halves, not empties
    EXPECT_EQ(samples.seen(), 100000u);
    // Retained values are exactly the multiples of the final stride.
    const auto stride = static_cast<int>(samples.stride());
    EXPECT_GT(stride, 1);
    for (std::size_t i = 0; i < samples.items().size(); ++i)
        EXPECT_EQ(samples.items()[i], static_cast<int>(i) * stride);
}

TEST(MultiNode, SweepParallelismDoesNotChangeNodeResults)
{
    // Four-node experiments across every routing policy (plus an
    // adaptive-nprobe IVF cell) must be bit-identical whether the
    // sweep runs serially or four cells at a time — the share-nothing
    // contract extended to the cluster axis.
    const auto makeSpec = [] {
        baselines::PresetParams params;
        params.numWorkers = 4;
        params.cacheCapacity = 300;
        bench::SweepSpec spec;
        spec.options.title = "multinode-property";
        const auto bundle = [] { return ddbBundle(200, 250, 16.0); };
        for (const auto routing :
             {RoutingPolicy::RoundRobin, RoutingPolicy::ConsistentHash,
              RoutingPolicy::LeastOutstanding}) {
            auto config = baselines::modm(diffusion::sd35Large(),
                                          diffusion::sdxl(), params);
            config.cluster.numNodes = 4;
            config.cluster.routing = routing;
            spec.add(routingPolicyName(routing), config, bundle);
        }
        auto replicated = baselines::nirvana(diffusion::sd35Large(),
                                             params);
        replicated.cluster.numNodes = 2;
        replicated.cluster.cachePartitioning =
            CachePartitioning::Replicated;
        spec.add("nirvana-replicated", replicated, bundle);
        auto adaptive = baselines::modm(diffusion::sd35Large(),
                                        diffusion::sdxl(), params);
        adaptive.cluster.numNodes = 2;
        adaptive.retrieval.kind = embedding::RetrievalBackend::Ivf;
        adaptive.retrieval.nlist = 16;
        adaptive.retrieval.adaptiveNprobe = true;
        adaptive.maxTelemetrySamples = 32;
        spec.add("adaptive-ivf", adaptive, bundle);
        return spec;
    };

    std::vector<std::string> serialDigests;
    {
        ScopedSweepEnv env("1");
        for (const auto &result : runSweep(makeSpec()))
            serialDigests.push_back(resultDigest(result));
    }
    {
        ScopedSweepEnv env("4");
        const auto results = runSweep(makeSpec());
        ASSERT_EQ(results.size(), serialDigests.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(resultDigest(results[i]), serialDigests[i])
                << "cell " << i
                << " diverged between serial and concurrent execution";
        }
    }
}

TEST(MultiNode, RequestsConserveAcrossNodes)
{
    for (const auto routing :
         {RoutingPolicy::RoundRobin, RoutingPolicy::ConsistentHash,
          RoutingPolicy::LeastOutstanding}) {
        baselines::PresetParams params;
        params.numWorkers = 4;
        params.cacheCapacity = 300;
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params);
        config.cluster.numNodes = 4;
        config.cluster.routing = routing;
        auto bundle = ddbBundle(200, 300, 16.0);
        ServingSystem system(config);
        system.warmCache(bundle.warm);
        const auto result = system.run(bundle.trace);

        EXPECT_EQ(result.metrics.count(), 300u);
        std::set<std::uint64_t> served;
        for (const auto &r : result.metrics.records()) {
            EXPECT_LE(r.arrival, r.start + 1e-9);
            EXPECT_LE(r.start, r.finish + 1e-9);
            served.insert(r.promptId);
        }
        EXPECT_EQ(served.size(), 300u);

        ASSERT_EQ(result.nodes.size(), 4u);
        std::uint64_t assigned = 0;
        std::uint64_t completed = 0;
        std::size_t workers = 0;
        for (const auto &node : result.nodes) {
            EXPECT_EQ(node.assigned, node.completed);
            assigned += node.assigned;
            completed += node.completed;
            workers += node.numWorkers;
            EXPECT_GE(node.numWorkers, 1u);
        }
        EXPECT_EQ(assigned, 300u);
        EXPECT_EQ(completed, 300u);
        EXPECT_EQ(workers, 4u);
        EXPECT_GE(result.loadImbalance, 1.0);
        // Multi-node digests carry the per-node section.
        EXPECT_NE(resultDigest(result).find("nodes=4"),
                  std::string::npos);
    }
}

TEST(MultiNode, AffinityRoutingRecoversShardedHitRate)
{
    // The cluster-scale headline: at 4 sharded nodes, consistent-hash
    // routing keeps a topic's requests and its cached images on one
    // node, recovering hit rate that round-robin scatters away.
    const auto runWith = [](RoutingPolicy routing) {
        baselines::PresetParams params;
        params.numWorkers = 8;
        params.cacheCapacity = 1200;
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params);
        config.cluster.numNodes = 4;
        config.cluster.routing = routing;
        auto bundle = ddbBundle(800, 1000, 20.0);
        ServingSystem system(config);
        system.warmCache(bundle.warm);
        return system.run(bundle.trace);
    };
    const auto affinity = runWith(RoutingPolicy::ConsistentHash);
    const auto roundRobin = runWith(RoutingPolicy::RoundRobin);
    EXPECT_GT(affinity.hitRate, roundRobin.hitRate + 0.05)
        << "affinity routing must recover a material hit-rate gap";
    // The price of affinity: load concentrates on popular topics'
    // nodes, while round-robin stays balanced by construction.
    EXPECT_GE(affinity.loadImbalance, roundRobin.loadImbalance);
}

TEST(MultiNode, BoundedTelemetryCapsHitAgesAndAllocations)
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 400;
    auto capped = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), params);
    capped.maxTelemetrySamples = 32;
    auto unbounded = capped;
    unbounded.maxTelemetrySamples = 0;

    const auto runWith = [](const ServingConfig &config) {
        auto bundle = ddbBundle(400, 500, 12.0);
        ServingSystem system(config);
        system.warmCache(bundle.warm);
        return system.run(bundle.trace);
    };
    const auto full = runWith(unbounded);
    const auto bounded = runWith(capped);

    ASSERT_GT(full.hitAges.size(), 64u)
        << "workload too small to exercise the cap";
    EXPECT_LE(bounded.hitAges.size(), 32u);
    EXPECT_LE(bounded.allocations.size(), 32u);
    // Downsampling drops samples, never invents them: every retained
    // age is the full run's sequence at a fixed stride.
    const std::size_t stride =
        full.hitAges.size() / bounded.hitAges.size() +
        (full.hitAges.size() % bounded.hitAges.size() ? 1 : 0);
    (void)stride; // the exact stride is a power of two; check membership
    for (const double age : bounded.hitAges) {
        EXPECT_NE(std::find(full.hitAges.begin(), full.hitAges.end(),
                            age),
                  full.hitAges.end());
    }
    // Aggregates are untouched by telemetry bounding.
    EXPECT_EQ(full.hitRate, bounded.hitRate);
    EXPECT_EQ(full.throughputPerMin, bounded.throughputPerMin);
    EXPECT_EQ(full.duration, bounded.duration);
}

} // namespace
} // namespace modm::serving
